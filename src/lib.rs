//! # fade-repro
//!
//! Facade crate for the FADE reproduction (Fytraki et al., HPCA 2014:
//! "FADE: A Programmable Filtering Accelerator for Instruction-Grain
//! Monitoring").
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users need a single dependency:
//!
//! * [`isa`] — ISA model, application events, event IDs;
//! * [`shadow`] — shadow (metadata) memory substrate;
//! * [`trace`] — synthetic benchmark workloads;
//! * [`monitors`] — the five instruction-grain monitors;
//! * [`accel`] — the FADE accelerator itself;
//! * [`sim`] — cycle-level simulation substrate;
//! * [`system`] — composed monitoring systems + experiment harness;
//! * [`power`] — 40 nm area/power models.
//!
//! # Quickstart
//!
//! ```
//! use fade_repro::system::{Session, SystemConfig};
//! use fade_repro::trace::bench;
//!
//! let report = Session::builder()
//!     .monitor("AddrCheck")
//!     .source(bench::by_name("mcf").unwrap())
//!     .config(SystemConfig::fade_single_core())
//!     .build()
//!     .unwrap()
//!     .run_measured(10_000, 40_000)
//!     .unwrap();
//! println!(
//!     "slowdown {:.2}x, filtering ratio {:.1}%",
//!     report.stats.slowdown(),
//!     100.0 * report.stats.filtering_ratio()
//! );
//! ```

pub use fade as accel;
pub use fade_isa as isa;
pub use fade_monitors as monitors;
pub use fade_power as power;
pub use fade_shadow as shadow;
pub use fade_sim as sim;
pub use fade_system as system;
pub use fade_trace as trace;

/// Commonly used items for examples and tests.
pub mod prelude {
    pub use fade::{Fade, FadeConfig, FadeProgram, FilterMode};
    pub use fade_isa::{AppEvent, AppInstr, InstrClass, Reg, VirtAddr};
    pub use fade_monitors::{monitor_by_name, Monitor};
    pub use fade_shadow::MetadataState;
    pub use fade_system::{
        measure_system_throughput, measure_trace_codec, record_trace_prefix, Engine, EpochStats,
        ExecMode, MonitorRegistry, MonitoringSystem, ReplayBuffer, ReplayReport, RunReport,
        RunStats, Session, SessionBuilder, SessionError, SessionRunError, SourceError,
        SystemConfig, TraceSource,
    };
    pub use fade_trace::{
        bench, read_trace_file, write_trace_file, BenchProfile, DegradationReport, FaultKind,
        FaultPlan, FaultyReader, SkippedChunk, SyntheticProgram, TraceMeta, TraceReader,
        TraceRecord, TraceWriter,
    };
}
