//! Quickstart: run one benchmark under one monitor, with and without
//! FADE, and print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart [monitor] [benchmark]
//! ```

use fade_repro::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let monitor = args.first().map(String::as_str).unwrap_or("MemLeak");
    let workload = args.get(1).map(String::as_str).unwrap_or("gcc");

    let Some(profile) = bench::by_name(workload) else {
        eprintln!("unknown benchmark '{workload}'; try gcc, mcf, omnet, water, astar-taint, ...");
        std::process::exit(1);
    };

    println!("workload: {workload}   monitor: {monitor}");
    println!("system:   single-core dual-threaded 4-way OoO (paper Figure 8(b))\n");

    let warm = 30_000;
    let measure = 200_000;

    // One builder per configuration: same monitor, same workload, with
    // and without the accelerator. An unknown monitor name comes back
    // as a typed SessionError listing what is registered.
    let session_for = |cfg: SystemConfig| {
        Session::builder()
            .monitor(monitor)
            .source(&profile)
            .config(cfg)
            .build()
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            })
    };
    let unaccel = session_for(SystemConfig::unaccelerated_single_core())
        .run_measured(warm, measure)
        .unwrap()
        .stats;
    let fade = session_for(SystemConfig::fade_single_core())
        .run_measured(warm, measure)
        .unwrap()
        .stats;

    println!("application IPC (unmonitored): {:.2}", fade.app_ipc());
    println!("monitored IPC (event rate):    {:.2}", fade.monitored_ipc());
    println!();
    println!("unaccelerated slowdown: {:.2}x", unaccel.slowdown());
    println!("FADE slowdown:          {:.2}x", fade.slowdown());
    println!(
        "FADE filtering ratio:   {:.1}% of event handlers elided",
        100.0 * fade.filtering_ratio()
    );
    let f = fade.fade.expect("accelerated run has FADE stats");
    println!();
    println!("accelerator detail:");
    println!("  instruction events   {}", f.instr_events);
    println!("  filtered             {}", f.filtered);
    println!("  partial hits         {}", f.partial_hits);
    println!("  unfiltered           {}", f.unfiltered_instr);
    println!("  stack updates (SUU)  {}", f.stack_updates);
    println!("  high-level events    {}", f.high_level);
}
