//! Record a workload to a `.fadet` trace file, then replay it through
//! the monitoring system and check the replayed run is indistinguishable
//! from the live one.
//!
//! ```text
//! cargo run --release --example record_replay
//! ```

use fade_repro::prelude::*;
use fade_repro::trace::{bench, TraceMeta, TraceRecord};

const INSTRS: u64 = 30_000;

fn main() {
    let workload = bench::by_name("gcc").unwrap();
    let cfg = SystemConfig::fade_single_core();

    // ---- Record: freeze the trace prefix a 30k-instruction run consumes.
    let mut prog = SyntheticProgram::new(&workload, cfg.seed);
    let mut records = Vec::new();
    let mut instrs = 0u64;
    while instrs < INSTRS {
        let r = prog.next_record();
        if matches!(r, TraceRecord::Instr(_)) {
            instrs += 1;
        }
        records.push(r);
    }
    let dir = std::path::Path::new("target");
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("record_replay.fadet");
    let meta = TraceMeta::new("gcc", cfg.seed);
    fade_repro::trace::write_trace_file(&path, &meta, &records).unwrap();
    let raw = records.len() * std::mem::size_of::<TraceRecord>();
    let encoded = std::fs::metadata(&path).unwrap().len();
    println!(
        "recorded {} records to {} ({} bytes, {:.1}x smaller than the {} in-memory bytes)",
        records.len(),
        path.display(),
        encoded,
        raw as f64 / encoded as f64,
        raw,
    );

    // ---- Live run: generate on the fly, cycle-accurately.
    let mut live = Session::builder()
        .monitor("MemLeak")
        .source(&workload)
        .config(cfg)
        .build()
        .unwrap();
    live.run_exact(INSTRS).unwrap();
    live.drain().unwrap();

    // ---- Replay: stream the file back through the batched engine. The
    // benchmark profile comes from the file's own header metadata.
    let mut replay = Session::builder()
        .monitor("MemLeak")
        .source(path.as_path())
        .engine(Engine::batched())
        .config(cfg)
        .build()
        .unwrap();
    replay.run_exact(INSTRS).unwrap();
    replay.drain().unwrap();

    println!(
        "live:   {} events, {} violations",
        live.events_seen(),
        live.monitor().reports().len(),
    );
    println!(
        "replay: {} events, {} violations ({}% fast path)",
        replay.events_seen(),
        replay.monitor().reports().len(),
        (100.0 * replay.batch_stats().fast_path_fraction()).round(),
    );
    assert_eq!(live.events_seen(), replay.events_seen());
    assert!(live.state() == replay.state(), "metadata state diverged");
    assert_eq!(live.monitor().reports(), replay.monitor().reports());
    println!("replayed run is bit-exact with live generation");
}
