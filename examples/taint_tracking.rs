//! Taint tracking: follow external input through a hand-written
//! dataflow with the TaintCheck monitor, then watch FADE filter the
//! untainted majority of a full workload.
//!
//! ```sh
//! cargo run --release --example taint_tracking
//! ```

use fade_repro::isa::{
    instr_event_for, layout, AppInstr, HighLevelEvent, InstrClass, MemRef, Reg, VirtAddr,
};
use fade_repro::monitors::{Monitor, TaintCheck};
use fade_repro::prelude::*;

fn main() {
    // ---- Part 1: taint propagation at the event level. ----
    let mut monitor = TaintCheck::new();
    let program = monitor.program();
    let mut state = MetadataState::new(program.md_map());
    monitor.init_state(&mut state);

    let buf = layout::HEAP_BASE + 0x40;
    println!("1. network read taints a 64-byte buffer at {:#x}", buf);
    monitor.apply_high_level(
        &HighLevelEvent::TaintSource { base: VirtAddr::new(buf), len: 64 },
        &mut state,
    );

    println!("2. load from the buffer taints r4");
    let ld = instr_event_for(
        &AppInstr::new(VirtAddr::new(0x500), InstrClass::Load)
            .with_dest(Reg::new(4))
            .with_mem(MemRef::word(VirtAddr::new(buf + 8))),
    );
    monitor.apply_instr(&ld, &mut state);
    assert_eq!(state.reg_meta(Reg::new(4)), 1, "r4 must be tainted");

    println!("3. arithmetic spreads the taint: r5 = r4 + r6");
    let alu = instr_event_for(
        &AppInstr::new(VirtAddr::new(0x504), InstrClass::IntAlu)
            .with_src1(Reg::new(4))
            .with_src2(Reg::new(6))
            .with_dest(Reg::new(5)),
    );
    monitor.apply_instr(&alu, &mut state);
    assert_eq!(state.reg_meta(Reg::new(5)), 1, "r5 must be tainted");

    println!("4. storing r5 taints the destination word");
    let target = layout::GLOBALS_BASE + 0x200;
    let st = instr_event_for(
        &AppInstr::new(VirtAddr::new(0x508), InstrClass::Store)
            .with_src1(Reg::new(5))
            .with_mem(MemRef::word(VirtAddr::new(target))),
    );
    monitor.apply_instr(&st, &mut state);
    assert_eq!(state.mem_meta(VirtAddr::new(target)), 1);
    println!("   -> tainted data reached {target:#x}; a jump through it would be the exploit\n");

    // ---- Part 2: FADE filters the untainted majority. ----
    let profile = bench::by_name("astar-taint").unwrap();
    let stats = Session::builder()
        .monitor("TaintCheck")
        .source(profile)
        .config(SystemConfig::fade_single_core())
        .build()
        .unwrap()
        .run_measured(30_000, 200_000)
        .unwrap()
        .stats;
    println!("full workload (astar with taint sources):");
    println!("  filtering ratio: {:.1}%", 100.0 * stats.filtering_ratio());
    println!("  FADE slowdown:   {:.2}x", stats.slowdown());
    assert!(stats.filtering_ratio() > 0.5);
}
