//! Leak hunt: use the MemLeak monitor (reference counting, Maebe et
//! al.) to catch a deliberately leaky program.
//!
//! We drive the monitor directly with a hand-written event sequence —
//! the same interface the simulator uses — so the leak is fully
//! deterministic and the report is easy to follow.
//!
//! ```sh
//! cargo run --release --example leak_hunt
//! ```

use fade_repro::isa::{
    instr_event_for, layout, AppInstr, HighLevelEvent, InstrClass, MemRef, Reg,
    VirtAddr,
};
use fade_repro::monitors::{MemLeak, Monitor};
use fade_repro::shadow::MetadataState;

fn load(addr: u32, dest: u8) -> fade_repro::isa::InstrEvent {
    instr_event_for(
        &AppInstr::new(VirtAddr::new(0x400), InstrClass::Load)
            .with_dest(Reg::new(dest))
            .with_mem(MemRef::word(VirtAddr::new(addr)))
            .with_result_ptr(true),
    )
}

fn store(addr: u32, src: u8) -> fade_repro::isa::InstrEvent {
    instr_event_for(
        &AppInstr::new(VirtAddr::new(0x404), InstrClass::Store)
            .with_src1(Reg::new(src))
            .with_mem(MemRef::word(VirtAddr::new(addr))),
    )
}

fn mov_imm(dest: u8) -> fade_repro::isa::InstrEvent {
    instr_event_for(
        &AppInstr::new(VirtAddr::new(0x408), InstrClass::IntMove).with_dest(Reg::new(dest)),
    )
}

fn main() {
    let mut monitor = MemLeak::new();
    let program = monitor.program();
    let mut state = MetadataState::new(program.md_map());
    monitor.init_state(&mut state);

    let heap = layout::HEAP_BASE;
    let global_slot = layout::GLOBALS_BASE + 0x100;

    println!("== scenario 1: a block that stays reachable ==");
    // p = malloc(64); the pointer arrives in the return register.
    monitor.apply_high_level(
        &HighLevelEvent::Malloc { base: VirtAddr::new(heap), len: 64, ctx: 1 },
        &mut state,
    );
    // Save p to a global, then reuse the register for something else.
    monitor.apply_instr(&store(global_slot, Reg::RET.index()), &mut state);
    monitor.apply_instr(&mov_imm(Reg::RET.index()), &mut state);
    println!("leaks so far: {}\n", monitor.leaks_found());

    println!("== scenario 2: the classic leak ==");
    // q = malloc(128); ... and then the only pointer is overwritten.
    monitor.apply_high_level(
        &HighLevelEvent::Malloc { base: VirtAddr::new(heap + 0x1000), len: 128, ctx: 2 },
        &mut state,
    );
    monitor.apply_instr(&mov_imm(Reg::RET.index()), &mut state);
    println!("leaks so far: {}\n", monitor.leaks_found());

    println!("== scenario 3: a leak through free() of the owner ==");
    // r = malloc(32), stored *inside* block 1 (the only reference);
    // freeing block 1 orphans r.
    monitor.apply_high_level(
        &HighLevelEvent::Malloc { base: VirtAddr::new(heap + 0x2000), len: 32, ctx: 3 },
        &mut state,
    );
    monitor.apply_instr(&store(heap + 16, Reg::RET.index()), &mut state);
    monitor.apply_instr(&mov_imm(Reg::RET.index()), &mut state);
    monitor.apply_high_level(
        &HighLevelEvent::Free { base: VirtAddr::new(heap), len: 64 },
        &mut state,
    );
    println!("leaks so far: {}\n", monitor.leaks_found());

    println!("== scenario 4: reloading a saved pointer is NOT a leak ==");
    // Reload p from the global: block 1's context is still referenced
    // (this is also exactly the event FADE would have sent to software,
    // since the loaded value is a pointer).
    monitor.apply_instr(&load(global_slot, 5), &mut state);
    println!("leaks so far: {}\n", monitor.leaks_found());

    println!("== monitor reports ==");
    for r in monitor.reports() {
        println!("  {r}");
    }
    assert_eq!(monitor.leaks_found(), 2, "scenarios 2 and 3 leak");
    println!("\n2 leaks found, as constructed.");
}
