//! Custom monitor: FADE is *programmable* — this example defines a
//! brand-new tool the paper never mentions, registers it in the
//! [`MonitorRegistry`] next to the five paper monitors, records a
//! workload to a `.fadet` trace file, and replays the trace through a
//! [`Session`] — the whole "one accelerator, many monitors" story on
//! the public API, end to end.
//!
//! **SealCheck** enforces write-once ("sealed") memory: once a region
//! is sealed, any store to it is a violation. Critical metadata is one
//! byte per word: 0 = writable, 1 = sealed. Stores are filtered by a
//! clean check against the "writable" invariant — the common case —
//! and only stores to sealed memory reach software. (We reuse the
//! trace's taint-source events as "seal this region" markers.)
//!
//! ```sh
//! cargo run --release --example custom_monitor
//! ```

use std::sync::Arc;

use fade_repro::accel::{EventTableEntry, FadeProgram, HandlerPc, InvId, OperandRule};
use fade_repro::isa::{event_ids, AppInstr, HighLevelEvent, InstrClass, InstrEvent, StackUpdateEvent};
use fade_repro::monitors::{CostModel, EventClass, Monitor, MonitorKind};
use fade_repro::prelude::*;
use fade_repro::shadow::MetadataMap;
use fade_repro::system::record_trace_prefix;

const WRITABLE: u8 = 0;
const SEALED: u8 = 1;

/// A write-once-memory monitor, built from scratch on the public API.
#[derive(Debug, Default)]
struct SealCheck {
    violations: Vec<String>,
}

impl Monitor for SealCheck {
    fn name(&self) -> &'static str {
        "SealCheck"
    }

    fn kind(&self) -> MonitorKind {
        MonitorKind::MemoryTracking
    }

    fn selects(&self, instr: &AppInstr) -> bool {
        // Only stores can violate a seal.
        instr.class == InstrClass::Store && instr.mem.is_some()
    }

    fn monitors_stack(&self) -> bool {
        false
    }

    fn program(&self) -> FadeProgram {
        let mut p = FadeProgram::new(MetadataMap::per_word());
        p.set_invariant(InvId::new(0), WRITABLE as u64);
        // Stores: clean check "destination word is writable".
        p.set_entry(
            event_ids::STORE,
            EventTableEntry::clean_check([
                None,
                None,
                Some(OperandRule::mem_operand(1, 0xff, InvId::new(0))),
            ])
            .with_handler(HandlerPc::new(0x5ea1_0000)),
        );
        p
    }

    fn init_state(&self, _state: &mut MetadataState) {}

    fn classify(&self, ev: &InstrEvent, state: &MetadataState) -> EventClass {
        if state.mem_meta(ev.app_addr) == WRITABLE {
            EventClass::CleanCheck
        } else {
            EventClass::Complex
        }
    }

    fn apply_instr(&mut self, ev: &InstrEvent, state: &mut MetadataState) {
        if state.mem_meta(ev.app_addr) == SEALED && self.violations.len() < 100 {
            self.violations
                .push(format!("store to sealed word {} at pc {}", ev.app_addr, ev.app_pc));
        }
    }

    fn apply_high_level(&mut self, ev: &HighLevelEvent, state: &mut MetadataState) {
        match *ev {
            // Reinterpret taint-source markers as "seal this region".
            HighLevelEvent::TaintSource { base, len } => {
                state.fill_app_range(base, len, SEALED);
            }
            // Fresh or released memory is writable again.
            HighLevelEvent::Malloc { base, len, .. } | HighLevelEvent::Free { base, len } => {
                state.fill_app_range(base, len, WRITABLE);
            }
            HighLevelEvent::ThreadSwitch { .. } => {}
        }
    }

    fn apply_stack_update(&self, _ev: &StackUpdateEvent, _state: &mut MetadataState) {}

    fn costs(&self) -> CostModel {
        CostModel {
            cc: 6,
            ru: 6,
            partial_short: 6,
            complex: 40,
            stack_per_word: 0,
            stack_base: 0,
            high_level_base: 30,
            high_level_per_word: 1,
            thread_switch: 10,
        }
    }

    fn reports(&self) -> Vec<String> {
        self.violations.clone()
    }
}

fn main() {
    // 1. Register the new tool next to the paper's five: anywhere a
    //    monitor is named — sessions, experiment matrices, CLIs — can
    //    now say "SealCheck".
    let mut registry = MonitorRegistry::builtin();
    registry.register(|| Box::new(SealCheck::default()));
    let registry = Arc::new(registry);
    println!("registered monitors: {}", registry.names().join(", "));

    // 2. Record a workload to a `.fadet` trace file (the taint
    //    workloads emit taint-source — here: seal — events). The
    //    recording monitor only bounds the prefix length; the file
    //    holds every trace record, so any monitor can replay it.
    let profile = bench::by_name("omnet-taint").unwrap();
    let cfg = SystemConfig::fade_single_core();
    let (records, instrs) = record_trace_prefix(&profile, "TaintCheck", cfg.seed, 60_000);
    let dir = std::path::Path::new("target");
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("custom_monitor.fadet");
    write_trace_file(&path, &TraceMeta::new(profile.name, cfg.seed), &records).unwrap();
    println!("recorded {} records ({instrs} instrs) to {}", records.len(), path.display());

    // 3. Replay the recorded trace through a Session running the custom
    //    monitor — by name, resolved in the registry; the benchmark
    //    profile comes from the trace file's own header.
    let mut session = Session::builder()
        .registry(registry)
        .monitor("SealCheck")
        .source(path.as_path())
        .config(cfg)
        .build()
        .expect("a registered monitor and a freshly recorded trace");
    session.run_exact(instrs).unwrap();
    session.drain().unwrap();

    println!("\nSealCheck on omnet with periodic region seals");
    println!(
        "replayed {} instructions in {} cycles",
        session.instrs(),
        session.cycles()
    );
    let reports = session.monitor().reports();
    println!("seal violations caught: {}", reports.len());
    for r in reports.iter().take(6) {
        println!("  {r}");
    }
    assert!(
        !reports.is_empty(),
        "the workload keeps writing, so some store must hit a sealed region"
    );
    println!("\nA new tool, zero hardware changes: that is the point of FADE.");
}
