//! Race hunt: run AtomCheck (AVIO-style interleaving invariants) over a
//! multithreaded workload on the FADE-accelerated system and show the
//! atomicity-violation candidates it flags — while FADE filters the
//! same-thread accesses that dominate the stream.
//!
//! ```sh
//! cargo run --release --example race_hunt [benchmark]
//! ```

use fade_repro::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("ocean");
    let Some(profile) = bench::by_name(workload) else {
        eprintln!("unknown parallel benchmark '{workload}'; try water, ocean, blacks., stream., fluid.");
        std::process::exit(1);
    };
    if profile.threads < 2 {
        eprintln!("'{workload}' is single-threaded; AtomCheck needs the parallel suite");
        std::process::exit(1);
    }

    println!("AtomCheck on {workload} ({} threads, time-sliced)\n", profile.threads);
    let mut sys = Session::builder()
        .monitor("AtomCheck")
        .source(&profile)
        .config(SystemConfig::fade_single_core())
        .build()
        .unwrap();
    sys.run(400_000).unwrap();

    let reports = sys.monitor().reports();
    println!(
        "simulated {} instructions in {} cycles",
        sys.instrs(),
        sys.cycles()
    );
    println!("interleaving candidates found: {}", reports.len());
    for r in reports.iter().take(8) {
        println!("  {r}");
    }
    if reports.len() > 8 {
        println!("  ... and {} more", reports.len() - 8);
    }
    assert!(
        !reports.is_empty(),
        "a sharing workload must produce interleaving candidates"
    );
}
