//! Property tests: the shadow-memory substrate against simple
//! reference models.

use std::collections::HashMap;

use fade_isa::VirtAddr;
use fade_shadow::{MetadataMap, MetadataState, ShadowMemory};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum MemOp {
    Write { addr: u32, value: u8 },
    WriteWide { addr: u32, n: u8, value: u64 },
    Fill { addr: u32, len: u16, value: u8 },
}

fn mem_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (0u32..0x8000, any::<u8>()).prop_map(|(addr, value)| MemOp::Write { addr, value }),
        (0u32..0x8000, 1u8..=8, any::<u64>())
            .prop_map(|(addr, n, value)| MemOp::WriteWide { addr, n, value }),
        (0u32..0x8000, 0u16..256, any::<u8>())
            .prop_map(|(addr, len, value)| MemOp::Fill { addr, len, value }),
    ]
}

proptest! {
    /// ShadowMemory behaves exactly like a byte map.
    #[test]
    fn shadow_memory_matches_reference(ops in prop::collection::vec(mem_op(), 0..200)) {
        let mut mem = ShadowMemory::new();
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                MemOp::Write { addr, value } => {
                    mem.write_u8(addr as u64, value);
                    reference.insert(addr as u64, value);
                }
                MemOp::WriteWide { addr, n, value } => {
                    mem.write_bytes(addr as u64, n as usize, value);
                    for i in 0..n as u64 {
                        reference.insert(addr as u64 + i, (value >> (8 * i)) as u8);
                    }
                }
                MemOp::Fill { addr, len, value } => {
                    mem.fill(addr as u64, len as u64, value);
                    for i in 0..len as u64 {
                        reference.insert(addr as u64 + i, value);
                    }
                }
            }
        }
        for (&a, &v) in &reference {
            prop_assert_eq!(mem.read_u8(a), v, "byte at {}", a);
        }
        // Untouched bytes read zero.
        prop_assert_eq!(mem.read_u8(0x9000), 0);
    }

    /// Wide reads reassemble exactly the bytes that wide writes spread.
    #[test]
    fn wide_read_write_round_trip(addr in 0u64..0x4000, n in 1usize..=8, value: u64) {
        let mut mem = ShadowMemory::new();
        mem.write_bytes(addr, n, value);
        let mask = if n == 8 { u64::MAX } else { (1u64 << (8 * n)) - 1 };
        prop_assert_eq!(mem.read_bytes(addr, n), value & mask);
    }

    /// md_range covers exactly the units that per-address mapping hits.
    #[test]
    fn md_range_is_consistent_with_md_addr(base in 0u32..0x1_0000, len in 1u32..512) {
        let map = MetadataMap::per_word();
        let (start, md_len) = map.md_range(VirtAddr::new(base), len);
        // First and last byte of the range map inside it.
        let first = map.md_addr(VirtAddr::new(base));
        let last = map.md_addr(VirtAddr::new(base + len - 1));
        prop_assert_eq!(first, start);
        prop_assert_eq!(last, start + md_len - 1);
    }

    /// Bulk fill equals per-word writes.
    #[test]
    fn fill_app_range_equals_per_word_stores(base in 0u32..0x1000, words in 1u32..64, v in 0u8..4) {
        let base = base * 4;
        let mut bulk = MetadataState::new(MetadataMap::per_word());
        bulk.fill_app_range(VirtAddr::new(base), words * 4, v);
        let mut single = MetadataState::new(MetadataMap::per_word());
        for w in 0..words {
            single.set_mem_meta(VirtAddr::new(base + 4 * w), v);
        }
        for w in 0..words + 2 {
            let a = VirtAddr::new(base + 4 * w);
            prop_assert_eq!(bulk.mem_meta(a), single.mem_meta(a), "word {}", w);
        }
    }

    /// Span reads pack per-unit metadata little-endian.
    #[test]
    fn span_read_matches_units(addr in 0u32..0x1000, size in 1u8..=8) {
        let addr = addr * 4 + 2; // intentionally unaligned
        let mut st = MetadataState::new(MetadataMap::per_word());
        let a = VirtAddr::new(addr);
        let units = st.map().units_for_access(a, size);
        for u in 0..units {
            st.set_mem_meta(VirtAddr::new(addr + 4 * u as u32), u + 1);
        }
        let packed = st.mem_meta_span(a, size);
        for u in 0..units {
            prop_assert_eq!((packed >> (8 * u)) as u8, u + 1, "unit {}", u);
        }
    }
}
