//! Per-register metadata.

use fade_isa::{Reg, NUM_REGS};

/// Metadata for the architectural register file.
///
/// Each register carries one byte of critical metadata (pointer status,
/// taint bit, init state, ...). The zero register is hard-wired clean:
/// writes to it are discarded and reads always return 0, mirroring how
/// `%g0` behaves architecturally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegMeta {
    bytes: [u8; NUM_REGS],
    zero_value: u8,
}

impl RegMeta {
    /// Creates a register metadata file with all registers clean (0).
    pub fn new() -> Self {
        RegMeta {
            bytes: [0; NUM_REGS],
            zero_value: 0,
        }
    }

    /// Sets the hard-wired metadata value of the zero register.
    ///
    /// `%g0` always holds the architectural value 0, which is a *clean*
    /// value for every monitor — but what "clean" is depends on the
    /// monitor's encoding (e.g. MemCheck's "defined" is 3). Monitors
    /// program this once in `init_state`.
    pub fn set_zero_value(&mut self, v: u8) {
        self.zero_value = v;
    }

    /// Reads the metadata byte of `reg`.
    #[inline]
    pub fn read(&self, reg: Reg) -> u8 {
        if reg.is_zero() {
            self.zero_value
        } else {
            self.bytes[reg.index() as usize]
        }
    }

    /// Writes the metadata byte of `reg`. Writes to the zero register are
    /// discarded.
    #[inline]
    pub fn write(&mut self, reg: Reg, value: u8) {
        if !reg.is_zero() {
            self.bytes[reg.index() as usize] = value;
        }
    }

    /// Sets every register to `value` (bulk reset, e.g. at thread
    /// start). The zero register keeps its hard-wired value.
    pub fn fill(&mut self, value: u8) {
        self.bytes.fill(value);
        self.bytes[0] = 0;
    }

    /// Returns `true` if every writable register is clean (0).
    pub fn is_clean(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }
}

impl Default for RegMeta {
    fn default() -> Self {
        RegMeta::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clean() {
        let r = RegMeta::new();
        assert!(r.is_clean());
        assert_eq!(r.read(Reg::new(7)), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut r = RegMeta::new();
        r.write(Reg::new(5), 0x42);
        assert_eq!(r.read(Reg::new(5)), 0x42);
        assert!(!r.is_clean());
    }

    #[test]
    fn zero_register_stays_clean() {
        let mut r = RegMeta::new();
        r.write(Reg::ZERO, 0xff);
        assert_eq!(r.read(Reg::ZERO), 0);
        r.fill(0xff);
        assert_eq!(r.read(Reg::ZERO), 0);
        assert_eq!(r.read(Reg::new(1)), 0xff);
    }

    #[test]
    fn zero_register_value_is_programmable() {
        let mut r = RegMeta::new();
        r.set_zero_value(3);
        assert_eq!(r.read(Reg::ZERO), 3);
        r.write(Reg::ZERO, 7); // still not writable
        assert_eq!(r.read(Reg::ZERO), 3);
        assert!(r.is_clean(), "zero value does not count as dirt");
    }
}
