//! Sparse paged metadata memory.

use std::collections::HashMap;

/// Log2 of a shadow page, kept equal to the application page size so the
/// M-TLB maps one application page to one metadata frame.
pub const SHADOW_PAGE_SHIFT: u32 = 12;
/// Shadow page size in bytes.
pub const SHADOW_PAGE_SIZE: usize = 1 << SHADOW_PAGE_SHIFT;

/// A sparse, byte-granularity metadata memory.
///
/// Pages are materialized on first write; reads of untouched memory
/// return zero, which every monitor maps to its "unallocated"/"clean"
/// encoding so that fresh address space is consistently encoded.
///
/// Addresses here are *metadata-space* addresses (`u64`), produced by
/// [`MetadataMap`](crate::MetadataMap).
#[derive(Clone, Debug, Default)]
pub struct ShadowMemory {
    pages: HashMap<u64, Box<[u8; SHADOW_PAGE_SIZE]>>,
}

impl ShadowMemory {
    /// Creates an empty shadow memory.
    pub fn new() -> Self {
        ShadowMemory {
            pages: HashMap::new(),
        }
    }

    /// Reads one metadata byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        let page = addr >> SHADOW_PAGE_SHIFT;
        let off = (addr as usize) & (SHADOW_PAGE_SIZE - 1);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes one metadata byte, materializing the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = addr >> SHADOW_PAGE_SHIFT;
        let off = (addr as usize) & (SHADOW_PAGE_SIZE - 1);
        self.page_mut(page)[off] = value;
    }

    /// Reads up to 8 metadata bytes starting at `addr`, little-endian
    /// packed into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0 || n > 8`.
    pub fn read_bytes(&self, addr: u64, n: usize) -> u64 {
        assert!(n >= 1 && n <= 8, "metadata reads are 1..=8 bytes");
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(addr + i as u64) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `n` bytes of `value` starting at `addr`,
    /// little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0 || n > 8`.
    pub fn write_bytes(&mut self, addr: u64, n: usize, value: u64) {
        assert!(n >= 1 && n <= 8, "metadata writes are 1..=8 bytes");
        for i in 0..n {
            self.write_u8(addr + i as u64, (value >> (8 * i)) as u8);
        }
    }

    /// Sets `len` consecutive metadata bytes to `value` (bulk
    /// initialization, as performed by the stack-update unit and the
    /// malloc/free handlers).
    pub fn fill(&mut self, addr: u64, len: u64, value: u8) {
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let page = cur >> SHADOW_PAGE_SHIFT;
            let off = (cur as usize) & (SHADOW_PAGE_SIZE - 1);
            let in_page = (SHADOW_PAGE_SIZE - off).min((end - cur) as usize);
            let p = self.page_mut(page);
            p[off..off + in_page].fill(value);
            cur += in_page as u64;
        }
    }

    /// Number of materialized pages (diagnostics / footprint accounting).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8; SHADOW_PAGE_SIZE] {
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; SHADOW_PAGE_SIZE]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = ShadowMemory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.read_bytes(0x4000, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = ShadowMemory::new();
        m.write_u8(0x1234, 0xab);
        assert_eq!(m.read_u8(0x1234), 0xab);
        assert_eq!(m.read_u8(0x1235), 0);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn multi_byte_round_trip_little_endian() {
        let mut m = ShadowMemory::new();
        m.write_bytes(0xff8, 4, 0x0403_0201);
        assert_eq!(m.read_u8(0xff8), 0x01);
        assert_eq!(m.read_u8(0xffb), 0x04);
        assert_eq!(m.read_bytes(0xff8, 4), 0x0403_0201);
    }

    #[test]
    fn multi_byte_spans_page_boundary() {
        let mut m = ShadowMemory::new();
        let addr = (SHADOW_PAGE_SIZE - 2) as u64;
        m.write_bytes(addr, 4, 0xdead_beef);
        assert_eq!(m.read_bytes(addr, 4), 0xdead_beef);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn fill_spans_pages() {
        let mut m = ShadowMemory::new();
        let base = (SHADOW_PAGE_SIZE - 8) as u64;
        m.fill(base, 16, 0x5a);
        for i in 0..16 {
            assert_eq!(m.read_u8(base + i), 0x5a, "byte {i}");
        }
        assert_eq!(m.read_u8(base + 16), 0);
        assert_eq!(m.read_u8(base - 1), 0);
    }

    #[test]
    fn fill_zero_length_is_noop() {
        let mut m = ShadowMemory::new();
        m.fill(0x100, 0, 0xff);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "metadata reads are 1..=8 bytes")]
    fn read_bytes_rejects_zero() {
        ShadowMemory::new().read_bytes(0, 0);
    }

    #[test]
    #[should_panic(expected = "metadata writes are 1..=8 bytes")]
    fn write_bytes_rejects_nine() {
        ShadowMemory::new().write_bytes(0, 9, 0);
    }
}
