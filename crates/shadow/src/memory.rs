//! Sparse paged metadata memory.
//!
//! Every Metadata Read stage of the filtering pipeline lands here (up
//! to three operand reads per event), so the page lookup is the hottest
//! data-structure operation in the whole reproduction. The page table
//! is a specialized open-addressing hash map — Fibonacci hashing with
//! linear probing, no SipHash, no per-lookup allocation — fronted by a
//! one-entry last-page cache that turns the dominant same-page access
//! pattern into a single compare.

use std::cell::Cell;

/// Log2 of a shadow page, kept equal to the application page size so the
/// M-TLB maps one application page to one metadata frame.
pub const SHADOW_PAGE_SHIFT: u32 = 12;
/// Shadow page size in bytes.
pub const SHADOW_PAGE_SIZE: usize = 1 << SHADOW_PAGE_SHIFT;

/// Sentinel for "no cached page" (no valid page number is all-ones:
/// metadata addresses are well below 2^64).
const NO_PAGE: u64 = u64::MAX;

/// One materialized page: its page number and backing storage.
type Slot = Option<(u64, Box<[u8; SHADOW_PAGE_SIZE]>)>;

/// A sparse, byte-granularity metadata memory.
///
/// Pages are materialized on first write; reads of untouched memory
/// return zero, which every monitor maps to its "unallocated"/"clean"
/// encoding so that fresh address space is consistently encoded.
///
/// Addresses here are *metadata-space* addresses (`u64`), produced by
/// [`MetadataMap`](crate::MetadataMap).
#[derive(Clone, Debug)]
pub struct ShadowMemory {
    /// Power-of-two open-addressing table of materialized pages.
    slots: Vec<Slot>,
    /// `slots.len() - 1` (slots is always a power of two when non-empty).
    mask: usize,
    /// Materialized page count.
    len: usize,
    /// Last page number looked up (read or write), `NO_PAGE` if none.
    last_page: Cell<u64>,
    /// Slot index of `last_page`.
    last_slot: Cell<usize>,
}

impl Default for ShadowMemory {
    fn default() -> Self {
        ShadowMemory::new()
    }
}

impl ShadowMemory {
    /// Creates an empty shadow memory.
    pub fn new() -> Self {
        ShadowMemory {
            slots: Vec::new(),
            mask: 0,
            len: 0,
            last_page: Cell::new(NO_PAGE),
            last_slot: Cell::new(0),
        }
    }

    /// Fibonacci multiplicative hash: spreads consecutive page numbers
    /// across the table while staying a couple of instructions.
    #[inline]
    fn hash(page: u64) -> u64 {
        page.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Finds the slot index holding `page`, starting from its hash
    /// position, or `None` if the page is not materialized.
    #[inline]
    fn find(&self, page: u64) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        if self.last_page.get() == page {
            return Some(self.last_slot.get());
        }
        let mut i = (Self::hash(page) >> 32) as usize & self.mask;
        loop {
            match &self.slots[i] {
                Some((p, _)) if *p == page => {
                    self.last_page.set(page);
                    self.last_slot.set(i);
                    return Some(i);
                }
                Some(_) => i = (i + 1) & self.mask,
                None => return None,
            }
        }
    }

    /// Grows (or initializes) the table to at least double capacity and
    /// re-inserts every page.
    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let mut slots: Vec<Slot> = Vec::new();
        slots.resize_with(new_cap, || None);
        let mask = new_cap - 1;
        for (page, data) in self.slots.drain(..).flatten() {
            let mut i = (Self::hash(page) >> 32) as usize & mask;
            while slots[i].is_some() {
                i = (i + 1) & mask;
            }
            slots[i] = Some((page, data));
        }
        self.slots = slots;
        self.mask = mask;
        self.last_page.set(NO_PAGE);
    }

    /// The page's storage, materializing it if needed.
    fn page_mut(&mut self, page: u64) -> &mut [u8; SHADOW_PAGE_SIZE] {
        if let Some(i) = self.find(page) {
            // Re-borrow through the index to end the `find` borrow.
            return &mut self.slots[i].as_mut().expect("found slot is occupied").1;
        }
        // Keep the table at most ~7/8 full.
        if self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = (Self::hash(page) >> 32) as usize & self.mask;
        while self.slots[i].is_some() {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = Some((page, Box::new([0u8; SHADOW_PAGE_SIZE])));
        self.len += 1;
        self.last_page.set(page);
        self.last_slot.set(i);
        &mut self.slots[i].as_mut().expect("just inserted").1
    }

    /// The page's storage, or `None` if untouched.
    #[inline]
    fn page(&self, page: u64) -> Option<&[u8; SHADOW_PAGE_SIZE]> {
        self.find(page).map(|i| {
            let (_, data) = self.slots[i].as_ref().expect("found slot is occupied");
            &**data
        })
    }

    /// Reads one metadata byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        let page = addr >> SHADOW_PAGE_SHIFT;
        let off = (addr as usize) & (SHADOW_PAGE_SIZE - 1);
        self.page(page).map_or(0, |p| p[off])
    }

    /// Writes one metadata byte, materializing the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = addr >> SHADOW_PAGE_SHIFT;
        let off = (addr as usize) & (SHADOW_PAGE_SIZE - 1);
        self.page_mut(page)[off] = value;
    }

    /// Reads up to 8 metadata bytes starting at `addr`, little-endian
    /// packed into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0 || n > 8`.
    pub fn read_bytes(&self, addr: u64, n: usize) -> u64 {
        assert!((1..=8).contains(&n), "metadata reads are 1..=8 bytes");
        let page = addr >> SHADOW_PAGE_SHIFT;
        let off = (addr as usize) & (SHADOW_PAGE_SIZE - 1);
        if off + n <= SHADOW_PAGE_SIZE {
            // Single-page fast path: one lookup for the whole access.
            let Some(p) = self.page(page) else { return 0 };
            let mut v = 0u64;
            for i in 0..n {
                v |= (p[off + i] as u64) << (8 * i);
            }
            v
        } else {
            let mut v = 0u64;
            for i in 0..n {
                v |= (self.read_u8(addr + i as u64) as u64) << (8 * i);
            }
            v
        }
    }

    /// Writes the low `n` bytes of `value` starting at `addr`,
    /// little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0 || n > 8`.
    pub fn write_bytes(&mut self, addr: u64, n: usize, value: u64) {
        assert!((1..=8).contains(&n), "metadata writes are 1..=8 bytes");
        let page = addr >> SHADOW_PAGE_SHIFT;
        let off = (addr as usize) & (SHADOW_PAGE_SIZE - 1);
        if off + n <= SHADOW_PAGE_SIZE {
            let p = self.page_mut(page);
            for i in 0..n {
                p[off + i] = (value >> (8 * i)) as u8;
            }
        } else {
            for i in 0..n {
                self.write_u8(addr + i as u64, (value >> (8 * i)) as u8);
            }
        }
    }

    /// Sets `len` consecutive metadata bytes to `value` (bulk
    /// initialization, as performed by the stack-update unit and the
    /// malloc/free handlers).
    pub fn fill(&mut self, addr: u64, len: u64, value: u8) {
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let page = cur >> SHADOW_PAGE_SHIFT;
            let off = (cur as usize) & (SHADOW_PAGE_SIZE - 1);
            let in_page = (SHADOW_PAGE_SIZE - off).min((end - cur) as usize);
            let p = self.page_mut(page);
            p[off..off + in_page].fill(value);
            cur += in_page as u64;
        }
    }

    /// Number of materialized pages (diagnostics / footprint accounting).
    pub fn resident_pages(&self) -> usize {
        self.len
    }

    /// Materialized pages with at least one non-zero byte, sorted by
    /// page number — the canonical content of the memory, independent
    /// of hash-table layout and of pages that were touched but hold
    /// only zeros (which read identically to untouched pages).
    fn canonical_pages(&self) -> Vec<(u64, &[u8; SHADOW_PAGE_SIZE])> {
        let mut pages: Vec<(u64, &[u8; SHADOW_PAGE_SIZE])> = self
            .slots
            .iter()
            .flatten()
            .filter(|(_, data)| data.iter().any(|&b| b != 0))
            .map(|(page, data)| (*page, &**data))
            .collect();
        pages.sort_unstable_by_key(|&(page, _)| page);
        pages
    }
}

/// Semantic equality: two memories are equal when every metadata byte
/// reads the same, regardless of table layout or zero-filled pages.
impl PartialEq for ShadowMemory {
    fn eq(&self, other: &Self) -> bool {
        self.canonical_pages() == other.canonical_pages()
    }
}

impl Eq for ShadowMemory {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = ShadowMemory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.read_bytes(0x4000, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = ShadowMemory::new();
        m.write_u8(0x1234, 0xab);
        assert_eq!(m.read_u8(0x1234), 0xab);
        assert_eq!(m.read_u8(0x1235), 0);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn multi_byte_round_trip_little_endian() {
        let mut m = ShadowMemory::new();
        m.write_bytes(0xff8, 4, 0x0403_0201);
        assert_eq!(m.read_u8(0xff8), 0x01);
        assert_eq!(m.read_u8(0xffb), 0x04);
        assert_eq!(m.read_bytes(0xff8, 4), 0x0403_0201);
    }

    #[test]
    fn multi_byte_spans_page_boundary() {
        let mut m = ShadowMemory::new();
        let addr = (SHADOW_PAGE_SIZE - 2) as u64;
        m.write_bytes(addr, 4, 0xdead_beef);
        assert_eq!(m.read_bytes(addr, 4), 0xdead_beef);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn fill_spans_pages() {
        let mut m = ShadowMemory::new();
        let base = (SHADOW_PAGE_SIZE - 8) as u64;
        m.fill(base, 16, 0x5a);
        for i in 0..16 {
            assert_eq!(m.read_u8(base + i), 0x5a, "byte {i}");
        }
        assert_eq!(m.read_u8(base + 16), 0);
        assert_eq!(m.read_u8(base - 1), 0);
    }

    #[test]
    fn fill_zero_length_is_noop() {
        let mut m = ShadowMemory::new();
        m.fill(0x100, 0, 0xff);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "metadata reads are 1..=8 bytes")]
    fn read_bytes_rejects_zero() {
        ShadowMemory::new().read_bytes(0, 0);
    }

    #[test]
    #[should_panic(expected = "metadata writes are 1..=8 bytes")]
    fn write_bytes_rejects_nine() {
        ShadowMemory::new().write_bytes(0, 9, 0);
    }

    #[test]
    fn survives_growth_across_many_pages() {
        let mut m = ShadowMemory::new();
        // Enough distinct pages to force several table growths, with
        // colliding-ish strides.
        for i in 0..500u64 {
            let addr = i * (SHADOW_PAGE_SIZE as u64) * 3 + 7;
            m.write_u8(addr, (i % 251) as u8 + 1);
        }
        assert_eq!(m.resident_pages(), 500);
        for i in 0..500u64 {
            let addr = i * (SHADOW_PAGE_SIZE as u64) * 3 + 7;
            assert_eq!(m.read_u8(addr), (i % 251) as u8 + 1, "page {i}");
            assert_eq!(m.read_u8(addr + 1), 0);
        }
    }

    #[test]
    fn equality_is_content_based() {
        let mut a = ShadowMemory::new();
        let mut b = ShadowMemory::new();
        assert_eq!(a, b);
        // Insertion order (and therefore table layout) differs.
        a.write_u8(0x10_000, 1);
        a.write_u8(0x90_000, 2);
        b.write_u8(0x90_000, 2);
        b.write_u8(0x10_000, 1);
        assert_eq!(a, b);
        // A page touched but holding only zeros reads like no page.
        a.write_u8(0x5000_0000, 7);
        a.write_u8(0x5000_0000, 0);
        assert_eq!(a, b);
        b.write_u8(0x90_000, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = ShadowMemory::new();
        a.write_u8(0x42, 7);
        let b = a.clone();
        a.write_u8(0x42, 9);
        assert_eq!(b.read_u8(0x42), 7);
        assert_eq!(a.read_u8(0x42), 9);
    }
}
