//! Sparse paged metadata memory.
//!
//! Every Metadata Read stage of the filtering pipeline lands here (up
//! to three operand reads per event), so the page lookup is the hottest
//! data-structure operation in the whole reproduction. The page table
//! is a specialized open-addressing hash map — Fibonacci hashing with
//! linear probing, no SipHash, no per-lookup allocation — fronted by a
//! one-entry last-page cache that turns the dominant same-page access
//! pattern into a single compare.
//!
//! # Bounded-memory operation
//!
//! By default the memory grows without limit, one 4 KiB frame per
//! touched page. [`ShadowMemory::set_budget`] installs a *page budget*:
//! whenever more than `budget` pages hold full frames, the
//! least-recently-used full page is demoted — to a one-byte
//! [uniform representation](ShadowCounters::compactions) when all its
//! bytes are equal (the common case for cold clean pages), or to an
//! [RLE-compressed frame](ShadowCounters::evictions) otherwise. Both
//! demotions are lossless: reads are served from the compact form and
//! a write *refaults* the page back to a full frame, so bounded and
//! unbounded runs are bit-for-bit equal in every monitor-visible way.
//!
//! An optional byte cap bounds what even compressed dirty state may
//! occupy; exceeding it latches a sticky, typed [`BudgetExceeded`]
//! that the session layer surfaces.

use std::cell::Cell;
use std::sync::Arc;

/// Log2 of a shadow page, kept equal to the application page size so the
/// M-TLB maps one application page to one metadata frame.
pub const SHADOW_PAGE_SHIFT: u32 = 12;
/// Shadow page size in bytes.
pub const SHADOW_PAGE_SIZE: usize = 1 << SHADOW_PAGE_SHIFT;

/// Sentinel for "no cached page" (no valid page number is all-ones:
/// metadata addresses are well below 2^64).
const NO_PAGE: u64 = u64::MAX;

/// How one materialized page is stored.
#[derive(Clone, Debug)]
enum PageRepr {
    /// A full 4 KiB frame (the only writable representation). The frame
    /// sits behind an [`Arc`] so a checkpoint `clone()` of the whole
    /// memory shares every frame copy-on-write: cloning is O(pages)
    /// pointer bumps, and the first write to a shared frame
    /// ([`Arc::make_mut`] in `page_mut`) pays the 4 KiB copy. Semantics
    /// are unchanged — clones still behave as deep copies.
    Full(Arc<[u8; SHADOW_PAGE_SIZE]>),
    /// Every byte of the page holds this value.
    Uniform(u8),
    /// Run-length-encoded frame: `(value, run_length)` byte pairs.
    Compressed(Box<[u8]>),
}

/// One materialized page: number, recency stamp, storage.
#[derive(Clone, Debug)]
struct PageSlot {
    page: u64,
    /// Recency stamp for LRU eviction (monotonic access tick).
    last_used: Cell<u64>,
    repr: PageRepr,
}

type Slot = Option<PageSlot>;

/// Eviction/compaction statistics for a bounded [`ShadowMemory`].
///
/// All counters stay zero when no budget is installed; a differential
/// test can assert `evictions + compactions > 0` to prove a bounded
/// run actually exercised eviction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShadowCounters {
    /// Full frames demoted to RLE-compressed form.
    pub evictions: u64,
    /// Full frames demoted to the one-byte uniform form.
    pub compactions: u64,
    /// Demoted pages expanded back to full frames by a write.
    pub refaults: u64,
    /// High-water mark of simultaneously-resident full frames.
    pub peak_full_pages: usize,
}

/// Typed error latched when dirty shadow state exceeds the configured
/// byte cap even after eviction compressed everything it could.
///
/// The memory keeps operating correctly past this point (no data is
/// dropped); the error is *sticky* and reported through
/// [`ShadowMemory::budget_exceeded`] so the session layer can fail the
/// run in a typed way instead of letting one tenant grow without bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The configured cap on shadow bytes.
    pub cap_bytes: usize,
    /// Bytes actually held (full frames plus compressed frames) when
    /// the cap was first exceeded.
    pub used_bytes: usize,
    /// Full frames resident at that moment.
    pub full_pages: usize,
    /// Compressed bytes resident at that moment.
    pub compressed_bytes: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shadow memory budget exceeded: {} bytes held ({} full pages + {} compressed bytes) > cap {}",
            self.used_bytes, self.full_pages, self.compressed_bytes, self.cap_bytes
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// A sparse, byte-granularity metadata memory.
///
/// Pages are materialized on first write; reads of untouched memory
/// return zero, which every monitor maps to its "unallocated"/"clean"
/// encoding so that fresh address space is consistently encoded.
///
/// Addresses here are *metadata-space* addresses (`u64`), produced by
/// [`MetadataMap`](crate::MetadataMap).
#[derive(Clone, Debug)]
pub struct ShadowMemory {
    /// Power-of-two open-addressing table of materialized pages.
    slots: Vec<Slot>,
    /// `slots.len() - 1` (slots is always a power of two when non-empty).
    mask: usize,
    /// Materialized page count (any representation).
    len: usize,
    /// Pages currently held as full frames.
    full_pages: usize,
    /// Bytes currently held in compressed frames.
    compressed_bytes: usize,
    /// Maximum full frames before LRU demotion (None = unbounded).
    page_budget: Option<usize>,
    /// Cap on total shadow bytes (full + compressed); exceeding it
    /// latches `exceeded`.
    mem_cap_bytes: Option<usize>,
    /// Sticky budget-exceeded record.
    exceeded: Option<BudgetExceeded>,
    counters: ShadowCounters,
    /// Monotonic access tick driving `PageSlot::last_used`.
    tick: Cell<u64>,
    /// Last page number looked up (read or write), `NO_PAGE` if none.
    last_page: Cell<u64>,
    /// Slot index of `last_page`.
    last_slot: Cell<usize>,
}

impl Default for ShadowMemory {
    fn default() -> Self {
        ShadowMemory::new()
    }
}

impl ShadowMemory {
    /// Creates an empty, unbounded shadow memory.
    pub fn new() -> Self {
        ShadowMemory {
            slots: Vec::new(),
            mask: 0,
            len: 0,
            full_pages: 0,
            compressed_bytes: 0,
            page_budget: None,
            mem_cap_bytes: None,
            exceeded: None,
            counters: ShadowCounters::default(),
            tick: Cell::new(0),
            last_page: Cell::new(NO_PAGE),
            last_slot: Cell::new(0),
        }
    }

    /// Installs (or clears) the memory budget: at most `page_budget`
    /// full frames stay resident (colder pages are demoted losslessly),
    /// and exceeding `mem_cap_bytes` of total shadow bytes latches a
    /// sticky [`BudgetExceeded`]. A page budget of 0 is treated as 1 —
    /// the page being written always needs a frame.
    pub fn set_budget(&mut self, page_budget: Option<usize>, mem_cap_bytes: Option<usize>) {
        self.page_budget = page_budget.map(|b| b.max(1));
        self.mem_cap_bytes = mem_cap_bytes;
        self.enforce_budget();
    }

    /// Eviction/compaction statistics (all zero when unbounded).
    pub fn counters(&self) -> ShadowCounters {
        self.counters
    }

    /// The sticky byte-cap violation, if one has been latched.
    pub fn budget_exceeded(&self) -> Option<&BudgetExceeded> {
        self.exceeded.as_ref()
    }

    /// Bytes currently held by page frames (full + compressed).
    pub fn shadow_bytes(&self) -> usize {
        self.full_pages * SHADOW_PAGE_SIZE + self.compressed_bytes
    }

    /// Fibonacci multiplicative hash: spreads consecutive page numbers
    /// across the table while staying a couple of instructions.
    #[inline]
    fn hash(page: u64) -> u64 {
        page.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Finds the slot index holding `page`, starting from its hash
    /// position, or `None` if the page is not materialized.
    #[inline]
    fn find(&self, page: u64) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        if self.last_page.get() == page {
            return Some(self.last_slot.get());
        }
        let mut i = (Self::hash(page) >> 32) as usize & self.mask;
        loop {
            match &self.slots[i] {
                Some(s) if s.page == page => {
                    self.last_page.set(page);
                    self.last_slot.set(i);
                    return Some(i);
                }
                Some(_) => i = (i + 1) & self.mask,
                None => return None,
            }
        }
    }

    /// Stamps slot `i` as most recently used.
    #[inline]
    fn touch(&self, i: usize) {
        let t = self.tick.get().wrapping_add(1);
        self.tick.set(t);
        if let Some(s) = &self.slots[i] {
            s.last_used.set(t);
        }
    }

    /// Grows (or initializes) the table to at least double capacity and
    /// re-inserts every page.
    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let mut slots: Vec<Slot> = Vec::new();
        slots.resize_with(new_cap, || None);
        let mask = new_cap - 1;
        for s in self.slots.drain(..).flatten() {
            let mut i = (Self::hash(s.page) >> 32) as usize & mask;
            while slots[i].is_some() {
                i = (i + 1) & mask;
            }
            slots[i] = Some(s);
        }
        self.slots = slots;
        self.mask = mask;
        self.last_page.set(NO_PAGE);
    }

    /// Inserts a new page slot, growing as needed; returns its index.
    fn insert(&mut self, page: u64, repr: PageRepr) -> usize {
        // Keep the table at most ~7/8 full.
        if self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = (Self::hash(page) >> 32) as usize & self.mask;
        while self.slots[i].is_some() {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = Some(PageSlot {
            page,
            last_used: Cell::new(0),
            repr,
        });
        self.len += 1;
        self.last_page.set(page);
        self.last_slot.set(i);
        i
    }

    /// Demotes cold full frames until the page budget is met, then
    /// checks the byte cap. Lossless: demoted pages keep reading the
    /// same bytes and refault on write.
    fn enforce_budget(&mut self) {
        if let Some(budget) = self.page_budget {
            while self.full_pages > budget {
                // LRU scan. O(table), but only on the bounded path and
                // only when a new full frame pushed us over budget.
                let mut coldest: Option<(usize, u64)> = None;
                for (i, s) in self.slots.iter().enumerate() {
                    if let Some(s) = s {
                        if matches!(s.repr, PageRepr::Full(_))
                            && coldest.is_none_or(|(_, t)| s.last_used.get() < t)
                        {
                            coldest = Some((i, s.last_used.get()));
                        }
                    }
                }
                let Some((i, _)) = coldest else { break };
                let slot = self.slots[i].as_mut().expect("coldest slot is occupied");
                let PageRepr::Full(frame) = &slot.repr else {
                    unreachable!("coldest scan only selects full frames")
                };
                let first = frame[0];
                if frame.iter().all(|&b| b == first) {
                    slot.repr = PageRepr::Uniform(first);
                    self.counters.compactions += 1;
                } else {
                    let rle = rle_compress(frame);
                    self.compressed_bytes += rle.len();
                    slot.repr = PageRepr::Compressed(rle);
                    self.counters.evictions += 1;
                }
                self.full_pages -= 1;
            }
        }
        // Record the peak *after* demotion: the high-water mark is
        // post-enforcement residency, so a bounded run's peak never
        // exceeds its budget (the transient budget+1 during the demote
        // itself is an implementation detail, not residency).
        self.counters.peak_full_pages = self.counters.peak_full_pages.max(self.full_pages);
        if let Some(cap) = self.mem_cap_bytes {
            let used = self.shadow_bytes();
            if used > cap && self.exceeded.is_none() {
                self.exceeded = Some(BudgetExceeded {
                    cap_bytes: cap,
                    used_bytes: used,
                    full_pages: self.full_pages,
                    compressed_bytes: self.compressed_bytes,
                });
            }
        }
    }

    /// Promotes slot `i` to a full frame (refault / first write).
    fn expand_slot(&mut self, i: usize) {
        let slot = self.slots[i].as_mut().expect("slot is occupied");
        match &slot.repr {
            PageRepr::Full(_) => return,
            PageRepr::Uniform(v) => {
                slot.repr = PageRepr::Full(Arc::new([*v; SHADOW_PAGE_SIZE]));
            }
            PageRepr::Compressed(c) => {
                let frame = rle_expand(c);
                self.compressed_bytes -= c.len();
                slot.repr = PageRepr::Full(Arc::from(frame));
            }
        }
        self.counters.refaults += 1;
        self.full_pages += 1;
    }

    /// The page's storage as a full frame, materializing or refaulting
    /// it as needed.
    fn page_mut(&mut self, page: u64) -> &mut [u8; SHADOW_PAGE_SIZE] {
        let i = match self.find(page) {
            Some(i) => {
                if !matches!(
                    self.slots[i].as_ref().expect("found slot is occupied").repr,
                    PageRepr::Full(_)
                ) {
                    self.expand_slot(i);
                    self.touch(i);
                    self.enforce_budget();
                }
                i
            }
            None => {
                let i = self.insert(page, PageRepr::Full(Arc::new([0u8; SHADOW_PAGE_SIZE])));
                self.full_pages += 1;
                self.touch(i);
                self.enforce_budget();
                i
            }
        };
        self.touch(i);
        match &mut self.slots[i].as_mut().expect("found slot is occupied").repr {
            // `make_mut` un-shares a frame that a checkpoint still holds
            // (copy-on-write); unique frames are handed out in place.
            PageRepr::Full(frame) => Arc::make_mut(frame),
            _ => unreachable!("page was just expanded to a full frame"),
        }
    }

    /// Reads one metadata byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        let page = addr >> SHADOW_PAGE_SHIFT;
        let off = (addr as usize) & (SHADOW_PAGE_SIZE - 1);
        let Some(i) = self.find(page) else { return 0 };
        self.touch(i);
        match &self.slots[i].as_ref().expect("found slot is occupied").repr {
            PageRepr::Full(p) => p[off],
            PageRepr::Uniform(v) => *v,
            PageRepr::Compressed(c) => rle_read(c, off),
        }
    }

    /// Reads one metadata byte per address into `out` — the lane-gather
    /// primitive of the vectorized filtering kernel. Values are exactly
    /// what per-address [`ShadowMemory::read_u8`] calls would return;
    /// the page table is probed (and page recency stamped) once per
    /// *run* of addresses sharing a page rather than once per byte.
    /// Gathers are bursty within a page, so this removes most of the
    /// per-lane lookup cost; recency granularity is not part of the
    /// semantic state (equality is content-based) and demotions stay
    /// lossless regardless of stamp order.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `addrs`.
    pub fn gather_u8(&self, addrs: &[u64], out: &mut [u8]) {
        assert!(out.len() >= addrs.len(), "gather output too short");
        let mut i = 0;
        while i < addrs.len() {
            let page = addrs[i] >> SHADOW_PAGE_SHIFT;
            let mut j = i + 1;
            while j < addrs.len() && addrs[j] >> SHADOW_PAGE_SHIFT == page {
                j += 1;
            }
            // The page representation is resolved once for the whole
            // run, so the per-byte loops are straight array reads.
            match self.find(page) {
                None => out[i..j].fill(0),
                Some(s) => {
                    self.touch(s);
                    match &self.slots[s].as_ref().expect("found slot is occupied").repr {
                        PageRepr::Full(p) => {
                            for k in i..j {
                                out[k] = p[(addrs[k] as usize) & (SHADOW_PAGE_SIZE - 1)];
                            }
                        }
                        PageRepr::Uniform(v) => out[i..j].fill(*v),
                        PageRepr::Compressed(c) => {
                            for k in i..j {
                                out[k] = rle_read(c, (addrs[k] as usize) & (SHADOW_PAGE_SIZE - 1));
                            }
                        }
                    }
                }
            }
            i = j;
        }
    }

    /// Reads up to 8 metadata bytes starting at `addr`, little-endian
    /// packed into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0 || n > 8`.
    pub fn read_bytes(&self, addr: u64, n: usize) -> u64 {
        assert!((1..=8).contains(&n), "metadata reads are 1..=8 bytes");
        let page = addr >> SHADOW_PAGE_SHIFT;
        let off = (addr as usize) & (SHADOW_PAGE_SIZE - 1);
        if off + n <= SHADOW_PAGE_SIZE {
            // Single-page fast path: one lookup for the whole access.
            let Some(i) = self.find(page) else { return 0 };
            self.touch(i);
            match &self.slots[i].as_ref().expect("found slot is occupied").repr {
                PageRepr::Full(p) => {
                    let mut v = 0u64;
                    for i in 0..n {
                        v |= (p[off + i] as u64) << (8 * i);
                    }
                    v
                }
                PageRepr::Uniform(b) => {
                    let mut v = 0u64;
                    for i in 0..n {
                        v |= (*b as u64) << (8 * i);
                    }
                    v
                }
                PageRepr::Compressed(c) => {
                    let mut v = 0u64;
                    for (i, b) in rle_read_n(c, off, n).into_iter().enumerate() {
                        v |= (b as u64) << (8 * i);
                    }
                    v
                }
            }
        } else {
            let mut v = 0u64;
            for i in 0..n {
                v |= (self.read_u8(addr + i as u64) as u64) << (8 * i);
            }
            v
        }
    }

    /// Writes one metadata byte, materializing the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = addr >> SHADOW_PAGE_SHIFT;
        let off = (addr as usize) & (SHADOW_PAGE_SIZE - 1);
        self.page_mut(page)[off] = value;
    }

    /// Writes the low `n` bytes of `value` starting at `addr`,
    /// little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0 || n > 8`.
    pub fn write_bytes(&mut self, addr: u64, n: usize, value: u64) {
        assert!((1..=8).contains(&n), "metadata writes are 1..=8 bytes");
        let page = addr >> SHADOW_PAGE_SHIFT;
        let off = (addr as usize) & (SHADOW_PAGE_SIZE - 1);
        if off + n <= SHADOW_PAGE_SIZE {
            let p = self.page_mut(page);
            for i in 0..n {
                p[off + i] = (value >> (8 * i)) as u8;
            }
        } else {
            for i in 0..n {
                self.write_u8(addr + i as u64, (value >> (8 * i)) as u8);
            }
        }
    }

    /// Sets `len` consecutive metadata bytes to `value` (bulk
    /// initialization, as performed by the stack-update unit and the
    /// malloc/free handlers). Whole-page spans are stored in the
    /// one-byte uniform representation directly — bulk updates never
    /// cost full frames.
    pub fn fill(&mut self, addr: u64, len: u64, value: u8) {
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let page = cur >> SHADOW_PAGE_SHIFT;
            let off = (cur as usize) & (SHADOW_PAGE_SIZE - 1);
            let in_page = (SHADOW_PAGE_SIZE - off).min((end - cur) as usize);
            if in_page == SHADOW_PAGE_SIZE {
                // Whole page: the compact form is exact.
                match self.find(page) {
                    Some(i) => {
                        let slot = self.slots[i].as_mut().expect("found slot is occupied");
                        match &slot.repr {
                            PageRepr::Full(_) => self.full_pages -= 1,
                            PageRepr::Compressed(c) => self.compressed_bytes -= c.len(),
                            PageRepr::Uniform(_) => {}
                        }
                        slot.repr = PageRepr::Uniform(value);
                        self.touch(i);
                    }
                    None => {
                        let i = self.insert(page, PageRepr::Uniform(value));
                        self.touch(i);
                    }
                }
            } else {
                let p = self.page_mut(page);
                p[off..off + in_page].fill(value);
            }
            cur += in_page as u64;
        }
    }

    /// Number of materialized pages (diagnostics / footprint accounting).
    pub fn resident_pages(&self) -> usize {
        self.len
    }

    /// Pages currently resident as full frames (the quantity a page
    /// budget bounds).
    pub fn resident_full_pages(&self) -> usize {
        self.full_pages
    }

    /// Materialized pages with at least one non-zero byte, expanded and
    /// sorted by page number — the canonical content of the memory,
    /// independent of table layout, page representation, and pages that
    /// hold only zeros (which read identically to untouched pages).
    fn canonical_pages(&self) -> Vec<(u64, Box<[u8; SHADOW_PAGE_SIZE]>)> {
        let mut pages: Vec<(u64, Box<[u8; SHADOW_PAGE_SIZE]>)> = self
            .slots
            .iter()
            .flatten()
            .filter_map(|s| {
                let frame: Box<[u8; SHADOW_PAGE_SIZE]> = match &s.repr {
                    PageRepr::Full(p) => Box::new(**p),
                    PageRepr::Uniform(v) => Box::new([*v; SHADOW_PAGE_SIZE]),
                    PageRepr::Compressed(c) => rle_expand(c),
                };
                if frame.iter().any(|&b| b != 0) {
                    Some((s.page, frame))
                } else {
                    None
                }
            })
            .collect();
        pages.sort_unstable_by_key(|&(page, _)| page);
        pages
    }

    /// A cheap content digest: an FNV-style fold over the canonical
    /// page contents (sorted by page number, zero-only pages skipped),
    /// mixed a 64-bit word at a time — epoch validation digests whole
    /// checkpoints, so this walk must stay far cheaper than replaying
    /// the epoch it validates. Two memories digest equal exactly when
    /// they compare [`PartialEq`]-equal, with no allocation per
    /// full/uniform page.
    ///
    /// This digests *memory* content only; combine with register state
    /// via [`MetadataState::digest`](crate::MetadataState::digest).
    pub fn content_digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix_word(h: u64, w: u64) -> u64 {
            (h ^ w).wrapping_mul(PRIME)
        }
        // One word-at-a-time pass over a frame; page size is a power of
        // two ≥ 8, so chunks_exact covers every byte.
        fn mix_frame(mut h: u64, frame: &[u8; SHADOW_PAGE_SIZE]) -> u64 {
            for chunk in frame.chunks_exact(8) {
                h = mix_word(h, u64::from_le_bytes(chunk.try_into().unwrap()));
            }
            h
        }
        let mut live: Vec<&PageSlot> = self.slots.iter().flatten().collect();
        live.sort_unstable_by_key(|s| s.page);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for s in live {
            match &s.repr {
                PageRepr::Full(p) => {
                    if p.iter().any(|&b| b != 0) {
                        h = mix_word(h, s.page);
                        h = mix_frame(h, p);
                    }
                }
                PageRepr::Uniform(v) => {
                    if *v != 0 {
                        // Equal by construction to mix_frame over a
                        // frame of repeated `v` — representation must
                        // not move the digest.
                        h = mix_word(h, s.page);
                        let w = u64::from_le_bytes([*v; 8]);
                        for _ in 0..SHADOW_PAGE_SIZE / 8 {
                            h = mix_word(h, w);
                        }
                    }
                }
                PageRepr::Compressed(c) => {
                    let frame = rle_expand(c);
                    if frame.iter().any(|&b| b != 0) {
                        h = mix_word(h, s.page);
                        h = mix_frame(h, &frame);
                    }
                }
            }
        }
        h
    }
}

/// Semantic equality: two memories are equal when every metadata byte
/// reads the same, regardless of table layout, page representation
/// (full, uniform or compressed), budget configuration or zero-filled
/// pages — a bounded run compares equal to its unbounded twin.
impl PartialEq for ShadowMemory {
    fn eq(&self, other: &Self) -> bool {
        self.canonical_pages() == other.canonical_pages()
    }
}

impl Eq for ShadowMemory {}

// ---------------------------------------------------------------------
// Page-frame RLE codec
// ---------------------------------------------------------------------

/// Encodes a frame as `(value, run_length)` byte pairs (runs capped at
/// 255). Worst case 2x the frame size — honest about incompressible
/// pages, which is what makes the byte cap meaningful.
fn rle_compress(frame: &[u8; SHADOW_PAGE_SIZE]) -> Box<[u8]> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < SHADOW_PAGE_SIZE {
        let v = frame[i];
        let mut run = 1usize;
        while run < 255 && i + run < SHADOW_PAGE_SIZE && frame[i + run] == v {
            run += 1;
        }
        out.push(v);
        out.push(run as u8);
        i += run;
    }
    out.into_boxed_slice()
}

fn rle_expand(rle: &[u8]) -> Box<[u8; SHADOW_PAGE_SIZE]> {
    let mut frame = Box::new([0u8; SHADOW_PAGE_SIZE]);
    let mut at = 0;
    for pair in rle.chunks_exact(2) {
        let (v, run) = (pair[0], pair[1] as usize);
        frame[at..at + run].fill(v);
        at += run;
    }
    debug_assert_eq!(at, SHADOW_PAGE_SIZE, "RLE frame decodes to a full page");
    frame
}

/// Reads one byte of a compressed frame without expanding it.
fn rle_read(rle: &[u8], off: usize) -> u8 {
    let mut at = 0;
    for pair in rle.chunks_exact(2) {
        at += pair[1] as usize;
        if off < at {
            return pair[0];
        }
    }
    debug_assert!(false, "RLE frame covers every page offset");
    0
}

/// Reads `n <= 8` consecutive bytes of a compressed frame.
fn rle_read_n(rle: &[u8], off: usize, n: usize) -> [u8; 8] {
    let mut out = [0u8; 8];
    let mut at = 0;
    for pair in rle.chunks_exact(2) {
        let start = at;
        at += pair[1] as usize;
        if at <= off {
            continue;
        }
        for (i, b) in out.iter_mut().enumerate().take(n) {
            let o = off + i;
            if o >= start && o < at {
                *b = pair[0];
            }
        }
        if at >= off + n {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = ShadowMemory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.read_bytes(0x4000, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = ShadowMemory::new();
        m.write_u8(0x1234, 0xab);
        assert_eq!(m.read_u8(0x1234), 0xab);
        assert_eq!(m.read_u8(0x1235), 0);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn multi_byte_round_trip_little_endian() {
        let mut m = ShadowMemory::new();
        m.write_bytes(0xff8, 4, 0x0403_0201);
        assert_eq!(m.read_u8(0xff8), 0x01);
        assert_eq!(m.read_u8(0xffb), 0x04);
        assert_eq!(m.read_bytes(0xff8, 4), 0x0403_0201);
    }

    #[test]
    fn multi_byte_spans_page_boundary() {
        let mut m = ShadowMemory::new();
        let addr = (SHADOW_PAGE_SIZE - 2) as u64;
        m.write_bytes(addr, 4, 0xdead_beef);
        assert_eq!(m.read_bytes(addr, 4), 0xdead_beef);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn fill_spans_pages() {
        let mut m = ShadowMemory::new();
        let base = (SHADOW_PAGE_SIZE - 8) as u64;
        m.fill(base, 16, 0x5a);
        for i in 0..16 {
            assert_eq!(m.read_u8(base + i), 0x5a, "byte {i}");
        }
        assert_eq!(m.read_u8(base + 16), 0);
        assert_eq!(m.read_u8(base - 1), 0);
    }

    #[test]
    fn fill_zero_length_is_noop() {
        let mut m = ShadowMemory::new();
        m.fill(0x100, 0, 0xff);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn whole_page_fill_stays_compact_and_reads_back() {
        let mut m = ShadowMemory::new();
        m.fill(SHADOW_PAGE_SIZE as u64, (3 * SHADOW_PAGE_SIZE) as u64, 0x7e);
        assert_eq!(m.resident_pages(), 3);
        assert_eq!(m.resident_full_pages(), 0, "uniform fills cost no frames");
        assert_eq!(m.read_u8(SHADOW_PAGE_SIZE as u64), 0x7e);
        assert_eq!(m.read_bytes(2 * SHADOW_PAGE_SIZE as u64 + 100, 8), u64::from_le_bytes([0x7e; 8]));
        // Writing into a uniform page refaults it to a full frame.
        m.write_u8(SHADOW_PAGE_SIZE as u64 + 5, 1);
        assert_eq!(m.resident_full_pages(), 1);
        assert_eq!(m.read_u8(SHADOW_PAGE_SIZE as u64 + 4), 0x7e);
        assert_eq!(m.read_u8(SHADOW_PAGE_SIZE as u64 + 5), 1);
    }

    #[test]
    #[should_panic(expected = "metadata reads are 1..=8 bytes")]
    fn read_bytes_rejects_zero() {
        ShadowMemory::new().read_bytes(0, 0);
    }

    #[test]
    #[should_panic(expected = "metadata writes are 1..=8 bytes")]
    fn write_bytes_rejects_nine() {
        ShadowMemory::new().write_bytes(0, 9, 0);
    }

    #[test]
    fn survives_growth_across_many_pages() {
        let mut m = ShadowMemory::new();
        // Enough distinct pages to force several table growths, with
        // colliding-ish strides.
        for i in 0..500u64 {
            let addr = i * (SHADOW_PAGE_SIZE as u64) * 3 + 7;
            m.write_u8(addr, (i % 251) as u8 + 1);
        }
        assert_eq!(m.resident_pages(), 500);
        for i in 0..500u64 {
            let addr = i * (SHADOW_PAGE_SIZE as u64) * 3 + 7;
            assert_eq!(m.read_u8(addr), (i % 251) as u8 + 1, "page {i}");
            assert_eq!(m.read_u8(addr + 1), 0);
        }
    }

    #[test]
    fn equality_is_content_based() {
        let mut a = ShadowMemory::new();
        let mut b = ShadowMemory::new();
        assert_eq!(a, b);
        // Insertion order (and therefore table layout) differs.
        a.write_u8(0x10_000, 1);
        a.write_u8(0x90_000, 2);
        b.write_u8(0x90_000, 2);
        b.write_u8(0x10_000, 1);
        assert_eq!(a, b);
        // A page touched but holding only zeros reads like no page.
        a.write_u8(0x5000_0000, 7);
        a.write_u8(0x5000_0000, 0);
        assert_eq!(a, b);
        b.write_u8(0x90_000, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn digest_tracks_content_not_representation() {
        let mut unbounded = ShadowMemory::new();
        patterned(&mut unbounded, 20);
        let mut bounded = ShadowMemory::new();
        bounded.set_budget(Some(4), None);
        patterned(&mut bounded, 20);
        assert_eq!(
            bounded.content_digest(),
            unbounded.content_digest(),
            "representation (full/uniform/compressed) must not affect the digest"
        );
        // Zero-only pages digest like untouched memory.
        let before = unbounded.content_digest();
        unbounded.write_u8(0x7000_0000, 5);
        unbounded.write_u8(0x7000_0000, 0);
        assert_eq!(unbounded.content_digest(), before);
        // Content changes move the digest.
        unbounded.write_u8(0x40, 1);
        assert_ne!(unbounded.content_digest(), before);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = ShadowMemory::new();
        a.write_u8(0x42, 7);
        let b = a.clone();
        a.write_u8(0x42, 9);
        assert_eq!(b.read_u8(0x42), 7);
        assert_eq!(a.read_u8(0x42), 9);
    }

    // -- bounded-memory behavior --------------------------------------

    /// Writes a recognizable pattern across `pages` pages.
    fn patterned(m: &mut ShadowMemory, pages: u64) {
        for p in 0..pages {
            for off in (0..SHADOW_PAGE_SIZE as u64).step_by(97) {
                m.write_u8(p * SHADOW_PAGE_SIZE as u64 + off, ((p as u8) ^ (off as u8)) | 1);
            }
        }
    }

    #[test]
    fn bounded_run_is_bit_exact_vs_unbounded() {
        let mut unbounded = ShadowMemory::new();
        patterned(&mut unbounded, 20);
        let mut bounded = ShadowMemory::new();
        bounded.set_budget(Some(4), None);
        patterned(&mut bounded, 20);
        assert!(bounded.resident_full_pages() <= 4);
        assert!(
            bounded.counters().evictions + bounded.counters().compactions > 0,
            "eviction must actually fire: {:?}",
            bounded.counters()
        );
        assert_eq!(bounded, unbounded, "eviction is lossless");
        // Every byte reads identically.
        for p in 0..20u64 {
            for off in (0..SHADOW_PAGE_SIZE as u64).step_by(61) {
                let a = p * SHADOW_PAGE_SIZE as u64 + off;
                assert_eq!(bounded.read_u8(a), unbounded.read_u8(a), "addr {a:#x}");
            }
        }
    }

    #[test]
    fn lru_evicts_the_cold_page_first() {
        let mut m = ShadowMemory::new();
        m.set_budget(Some(2), None);
        m.write_u8(0, 1); // page 0
        m.write_u8(SHADOW_PAGE_SIZE as u64, 2); // page 1
        // Keep page 0 hot.
        assert_eq!(m.read_u8(0), 1);
        // Page 2 materializes; page 1 (coldest) must be demoted.
        m.write_u8(2 * SHADOW_PAGE_SIZE as u64, 3);
        assert_eq!(m.resident_full_pages(), 2);
        let c = m.counters();
        assert_eq!(c.evictions + c.compactions, 1);
        // Demoted page still reads correctly, then refaults on write.
        assert_eq!(m.read_u8(SHADOW_PAGE_SIZE as u64), 2);
        m.write_u8(SHADOW_PAGE_SIZE as u64 + 1, 9);
        assert_eq!(m.counters().refaults, 1);
        assert_eq!(m.read_u8(SHADOW_PAGE_SIZE as u64), 2);
        assert_eq!(m.read_u8(SHADOW_PAGE_SIZE as u64 + 1), 9);
    }

    #[test]
    fn mostly_uniform_cold_pages_compact_to_a_byte() {
        let mut m = ShadowMemory::new();
        m.set_budget(Some(1), None);
        // Uniform page (all 0x11 via single-byte writes, not fill).
        for off in 0..SHADOW_PAGE_SIZE as u64 {
            m.write_u8(off, 0x11);
        }
        // Second page pushes the first out of the frame budget.
        m.write_u8(SHADOW_PAGE_SIZE as u64, 1);
        let c = m.counters();
        assert_eq!(c.compactions, 1, "uniform page compacts: {c:?}");
        assert_eq!(c.evictions, 0);
        assert_eq!(m.read_u8(10), 0x11);
    }

    #[test]
    fn byte_cap_latches_budget_exceeded_but_stays_correct() {
        let mut m = ShadowMemory::new();
        // Tiny cap: two incompressible frames cannot fit.
        m.set_budget(Some(1), Some(SHADOW_PAGE_SIZE + 100));
        for p in 0..4u64 {
            for off in 0..SHADOW_PAGE_SIZE as u64 {
                // Incompressible-ish: alternate values within each run.
                m.write_u8(
                    p * SHADOW_PAGE_SIZE as u64 + off,
                    ((off * 7 + p) % 251) as u8 + 1,
                );
            }
        }
        let e = *m.budget_exceeded().expect("cap must latch");
        assert!(e.used_bytes > e.cap_bytes);
        assert_eq!(e.cap_bytes, SHADOW_PAGE_SIZE + 100);
        // Sticky and still correct.
        assert!(m.budget_exceeded().is_some());
        for p in 0..4u64 {
            assert_eq!(
                m.read_u8(p * SHADOW_PAGE_SIZE as u64 + 3),
                ((3u64 * 7 + p) % 251) as u8 + 1
            );
        }
    }

    #[test]
    fn rle_round_trips_and_random_access_agrees() {
        let mut frame = Box::new([0u8; SHADOW_PAGE_SIZE]);
        for (i, b) in frame.iter_mut().enumerate() {
            *b = match i % 7 {
                0..=4 => 0xaa,
                5 => (i % 256) as u8,
                _ => 0,
            };
        }
        let rle = rle_compress(&frame);
        assert_eq!(rle_expand(&rle), frame);
        for off in [0usize, 1, 6, 7, 255, 256, 4000, SHADOW_PAGE_SIZE - 1] {
            assert_eq!(rle_read(&rle, off), frame[off], "off {off}");
        }
        for off in [0usize, 3, 250, 1000, SHADOW_PAGE_SIZE - 8] {
            let got = rle_read_n(&rle, off, 8);
            assert_eq!(&got[..8], &frame[off..off + 8], "off {off}");
        }
    }
}
