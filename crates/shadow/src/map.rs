//! Application→metadata address mapping.
//!
//! Application and monitor processes use different address spaces
//! (Section 4.1): a metadata access first maps the application address to
//! a metadata address. In hardware the per-page part of this mapping is
//! cached by the M-TLB; this module is the functional definition the
//! M-TLB caches.

use fade_isa::{VirtAddr, PAGE_SHIFT};

/// Linear application→metadata address mapping.
///
/// `1 << gran_shift` application bytes share one metadata unit of
/// `unit_bytes` bytes, and the metadata space starts at `base`:
///
/// ```text
/// md_addr(a) = base + (a >> gran_shift) * unit_bytes
/// ```
///
/// All five paper monitors keep one byte of critical metadata per
/// application word, i.e. [`MetadataMap::per_word`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetadataMap {
    base: u64,
    gran_shift: u8,
    unit_bytes: u8,
}

impl MetadataMap {
    /// Default base of the metadata space in the monitor's address space.
    pub const DEFAULT_BASE: u64 = 0x1_0000_0000;

    /// Creates a mapping.
    ///
    /// # Panics
    ///
    /// Panics if `unit_bytes` is 0 or greater than 8, or if `gran_shift`
    /// exceeds the page shift (a metadata unit may not cover more than an
    /// application page).
    pub fn new(base: u64, gran_shift: u8, unit_bytes: u8) -> Self {
        assert!(
            (1..=8).contains(&unit_bytes),
            "metadata unit must be 1..=8 bytes"
        );
        assert!(
            (gran_shift as u32) <= PAGE_SHIFT,
            "metadata granularity must not exceed a page"
        );
        MetadataMap {
            base,
            gran_shift,
            unit_bytes,
        }
    }

    /// One metadata byte per 4-byte application word — the layout used by
    /// the critical metadata of all five paper monitors.
    pub fn per_word() -> Self {
        MetadataMap::new(Self::DEFAULT_BASE, 2, 1)
    }

    /// One metadata byte per application byte (Valgrind-style layouts).
    pub fn per_byte() -> Self {
        MetadataMap::new(Self::DEFAULT_BASE, 0, 1)
    }

    /// Application bytes covered by one metadata unit.
    #[inline]
    pub const fn granularity(&self) -> u32 {
        1 << self.gran_shift
    }

    /// Size of one metadata unit in bytes.
    #[inline]
    pub const fn unit_bytes(&self) -> u8 {
        self.unit_bytes
    }

    /// Maps an application address to the metadata address of its unit.
    #[inline]
    pub fn md_addr(&self, app: VirtAddr) -> u64 {
        self.base + ((app.raw() as u64) >> self.gran_shift) * self.unit_bytes as u64
    }

    /// Maps an application range to the (start, length-in-bytes) of its
    /// covering metadata range. The range is expanded outward to unit
    /// boundaries.
    pub fn md_range(&self, app_base: VirtAddr, len: u32) -> (u64, u64) {
        if len == 0 {
            return (self.md_addr(app_base), 0);
        }
        let first_unit = (app_base.raw() as u64) >> self.gran_shift;
        let last_unit = (app_base.raw() as u64 + len as u64 - 1) >> self.gran_shift;
        let start = self.base + first_unit * self.unit_bytes as u64;
        let units = last_unit - first_unit + 1;
        (start, units * self.unit_bytes as u64)
    }

    /// Number of metadata units an access of `size` bytes at `app`
    /// touches (the event-table `MD bytes` field, per operand).
    pub fn units_for_access(&self, app: VirtAddr, size: u8) -> u8 {
        if size == 0 {
            return 0;
        }
        let first = (app.raw() as u64) >> self.gran_shift;
        let last = (app.raw() as u64 + size as u64 - 1) >> self.gran_shift;
        (last - first + 1) as u8
    }

    /// The metadata page (frame-granularity) an application page maps to;
    /// this is exactly the translation the M-TLB caches.
    #[inline]
    pub fn md_page_of_app_page(&self, app_page: u32) -> u64 {
        let app_base = (app_page as u64) << PAGE_SHIFT;
        (self.base + (app_base >> self.gran_shift) * self.unit_bytes as u64)
            >> crate::memory::SHADOW_PAGE_SHIFT
    }
}

impl Default for MetadataMap {
    fn default() -> Self {
        MetadataMap::per_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_word_maps_words_to_bytes() {
        let m = MetadataMap::per_word();
        assert_eq!(m.granularity(), 4);
        let a = m.md_addr(VirtAddr::new(0));
        assert_eq!(m.md_addr(VirtAddr::new(3)), a);
        assert_eq!(m.md_addr(VirtAddr::new(4)), a + 1);
        assert_eq!(m.md_addr(VirtAddr::new(400)), a + 100);
    }

    #[test]
    fn per_byte_is_identity_shaped() {
        let m = MetadataMap::per_byte();
        let a = m.md_addr(VirtAddr::new(0));
        assert_eq!(m.md_addr(VirtAddr::new(1)), a + 1);
    }

    #[test]
    fn md_range_rounds_to_units() {
        let m = MetadataMap::per_word();
        // 6 bytes starting at offset 2 touch words 0 and 1 => 2 md bytes.
        let (start, len) = m.md_range(VirtAddr::new(2), 6);
        assert_eq!(start, m.md_addr(VirtAddr::new(0)));
        assert_eq!(len, 2);
        // Zero length range is empty.
        assert_eq!(m.md_range(VirtAddr::new(2), 0).1, 0);
    }

    #[test]
    fn units_for_access_counts_spanned_words() {
        let m = MetadataMap::per_word();
        assert_eq!(m.units_for_access(VirtAddr::new(0x1000), 4), 1);
        assert_eq!(m.units_for_access(VirtAddr::new(0x1002), 4), 2);
        assert_eq!(m.units_for_access(VirtAddr::new(0x1000), 8), 2);
        assert_eq!(m.units_for_access(VirtAddr::new(0x1000), 1), 1);
        assert_eq!(m.units_for_access(VirtAddr::new(0x1000), 0), 0);
    }

    #[test]
    fn md_page_translation_is_page_granular() {
        let m = MetadataMap::per_word();
        // Four consecutive app pages share one metadata page (4:1).
        let p0 = m.md_page_of_app_page(0);
        assert_eq!(m.md_page_of_app_page(3), p0);
        assert_eq!(m.md_page_of_app_page(4), p0 + 1);
    }

    #[test]
    #[should_panic(expected = "metadata unit must be 1..=8 bytes")]
    fn rejects_zero_unit() {
        let _ = MetadataMap::new(0, 2, 0);
    }
}
