//! Combined metadata state: the monitor's ground truth.

use fade_isa::{Reg, VirtAddr};

use crate::map::MetadataMap;
use crate::memory::ShadowMemory;
use crate::regfile::RegMeta;

/// The complete metadata state a monitor maintains: register metadata,
/// memory metadata, and the address mapping between application memory
/// and its shadow.
///
/// Both the software handlers (ground truth) and FADE's metadata cache
/// operate on this state; the accelerator's structures (MD cache, FSQ)
/// add *timing* on top of it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetadataState {
    /// Register metadata file.
    pub regs: RegMeta,
    /// Memory metadata store.
    pub mem: ShadowMemory,
    map: MetadataMap,
}

impl MetadataState {
    /// Creates a clean metadata state with the given mapping.
    pub fn new(map: MetadataMap) -> Self {
        MetadataState {
            regs: RegMeta::new(),
            mem: ShadowMemory::new(),
            map,
        }
    }

    /// The application→metadata mapping in use.
    #[inline]
    pub fn map(&self) -> MetadataMap {
        self.map
    }

    /// Reads the metadata unit covering the application address.
    #[inline]
    pub fn mem_meta(&self, app: VirtAddr) -> u8 {
        self.mem.read_u8(self.map.md_addr(app))
    }

    /// Writes the metadata unit covering the application address.
    #[inline]
    pub fn set_mem_meta(&mut self, app: VirtAddr, value: u8) {
        self.mem.write_u8(self.map.md_addr(app), value);
    }

    /// Reads the metadata for an access of `size` bytes at `app`,
    /// little-endian packed (one byte per spanned unit, at most 8).
    pub fn mem_meta_span(&self, app: VirtAddr, size: u8) -> u64 {
        let units = self.map.units_for_access(app, size).min(8);
        if units == 0 {
            return 0;
        }
        self.mem.read_bytes(self.map.md_addr(app), units as usize)
    }

    /// Writes `value` to every metadata unit spanned by an access of
    /// `size` bytes at `app`.
    pub fn set_mem_meta_span(&mut self, app: VirtAddr, size: u8, value: u8) {
        let (start, len) = self.map.md_range(app, size as u32);
        self.mem.fill(start, len, value);
    }

    /// Bulk-sets the metadata covering `[app_base, app_base+len)` to
    /// `value` — what stack updates and allocation handlers do.
    pub fn fill_app_range(&mut self, app_base: VirtAddr, len: u32, value: u8) {
        let (start, md_len) = self.map.md_range(app_base, len);
        self.mem.fill(start, md_len, value);
    }

    /// A cheap content digest of the monitor-visible metadata state:
    /// the [`ShadowMemory::content_digest`] with every register's
    /// metadata byte folded in. Epoch validation compares digests (one
    /// `u64` each side) instead of running full structural equality on
    /// entry/exit snapshots; two states digest equal exactly when their
    /// memory contents and register reads are identical.
    pub fn digest(&self) -> u64 {
        let mut h = self.mem.content_digest();
        for reg in Reg::all() {
            h = (h ^ u64::from(self.regs.read(reg))).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Reads register metadata.
    #[inline]
    pub fn reg_meta(&self, reg: Reg) -> u8 {
        self.regs.read(reg)
    }

    /// Writes register metadata.
    #[inline]
    pub fn set_reg_meta(&mut self, reg: Reg, value: u8) {
        self.regs.write(reg, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_granularity_aliases_within_word() {
        let mut st = MetadataState::new(MetadataMap::per_word());
        st.set_mem_meta(VirtAddr::new(0x2000), 3);
        assert_eq!(st.mem_meta(VirtAddr::new(0x2003)), 3);
        assert_eq!(st.mem_meta(VirtAddr::new(0x2004)), 0);
    }

    #[test]
    fn span_reads_pack_units() {
        let mut st = MetadataState::new(MetadataMap::per_word());
        st.set_mem_meta(VirtAddr::new(0x100), 1);
        st.set_mem_meta(VirtAddr::new(0x104), 2);
        // 8-byte access spans both words.
        assert_eq!(st.mem_meta_span(VirtAddr::new(0x100), 8), 0x0201);
        // 4-byte aligned access spans one.
        assert_eq!(st.mem_meta_span(VirtAddr::new(0x100), 4), 0x01);
        // Unaligned 4-byte access spans two.
        assert_eq!(st.mem_meta_span(VirtAddr::new(0x102), 4), 0x0201);
        // Zero-size access reads nothing.
        assert_eq!(st.mem_meta_span(VirtAddr::new(0x100), 0), 0);
    }

    #[test]
    fn span_write_covers_all_units() {
        let mut st = MetadataState::new(MetadataMap::per_word());
        st.set_mem_meta_span(VirtAddr::new(0x102), 4, 7);
        assert_eq!(st.mem_meta(VirtAddr::new(0x100)), 7);
        assert_eq!(st.mem_meta(VirtAddr::new(0x104)), 7);
        assert_eq!(st.mem_meta(VirtAddr::new(0x108)), 0);
    }

    #[test]
    fn fill_app_range_covers_frame() {
        let mut st = MetadataState::new(MetadataMap::per_word());
        st.fill_app_range(VirtAddr::new(0x8000), 96, 2);
        assert_eq!(st.mem_meta(VirtAddr::new(0x8000)), 2);
        assert_eq!(st.mem_meta(VirtAddr::new(0x805c)), 2);
        assert_eq!(st.mem_meta(VirtAddr::new(0x8060)), 0);
        assert_eq!(st.mem_meta(VirtAddr::new(0x7ffc)), 0);
    }

    #[test]
    fn register_accessors_delegate() {
        let mut st = MetadataState::new(MetadataMap::per_word());
        st.set_reg_meta(Reg::new(4), 9);
        assert_eq!(st.reg_meta(Reg::new(4)), 9);
        assert_eq!(st.reg_meta(Reg::ZERO), 0);
    }
}
