//! # fade-shadow
//!
//! The shadow-memory substrate shared by the software monitors and the
//! FADE accelerator.
//!
//! Instruction-grain monitors keep *metadata* about every application
//! memory location and register (Section 2 of the paper). This crate
//! provides:
//!
//! * [`ShadowMemory`] — a sparse, paged, byte-granularity metadata store
//!   living in the monitor's address space,
//! * [`MetadataMap`] — the application→metadata address mapping that the
//!   M-TLB accelerates in hardware,
//! * [`RegMeta`] — per-architectural-register metadata,
//! * [`MetadataState`] — the combination of all three: the ground-truth
//!   metadata state a monitor maintains.
//!
//! # Example
//!
//! ```
//! use fade_isa::VirtAddr;
//! use fade_shadow::{MetadataMap, MetadataState};
//!
//! // One metadata byte per application word, the layout all five paper
//! // monitors use for their critical metadata.
//! let mut st = MetadataState::new(MetadataMap::per_word());
//! st.set_mem_meta(VirtAddr::new(0x1000), 1);
//! assert_eq!(st.mem_meta(VirtAddr::new(0x1002)), 1); // same word
//! assert_eq!(st.mem_meta(VirtAddr::new(0x1004)), 0); // next word
//! ```

pub mod map;
pub mod memory;
pub mod regfile;
pub mod state;

pub use map::MetadataMap;
pub use memory::{BudgetExceeded, ShadowCounters, ShadowMemory};
pub use regfile::RegMeta;
pub use state::MetadataState;
