//! Synthetic-program generation throughput (records per second) for a
//! single-threaded and a multithreaded benchmark profile.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fade_trace::{bench, SyntheticProgram};
use std::hint::black_box;
use std::time::Duration;

fn bench_tracegen(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracegen");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(10_000));

    for name in ["gcc", "omnet", "water"] {
        let profile = bench::by_name(name).unwrap();
        g.bench_function(format!("records_{name}"), |b| {
            let mut prog = SyntheticProgram::new(&profile, 7);
            b.iter(|| {
                for _ in 0..10_000 {
                    black_box(prog.next_record());
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tracegen);
criterion_main!(benches);
