//! Throughput of the filtering pipeline: the per-event `enqueue`+`tick`
//! path versus the batched fast path (`Fade::run_batch`), across batch
//! sizes {1, 8, 32, 256}, plus a mixed stream with unfiltered events.
//!
//! The final summary prints the batch-over-per-event speedup per batch
//! size; the repo's acceptance bar is >=3x at batch size 32.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fade::{Fade, FadeConfig, FilterMode};
use fade_isa::{event_ids, AppEvent, InstrEvent, Reg, VirtAddr};
use fade_monitors::monitor_by_name;
use fade_shadow::MetadataState;
use std::hint::black_box;
use std::time::Duration;

const SIZES: [usize; 4] = [1, 8, 32, 256];

fn load_event(addr: u32, dest: u8) -> AppEvent {
    let mut e = InstrEvent::new(event_ids::LOAD, VirtAddr::new(0x400));
    e.app_addr = VirtAddr::new(addr);
    e.dest = Reg::new(dest);
    e.mem_size = 4;
    AppEvent::Instr(e)
}

/// `n` loads striding words within one page: all filterable for
/// MemLeak's clean check.
fn filterable_events(n: usize) -> Vec<AppEvent> {
    (0..n as u32)
        .map(|i| load_event(0x1000_0000 + (i * 4) % 4096, 3))
        .collect()
}

fn fresh(mode: FilterMode) -> (Fade, MetadataState) {
    let mon = monitor_by_name("memleak").unwrap();
    let program = mon.program();
    let mut state = MetadataState::new(program.md_map());
    mon.init_state(&mut state);
    let mut cfg = FadeConfig::paper(mode);
    cfg.tlb_miss_penalty = 0;
    (Fade::new(cfg, program), state)
}

/// Drains `events` one at a time through the cycle-accurate path with
/// an always-ready consumer — the pre-batching driver loop.
fn per_event_drive(fade: &mut Fade, state: &mut MetadataState, events: &[AppEvent]) {
    for &ev in events {
        fade.enqueue(ev).unwrap();
        let mut guard = 0u32;
        while !fade.is_idle() {
            black_box(fade.tick(state));
            while let Some(uf) = fade.pop_unfiltered() {
                fade.handler_completed(uf.token);
            }
            guard += 1;
            assert!(guard < 100_000, "accelerator failed to quiesce");
        }
        while let Some(uf) = fade.pop_unfiltered() {
            fade.handler_completed(uf.token);
        }
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter_pipeline");
    g.sample_size(20).measurement_time(Duration::from_secs(2));

    for &n in &SIZES {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("per_event_batch_{n}"), |b| {
            let (mut fade, mut state) = fresh(FilterMode::NonBlocking);
            let events = filterable_events(n);
            per_event_drive(&mut fade, &mut state, &events); // warm structures
            b.iter(|| per_event_drive(&mut fade, &mut state, &events))
        });
        g.bench_function(format!("filterable_batch_{n}"), |b| {
            let (mut fade, mut state) = fresh(FilterMode::NonBlocking);
            let events = filterable_events(n);
            fade.run_batch(&events, &mut state); // warm structures
            b.iter(|| black_box(fade.run_batch(&events, &mut state)))
        });
    }

    // Mixed stream: every 4th word holds a pointer, so 25% of events
    // dispatch to software and exercise the fallback path.
    g.throughput(Throughput::Elements(32));
    g.bench_function("mixed_batch_32", |b| {
        let (mut fade, mut state) = fresh(FilterMode::NonBlocking);
        for i in (0..32u32).step_by(4) {
            state.set_mem_meta(VirtAddr::new(0x1000_0000 + i * 4), 1);
        }
        let events: Vec<AppEvent> = (0..32u32)
            .map(|i| load_event(0x1000_0000 + i * 4, 3))
            .collect();
        fade.run_batch(&events, &mut state);
        b.iter(|| black_box(fade.run_batch(&events, &mut state)))
    });
    g.finish();

    // Speedup summary. NOTE: `Criterion::results()` exists only on the
    // in-repo criterion shim (crates/criterion-shim); if the workspace
    // ever swaps back to the real criterion crate, drop this block (or
    // recompute the ratio from criterion's saved estimates).
    let results = c.results();
    let time_of = |id: &str| {
        results
            .iter()
            .find(|s| s.id == format!("filter_pipeline/{id}"))
            .map(|s| s.median_s)
    };
    println!("\nbatch speedup over per-event path:");
    for &n in &SIZES {
        if let (Some(per), Some(bat)) = (
            time_of(&format!("per_event_batch_{n}")),
            time_of(&format!("filterable_batch_{n}")),
        ) {
            println!(
                "  batch {:>3}: {:.2}x  ({:.1} -> {:.1} Mevents/s)",
                n,
                per / bat,
                n as f64 / per / 1e6,
                n as f64 / bat / 1e6
            );
        }
    }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
