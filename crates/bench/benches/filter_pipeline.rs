//! Throughput of the filtering pipeline: events per second through
//! `Fade::tick` for an all-filterable stream (the paper's peak rate of
//! one event per cycle) and for a mixed stream with unfiltered events.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fade::{Fade, FadeConfig, FilterMode};
use fade_isa::{event_ids, AppEvent, InstrEvent, Reg, VirtAddr};
use fade_monitors::monitor_by_name;
use fade_shadow::MetadataState;
use std::hint::black_box;
use std::time::Duration;

fn load_event(addr: u32, dest: u8) -> AppEvent {
    let mut e = InstrEvent::new(event_ids::LOAD, VirtAddr::new(0x400));
    e.app_addr = VirtAddr::new(addr);
    e.dest = Reg::new(dest);
    e.mem_size = 4;
    AppEvent::Instr(e)
}

fn fresh(mode: FilterMode) -> (Fade, MetadataState) {
    let mon = monitor_by_name("memleak").unwrap();
    let program = mon.program();
    let mut state = MetadataState::new(program.md_map());
    mon.init_state(&mut state);
    let mut cfg = FadeConfig::paper(mode);
    cfg.tlb_miss_penalty = 0;
    (Fade::new(cfg, program), state)
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter_pipeline");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(32));

    g.bench_function("filterable_batch_32", |b| {
        b.iter_batched_ref(
            || fresh(FilterMode::NonBlocking),
            |(fade, state)| {
                for i in 0..32u32 {
                    fade.enqueue(load_event(0x1000_0000 + i * 4, 3)).unwrap();
                }
                let mut guard = 0;
                while !fade.is_idle() && guard < 100_000 {
                    black_box(fade.tick(state));
                    guard += 1;
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("mixed_batch_32", |b| {
        b.iter_batched_ref(
            || {
                let (fade, mut state) = fresh(FilterMode::NonBlocking);
                // Every 4th word holds a pointer: 25% unfiltered.
                for i in (0..32u32).step_by(4) {
                    state.set_mem_meta(VirtAddr::new(0x1000_0000 + i * 4), 1);
                }
                (fade, state)
            },
            |(fade, state)| {
                for i in 0..32u32 {
                    fade.enqueue(load_event(0x1000_0000 + i * 4, 3)).unwrap();
                }
                let mut guard = 0;
                while !fade.is_idle() && guard < 100_000 {
                    black_box(fade.tick(state));
                    while let Some(uf) = fade.pop_unfiltered() {
                        fade.handler_completed(uf.token);
                    }
                    guard += 1;
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
