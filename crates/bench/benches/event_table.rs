//! Event-table lookup plus one filter-logic shot: the combinational
//! heart of the Filter stage (Figure 7).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fade::filter_logic::evaluate_shot;
use fade::OperandMeta;
use fade_isa::event_ids;
use fade_monitors::monitor_by_name;
use std::hint::black_box;
use std::time::Duration;

fn bench_event_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_table");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(1024));

    for name in ["addrcheck", "memleak", "atomcheck"] {
        let program = monitor_by_name(name).unwrap().program();
        g.bench_function(format!("lookup_and_shot_{name}"), |b| {
            b.iter(|| {
                for i in 0..1024u64 {
                    let entry = program.table().entry(event_ids::LOAD).unwrap();
                    let ops = OperandMeta {
                        s1: i & 1,
                        s2: 0,
                        d: (i >> 1) & 1,
                    };
                    black_box(evaluate_shot(entry, &ops, program.invariants()));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_event_table);
criterion_main!(benches);
