//! Stack-update unit throughput: frame metadata initialization for
//! typical and large frames.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fade::{InvId, InvRf, StackUpdateUnit, TagCache, TagCacheConfig};
use fade_isa::{StackUpdateEvent, StackUpdateKind, VirtAddr};
use fade_shadow::{MetadataMap, MetadataState};
use std::hint::black_box;
use std::time::Duration;

fn bench_suu(c: &mut Criterion) {
    let mut g = c.benchmark_group("suu");
    g.sample_size(20).measurement_time(Duration::from_secs(2));

    for &frame_len in &[96u32, 512, 4096] {
        g.throughput(Throughput::Bytes(frame_len as u64));
        g.bench_function(format!("frame_{frame_len}B"), |b| {
            let mut inv = InvRf::new();
            inv.write(InvId::new(0), 1);
            inv.write(InvId::new(1), 0);
            let ev = StackUpdateEvent {
                base: VirtAddr::new(0xef00_0000),
                len: frame_len,
                kind: StackUpdateKind::Call,
                tid: 0,
            };
            b.iter_batched_ref(
                || {
                    (
                        StackUpdateUnit::new(),
                        MetadataState::new(MetadataMap::per_word()),
                        TagCache::new(TagCacheConfig::md_cache()),
                    )
                },
                |(suu, state, cache)| {
                    let map = state.map();
                    black_box(suu.start(&ev, InvId::new(0), InvId::new(1), &inv, &map, state));
                    while suu.busy() {
                        suu.tick(cache);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_suu);
criterion_main!(benches);
