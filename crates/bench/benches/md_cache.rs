//! MD cache (tag array) access throughput: hit streams, miss streams,
//! and the paper's 4 KB geometry vs larger configurations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fade::{TagCache, TagCacheConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_md_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("md_cache");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(1024));

    g.bench_function("hot_hits_4k", |b| {
        let mut cache = TagCache::new(TagCacheConfig::md_cache());
        for i in 0..64u64 {
            cache.access(i * 64);
        }
        b.iter(|| {
            for i in 0..1024u64 {
                black_box(cache.access((i % 32) * 64));
            }
        })
    });

    g.bench_function("streaming_misses_4k", |b| {
        let mut cache = TagCache::new(TagCacheConfig::md_cache());
        let mut base = 0u64;
        b.iter(|| {
            for i in 0..1024u64 {
                black_box(cache.access(base + i * 64));
            }
            base += 1024 * 64;
        })
    });

    g.bench_function("l2_geometry_mixed", |b| {
        let mut cache = TagCache::new(TagCacheConfig::l2());
        let mut x = 0x9e3779b97f4a7c15u64;
        b.iter(|| {
            for _ in 0..1024 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                black_box(cache.access(x % (8 << 20)));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_md_cache);
criterion_main!(benches);
