//! End-to-end simulation throughput: cycles per second of the full
//! monitoring system (app core + FADE + monitor core), per
//! configuration.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fade_system::{Session, SystemConfig};
use fade_trace::bench;
use std::hint::black_box;
use std::time::Duration;

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    g.throughput(Throughput::Elements(5_000));

    let cases = [
        ("fade_single_core", SystemConfig::fade_single_core()),
        ("fade_two_core", SystemConfig::fade_two_core()),
        ("unaccelerated", SystemConfig::unaccelerated_single_core()),
    ];
    for (name, cfg) in cases {
        g.bench_function(format!("memleak_gcc_{name}"), |b| {
            let profile = bench::by_name("gcc").unwrap();
            let mut sys = Session::builder()
                .monitor("MemLeak")
                .source(profile)
                .config(cfg)
                .build()
                .unwrap();
            sys.run(5_000).unwrap(); // warm
            b.iter(|| {
                sys.run(5_000).unwrap();
                black_box(sys.cycles());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
