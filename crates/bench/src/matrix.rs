//! The declarative experiment driver: an experiment is *data*
//! (monitor × benchmark × config × engine), and a matrix of them is
//! executed sharded across worker threads.
//!
//! The paper's evaluation is an embarrassingly parallel grid — every
//! (monitor, benchmark, configuration) point is an independent,
//! deterministic simulation — so the driver needs no synchronization
//! beyond a work-stealing index: each worker claims the next undone
//! experiment, builds a [`Session`] for it, and runs it to a
//! [`RunReport`]. Results come back in declaration order regardless of
//! which worker ran what, and are bit-identical for any worker count
//! (each run's RNG seeds derive from its own [`SystemConfig::seed`],
//! never from shard placement — `tests/matrix.rs` pins both
//! properties).
//!
//! Experiments are isolated from each other: a run that fails — a
//! panicking monitor, a failed trace source, an exceeded shadow-memory
//! budget — becomes a typed [`ExperimentError`] row in
//! [`MatrixResult::outcomes`], in declaration order like any other
//! result, and every sibling experiment still runs to completion.
//!
//! # Example
//!
//! ```
//! use fade_bench::{Experiment, ExperimentMatrix};
//! use fade_system::SystemConfig;
//! use fade_trace::bench;
//!
//! let mut matrix = ExperimentMatrix::new();
//! for b in bench::spec_int_suite().into_iter().take(2) {
//!     matrix.push(
//!         Experiment::new(b, "AddrCheck", SystemConfig::fade_single_core())
//!             .window(2_000, 8_000),
//!     );
//! }
//! let result = matrix.run();
//! let reports = result.into_reports();
//! assert_eq!(reports.len(), 2);
//! // (the cycle engine may overshoot by up to a commit width)
//! assert!(reports.iter().all(|r| r.stats.app_instrs >= 8_000));
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fade::FadeProgram;
use fade_system::{Engine, MonitorRegistry, RunReport, Session, SessionRunError, SystemConfig};
use fade_trace::BenchProfile;

use crate::{exec_mode, measure_len, warmup_len};

/// One point of an experiment grid, as plain data.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Display label (diagnostics and timing logs).
    pub label: String,
    /// The workload.
    pub bench: BenchProfile,
    /// The monitor, by registry name.
    pub monitor: String,
    /// The hardware configuration.
    pub config: SystemConfig,
    /// The execution engine.
    pub engine: Engine,
    /// Warmup instructions before the measured window.
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
    /// Optional caller-built FADE program (ablations).
    pub program: Option<FadeProgram>,
}

impl Experiment {
    /// An experiment with the harness defaults: warmup/measure from
    /// `FADE_WARMUP`/`FADE_MEASURE`, engine from `FADE_MODE`.
    pub fn new(bench: BenchProfile, monitor: impl Into<String>, config: SystemConfig) -> Self {
        let monitor = monitor.into();
        Experiment {
            label: format!("{}/{}/{}", bench.name, monitor, config.label()),
            bench,
            monitor,
            config,
            engine: exec_mode(),
            warmup: warmup_len(),
            measure: measure_len(),
            program: None,
        }
    }

    /// Replaces the warmup/measure window.
    pub fn window(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Replaces the execution engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the display label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Loads a caller-built FADE program instead of the monitor's own
    /// (ablations: SUU removal, alternative encodings).
    pub fn program(mut self, program: FadeProgram) -> Self {
        self.program = Some(program);
        self
    }

    /// Builds and runs this experiment's session on the current thread.
    fn run(&self, registry: &Arc<MonitorRegistry>) -> Result<RunReport, ExperimentError> {
        let mut builder = Session::builder()
            .registry(Arc::clone(registry))
            .monitor(self.monitor.as_str())
            .source(self.bench.clone())
            .engine(self.engine)
            .config(self.config);
        if let Some(p) = &self.program {
            builder = builder.program(p.clone());
        }
        let session = builder.build().map_err(|e| ExperimentError::Build {
            label: self.label.clone(),
            error: e.to_string(),
        })?;
        session
            .run_measured(self.warmup, self.measure)
            .map_err(|e| ExperimentError::Run {
                label: self.label.clone(),
                error: e,
            })
    }
}

/// Why one experiment of a matrix produced no [`RunReport`]. One
/// experiment's failure never touches its siblings: the error sits in
/// [`MatrixResult::outcomes`] at the experiment's declaration-order
/// position and everything else runs to completion.
#[derive(Clone, Debug, PartialEq)]
pub enum ExperimentError {
    /// The session failed to build (unknown monitor, invalid FADE
    /// program, unreadable trace file). The underlying
    /// [`fade_system::SessionError`] is carried stringified.
    Build {
        /// The experiment's display label.
        label: String,
        /// The stringified build error.
        error: String,
    },
    /// The session built but its run failed with a typed error —
    /// including a panicking monitor, which the session catches and
    /// converts to [`SessionRunError::MonitorPanicked`].
    Run {
        /// The experiment's display label.
        label: String,
        /// The typed run error.
        error: SessionRunError,
    },
    /// The experiment panicked outside the session's own guard (a
    /// harness bug rather than a monitor bug — still isolated to this
    /// row).
    Panicked {
        /// The experiment's display label.
        label: String,
        /// The panic payload, stringified.
        payload: String,
    },
}

impl ExperimentError {
    /// The display label of the experiment that failed.
    pub fn label(&self) -> &str {
        match self {
            ExperimentError::Build { label, .. }
            | ExperimentError::Run { label, .. }
            | ExperimentError::Panicked { label, .. } => label,
        }
    }
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Build { label, error } => {
                write!(f, "experiment {label}: build failed: {error}")
            }
            ExperimentError::Run { label, error } => {
                write!(f, "experiment {label}: run failed: {error}")
            }
            ExperimentError::Panicked { label, payload } => {
                write!(f, "experiment {label}: panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Run { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Best-effort stringification of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Worker count for a matrix: `FADE_WORKERS` if set, else the machine's
/// available parallelism.
pub fn default_workers() -> usize {
    std::env::var("FADE_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A batch of experiments executed across worker threads.
pub struct ExperimentMatrix {
    experiments: Vec<Experiment>,
    workers: usize,
    registry: Arc<MonitorRegistry>,
    timing_label: Option<String>,
}

impl ExperimentMatrix {
    /// An empty matrix with [`default_workers`] and the builtin monitor
    /// registry.
    pub fn new() -> Self {
        ExperimentMatrix {
            experiments: Vec::new(),
            workers: default_workers(),
            registry: Arc::new(MonitorRegistry::builtin()),
            timing_label: None,
        }
    }

    /// Replaces the worker count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Resolves monitor names in this registry (out-of-tree monitors in
    /// a matrix).
    pub fn registry(mut self, registry: Arc<MonitorRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// Records this run's timing under `label` in the process-wide
    /// timing log (drained by `reproduce_all` for the performance
    /// trajectory).
    pub fn timed(mut self, label: impl Into<String>) -> Self {
        self.timing_label = Some(label.into());
        self
    }

    /// Appends one experiment.
    pub fn push(&mut self, experiment: Experiment) -> &mut Self {
        self.experiments.push(experiment);
        self
    }

    /// Appends many experiments.
    pub fn extend(&mut self, experiments: impl IntoIterator<Item = Experiment>) -> &mut Self {
        self.experiments.extend(experiments);
        self
    }

    /// Number of experiments queued.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Runs every experiment, sharded across the matrix's workers, and
    /// returns the outcomes **in declaration order** together with the
    /// wall-clock evidence of the sharding win.
    ///
    /// Experiments are isolated: a failed or panicking experiment
    /// becomes a typed [`ExperimentError`] row in
    /// [`MatrixResult::outcomes`] — it never kills the matrix, the
    /// worker, or any sibling experiment. Drivers that treat any
    /// failure as fatal use [`MatrixResult::into_reports`] /
    /// [`ExperimentMatrix::run_stats`], which keep the old
    /// panic-on-failure discipline.
    pub fn run(self) -> MatrixResult {
        let n = self.experiments.len();
        let workers = self.workers.clamp(1, n.max(1));
        let experiments = &self.experiments;
        let registry = &self.registry;
        let start = Instant::now();
        // The scheduling core lives in `fade_system::pool`: workers
        // claim the next undone experiment, results come back in
        // declaration order. The session guards monitor panics itself;
        // the catch_unwind here catches everything else (harness bugs)
        // so one bad row cannot take down a worker and with it every
        // experiment the worker would have claimed.
        let outcomes: Vec<Result<RunReport, ExperimentError>> =
            fade_system::pool::run_indexed(workers, n, |i| {
                catch_unwind(AssertUnwindSafe(|| experiments[i].run(registry))).unwrap_or_else(
                    |payload| {
                        Err(ExperimentError::Panicked {
                            label: experiments[i].label.clone(),
                            payload: panic_message(payload.as_ref()),
                        })
                    },
                )
            });
        let wall_s = start.elapsed().as_secs_f64();
        let serial_s = outcomes
            .iter()
            .filter_map(|o| o.as_ref().ok().map(|r| r.wall_s))
            .sum();
        let result = MatrixResult {
            outcomes,
            workers,
            wall_s,
            serial_s,
        };
        if let Some(label) = self.timing_label {
            record_timing(MatrixTiming {
                label,
                experiments: n,
                workers,
                wall_s: result.wall_s,
                serial_s: result.serial_s,
            });
        }
        result
    }

    /// [`ExperimentMatrix::run`], keeping only the [`fade_system::RunStats`] of
    /// each report (the common case for table-rendering code).
    ///
    /// # Panics
    ///
    /// Panics on the first failed experiment — the discipline the
    /// table-rendering binaries want: their grids are static, so any
    /// failure is a harness bug. Use [`ExperimentMatrix::run`] and
    /// inspect [`MatrixResult::outcomes`] to tolerate failures.
    pub fn run_stats(self) -> Vec<fade_system::RunStats> {
        self.run()
            .into_reports()
            .into_iter()
            .map(|r| r.stats)
            .collect()
    }
}

impl Default for ExperimentMatrix {
    fn default() -> Self {
        Self::new()
    }
}

/// What a matrix run produced: per-experiment outcomes plus the
/// wall-clock totals behind the sharding speedup.
#[derive(Clone, Debug)]
pub struct MatrixResult {
    /// One outcome per experiment, in declaration order: the report,
    /// or the typed error that experiment (alone) failed with.
    pub outcomes: Vec<Result<RunReport, ExperimentError>>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock seconds for the whole (sharded) matrix.
    pub wall_s: f64,
    /// Sum of the per-experiment wall clocks of *successful* runs —
    /// what a single worker would have paid running the same grid back
    /// to back.
    pub serial_s: f64,
}

impl MatrixResult {
    /// Sharded-over-serial wall-clock speedup (≈1.0 on one worker, up
    /// to `workers`× on an idle machine).
    pub fn speedup(&self) -> f64 {
        self.serial_s / self.wall_s.max(1e-12)
    }

    /// The successful reports, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics on the first failed experiment (with its label and typed
    /// error) — the all-or-nothing discipline of the table-rendering
    /// binaries. Inspect [`MatrixResult::outcomes`] or
    /// [`MatrixResult::errors`] to tolerate failures instead.
    pub fn into_reports(self) -> Vec<RunReport> {
        self.outcomes
            .into_iter()
            .map(|o| match o {
                Ok(report) => report,
                Err(e) => panic!("{e}"),
            })
            .collect()
    }

    /// The errors of every failed experiment, in declaration order
    /// (empty when everything succeeded).
    pub fn errors(&self) -> Vec<&ExperimentError> {
        self.outcomes.iter().filter_map(|o| o.as_ref().err()).collect()
    }
}

/// One recorded matrix timing (see [`ExperimentMatrix::timed`]).
#[derive(Clone, Debug)]
pub struct MatrixTiming {
    /// The label the matrix was timed under.
    pub label: String,
    /// Experiments in the matrix.
    pub experiments: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Sharded wall-clock seconds.
    pub wall_s: f64,
    /// Serial-equivalent seconds (sum of per-run wall clocks).
    pub serial_s: f64,
}

impl MatrixTiming {
    /// Sharded-over-serial wall-clock speedup.
    pub fn speedup(&self) -> f64 {
        self.serial_s / self.wall_s.max(1e-12)
    }
}

fn timing_log() -> &'static Mutex<Vec<MatrixTiming>> {
    static LOG: std::sync::OnceLock<Mutex<Vec<MatrixTiming>>> = std::sync::OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

fn record_timing(t: MatrixTiming) {
    timing_log().lock().expect("timing log poisoned").push(t);
}

/// Drains every timing recorded by [`ExperimentMatrix::timed`] matrices
/// since the last drain — how `reproduce_all` collects per-section
/// sharding evidence without threading a collector through every
/// experiment function.
pub fn drain_timings() -> Vec<MatrixTiming> {
    std::mem::take(&mut *timing_log().lock().expect("timing log poisoned"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fade_trace::bench;

    fn tiny(bench_name: &str, monitor: &str) -> Experiment {
        Experiment::new(
            bench::by_name(bench_name).unwrap(),
            monitor,
            SystemConfig::fade_single_core(),
        )
        .engine(Engine::Cycle)
        .window(1_000, 4_000)
    }

    #[test]
    fn reports_come_back_in_declaration_order() {
        let mut m = ExperimentMatrix::new().workers(4);
        m.push(tiny("mcf", "AddrCheck"));
        m.push(tiny("gcc", "MemLeak"));
        m.push(tiny("hmmer", "MemCheck"));
        let result = m.run();
        assert!(result.errors().is_empty());
        assert!(result.serial_s > 0.0 && result.wall_s > 0.0);
        let reports = result.into_reports();
        let names: Vec<&str> = reports.iter().map(|r| r.stats.benchmark.as_str()).collect();
        assert_eq!(names, vec!["mcf", "gcc", "hmmer"]);
        let monitors: Vec<&str> = reports.iter().map(|r| r.stats.monitor.as_str()).collect();
        assert_eq!(monitors, vec!["AddrCheck", "MemLeak", "MemCheck"]);
    }

    #[test]
    fn empty_matrix_runs() {
        let result = ExperimentMatrix::new().run();
        assert!(result.outcomes.is_empty());
    }

    #[test]
    fn build_failures_are_error_rows_in_declaration_order() {
        let mut m = ExperimentMatrix::new().workers(2);
        m.push(tiny("mcf", "AddrCheck"));
        m.push(tiny("gcc", "NoSuchMonitor"));
        m.push(tiny("hmmer", "MemCheck"));
        let result = m.run();
        assert_eq!(result.outcomes.len(), 3);
        assert!(result.outcomes[0].is_ok(), "sibling before the bad row");
        assert!(result.outcomes[2].is_ok(), "sibling after the bad row");
        match &result.outcomes[1] {
            Err(ExperimentError::Build { label, .. }) => {
                assert!(label.contains("NoSuchMonitor"), "label: {label}")
            }
            other => panic!("expected a Build error row, got {other:?}"),
        }
        assert_eq!(result.errors().len(), 1);
    }

    /// An AddrCheck that blows up on the first retired instruction —
    /// the regression fixture for monitor-panic isolation.
    struct PanicMonitor(fade_monitors::AddrCheck);

    impl fade_monitors::Monitor for PanicMonitor {
        fn name(&self) -> &'static str {
            "PanicMonitor"
        }
        fn kind(&self) -> fade_monitors::MonitorKind {
            self.0.kind()
        }
        fn selects(&self, _instr: &fade_isa::AppInstr) -> bool {
            panic!("deliberate monitor panic (matrix isolation test)")
        }
        fn monitors_stack(&self) -> bool {
            self.0.monitors_stack()
        }
        fn program(&self) -> FadeProgram {
            self.0.program()
        }
        fn init_state(&self, state: &mut fade_shadow::MetadataState) {
            self.0.init_state(state)
        }
        fn classify(
            &self,
            ev: &fade_isa::InstrEvent,
            state: &fade_shadow::MetadataState,
        ) -> fade_monitors::EventClass {
            self.0.classify(ev, state)
        }
        fn apply_instr(&mut self, ev: &fade_isa::InstrEvent, state: &mut fade_shadow::MetadataState) {
            self.0.apply_instr(ev, state)
        }
        fn apply_high_level(
            &mut self,
            ev: &fade_isa::HighLevelEvent,
            state: &mut fade_shadow::MetadataState,
        ) {
            self.0.apply_high_level(ev, state)
        }
        fn apply_stack_update(
            &self,
            ev: &fade_isa::StackUpdateEvent,
            state: &mut fade_shadow::MetadataState,
        ) {
            self.0.apply_stack_update(ev, state)
        }
        fn costs(&self) -> fade_monitors::CostModel {
            self.0.costs()
        }
    }

    /// A panicking monitor becomes one typed error row in declaration
    /// order; the sibling experiments (including ones claimed later by
    /// the same worker) still complete.
    #[test]
    fn panicking_monitor_is_one_error_row_and_spares_siblings() {
        let mut registry = MonitorRegistry::builtin();
        registry.register(|| Box::new(PanicMonitor(fade_monitors::AddrCheck::new())));
        let mut m = ExperimentMatrix::new()
            .workers(1) // one worker claims every row: isolation must protect its whole queue
            .registry(Arc::new(registry));
        m.push(tiny("mcf", "AddrCheck"));
        m.push(tiny("gcc", "PanicMonitor"));
        m.push(tiny("hmmer", "MemCheck"));
        let result = m.run();
        assert_eq!(result.outcomes.len(), 3);
        assert!(result.outcomes[0].is_ok(), "sibling before the panicking row");
        assert!(result.outcomes[2].is_ok(), "sibling after the panicking row");
        match &result.outcomes[1] {
            Err(ExperimentError::Run {
                label,
                error: SessionRunError::MonitorPanicked { monitor, payload },
            }) => {
                assert!(label.contains("PanicMonitor"), "label: {label}");
                assert_eq!(monitor, "PanicMonitor");
                assert!(
                    payload.contains("deliberate monitor panic"),
                    "payload: {payload}"
                );
            }
            other => panic!("expected a MonitorPanicked run-error row, got {other:?}"),
        }
    }

    #[test]
    fn timings_are_recorded_and_drained() {
        drain_timings();
        let mut m = ExperimentMatrix::new().timed("unit-test");
        m.push(tiny("mcf", "AddrCheck"));
        m.run();
        let timings = drain_timings();
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].label, "unit-test");
        assert_eq!(timings[0].experiments, 1);
        assert!(drain_timings().is_empty(), "drain must empty the log");
    }
}
