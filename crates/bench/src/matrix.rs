//! The declarative experiment driver: an experiment is *data*
//! (monitor × benchmark × config × engine), and a matrix of them is
//! executed sharded across worker threads.
//!
//! The paper's evaluation is an embarrassingly parallel grid — every
//! (monitor, benchmark, configuration) point is an independent,
//! deterministic simulation — so the driver needs no synchronization
//! beyond a work-stealing index: each worker claims the next undone
//! experiment, builds a [`Session`] for it, and runs it to a
//! [`RunReport`]. Results come back in declaration order regardless of
//! which worker ran what, and are bit-identical for any worker count
//! (each run's RNG seeds derive from its own [`SystemConfig::seed`],
//! never from shard placement — `tests/matrix.rs` pins both
//! properties).
//!
//! # Example
//!
//! ```
//! use fade_bench::{Experiment, ExperimentMatrix};
//! use fade_system::SystemConfig;
//! use fade_trace::bench;
//!
//! let mut matrix = ExperimentMatrix::new();
//! for b in bench::spec_int_suite().into_iter().take(2) {
//!     matrix.push(
//!         Experiment::new(b, "AddrCheck", SystemConfig::fade_single_core())
//!             .window(2_000, 8_000),
//!     );
//! }
//! let result = matrix.run();
//! assert_eq!(result.reports.len(), 2);
//! // (the cycle engine may overshoot by up to a commit width)
//! assert!(result.reports.iter().all(|r| r.stats.app_instrs >= 8_000));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fade::FadeProgram;
use fade_system::{Engine, MonitorRegistry, RunReport, Session, SystemConfig};
use fade_trace::BenchProfile;

use crate::{exec_mode, measure_len, warmup_len};

/// One point of an experiment grid, as plain data.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Display label (diagnostics and timing logs).
    pub label: String,
    /// The workload.
    pub bench: BenchProfile,
    /// The monitor, by registry name.
    pub monitor: String,
    /// The hardware configuration.
    pub config: SystemConfig,
    /// The execution engine.
    pub engine: Engine,
    /// Warmup instructions before the measured window.
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
    /// Optional caller-built FADE program (ablations).
    pub program: Option<FadeProgram>,
}

impl Experiment {
    /// An experiment with the harness defaults: warmup/measure from
    /// `FADE_WARMUP`/`FADE_MEASURE`, engine from `FADE_MODE`.
    pub fn new(bench: BenchProfile, monitor: impl Into<String>, config: SystemConfig) -> Self {
        let monitor = monitor.into();
        Experiment {
            label: format!("{}/{}/{}", bench.name, monitor, config.label()),
            bench,
            monitor,
            config,
            engine: exec_mode(),
            warmup: warmup_len(),
            measure: measure_len(),
            program: None,
        }
    }

    /// Replaces the warmup/measure window.
    pub fn window(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Replaces the execution engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the display label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Loads a caller-built FADE program instead of the monitor's own
    /// (ablations: SUU removal, alternative encodings).
    pub fn program(mut self, program: FadeProgram) -> Self {
        self.program = Some(program);
        self
    }

    /// Builds and runs this experiment's session on the current thread.
    fn run(&self, registry: &Arc<MonitorRegistry>) -> RunReport {
        let mut builder = Session::builder()
            .registry(Arc::clone(registry))
            .monitor(self.monitor.as_str())
            .source(self.bench.clone())
            .engine(self.engine)
            .config(self.config);
        if let Some(p) = &self.program {
            builder = builder.program(p.clone());
        }
        builder
            .build()
            .unwrap_or_else(|e| panic!("experiment {}: {e}", self.label))
            .run_measured(self.warmup, self.measure)
    }
}

/// Worker count for a matrix: `FADE_WORKERS` if set, else the machine's
/// available parallelism.
pub fn default_workers() -> usize {
    std::env::var("FADE_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A batch of experiments executed across worker threads.
pub struct ExperimentMatrix {
    experiments: Vec<Experiment>,
    workers: usize,
    registry: Arc<MonitorRegistry>,
    timing_label: Option<String>,
}

impl ExperimentMatrix {
    /// An empty matrix with [`default_workers`] and the builtin monitor
    /// registry.
    pub fn new() -> Self {
        ExperimentMatrix {
            experiments: Vec::new(),
            workers: default_workers(),
            registry: Arc::new(MonitorRegistry::builtin()),
            timing_label: None,
        }
    }

    /// Replaces the worker count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Resolves monitor names in this registry (out-of-tree monitors in
    /// a matrix).
    pub fn registry(mut self, registry: Arc<MonitorRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// Records this run's timing under `label` in the process-wide
    /// timing log (drained by `reproduce_all` for the performance
    /// trajectory).
    pub fn timed(mut self, label: impl Into<String>) -> Self {
        self.timing_label = Some(label.into());
        self
    }

    /// Appends one experiment.
    pub fn push(&mut self, experiment: Experiment) -> &mut Self {
        self.experiments.push(experiment);
        self
    }

    /// Appends many experiments.
    pub fn extend(&mut self, experiments: impl IntoIterator<Item = Experiment>) -> &mut Self {
        self.experiments.extend(experiments);
        self
    }

    /// Number of experiments queued.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Runs every experiment, sharded across the matrix's workers, and
    /// returns the reports **in declaration order** together with the
    /// wall-clock evidence of the sharding win.
    ///
    /// # Panics
    ///
    /// Panics if any experiment fails to build (unknown monitor,
    /// invalid program) — an experiment grid with a typo is a harness
    /// bug, not a recoverable condition — or if a worker panics.
    pub fn run(self) -> MatrixResult {
        let n = self.experiments.len();
        let workers = self.workers.clamp(1, n.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunReport>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let experiments = &self.experiments;
        let registry = &self.registry;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let report = experiments[i].run(registry);
                    *slots[i].lock().expect("no worker panicked holding a slot") = Some(report);
                });
            }
        });
        let wall_s = start.elapsed().as_secs_f64();
        let reports: Vec<RunReport> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("no worker panicked holding a slot")
                    .expect("scope joined every worker, so every slot is filled")
            })
            .collect();
        let serial_s = reports.iter().map(|r| r.wall_s).sum();
        let result = MatrixResult {
            reports,
            workers,
            wall_s,
            serial_s,
        };
        if let Some(label) = self.timing_label {
            record_timing(MatrixTiming {
                label,
                experiments: n,
                workers,
                wall_s: result.wall_s,
                serial_s: result.serial_s,
            });
        }
        result
    }

    /// [`ExperimentMatrix::run`], keeping only the [`fade_system::RunStats`] of
    /// each report (the common case for table-rendering code).
    pub fn run_stats(self) -> Vec<fade_system::RunStats> {
        self.run().reports.into_iter().map(|r| r.stats).collect()
    }
}

impl Default for ExperimentMatrix {
    fn default() -> Self {
        Self::new()
    }
}

/// What a matrix run produced: per-experiment reports plus the
/// wall-clock totals behind the sharding speedup.
#[derive(Clone, Debug)]
pub struct MatrixResult {
    /// One report per experiment, in declaration order.
    pub reports: Vec<RunReport>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock seconds for the whole (sharded) matrix.
    pub wall_s: f64,
    /// Sum of the per-experiment wall clocks — what a single worker
    /// would have paid running the same grid back to back.
    pub serial_s: f64,
}

impl MatrixResult {
    /// Sharded-over-serial wall-clock speedup (≈1.0 on one worker, up
    /// to `workers`× on an idle machine).
    pub fn speedup(&self) -> f64 {
        self.serial_s / self.wall_s.max(1e-12)
    }
}

/// One recorded matrix timing (see [`ExperimentMatrix::timed`]).
#[derive(Clone, Debug)]
pub struct MatrixTiming {
    /// The label the matrix was timed under.
    pub label: String,
    /// Experiments in the matrix.
    pub experiments: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Sharded wall-clock seconds.
    pub wall_s: f64,
    /// Serial-equivalent seconds (sum of per-run wall clocks).
    pub serial_s: f64,
}

impl MatrixTiming {
    /// Sharded-over-serial wall-clock speedup.
    pub fn speedup(&self) -> f64 {
        self.serial_s / self.wall_s.max(1e-12)
    }
}

fn timing_log() -> &'static Mutex<Vec<MatrixTiming>> {
    static LOG: std::sync::OnceLock<Mutex<Vec<MatrixTiming>>> = std::sync::OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

fn record_timing(t: MatrixTiming) {
    timing_log().lock().expect("timing log poisoned").push(t);
}

/// Drains every timing recorded by [`ExperimentMatrix::timed`] matrices
/// since the last drain — how `reproduce_all` collects per-section
/// sharding evidence without threading a collector through every
/// experiment function.
pub fn drain_timings() -> Vec<MatrixTiming> {
    std::mem::take(&mut *timing_log().lock().expect("timing log poisoned"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fade_trace::bench;

    fn tiny(bench_name: &str, monitor: &str) -> Experiment {
        Experiment::new(
            bench::by_name(bench_name).unwrap(),
            monitor,
            SystemConfig::fade_single_core(),
        )
        .engine(Engine::Cycle)
        .window(1_000, 4_000)
    }

    #[test]
    fn reports_come_back_in_declaration_order() {
        let mut m = ExperimentMatrix::new().workers(4);
        m.push(tiny("mcf", "AddrCheck"));
        m.push(tiny("gcc", "MemLeak"));
        m.push(tiny("hmmer", "MemCheck"));
        let result = m.run();
        let names: Vec<&str> = result.reports.iter().map(|r| r.stats.benchmark.as_str()).collect();
        assert_eq!(names, vec!["mcf", "gcc", "hmmer"]);
        let monitors: Vec<&str> = result.reports.iter().map(|r| r.stats.monitor.as_str()).collect();
        assert_eq!(monitors, vec!["AddrCheck", "MemLeak", "MemCheck"]);
        assert!(result.serial_s > 0.0 && result.wall_s > 0.0);
    }

    #[test]
    fn empty_matrix_runs() {
        let result = ExperimentMatrix::new().run();
        assert!(result.reports.is_empty());
    }

    #[test]
    fn timings_are_recorded_and_drained() {
        drain_timings();
        let mut m = ExperimentMatrix::new().timed("unit-test");
        m.push(tiny("mcf", "AddrCheck"));
        m.run();
        let timings = drain_timings();
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].label, "unit-test");
        assert_eq!(timings[0].experiments, 1);
        assert!(drain_timings().is_empty(), "drain must empty the log");
    }
}
