//! Sensitivity analysis of FADE's hardware parameters — the study the
//! paper performed but excluded for space ("A sensitivity analysis for
//! these two structures ... shows that this design point offers the
//! best cost-performance ratio", Section 6). Sweeps the MD cache
//! capacity, M-TLB reach, FSQ depth, and the two decoupling queues, and
//! prints slowdown plus the area cost of each cache point.

use fade_bench::{measure_len, warmup_len, Table};
use fade_sim::QueueDepth;
use fade_system::{run_experiment, SystemConfig};
use fade_trace::bench;

fn slow(cfg: &SystemConfig, monitor: &str, workload: &str) -> f64 {
    let b = bench::by_name(workload).unwrap();
    run_experiment(&b, monitor, cfg, warmup_len(), measure_len()).slowdown()
}

fn main() {
    let monitor = "MemLeak";
    let workload = "gcc";
    println!("Sensitivity sweeps ({monitor} on {workload}, single-core 4-way OoO FADE)\n");

    println!("MD cache capacity (2-way, 64B lines; paper design point: 4KB)");
    let mut t = Table::new(["capacity", "slowdown", "cache area (mm^2)"]);
    for kb in [1u32, 2, 4, 8, 16] {
        let cfg = SystemConfig::fade_single_core().with_md_cache_bytes(kb * 1024);
        let est = fade_power::cache_model((kb * 1024) as u64, 2, 64, 2.0);
        t.row([
            format!("{kb} KB"),
            format!("{:.2}", slow(&cfg, monitor, workload)),
            format!("{:.4}", est.area_mm2),
        ]);
    }
    t.print();

    println!("\nM-TLB entries (paper design point: 16)");
    let mut t = Table::new(["entries", "slowdown"]);
    for n in [4usize, 8, 16, 32, 64] {
        let cfg = SystemConfig::fade_single_core().with_tlb_entries(n);
        t.row([n.to_string(), format!("{:.2}", slow(&cfg, monitor, workload))]);
    }
    t.print();

    println!("\nFSQ entries (non-blocking filtering; paper design point: 16)");
    let mut t = Table::new(["entries", "slowdown"]);
    for n in [1usize, 2, 4, 8, 16, 32] {
        let cfg = SystemConfig::fade_single_core().with_fsq_entries(n);
        t.row([n.to_string(), format!("{:.2}", slow(&cfg, monitor, workload))]);
    }
    t.print();

    println!("\nEvent queue depth (paper design point: 32)");
    let mut t = Table::new(["entries", "slowdown"]);
    for n in [8usize, 16, 32, 64, 128, 1024] {
        let cfg = SystemConfig::fade_single_core().with_event_queue(QueueDepth::Bounded(n));
        t.row([n.to_string(), format!("{:.2}", slow(&cfg, monitor, workload))]);
    }
    t.print();

    println!("\nUnfiltered queue depth (paper design point: 16)");
    let mut t = Table::new(["entries", "slowdown"]);
    for n in [2usize, 4, 8, 16, 32, 64] {
        let mut cfg = SystemConfig::fade_single_core();
        cfg.unfiltered_queue = QueueDepth::Bounded(n);
        t.row([n.to_string(), format!("{:.2}", slow(&cfg, monitor, workload))]);
    }
    t.print();
}
