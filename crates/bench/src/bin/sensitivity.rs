//! Sensitivity analysis of FADE's hardware parameters — the study the
//! paper performed but excluded for space ("A sensitivity analysis for
//! these two structures ... shows that this design point offers the
//! best cost-performance ratio", Section 6). Sweeps the MD cache
//! capacity, M-TLB reach, FSQ depth, and the two decoupling queues, and
//! prints slowdown plus the area cost of each cache point.
//!
//! Every sweep point is declared up front and the whole grid runs
//! through the sharded `ExperimentMatrix` driver.

use fade_bench::{Experiment, ExperimentMatrix, Table};
use fade_sim::QueueDepth;
use fade_system::SystemConfig;
use fade_trace::bench;

const MONITOR: &str = "MemLeak";
const WORKLOAD: &str = "gcc";

const MD_CACHE_KB: [u32; 5] = [1, 2, 4, 8, 16];
const TLB_ENTRIES: [usize; 5] = [4, 8, 16, 32, 64];
const FSQ_ENTRIES: [usize; 6] = [1, 2, 4, 8, 16, 32];
const EVENT_QUEUE: [usize; 6] = [8, 16, 32, 64, 128, 1024];
const UNFILTERED_QUEUE: [usize; 6] = [2, 4, 8, 16, 32, 64];

fn main() {
    let b = bench::by_name(WORKLOAD).unwrap();
    let pt = |cfg: SystemConfig| Experiment::new(b.clone(), MONITOR, cfg);

    let mut matrix = ExperimentMatrix::new();
    for kb in MD_CACHE_KB {
        matrix.push(pt(SystemConfig::fade_single_core().with_md_cache_bytes(kb * 1024)));
    }
    for n in TLB_ENTRIES {
        matrix.push(pt(SystemConfig::fade_single_core().with_tlb_entries(n)));
    }
    for n in FSQ_ENTRIES {
        matrix.push(pt(SystemConfig::fade_single_core().with_fsq_entries(n)));
    }
    for n in EVENT_QUEUE {
        matrix.push(pt(
            SystemConfig::fade_single_core().with_event_queue(QueueDepth::Bounded(n))
        ));
    }
    for n in UNFILTERED_QUEUE {
        let mut cfg = SystemConfig::fade_single_core();
        cfg.unfiltered_queue = QueueDepth::Bounded(n);
        matrix.push(pt(cfg));
    }
    let mut runs = matrix.run_stats().into_iter();
    let mut slow = || -> f64 { runs.next().expect("one result per sweep point").slowdown() };

    println!("Sensitivity sweeps ({MONITOR} on {WORKLOAD}, single-core 4-way OoO FADE)\n");

    println!("MD cache capacity (2-way, 64B lines; paper design point: 4KB)");
    let mut t = Table::new(["capacity", "slowdown", "cache area (mm^2)"]);
    for kb in MD_CACHE_KB {
        let est = fade_power::cache_model((kb * 1024) as u64, 2, 64, 2.0);
        t.row([
            format!("{kb} KB"),
            format!("{:.2}", slow()),
            format!("{:.4}", est.area_mm2),
        ]);
    }
    t.print();

    println!("\nM-TLB entries (paper design point: 16)");
    let mut t = Table::new(["entries", "slowdown"]);
    for n in TLB_ENTRIES {
        t.row([n.to_string(), format!("{:.2}", slow())]);
    }
    t.print();

    println!("\nFSQ entries (non-blocking filtering; paper design point: 16)");
    let mut t = Table::new(["entries", "slowdown"]);
    for n in FSQ_ENTRIES {
        t.row([n.to_string(), format!("{:.2}", slow())]);
    }
    t.print();

    println!("\nEvent queue depth (paper design point: 32)");
    let mut t = Table::new(["entries", "slowdown"]);
    for n in EVENT_QUEUE {
        t.row([n.to_string(), format!("{:.2}", slow())]);
    }
    t.print();

    println!("\nUnfiltered queue depth (paper design point: 16)");
    let mut t = Table::new(["entries", "slowdown"]);
    for n in UNFILTERED_QUEUE {
        t.row([n.to_string(), format!("{:.2}", slow())]);
    }
    t.print();
}
