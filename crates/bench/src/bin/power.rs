//! Regenerates the paper's Section 7.6 area/power numbers.

fn main() {
    print!("{}", fade_bench::experiments::power());
}
