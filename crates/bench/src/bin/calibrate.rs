//! Calibration diagnostic: per monitor × benchmark, print the raw
//! quantities the paper's figures depend on, plus the accelerator's
//! stall breakdown. Not a paper figure itself — a tuning aid.
//!
//! The whole monitor × benchmark × {FADE, unaccelerated} grid is one
//! `ExperimentMatrix`, sharded across workers.

use fade_bench::{experiments::suite_for, Experiment, ExperimentMatrix, Table};
use fade_monitors::all_monitors;
use fade_system::SystemConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let only_monitor = args.first().cloned();
    let selected = |name: &str| match &only_monitor {
        Some(m) => name.eq_ignore_ascii_case(m),
        None => true,
    };

    let mut matrix = ExperimentMatrix::new();
    for mon in all_monitors() {
        if !selected(mon.name()) {
            continue;
        }
        for b in suite_for(mon.name()) {
            matrix.push(Experiment::new(b.clone(), mon.name(), SystemConfig::fade_single_core()));
            matrix.push(Experiment::new(
                b,
                mon.name(),
                SystemConfig::unaccelerated_single_core(),
            ));
        }
    }
    let mut runs = matrix.run_stats().into_iter();

    for mon in all_monitors() {
        if !selected(mon.name()) {
            continue;
        }
        println!("== {} ==", mon.name());
        let mut t = Table::new([
            "bench", "appIPC", "monIPC", "filt%", "sw-slow", "fade-slow", "ufq%", "drain%",
            "suu%", "md%", "tlb%", "appblk%", "occ",
        ]);
        for b in suite_for(mon.name()) {
            let f = runs.next().expect("one FADE run per bench");
            let u = runs.next().expect("one unaccelerated run per bench");
            let fs = f.fade.unwrap();
            let cyc = f.cycles.max(1) as f64;
            t.row([
                b.name.to_string(),
                format!("{:.2}", f.app_ipc()),
                format!("{:.2}", f.monitored_ipc()),
                format!("{:.1}", 100.0 * f.filtering_ratio()),
                format!("{:.2}", u.slowdown()),
                format!("{:.2}", f.slowdown()),
                format!("{:.1}", 100.0 * fs.ufq_full_stall_cycles as f64 / cyc),
                format!("{:.1}", 100.0 * fs.drain_stall_cycles as f64 / cyc),
                format!("{:.1}", 100.0 * fs.suu_busy_cycles as f64 / cyc),
                format!("{:.1}", 100.0 * fs.md_miss_stall_cycles as f64 / cyc),
                format!("{:.1}", 100.0 * fs.tlb_miss_stall_cycles as f64 / cyc),
                format!("{:.1}", 100.0 * f.util.app_idle as f64 / cyc),
                format!("{:.0}", f.occupancy.mean()),
            ]);
        }
        t.print();
        println!();
    }
}
