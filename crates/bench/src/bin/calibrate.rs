//! Calibration diagnostic: per monitor × benchmark, print the raw
//! quantities the paper's figures depend on, plus the accelerator's
//! stall breakdown. Not a paper figure itself — a tuning aid.

use fade_bench::{measure_len, warmup_len, Table};
use fade_monitors::all_monitors;
use fade_system::{run_experiment, SystemConfig};
use fade_trace::bench;

fn main() {
    let warm = warmup_len();
    let meas = measure_len();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let only_monitor = args.first().cloned();

    for mon in all_monitors() {
        if let Some(m) = &only_monitor {
            if !mon.name().eq_ignore_ascii_case(m) {
                continue;
            }
        }
        let suite = match mon.name() {
            "AtomCheck" => bench::parallel_suite(),
            "TaintCheck" => bench::taint_suite(),
            _ => bench::spec_int_suite(),
        };
        println!("== {} ==", mon.name());
        let mut t = Table::new([
            "bench", "appIPC", "monIPC", "filt%", "sw-slow", "fade-slow", "ufq%", "drain%",
            "suu%", "md%", "tlb%", "appblk%", "occ",
        ]);
        for b in &suite {
            let f = run_experiment(b, mon.name(), &SystemConfig::fade_single_core(), warm, meas);
            let u = run_experiment(
                b,
                mon.name(),
                &SystemConfig::unaccelerated_single_core(),
                warm,
                meas,
            );
            let fs = f.fade.unwrap();
            let cyc = f.cycles.max(1) as f64;
            t.row([
                b.name.to_string(),
                format!("{:.2}", f.app_ipc()),
                format!("{:.2}", f.monitored_ipc()),
                format!("{:.1}", 100.0 * f.filtering_ratio()),
                format!("{:.2}", u.slowdown()),
                format!("{:.2}", f.slowdown()),
                format!("{:.1}", 100.0 * fs.ufq_full_stall_cycles as f64 / cyc),
                format!("{:.1}", 100.0 * fs.drain_stall_cycles as f64 / cyc),
                format!("{:.1}", 100.0 * fs.suu_busy_cycles as f64 / cyc),
                format!("{:.1}", 100.0 * fs.md_miss_stall_cycles as f64 / cyc),
                format!("{:.1}", 100.0 * fs.tlb_miss_stall_cycles as f64 / cyc),
                format!("{:.1}", 100.0 * f.util.app_idle as f64 / cyc),
                format!("{:.0}", f.occupancy.mean()),
            ]);
        }
        t.print();
        println!();
    }
}
