//! Calibration diagnostic: sample the register-metadata population and
//! report breakdowns per monitor. Not a paper figure — a tuning aid.
//!
//! Demonstrates the incremental `Session` driving style: step the
//! run, inspect live state, repeat.

use fade_isa::Reg;
use fade_system::{Session, SystemConfig};
use fade_trace::bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mon = args.first().map(String::as_str).unwrap_or("MemCheck");
    let bname = args.get(1).map(String::as_str).unwrap_or("gcc");
    let b = bench::by_name(bname).unwrap();
    let mut session = Session::builder()
        .monitor(mon)
        .source(b)
        .config(SystemConfig::fade_single_core())
        .build()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    let mut dirty_regs = 0u64;
    let mut samples = 0u64;
    for _ in 0..200 {
        session.run(1000).expect("diag run");
        for r in Reg::all() {
            let v = session.state().reg_meta(r);
            let clean = match mon {
                "MemCheck" => v == 3,
                _ => v == 0,
            };
            if !clean {
                dirty_regs += 1;
            }
            samples += 1;
        }
    }
    println!(
        "{mon}/{bname}: dirty register fraction = {:.3}",
        dirty_regs as f64 / samples as f64
    );
    for r in session.monitor().reports().iter().take(10) {
        println!("{r}");
    }
}
