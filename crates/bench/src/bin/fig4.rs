//! Regenerates the paper's Figure 4 (see DESIGN.md section 4).

fn main() {
    print!("{}", fade_bench::experiments::fig4());
}
