//! Regenerates the paper's Figure 10 (see DESIGN.md section 4).

fn main() {
    print!("{}", fade_bench::experiments::fig10());
}
