//! Ablations of FADE's design choices (DESIGN.md section 4):
//!
//! 1. **Stack-Update Unit** (Section 4.2): with the SUU removed, stack
//!    updates run as software handlers on the monitor core.
//! 2. **Partial filtering** (Section 4.1): with the partial bit
//!    cleared, every AtomCheck event takes the full handler.
//! 3. **Non-blocking filtering** (Section 5): blocking baseline —
//!    also in Figure 11(c); repeated here per benchmark.
//! 4. **Multi-shot encoding** (Section 4.1): MemCheck re-encoded as
//!    two-shot chains — same filtering, one extra cycle per chained
//!    event.
//!
//! Each ablated point is an `Experiment` carrying its edited FADE
//! program; the whole grid runs through the sharded matrix driver.

use fade::{EventTableEntry, FadeProgram, FilterMode};
use fade_bench::{Experiment, ExperimentMatrix, Table};
use fade_isa::event_ids;
use fade_monitors::monitor_by_name;
use fade_system::SystemConfig;
use fade_trace::bench;

/// The monitor's own program, with an edit applied.
fn edited_program(monitor: &str, edit: impl FnOnce(&mut FadeProgram)) -> FadeProgram {
    let mut program = monitor_by_name(monitor)
        .unwrap_or_else(|| panic!("unknown monitor {monitor}"))
        .program();
    edit(&mut program);
    program
}

/// Clears the partial bit on AtomCheck's load/store entries and makes
/// the clean check unsatisfiable, so every dispatch runs the long
/// handler (see DESIGN.md on why plain bit-clearing would over-filter).
fn no_partial(p: &mut FadeProgram) {
    for id in [event_ids::LOAD, event_ids::STORE] {
        let e = *p.table().entry(id).expect("AtomCheck programs loads/stores");
        let mut raw: EventTableEntry = e;
        raw.partial = false;
        // Without the partial bit a passing check would filter the
        // event outright and lose the access-type update; force
        // dispatch by making the check unsatisfiable.
        raw.operands[0].inv_id = raw.operands[0].inv_id.map(|_| fade::InvId::new(31));
        raw.operands[2].inv_id = raw.operands[2].inv_id.map(|_| fade::InvId::new(31));
        p.set_entry(id, raw);
        p.set_invariant(fade::InvId::new(31), 0xfe); // never matches
    }
}

fn main() {
    let cfg = SystemConfig::fade_single_core();
    let pt = |monitor: &str, workload: &str, cfg: &SystemConfig, program: FadeProgram| {
        Experiment::new(bench::by_name(workload).unwrap(), monitor, *cfg).program(program)
    };

    const SUU_POINTS: [(&str, &str); 3] =
        [("MemCheck", "gcc"), ("MemLeak", "gcc"), ("MemLeak", "astar")];
    const PARTIAL_POINTS: [&str; 3] = ["water", "ocean", "stream."];
    const BLOCKING_POINTS: [&str; 4] = ["astar", "gcc", "mcf", "omnet"];
    const MULTI_SHOT_POINTS: [&str; 2] = ["gcc", "hmmer"];

    let mut matrix = ExperimentMatrix::new();
    for (monitor, workload) in SUU_POINTS {
        matrix.push(pt(monitor, workload, &cfg, edited_program(monitor, |_| {})));
        matrix.push(pt(monitor, workload, &cfg, edited_program(monitor, |p| p.clear_suu())));
    }
    for workload in PARTIAL_POINTS {
        matrix.push(pt("AtomCheck", workload, &cfg, edited_program("AtomCheck", |_| {})));
        matrix.push(pt("AtomCheck", workload, &cfg, edited_program("AtomCheck", no_partial)));
    }
    for workload in BLOCKING_POINTS {
        matrix.push(pt("MemLeak", workload, &cfg, edited_program("MemLeak", |_| {})));
        matrix.push(pt(
            "MemLeak",
            workload,
            &cfg.with_mode(FilterMode::Blocking),
            edited_program("MemLeak", |_| {}),
        ));
    }
    for workload in MULTI_SHOT_POINTS {
        matrix.push(pt("MemCheck", workload, &cfg, edited_program("MemCheck", |_| {})));
        matrix.push(pt(
            "MemCheck",
            workload,
            &cfg,
            fade_monitors::MemCheck::new().program_multi_shot(),
        ));
    }

    let mut runs = matrix.run_stats().into_iter();
    let mut slow = || -> f64 { runs.next().expect("one result per ablation point").slowdown() };

    println!("Ablation 1: Stack-Update Unit (monitors that shadow the stack)");
    let mut t = Table::new(["monitor/bench", "with SUU", "SUU disabled (software)"]);
    for (monitor, workload) in SUU_POINTS {
        let (with_suu, without) = (slow(), slow());
        t.row([
            format!("{monitor}/{workload}"),
            format!("{with_suu:.2}"),
            format!("{without:.2}"),
        ]);
    }
    t.print();

    println!("\nAblation 2: partial filtering (AtomCheck)");
    let mut t = Table::new(["bench", "partial filtering", "full handler always"]);
    for workload in PARTIAL_POINTS {
        let (with_partial, without) = (slow(), slow());
        t.row([
            workload.to_string(),
            format!("{with_partial:.2}"),
            format!("{without:.2}"),
        ]);
    }
    t.print();

    println!("\nAblation 3: non-blocking filtering (per benchmark, MemLeak)");
    let mut t = Table::new(["bench", "non-blocking", "blocking"]);
    for workload in BLOCKING_POINTS {
        let (nb, blocking) = (slow(), slow());
        t.row([
            workload.to_string(),
            format!("{nb:.2}"),
            format!("{blocking:.2}"),
        ]);
    }
    t.print();

    println!("\nAblation 4: single-shot vs multi-shot encoding (MemCheck)");
    let mut t = Table::new(["bench", "single-shot", "two-shot chain"]);
    for workload in MULTI_SHOT_POINTS {
        let (single, multi) = (slow(), slow());
        t.row([
            workload.to_string(),
            format!("{single:.2}"),
            format!("{multi:.2}"),
        ]);
    }
    t.print();
}
