//! Ablations of FADE's design choices (DESIGN.md section 4):
//!
//! 1. **Stack-Update Unit** (Section 4.2): with the SUU removed, stack
//!    updates run as software handlers on the monitor core.
//! 2. **Partial filtering** (Section 4.1): with the partial bit
//!    cleared, every AtomCheck event takes the full handler.
//! 3. **Non-blocking filtering** (Section 5): blocking baseline —
//!    also in Figure 11(c); repeated here per benchmark.
//! 4. **Multi-shot encoding** (Section 4.1): MemCheck re-encoded as
//!    two-shot chains — same filtering, one extra cycle per chained
//!    event.

use fade::{EventTableEntry, FilterMode};
use fade_bench::{measure_len, warmup_len, Table};
use fade_isa::event_ids;
use fade_monitors::monitor_by_name;
use fade_system::{baseline_cycles, MonitoringSystem, SystemConfig};
use fade_trace::bench;

fn run_with_program(
    monitor: &str,
    workload: &str,
    cfg: &SystemConfig,
    edit: impl FnOnce(&mut fade::FadeProgram),
) -> f64 {
    let b = bench::by_name(workload).unwrap();
    let mon = monitor_by_name(monitor).unwrap();
    let mut program = mon.program();
    edit(&mut program);
    let mut sys = MonitoringSystem::with_program(&b, mon, program, cfg);
    let warm = warmup_len();
    let meas = measure_len();
    sys.run_instrs(warm);
    sys.start_measure();
    sys.run_instrs(meas);
    let base = baseline_cycles(&b, cfg.core, cfg.seed, warm, meas);
    sys.finish(b.name, base).slowdown()
}

fn main() {
    let cfg = SystemConfig::fade_single_core();

    println!("Ablation 1: Stack-Update Unit (monitors that shadow the stack)");
    let mut t = Table::new(["monitor/bench", "with SUU", "SUU disabled (software)"]);
    for (monitor, workload) in [("MemCheck", "gcc"), ("MemLeak", "gcc"), ("MemLeak", "astar")] {
        let with_suu = run_with_program(monitor, workload, &cfg, |_| {});
        let without = run_with_program(monitor, workload, &cfg, |p| p.clear_suu());
        t.row([
            format!("{monitor}/{workload}"),
            format!("{with_suu:.2}"),
            format!("{without:.2}"),
        ]);
    }
    t.print();

    println!("\nAblation 2: partial filtering (AtomCheck)");
    let mut t = Table::new(["bench", "partial filtering", "full handler always"]);
    for workload in ["water", "ocean", "stream."] {
        let with_partial = run_with_program("AtomCheck", workload, &cfg, |_| {});
        let without = run_with_program("AtomCheck", workload, &cfg, |p| {
            // Clear the partial bit: a passed check no longer selects
            // the short handler, so every dispatch runs the long one.
            for id in [event_ids::LOAD, event_ids::STORE] {
                let e = *p.table().entry(id).expect("AtomCheck programs loads/stores");
                let mut raw: EventTableEntry = e;
                raw.partial = false;
                // Without the partial bit a passing check would filter
                // the event outright and lose the access-type update;
                // force dispatch by making the check unsatisfiable.
                raw.operands[0].inv_id = raw.operands[0].inv_id.map(|_| fade::InvId::new(31));
                raw.operands[2].inv_id = raw.operands[2].inv_id.map(|_| fade::InvId::new(31));
                p.set_entry(id, raw);
                p.set_invariant(fade::InvId::new(31), 0xfe); // never matches
            }
        });
        t.row([
            workload.to_string(),
            format!("{with_partial:.2}"),
            format!("{without:.2}"),
        ]);
    }
    t.print();

    println!("\nAblation 3: non-blocking filtering (per benchmark, MemLeak)");
    let mut t = Table::new(["bench", "non-blocking", "blocking"]);
    for workload in ["astar", "gcc", "mcf", "omnet"] {
        let nb = run_with_program("MemLeak", workload, &cfg, |_| {});
        let blocking = run_with_program(
            "MemLeak",
            workload,
            &cfg.with_mode(FilterMode::Blocking),
            |_| {},
        );
        t.row([
            workload.to_string(),
            format!("{nb:.2}"),
            format!("{blocking:.2}"),
        ]);
    }
    t.print();

    println!("\nAblation 4: single-shot vs multi-shot encoding (MemCheck)");
    let mut t = Table::new(["bench", "single-shot", "two-shot chain"]);
    for workload in ["gcc", "hmmer"] {
        let single = run_with_program("MemCheck", workload, &cfg, |_| {});
        let multi = {
            let b = bench::by_name(workload).unwrap();
            let mon = monitor_by_name("memcheck").unwrap();
            let program = fade_monitors::MemCheck::new().program_multi_shot();
            let mut sys = MonitoringSystem::with_program(&b, mon, program, &cfg);
            let warm = warmup_len();
            let meas = measure_len();
            sys.run_instrs(warm);
            sys.start_measure();
            sys.run_instrs(meas);
            let base = baseline_cycles(&b, cfg.core, cfg.seed, warm, meas);
            sys.finish(b.name, base).slowdown()
        };
        t.row([
            workload.to_string(),
            format!("{single:.2}"),
            format!("{multi:.2}"),
        ]);
    }
    t.print();
}
