//! Regenerates the paper's table2 (see DESIGN.md section 4).

fn main() {
    print!("{}", fade_bench::experiments::table2());
}
