//! Runs every experiment of the paper's evaluation section in order,
//! printing paper-style tables. Scale the window with FADE_MEASURE /
//! FADE_WARMUP (instructions).

use fade_bench::experiments as ex;

fn main() {
    let sections: [(&str, fn() -> String); 8] = [
        ("Figure 2", ex::fig2),
        ("Figure 3", ex::fig3),
        ("Figure 4", ex::fig4),
        ("Table 2", ex::table2),
        ("Figure 9", ex::fig9),
        ("Figure 10", ex::fig10),
        ("Figure 11", ex::fig11),
        ("Section 7.6", ex::power),
    ];
    for (name, f) in sections {
        println!("================================================================");
        println!("{name}");
        println!("================================================================");
        println!("{}", f());
    }
}
