//! Runs every experiment of the paper's evaluation section in order,
//! printing paper-style tables, then measures filtering and
//! full-system throughput and dumps both to `BENCH_pipeline.json` (the
//! machine-readable seed of the repo's performance trajectory). Scale
//! the window with FADE_MEASURE / FADE_WARMUP (instructions).
//!
//! `--mode batched` (or `FADE_MODE=batched`) runs every experiment
//! through the batched system engine: several times faster, bit-exact
//! monitor results, sampled cycle estimates. `--mode cycle` (default)
//! is the cycle-accurate reference.

use fade_bench::experiments as ex;
use fade_system::{measure_system_throughput, measure_throughput_matrix, SystemConfig};
use fade_trace::bench;

/// (benchmark, monitor) points for the throughput dump: one
/// high-filtering and one low-filtering workload.
const PIPELINE_POINTS: [(&str, &str); 2] = [("hmmer", "AddrCheck"), ("gcc", "MemLeak")];
const BATCH_SIZES: [usize; 4] = [1, 8, 32, 256];
const PIPELINE_EVENTS: u64 = 200_000;

fn pipeline_json() -> String {
    let mut rows = Vec::new();
    for (bench_name, monitor) in PIPELINE_POINTS {
        let b = bench::by_name(bench_name).unwrap();
        for r in measure_throughput_matrix(&b, monitor, &BATCH_SIZES, PIPELINE_EVENTS) {
            let batch = r.batch_size;
            println!(
                "  {bench_name}/{monitor} batch {batch:>3}: {:>6.2} Mev/s batched, {:>6.2} Mev/s per-event ({:.2}x, {:.0}% fast path)",
                r.batched_rate() / 1e6,
                r.per_event_rate() / 1e6,
                r.speedup(),
                100.0 * r.fast_path_fraction(),
            );
            rows.push(format!(
                concat!(
                    "    {{\"benchmark\": \"{}\", \"monitor\": \"{}\", \"batch_size\": {}, ",
                    "\"events\": {}, \"events_per_sec_batched\": {:.0}, ",
                    "\"events_per_sec_per_event\": {:.0}, \"speedup\": {:.3}, ",
                    "\"fast_path_fraction\": {:.4}, \"filtering_ratio\": {:.4}}}"
                ),
                r.benchmark,
                r.monitor,
                r.batch_size,
                r.events,
                r.batched_rate(),
                r.per_event_rate(),
                r.speedup(),
                r.fast_path_fraction(),
                r.fade.filtering_ratio(),
            ));
        }
    }
    rows.join(",\n")
}

/// Full-system (commit process + queues + monitor thread) throughput:
/// cycle-accurate vs batched execution over the same 200k-event trace
/// prefix. Each measurement also differentially checks bit-exactness
/// of monitor-visible results between the two engines.
fn system_json() -> String {
    let mut rows = Vec::new();
    for (bench_name, monitor) in PIPELINE_POINTS {
        let b = bench::by_name(bench_name).unwrap();
        let r = measure_system_throughput(
            &b,
            monitor,
            &SystemConfig::fade_single_core(),
            PIPELINE_EVENTS,
        );
        println!(
            "  {bench_name}/{monitor} system: {:>6.2} Mev/s batched, {:>6.2} Mev/s cycle ({:.2}x, {:.0}% fast path, cycle est err {:.1}%)",
            r.batched_rate() / 1e6,
            r.cycle_rate() / 1e6,
            r.speedup(),
            100.0 * r.fast_path_fraction(),
            100.0 * r.cycle_error(),
        );
        rows.push(format!(
            concat!(
                "    {{\"benchmark\": \"{}\", \"monitor\": \"{}\", \"events\": {}, ",
                "\"events_per_sec_batched\": {:.0}, \"events_per_sec_cycle\": {:.0}, ",
                "\"speedup\": {:.3}, \"fast_path_fraction\": {:.4}, ",
                "\"exact_cycles\": {}, \"estimated_cycles\": {}, \"cycle_error\": {:.4}, ",
                "\"sample_period\": {}, \"sample_window\": {}}}"
            ),
            r.benchmark,
            r.monitor,
            r.events,
            r.batched_rate(),
            r.cycle_rate(),
            r.speedup(),
            r.fast_path_fraction(),
            r.exact_cycles,
            r.estimated_cycles,
            r.cycle_error(),
            r.sample_period,
            r.sample_window,
        ));
    }
    rows.join(",\n")
}

type Section = (&'static str, fn() -> String);

fn main() {
    // `--mode batched|cycle` selects the execution engine for every
    // experiment; the env var is how `experiments::run` (and any figure
    // binary run standalone) picks it up.
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--mode") {
        match args.get(i + 1).map(String::as_str) {
            Some(m @ ("batched" | "cycle")) => std::env::set_var("FADE_MODE", m),
            other => {
                eprintln!("--mode expects 'batched' or 'cycle', got {other:?}");
                std::process::exit(2);
            }
        }
    }
    println!(
        "execution mode: {:?} (override with --mode batched|cycle)",
        fade_bench::exec_mode()
    );
    let sections: [Section; 8] = [
        ("Figure 2", ex::fig2),
        ("Figure 3", ex::fig3),
        ("Figure 4", ex::fig4),
        ("Table 2", ex::table2),
        ("Figure 9", ex::fig9),
        ("Figure 10", ex::fig10),
        ("Figure 11", ex::fig11),
        ("Section 7.6", ex::power),
    ];
    for (name, f) in sections {
        println!("================================================================");
        println!("{name}");
        println!("================================================================");
        println!("{}", f());
    }
    println!("================================================================");
    println!("Pipeline throughput (batched vs. per-event)");
    println!("================================================================");
    let pipeline_rows = pipeline_json();
    println!("================================================================");
    println!("System throughput (batched engine vs. cycle engine)");
    println!("================================================================");
    let system_rows = system_json();
    let json = format!(
        "{{\n  \"schema\": \"fade-pipeline-throughput/v2\",\n  \"results\": [\n{pipeline_rows}\n  ],\n  \"system_results\": [\n{system_rows}\n  ]\n}}\n",
    );
    let path = "BENCH_pipeline.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
