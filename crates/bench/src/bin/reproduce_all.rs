//! Runs every experiment of the paper's evaluation section in order,
//! printing paper-style tables, then measures filtering throughput
//! across batch sizes and dumps it to `BENCH_pipeline.json` (the
//! machine-readable seed of the repo's performance trajectory). Scale
//! the window with FADE_MEASURE / FADE_WARMUP (instructions).

use fade_bench::experiments as ex;
use fade_system::measure_throughput_matrix;
use fade_trace::bench;

/// (benchmark, monitor) points for the throughput dump: one
/// high-filtering and one low-filtering workload.
const PIPELINE_POINTS: [(&str, &str); 2] = [("hmmer", "AddrCheck"), ("gcc", "MemLeak")];
const BATCH_SIZES: [usize; 4] = [1, 8, 32, 256];
const PIPELINE_EVENTS: u64 = 200_000;

fn pipeline_json() -> String {
    let mut rows = Vec::new();
    for (bench_name, monitor) in PIPELINE_POINTS {
        let b = bench::by_name(bench_name).unwrap();
        for r in measure_throughput_matrix(&b, monitor, &BATCH_SIZES, PIPELINE_EVENTS) {
            let batch = r.batch_size;
            println!(
                "  {bench_name}/{monitor} batch {batch:>3}: {:>6.2} Mev/s batched, {:>6.2} Mev/s per-event ({:.2}x, {:.0}% fast path)",
                r.batched_rate() / 1e6,
                r.per_event_rate() / 1e6,
                r.speedup(),
                100.0 * r.fast_path_fraction(),
            );
            rows.push(format!(
                concat!(
                    "    {{\"benchmark\": \"{}\", \"monitor\": \"{}\", \"batch_size\": {}, ",
                    "\"events\": {}, \"events_per_sec_batched\": {:.0}, ",
                    "\"events_per_sec_per_event\": {:.0}, \"speedup\": {:.3}, ",
                    "\"fast_path_fraction\": {:.4}, \"filtering_ratio\": {:.4}}}"
                ),
                r.benchmark,
                r.monitor,
                r.batch_size,
                r.events,
                r.batched_rate(),
                r.per_event_rate(),
                r.speedup(),
                r.fast_path_fraction(),
                r.fade.filtering_ratio(),
            ));
        }
    }
    format!(
        "{{\n  \"schema\": \"fade-pipeline-throughput/v1\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

type Section = (&'static str, fn() -> String);

fn main() {
    let sections: [Section; 8] = [
        ("Figure 2", ex::fig2),
        ("Figure 3", ex::fig3),
        ("Figure 4", ex::fig4),
        ("Table 2", ex::table2),
        ("Figure 9", ex::fig9),
        ("Figure 10", ex::fig10),
        ("Figure 11", ex::fig11),
        ("Section 7.6", ex::power),
    ];
    for (name, f) in sections {
        println!("================================================================");
        println!("{name}");
        println!("================================================================");
        println!("{}", f());
    }
    println!("================================================================");
    println!("Pipeline throughput (batched vs. per-event)");
    println!("================================================================");
    let json = pipeline_json();
    let path = "BENCH_pipeline.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
