//! Runs every experiment of the paper's evaluation section in order,
//! printing paper-style tables, then measures filtering, full-system
//! and trace-codec throughput and dumps everything to
//! `BENCH_pipeline.json` (the machine-readable seed of the repo's
//! performance trajectory). Scale the window with FADE_MEASURE /
//! FADE_WARMUP (instructions).
//!
//! Every experiment section runs as a sharded `ExperimentMatrix`
//! across `--workers N` threads (default: all cores; also
//! `FADE_WORKERS`); the JSON's `matrix_results` rows record each
//! section's worker count, sharded wall-clock, and serial-equivalent
//! time (the sum of per-run wall clocks — what one worker would have
//! paid), so the sharding win lands in the perf trajectory.
//!
//! `--mode batched` (or `FADE_MODE=batched`) runs every experiment
//! through the batched system engine: several times faster, bit-exact
//! monitor results, sampled cycle estimates. `--mode cycle` (default)
//! is the cycle-accurate reference.
//!
//! `--record-dir DIR` freezes each throughput point's trace prefix to
//! `DIR/<bench>-<monitor>.fadet`; `--replay-dir DIR` drives the system
//! throughput section from those files instead of the generator (both
//! flags together record then immediately replay). Replayed runs keep
//! the differential checks: both engines consume the identical frozen
//! trace and must agree on every monitor-visible result.

use std::path::{Path, PathBuf};

use fade_bench::experiments as ex;
use fade_bench::{drain_timings, MatrixTiming};
use fade_report::{JsonDocument, JsonObject};
use fade_service::{measure_service_throughput, EngineSel, LoadOptions};
use fade_system::{
    measure_parallel_replay, measure_synthetic_filterable, measure_system_throughput_records,
    measure_throughput_matrix, measure_trace_codec_records, record_trace_prefix, SystemConfig,
};
use fade_trace::{bench, read_trace_file, write_trace_file, TraceMeta, TraceRecord};

/// (benchmark, monitor) points for the throughput dump: one
/// high-filtering and one low-filtering workload.
const PIPELINE_POINTS: [(&str, &str); 2] = [("hmmer", "AddrCheck"), ("gcc", "MemLeak")];
const BATCH_SIZES: [usize; 4] = [1, 8, 32, 256];
const PIPELINE_EVENTS: u64 = 200_000;
/// Batch size of the synthetic all-filterable row (the SoA acceptance
/// point).
const SYNTHETIC_BATCH: usize = 32;

/// One pipeline row (fields unchanged since the v6 schema): the v5
/// fields plus the vectorized (SoA block) engine's rate and its
/// speedup over the scalar batched loop. The v7 bump added the
/// per-stratum sampling columns to the *system* rows; v8 added the
/// `service_results` section (and moved all emission onto the shared
/// `fade_report` writer); v9 added the `parallel_results` section
/// (epoch-parallel whole-trace replay vs sequential).
fn pipeline_row(r: &fade_system::ThroughputReport) -> String {
    println!(
        "  {}/{} batch {:>3}: {:>6.2} Mev/s batched, {:>6.2} Mev/s vectorized, {:>6.2} Mev/s per-event ({:.2}x vec, {:.0}% fast path)",
        r.benchmark,
        r.monitor,
        r.batch_size,
        r.batched_rate() / 1e6,
        r.vectorized_rate() / 1e6,
        r.per_event_rate() / 1e6,
        r.vector_speedup(),
        100.0 * r.fast_path_fraction(),
    );
    JsonObject::new()
        .str("benchmark", &r.benchmark)
        .str("monitor", &r.monitor)
        .uint("batch_size", r.batch_size as u64)
        .uint("events", r.events)
        .float("events_per_sec_batched", r.batched_rate(), 0)
        .float("events_per_sec_vectorized", r.vectorized_rate(), 0)
        .float("events_per_sec_per_event", r.per_event_rate(), 0)
        .float("speedup", r.speedup(), 3)
        .float("vector_speedup", r.vector_speedup(), 3)
        .float("fast_path_fraction", r.fast_path_fraction(), 4)
        .float("filtering_ratio", r.fade.filtering_ratio(), 4)
        .render()
}

fn pipeline_json() -> Vec<String> {
    let mut rows = Vec::new();
    for (bench_name, monitor) in PIPELINE_POINTS {
        let b = bench::by_name(bench_name).unwrap();
        for r in measure_throughput_matrix(&b, monitor, &BATCH_SIZES, PIPELINE_EVENTS) {
            rows.push(pipeline_row(&r));
        }
    }
    // The all-filterable synthetic stream: the vector kernel's best
    // case, and the acceptance point for the SoA speedup target.
    let synth = measure_synthetic_filterable(SYNTHETIC_BATCH, PIPELINE_EVENTS);
    rows.push(pipeline_row(&synth));
    rows
}

/// The `.fadet` path a pipeline point records to / replays from.
fn trace_path(dir: &Path, bench_name: &str, monitor: &str) -> PathBuf {
    dir.join(format!("{bench_name}-{monitor}.fadet"))
}

/// One pre-generated pipeline-point prefix, shared by the record,
/// codec and (live) system sections so the trace is generated once.
struct PointPrefix {
    records: Vec<TraceRecord>,
    instrs: u64,
}

fn point_prefixes() -> Vec<PointPrefix> {
    let cfg = SystemConfig::fade_single_core();
    PIPELINE_POINTS
        .iter()
        .map(|(bench_name, monitor)| {
            let b = bench::by_name(bench_name).unwrap();
            let (records, instrs) = record_trace_prefix(&b, monitor, cfg.seed, PIPELINE_EVENTS);
            PointPrefix { records, instrs }
        })
        .collect()
}

/// Freezes each pipeline point's trace prefix to `dir`.
fn record_traces(dir: &Path, prefixes: &[PointPrefix]) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    for ((bench_name, monitor), p) in PIPELINE_POINTS.iter().zip(prefixes) {
        let cfg = SystemConfig::fade_single_core();
        let path = trace_path(dir, bench_name, monitor);
        let meta = TraceMeta::new(*bench_name, cfg.seed);
        write_trace_file(&path, &meta, &p.records)
            .unwrap_or_else(|e| panic!("record {}: {e}", path.display()));
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        println!(
            "  recorded {} ({} records, {} instrs, {:.1} MiB, {:.2} B/record)",
            path.display(),
            p.records.len(),
            p.instrs,
            bytes as f64 / (1 << 20) as f64,
            bytes as f64 / p.records.len() as f64,
        );
    }
}

/// Loads a recorded pipeline point back, validating its provenance.
fn load_trace(dir: &Path, bench_name: &str, monitor: &str, seed: u64) -> (Vec<TraceRecord>, u64) {
    let path = trace_path(dir, bench_name, monitor);
    let (meta, records) =
        read_trace_file(&path).unwrap_or_else(|e| panic!("replay {}: {e}", path.display()));
    assert_eq!(
        (meta.bench.as_str(), meta.seed),
        (bench_name, seed),
        "{} was recorded for a different workload",
        path.display()
    );
    let instrs = records
        .iter()
        .filter(|r| matches!(r, TraceRecord::Instr(_)))
        .count() as u64;
    (records, instrs)
}

/// Full-system (commit process + queues + monitor thread) throughput:
/// cycle-accurate vs batched execution over the same 200k-event trace
/// prefix — generated live, or replayed from `--replay-dir`'s recorded
/// files. Each measurement also differentially checks bit-exactness of
/// monitor-visible results between the two engines.
fn system_json(replay_dir: Option<&Path>, prefixes: Vec<PointPrefix>) -> Vec<String> {
    let mut rows = Vec::new();
    for ((bench_name, monitor), p) in PIPELINE_POINTS.iter().copied().zip(prefixes) {
        let b = bench::by_name(bench_name).unwrap();
        let cfg = SystemConfig::fade_single_core();
        let (records, instrs) = match replay_dir {
            Some(dir) => load_trace(dir, bench_name, monitor, cfg.seed),
            None => (p.records, p.instrs),
        };
        let source = if replay_dir.is_some() { "replay" } else { "live" };
        let r = measure_system_throughput_records(&b, monitor, &cfg, records, instrs);
        println!(
            "  {bench_name}/{monitor} system ({source}): {:>6.2} Mev/s batched, {:>6.2} Mev/s cycle ({:.2}x, {:.0}% fast path, cycle est err {:.1}%)",
            r.batched_rate() / 1e6,
            r.cycle_rate() / 1e6,
            r.speedup(),
            100.0 * r.fast_path_fraction(),
            100.0 * r.cycle_error(),
        );
        // Since schema v7 each system row carries the estimator's
        // per-congestion-stratum interval breakdown alongside the
        // whole-run (production-rate) `rel_half_width`.
        let strata: Vec<String> = r
            .strata
            .iter()
            .map(|s| {
                JsonObject::new()
                    .uint("stratum", u64::from(s.stratum))
                    .uint("windows", s.windows as u64)
                    .uint("events", s.events)
                    .float("cpi", s.cpi, 4)
                    .opt_float("rel_half_width", s.rel_half_width, 4)
                    .opt_float("beta", s.beta, 4)
                    .render()
            })
            .collect();
        rows.push(
            JsonObject::new()
                .str("benchmark", &r.benchmark)
                .str("monitor", &r.monitor)
                .uint("events", r.events)
                .str("source", source)
                .float("events_per_sec_batched", r.batched_rate(), 0)
                .float("events_per_sec_cycle", r.cycle_rate(), 0)
                .float("speedup", r.speedup(), 3)
                .float("fast_path_fraction", r.fast_path_fraction(), 4)
                .uint("exact_cycles", r.exact_cycles)
                .uint("estimated_cycles", r.estimated_cycles)
                .float("cycle_error", r.cycle_error(), 4)
                .opt_float("rel_half_width", r.rel_half_width, 4)
                .uint("carried_seed_cycles", r.carried_seed_cycles)
                .uint("sample_period", r.sample_period)
                .uint("sample_window", r.sample_window)
                .array("strata", &strata)
                .render(),
        );
    }
    rows
}

/// Trace-codec throughput: live generation vs `.fadet` encode/decode
/// rates and the encoded-vs-raw size, per pipeline point. Replay is
/// worth having exactly when decode beats generation — both rates land
/// in the JSON so regressions surface.
fn trace_json(prefixes: &[PointPrefix]) -> Vec<String> {
    let mut rows = Vec::new();
    for ((bench_name, monitor), p) in PIPELINE_POINTS.iter().zip(prefixes) {
        let b = bench::by_name(bench_name).unwrap();
        let cfg = SystemConfig::fade_single_core();
        let r = measure_trace_codec_records(
            &b,
            monitor,
            cfg.seed,
            &p.records,
            p.instrs,
            PIPELINE_EVENTS,
        );
        println!(
            "  {bench_name}/{monitor} codec: {:>7.2} Mev/s replay vs {:>6.2} Mev/s generate ({:.2}x), encode {:.2} Mev/s, {:.2} B/record ({:.1}x smaller than raw)",
            r.replay_rate() / 1e6,
            r.gen_rate() / 1e6,
            r.replay_rate() / r.gen_rate(),
            r.encode_rate() / 1e6,
            r.encoded_bytes as f64 / r.records as f64,
            r.compression_ratio(),
        );
        rows.push(
            JsonObject::new()
                .str("benchmark", &r.benchmark)
                .str("monitor", &r.monitor)
                .uint("events", r.events)
                .uint("records", r.records)
                .uint("raw_bytes", r.raw_bytes)
                .uint("encoded_bytes", r.encoded_bytes)
                .float("compression_ratio", r.compression_ratio(), 3)
                .float("events_per_sec_generate", r.gen_rate(), 0)
                .float("events_per_sec_encode", r.encode_rate(), 0)
                .float("events_per_sec_replay", r.replay_rate(), 0)
                .render(),
        );
    }
    rows
}

type Section = (&'static str, fn() -> String);

/// One JSON row per `.timed(...)` matrix a section ran: the sharding
/// evidence (since schema v4).
fn matrix_json(rows: &[(String, MatrixTiming)]) -> Vec<String> {
    rows.iter()
        .map(|(section, t)| {
            JsonObject::new()
                .str("section", section)
                .str("matrix", &t.label)
                .uint("experiments", t.experiments as u64)
                .uint("workers", t.workers as u64)
                .float("wall_s", t.wall_s, 3)
                .float("serial_s", t.serial_s, 3)
                .float("speedup", t.speedup(), 3)
                .render()
        })
        .collect()
}

/// Epoch-parallel whole-trace replay vs sequential replay (since
/// schema v9): serial and parallel wall clocks per pipeline point, at
/// workers 1 (the speculation machinery's pure overhead — the < 5%
/// acceptance bar) and at the fleet worker count (the speedup), plus
/// the epoch scheduler's validate/re-run accounting. Each measurement
/// is also a differential check: the harness asserts bit-exact
/// monitor-visible results between the serial and parallel replays.
fn parallel_json() -> Vec<String> {
    let cfg = SystemConfig::fade_single_core();
    let fleet = fade_bench::default_workers().clamp(2, 8);
    let mut rows = Vec::new();
    for (bench_name, monitor) in PIPELINE_POINTS {
        let b = bench::by_name(bench_name).unwrap();
        for workers in [1, fleet] {
            let r = measure_parallel_replay(&b, monitor, &cfg, PIPELINE_EVENTS, workers);
            println!(
                "  {bench_name}/{monitor} replay x{workers}: {:.3}s serial vs {:.3}s parallel ({:.2}x, {} epochs, {} validated, {} rerun)",
                r.serial_s,
                r.parallel_s,
                r.speedup(),
                r.epochs.epochs,
                r.epochs.validated,
                r.epochs.rerun,
            );
            rows.push(
                JsonObject::new()
                    .str("benchmark", &r.benchmark)
                    .str("monitor", &r.monitor)
                    .uint("workers", r.workers as u64)
                    .uint("events", r.events)
                    .uint("instrs", r.instrs)
                    .float("serial_wall_s", r.serial_s, 4)
                    .float("parallel_wall_s", r.parallel_s, 4)
                    .float("speedup", r.speedup(), 3)
                    .uint("epochs", r.epochs.epochs)
                    .uint("epochs_validated", r.epochs.validated)
                    .uint("epochs_rerun", r.epochs.rerun)
                    .render(),
            );
        }
    }
    rows
}

/// Multi-tenant serving throughput (since schema v8): an in-process
/// `faded` daemon on a temporary socket, N concurrent tenants
/// streaming recorded `.fadet` sessions, sustained aggregate event
/// rate and FINISH→END report latency percentiles.
fn service_json() -> Vec<String> {
    let opts = LoadOptions {
        tenants: 8,
        workers: fade_bench::default_workers().clamp(2, 8),
        events_per_tenant: 50_000,
        engine: EngineSel::Batched,
    };
    let r = measure_service_throughput(&opts)
        .unwrap_or_else(|e| panic!("service load run failed: {e}"));
    println!(
        "  {} tenants on {} workers: {:>6.2} Mev/s aggregate, p50 {:.1} ms, p99 {:.1} ms latency ({} report lines, {:.2}s wall)",
        r.tenants,
        r.workers,
        r.aggregate_rate() / 1e6,
        r.p50_latency_s * 1e3,
        r.p99_latency_s * 1e3,
        r.reports,
        r.wall_s,
    );
    vec![JsonObject::new()
        .uint("tenants", r.tenants as u64)
        .uint("workers", r.workers as u64)
        .str("engine", r.engine)
        .uint("events", r.events)
        .uint("instrs", r.instrs)
        .uint("reports", r.reports)
        .float("events_per_sec_aggregate", r.aggregate_rate(), 0)
        .float("p50_latency_s", r.p50_latency_s, 4)
        .float("p99_latency_s", r.p99_latency_s, 4)
        .float("max_latency_s", r.max_latency_s, 4)
        .float("wall_s", r.wall_s, 3)
        .render()]
}

fn main() {
    // `--mode batched|cycle` selects the execution engine for every
    // experiment; the env var is how the experiment declarations (and
    // any figure binary run standalone) pick it up.
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--mode") {
        match args.get(i + 1).map(String::as_str) {
            Some(m @ ("batched" | "cycle")) => std::env::set_var("FADE_MODE", m),
            other => {
                eprintln!("--mode expects 'batched' or 'cycle', got {other:?}");
                std::process::exit(2);
            }
        }
    }
    // `--workers N` shards every experiment matrix over N threads.
    if let Some(i) = args.iter().position(|a| a == "--workers") {
        match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => std::env::set_var("FADE_WORKERS", n.to_string()),
            _ => {
                eprintln!("--workers expects a positive integer");
                std::process::exit(2);
            }
        }
    }
    let dir_flag = |flag: &str| -> Option<PathBuf> {
        let i = args.iter().position(|a| a == flag)?;
        match args.get(i + 1) {
            Some(d) => Some(PathBuf::from(d)),
            None => {
                eprintln!("{flag} expects a directory");
                std::process::exit(2);
            }
        }
    };
    let record_dir = dir_flag("--record-dir");
    let replay_dir = dir_flag("--replay-dir");
    println!(
        "execution mode: {:?}, {} workers (override with --mode batched|cycle, --workers N)",
        fade_bench::exec_mode(),
        fade_bench::default_workers(),
    );
    let sections: [Section; 8] = [
        ("Figure 2", ex::fig2),
        ("Figure 3", ex::fig3),
        ("Figure 4", ex::fig4),
        ("Table 2", ex::table2),
        ("Figure 9", ex::fig9),
        ("Figure 10", ex::fig10),
        ("Figure 11", ex::fig11),
        ("Section 7.6", ex::power),
    ];
    let mut matrix_rows: Vec<(String, MatrixTiming)> = Vec::new();
    drain_timings();
    for (name, f) in sections {
        println!("================================================================");
        println!("{name}");
        println!("================================================================");
        println!("{}", f());
        for t in drain_timings() {
            println!(
                "  [matrix {}: {} experiments on {} workers, {:.2}s sharded vs {:.2}s serial = {:.2}x]",
                t.label,
                t.experiments,
                t.workers,
                t.wall_s,
                t.serial_s,
                t.speedup(),
            );
            matrix_rows.push((name.to_string(), t));
        }
    }
    println!("================================================================");
    println!("Pipeline throughput (batched vs. per-event)");
    println!("================================================================");
    let pipeline_rows = pipeline_json();
    // One generation pass feeds recording, the codec section, and the
    // live system section.
    let prefixes = point_prefixes();
    if let Some(dir) = &record_dir {
        println!("================================================================");
        println!("Trace recording ({})", dir.display());
        println!("================================================================");
        record_traces(dir, &prefixes);
    }
    println!("================================================================");
    println!("Trace codec (replay vs. live generation)");
    println!("================================================================");
    let trace_rows = trace_json(&prefixes);
    println!("================================================================");
    println!("System throughput (batched engine vs. cycle engine)");
    println!("================================================================");
    let system_rows = system_json(replay_dir.as_deref(), prefixes);
    println!("================================================================");
    println!("Parallel replay (epoch-parallel vs sequential)");
    println!("================================================================");
    let parallel_rows = parallel_json();
    println!("================================================================");
    println!("Service throughput (faded daemon, concurrent tenants)");
    println!("================================================================");
    let service_rows = service_json();
    let matrix_rows = matrix_json(&matrix_rows);
    let json = JsonDocument::new("fade-pipeline-throughput/v9")
        .section("results", pipeline_rows)
        .section("trace_results", trace_rows)
        .section("system_results", system_rows)
        .section("parallel_results", parallel_rows)
        .section("matrix_results", matrix_rows)
        .section("service_results", service_rows)
        .render();
    let path = "BENCH_pipeline.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
