//! Regenerates the paper's Figure 2 (see DESIGN.md section 4).

fn main() {
    print!("{}", fade_bench::experiments::fig2());
}
