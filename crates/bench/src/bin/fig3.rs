//! Regenerates the paper's Figure 3 (see DESIGN.md section 4).

fn main() {
    print!("{}", fade_bench::experiments::fig3());
}
