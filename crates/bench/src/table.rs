//! Minimal fixed-width table printing for experiment binaries.

/// A simple left-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["bench", "slowdown"]);
        t.row(["mcf", "1.20"]);
        t.row(["omnetpp", "2.00"]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.contains("omnetpp"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The separator is as wide as the widest line.
        assert!(lines[1].chars().all(|c| c == '-'));
    }
}
