//! The paper's experiments, one function per table/figure.
//!
//! Each function *declares* its grid of simulation points as
//! [`Experiment`] data, hands the whole grid to the sharded
//! [`ExperimentMatrix`] driver (all points of a figure run concurrently
//! across `FADE_WORKERS` threads), then renders the paper-style text
//! table(s) from the results — with the paper's reference values in the
//! last column(s) so paper-vs-measured comparison is immediate. The
//! `reproduce_all` binary calls every one of these and is the source of
//! EXPERIMENTS.md.
//!
//! Declaration and consumption walk the same loops in the same order,
//! so adding a point means adding it to both walks — the `Results`
//! consumer panics if the two ever disagree in length.

use fade::FilterMode;
use fade_monitors::all_monitors;
use fade_sim::{gmean, CoreKind, QueueDepth};
use fade_system::{RunStats, SystemConfig};
use fade_trace::{bench, BenchProfile};

use crate::table::Table;
use crate::{Experiment, ExperimentMatrix};

/// The benchmark suite a monitor is evaluated on (Section 6).
pub fn suite_for(monitor: &str) -> Vec<BenchProfile> {
    match monitor {
        "AtomCheck" => bench::parallel_suite(),
        "TaintCheck" => bench::taint_suite(),
        _ => bench::spec_int_suite(),
    }
}

/// One grid point with the harness-default window and engine.
fn point(b: &BenchProfile, monitor: &str, cfg: &SystemConfig) -> Experiment {
    Experiment::new(b.clone(), monitor, *cfg)
}

/// Results of a section's matrix, consumed in declaration order.
struct Results(std::vec::IntoIter<RunStats>);

impl Results {
    fn next(&mut self) -> RunStats {
        self.0
            .next()
            .expect("consumption must walk the same points as declaration")
    }
}

impl Drop for Results {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            assert!(
                self.0.next().is_none(),
                "declared experiments were left unconsumed"
            );
        }
    }
}

/// Runs a section's declared points through the sharded driver.
fn run_section(section: &str, points: Vec<Experiment>) -> Results {
    let mut m = ExperimentMatrix::new().timed(section);
    m.extend(points);
    Results(m.run_stats().into_iter())
}

/// Figure 2: application IPC split into monitored and unmonitored.
pub fn fig2() -> String {
    let mut points = Vec::new();
    for mon in all_monitors() {
        for b in suite_for(mon.name()) {
            points.push(point(&b, mon.name(), &SystemConfig::fade_single_core()));
        }
    }
    for monitor in ["AddrCheck", "MemLeak"] {
        for b in suite_for(monitor) {
            points.push(point(&b, monitor, &SystemConfig::fade_single_core()));
        }
    }
    let mut runs = run_section("fig2", points);

    let mut out = String::new();
    out.push_str("Figure 2(a): app IPC split, averaged per monitor (4-way OoO)\n");
    let mut t = Table::new(["monitor", "app IPC", "monitored IPC", "unmonitored IPC"]);
    for mon in all_monitors() {
        let mut app = Vec::new();
        let mut monit = Vec::new();
        for _ in suite_for(mon.name()) {
            let s = runs.next();
            app.push(s.app_ipc());
            monit.push(s.monitored_ipc());
        }
        let a = app.iter().sum::<f64>() / app.len() as f64;
        let m = monit.iter().sum::<f64>() / monit.len() as f64;
        t.row([
            mon.name().to_string(),
            format!("{a:.2}"),
            format!("{m:.2}"),
            format!("{:.2}", a - m),
        ]);
    }
    out.push_str(&t.render());
    for (title, monitor) in [
        ("\nFigure 2(b): AddrCheck per benchmark", "AddrCheck"),
        ("\nFigure 2(c): MemLeak per benchmark", "MemLeak"),
    ] {
        out.push_str(title);
        out.push('\n');
        let mut t = Table::new(["bench", "app IPC", "monitored IPC"]);
        for b in suite_for(monitor) {
            let s = runs.next();
            t.row([
                b.name.to_string(),
                format!("{:.2}", s.app_ipc()),
                format!("{:.2}", s.monitored_ipc()),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Figure 3: event-queue occupancy (infinite queue) and the effect of
/// queue size on MemLeak's slowdown.
pub fn fig3() -> String {
    let ideal = |depth: QueueDepth| {
        SystemConfig::fade_single_core()
            .with_event_queue(depth)
            .with_ideal_consumer()
    };
    let mut points = Vec::new();
    for monitor in ["AddrCheck", "MemLeak"] {
        for b in suite_for(monitor) {
            points.push(point(&b, monitor, &ideal(QueueDepth::Unbounded)));
        }
    }
    for b in suite_for("MemLeak") {
        points.push(point(&b, "MemLeak", &ideal(QueueDepth::Bounded(32 * 1024))));
        points.push(point(&b, "MemLeak", &ideal(QueueDepth::Bounded(32))));
    }
    let mut runs = run_section("fig3", points);

    let mut out = String::new();
    for (title, monitor) in [
        ("Figure 3(a): infinite event-queue occupancy CDF, AddrCheck", "AddrCheck"),
        ("\nFigure 3(b): infinite event-queue occupancy CDF, MemLeak", "MemLeak"),
    ] {
        out.push_str(title);
        out.push('\n');
        let mut t = Table::new(["bench", "p50", "p90", "p99", "p99.9", "max-bucket"]);
        for b in suite_for(monitor) {
            let s = runs.next();
            t.row([
                b.name.to_string(),
                s.occupancy.percentile(50.0).to_string(),
                s.occupancy.percentile(90.0).to_string(),
                s.occupancy.percentile(99.0).to_string(),
                s.occupancy.percentile(99.9).to_string(),
                s.occupancy.percentile(100.0).to_string(),
            ]);
        }
        out.push_str(&t.render());
    }
    out.push_str("\nFigure 3(c): MemLeak slowdown vs event-queue size\n");
    let mut t = Table::new(["bench", "32K entries", "32 entries"]);
    let mut big_all = Vec::new();
    let mut small_all = Vec::new();
    for b in suite_for("MemLeak") {
        let big = runs.next();
        let small = runs.next();
        big_all.push(big.slowdown());
        small_all.push(small.slowdown());
        t.row([
            b.name.to_string(),
            format!("{:.2}", big.slowdown()),
            format!("{:.2}", small.slowdown()),
        ]);
    }
    t.row([
        "gmean".to_string(),
        format!("{:.2}", gmean(&big_all)),
        format!("{:.2}", gmean(&small_all)),
    ]);
    out.push_str(&t.render());
    out
}

/// Figure 4: monitor time breakdown, unfiltered-event distances, burst
/// sizes.
pub fn fig4() -> String {
    let mut points = Vec::new();
    for mon in all_monitors() {
        for b in suite_for(mon.name()) {
            points.push(point(&b, mon.name(), &SystemConfig::unaccelerated_single_core()));
        }
    }
    for b in suite_for("MemLeak") {
        points.push(point(&b, "MemLeak", &SystemConfig::fade_single_core()));
    }
    for mon in all_monitors() {
        for b in suite_for(mon.name()) {
            points.push(point(&b, mon.name(), &SystemConfig::fade_single_core()));
        }
    }
    let mut runs = run_section("fig4", points);

    let mut out = String::new();
    out.push_str("Figure 4(a): software monitor time breakdown (% of handler instructions)\n");
    let mut t = Table::new(["monitor", "CC%", "RU%", "complex%", "stack%", "high-level%"]);
    for mon in all_monitors() {
        let mut acc = fade_system::ClassInstrs::default();
        for _ in suite_for(mon.name()) {
            let s = runs.next();
            acc.cc += s.class_instrs.cc;
            acc.ru += s.class_instrs.ru;
            acc.partial += s.class_instrs.partial;
            acc.complex += s.class_instrs.complex;
            acc.stack += s.class_instrs.stack;
            acc.high_level += s.class_instrs.high_level;
        }
        t.row([
            mon.name().to_string(),
            format!("{:.1}", acc.pct(acc.cc + acc.partial)),
            format!("{:.1}", acc.pct(acc.ru)),
            format!("{:.1}", acc.pct(acc.complex)),
            format!("{:.1}", acc.pct(acc.stack)),
            format!("{:.1}", acc.pct(acc.high_level)),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nFigure 4(b): distance between unfiltered events, MemLeak (CDF)\n");
    let mut t = Table::new(["bench", "%<=2", "%<=8", "%<=16", "%<=64", "mean"]);
    for b in suite_for("MemLeak") {
        let s = runs.next();
        let cdf = s.unfiltered_distances.cdf();
        t.row([
            b.name.to_string(),
            format!("{:.0}", cdf.percent_at(2)),
            format!("{:.0}", cdf.percent_at(8)),
            format!("{:.0}", cdf.percent_at(16)),
            format!("{:.0}", cdf.percent_at(64)),
            format!("{:.1}", s.unfiltered_distances.mean()),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nFigure 4(c): mean unfiltered burst size (gap <= 16 filterable events)\n");
    let mut t = Table::new(["monitor", "per-bench mean burst sizes"]);
    for mon in all_monitors() {
        let mut cells = Vec::new();
        for b in suite_for(mon.name()) {
            let s = runs.next();
            cells.push(format!("{}={:.0}", b.name, s.burst_sizes.mean()));
        }
        t.row([mon.name().to_string(), cells.join(" ")]);
    }
    out.push_str(&t.render());
    out
}

/// Table 2: filtering efficiency per monitor.
pub fn table2() -> String {
    let paper = [
        ("AddrCheck", 99.5),
        ("AtomCheck", 85.5),
        ("MemCheck", 98.0),
        ("MemLeak", 87.0),
        ("TaintCheck", 84.0),
    ];
    let mut points = Vec::new();
    for (name, _) in paper {
        for b in suite_for(name) {
            points.push(point(&b, name, &SystemConfig::fade_single_core()));
        }
    }
    let mut runs = run_section("table2", points);

    let mut out = String::new();
    out.push_str("Table 2: FADE filtering efficiency\n");
    let mut t = Table::new(["monitor", "measured", "paper"]);
    for (name, paper_val) in paper {
        let mut ratios = Vec::new();
        for _ in suite_for(name) {
            ratios.push(100.0 * runs.next().filtering_ratio());
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        t.row([
            name.to_string(),
            format!("{avg:.1}%"),
            format!("{paper_val:.1}%"),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 9: FADE vs the unaccelerated system, per benchmark, for
/// AddrCheck, MemLeak and AtomCheck (plus the per-monitor averages the
/// text quotes for MemCheck and TaintCheck).
pub fn fig9() -> String {
    let mut points = Vec::new();
    for monitor in ["AddrCheck", "MemLeak", "AtomCheck"] {
        for b in suite_for(monitor) {
            points.push(point(&b, monitor, &SystemConfig::unaccelerated_single_core()));
            points.push(point(&b, monitor, &SystemConfig::fade_single_core()));
        }
    }
    for mon in all_monitors() {
        for b in suite_for(mon.name()) {
            points.push(point(&b, mon.name(), &SystemConfig::unaccelerated_single_core()));
            points.push(point(&b, mon.name(), &SystemConfig::fade_single_core()));
        }
    }
    let mut runs = run_section("fig9", points);

    let mut out = String::new();
    for (fig, monitor) in [
        ("Figure 9(a): AddrCheck", "AddrCheck"),
        ("Figure 9(b): MemLeak", "MemLeak"),
        ("Figure 9(c): AtomCheck", "AtomCheck"),
    ] {
        out.push_str(fig);
        out.push('\n');
        let mut t = Table::new(["bench", "unaccelerated", "FADE"]);
        let mut un = Vec::new();
        let mut fa = Vec::new();
        for b in suite_for(monitor) {
            let u = runs.next();
            let f = runs.next();
            un.push(u.slowdown());
            fa.push(f.slowdown());
            t.row([
                b.name.to_string(),
                format!("{:.2}", u.slowdown()),
                format!("{:.2}", f.slowdown()),
            ]);
        }
        t.row([
            "mean".to_string(),
            format!("{:.2}", un.iter().sum::<f64>() / un.len() as f64),
            format!("{:.2}", fa.iter().sum::<f64>() / fa.len() as f64),
        ]);
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str("Per-monitor averages (Section 7.2 text)\n");
    let mut t = Table::new(["monitor", "unaccelerated", "FADE"]);
    let mut all_u = Vec::new();
    let mut all_f = Vec::new();
    for mon in all_monitors() {
        let mut un = Vec::new();
        let mut fa = Vec::new();
        for _ in suite_for(mon.name()) {
            un.push(runs.next().slowdown());
            fa.push(runs.next().slowdown());
        }
        let (u, f) = (
            un.iter().sum::<f64>() / un.len() as f64,
            fa.iter().sum::<f64>() / fa.len() as f64,
        );
        all_u.push(u);
        all_f.push(f);
        t.row([mon.name().to_string(), format!("{u:.2}"), format!("{f:.2}")]);
    }
    t.row([
        "average".to_string(),
        format!("{:.2}", all_u.iter().sum::<f64>() / all_u.len() as f64),
        format!("{:.2}", all_f.iter().sum::<f64>() / all_f.len() as f64),
    ]);
    out.push_str(&t.render());
    out
}

/// Figure 10: sensitivity to the core microarchitecture.
pub fn fig10() -> String {
    let cfg_for = |accel: bool, core: CoreKind| {
        if accel {
            SystemConfig::fade_single_core().with_core(core)
        } else {
            SystemConfig::unaccelerated_single_core().with_core(core)
        }
    };
    let mut points = Vec::new();
    for mon in all_monitors() {
        for accel in [false, true] {
            for core in [CoreKind::AggrOoO4, CoreKind::LeanOoO2, CoreKind::InOrder1] {
                for b in suite_for(mon.name()) {
                    points.push(point(&b, mon.name(), &cfg_for(accel, core)));
                }
            }
        }
    }
    let mut runs = run_section("fig10", points);

    let mut out = String::new();
    out.push_str("Figure 10: slowdown per monitor and core type (single-core system)\n");
    let mut t = Table::new([
        "monitor",
        "unacc 4-way",
        "unacc 2-way",
        "unacc in-ord",
        "FADE 4-way",
        "FADE 2-way",
        "FADE in-ord",
    ]);
    for mon in all_monitors() {
        let mut cells = vec![mon.name().to_string()];
        for _accel in [false, true] {
            for _core in [CoreKind::AggrOoO4, CoreKind::LeanOoO2, CoreKind::InOrder1] {
                let mut sl = Vec::new();
                for _ in suite_for(mon.name()) {
                    sl.push(runs.next().slowdown());
                }
                cells.push(format!("{:.2}", sl.iter().sum::<f64>() / sl.len() as f64));
            }
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out
}

/// Figure 11: single vs two-core FADE, two-core utilization, and
/// blocking vs non-blocking filtering.
pub fn fig11() -> String {
    let mut points = Vec::new();
    for mon in all_monitors() {
        for b in suite_for(mon.name()) {
            points.push(point(&b, mon.name(), &SystemConfig::fade_single_core()));
            points.push(point(&b, mon.name(), &SystemConfig::fade_two_core()));
        }
    }
    for mon in all_monitors() {
        for b in suite_for(mon.name()) {
            points.push(point(&b, mon.name(), &SystemConfig::fade_two_core()));
        }
    }
    for mon in all_monitors() {
        for b in suite_for(mon.name()) {
            points.push(point(
                &b,
                mon.name(),
                &SystemConfig::fade_single_core().with_mode(FilterMode::Blocking),
            ));
            points.push(point(&b, mon.name(), &SystemConfig::fade_single_core()));
        }
    }
    let mut runs = run_section("fig11", points);

    let mut out = String::new();
    out.push_str("Figure 11(a): single-core vs two-core FADE (average slowdown)\n");
    let mut t = Table::new(["monitor", "single-core", "two-core", "two-core gain"]);
    for mon in all_monitors() {
        let mut one = Vec::new();
        let mut two = Vec::new();
        for _ in suite_for(mon.name()) {
            one.push(runs.next().slowdown());
            two.push(runs.next().slowdown());
        }
        let (o, w) = (
            one.iter().sum::<f64>() / one.len() as f64,
            two.iter().sum::<f64>() / two.len() as f64,
        );
        t.row([
            mon.name().to_string(),
            format!("{o:.2}"),
            format!("{w:.2}"),
            format!("{:.0}%", 100.0 * (o / w - 1.0)),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nFigure 11(b): two-core utilization breakdown (% of cycles)\n");
    let mut t = Table::new(["monitor", "app core idle", "monitor core idle", "both utilized"]);
    for mon in all_monitors() {
        let mut acc = (0.0, 0.0, 0.0);
        let mut n = 0.0;
        for _ in suite_for(mon.name()) {
            let s = runs.next();
            let (a, m, both) = s.util.percentages();
            acc = (acc.0 + a, acc.1 + m, acc.2 + both);
            n += 1.0;
        }
        t.row([
            mon.name().to_string(),
            format!("{:.1}", acc.0 / n),
            format!("{:.1}", acc.1 / n),
            format!("{:.1}", acc.2 / n),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nFigure 11(c): blocking vs non-blocking FADE (average slowdown)\n");
    let mut t = Table::new(["monitor", "blocking", "non-blocking", "NB benefit"]);
    for mon in all_monitors() {
        let mut blk = Vec::new();
        let mut nb = Vec::new();
        for _ in suite_for(mon.name()) {
            blk.push(runs.next().slowdown());
            nb.push(runs.next().slowdown());
        }
        let (bk, n) = (
            blk.iter().sum::<f64>() / blk.len() as f64,
            nb.iter().sum::<f64>() / nb.len() as f64,
        );
        t.row([
            mon.name().to_string(),
            format!("{bk:.2}"),
            format!("{n:.2}"),
            format!("{:.2}x", bk / n),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Section 7.6: area and power.
pub fn power() -> String {
    let mut out = String::new();
    out.push_str("Section 7.6: FADE area and power at 40nm, 2 GHz\n");
    let report = fade_power::fade_logic_report(2.0);
    let mut t = Table::new(["structure", "area (mm^2)", "peak power (mW)"]);
    for (name, area, mw) in report.rows() {
        t.row([name.to_string(), format!("{area:.4}"), format!("{mw:.1}")]);
    }
    t.row([
        "FADE logic total".to_string(),
        format!("{:.3}", report.area_mm2()),
        format!("{:.0}", report.peak_power_mw()),
    ]);
    let cache = fade_power::cache_model(4096, 2, 64, 2.0);
    t.row([
        "MD cache (4KB 2-way)".to_string(),
        format!("{:.3}", cache.area_mm2),
        format!("{:.0}", cache.peak_power_mw),
    ]);
    t.row([
        "total".to_string(),
        format!("{:.3}", report.area_mm2() + cache.area_mm2),
        format!("{:.0}", report.peak_power_mw() + cache.peak_power_mw),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "MD cache access: {:.2} ns (paper: 0.3 ns)\n\
         Paper reference: logic 0.09 mm^2 / 122 mW; cache 0.03 mm^2 / 151 mW; total 0.12 mm^2 / 273 mW\n",
        cache.access_ns
    ));
    out
}
