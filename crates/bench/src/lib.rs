//! # fade-bench
//!
//! The benchmark harness: one binary per paper table/figure (run with
//! `cargo run -p fade-bench --release --bin <figN|table2|power>`),
//! criterion microbenchmarks (`cargo bench`), and shared table-printing
//! helpers.
//!
//! Experiments are declared as data ([`Experiment`]) and executed by
//! the sharded [`ExperimentMatrix`] driver — every paper figure is one
//! matrix, run across `FADE_WORKERS` threads (default: all cores).

pub mod experiments;
pub mod matrix;
pub mod table;

pub use matrix::{
    default_workers, drain_timings, Experiment, ExperimentError, ExperimentMatrix, MatrixResult,
    MatrixTiming,
};
pub use table::Table;

/// Default warmup instructions per measurement.
pub const WARMUP: u64 = 30_000;
/// Default measured instructions per run (binaries may scale this with
/// the `FADE_MEASURE` environment variable).
pub const MEASURE: u64 = 150_000;

/// Reads the measurement length, honouring `FADE_MEASURE`.
pub fn measure_len() -> u64 {
    std::env::var("FADE_MEASURE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(MEASURE)
}

/// Reads the warmup length, honouring `FADE_WARMUP`.
pub fn warmup_len() -> u64 {
    std::env::var("FADE_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(WARMUP)
}

/// Execution engine for the experiment binaries, honouring `FADE_MODE`
/// (`cycle` — the default — or `batched`; `reproduce_all --mode ...`
/// sets the variable for every experiment it runs). Batched runs are
/// several times faster with bit-exact monitor results; cycle counts
/// become sampled estimates (see the README's batched-system-mode
/// section).
///
/// # Panics
///
/// Panics on an unrecognized `FADE_MODE` value — silently falling back
/// to the (much slower, exactly-timed) cycle engine on a typo would be
/// worse.
pub fn exec_mode() -> fade_system::Engine {
    match std::env::var("FADE_MODE").as_deref() {
        Ok("batched") => fade_system::Engine::batched(),
        Ok("cycle") | Ok("") | Err(_) => fade_system::Engine::Cycle,
        Ok(other) => panic!("FADE_MODE must be 'batched' or 'cycle', got {other:?}"),
    }
}
