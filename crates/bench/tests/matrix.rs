//! The parallel experiment driver's contract: sharding is invisible.
//!
//! 1. **Determinism under sharding** (property): for any seed and any
//!    worker count, `ExperimentMatrix` returns bit-identical results in
//!    the same order as a single-worker run of the same grid.
//! 2. **No seed aliasing across shards** (regression): a run's RNG
//!    streams derive only from its own `SystemConfig::seed` — never
//!    from which worker or slot executed it — so the same experiment
//!    embedded in different grid positions, grid sizes, and worker
//!    counts always produces the same result as running it alone.

use fade_bench::{Experiment, ExperimentMatrix};
use fade_system::{Engine, RunStats, SystemConfig};
use fade_trace::bench;
use proptest::prelude::*;

/// Small windows: the sweep runs whole grids many times.
const WARM: u64 = 1_000;
const MEAS: u64 = 4_000;

fn grid(seed: u64) -> Vec<Experiment> {
    let points = [
        ("mcf", "AddrCheck", Engine::Cycle),
        ("gcc", "MemLeak", Engine::Cycle),
        ("hmmer", "MemCheck", Engine::batched()),
        ("water", "AtomCheck", Engine::Cycle),
        ("astar-taint", "TaintCheck", Engine::batched()),
        ("gcc", "MemLeak", Engine::batched()),
    ];
    points
        .iter()
        .map(|(b, m, engine)| {
            Experiment::new(
                bench::by_name(b).unwrap(),
                *m,
                SystemConfig::fade_single_core()
                    .with_seed(seed)
                    .with_sample_period(1024)
                    .with_sample_window(256),
            )
            .engine(*engine)
            .window(WARM, MEAS)
        })
        .collect()
}

/// The deterministic face of a run (cycle counts included: same engine,
/// same seed, same schedule ⇒ same cycles, sharded or not).
fn fingerprint(s: &RunStats) -> (String, String, u64, u64, u64, u64, u64, Option<[u64; 7]>) {
    (
        s.benchmark.clone(),
        s.monitor.clone(),
        s.app_instrs,
        s.monitored_events,
        s.stack_events,
        s.cycles,
        s.baseline_cycles,
        s.fade.map(|f| f.functional_counters()),
    )
}

fn run_grid(seed: u64, workers: usize) -> Vec<RunStats> {
    let mut m = ExperimentMatrix::new().workers(workers);
    m.extend(grid(seed));
    m.run_stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any seed, any worker count: identical results in identical order.
    #[test]
    fn sharded_results_equal_single_worker(seed in 0u64..1_000_000, workers in 2usize..8) {
        let one = run_grid(seed, 1);
        let many = run_grid(seed, workers);
        prop_assert_eq!(one.len(), many.len());
        for (a, b) in one.iter().zip(&many) {
            prop_assert_eq!(fingerprint(a), fingerprint(b));
        }
    }
}

/// Regression: per-run RNG seeds must not alias across shards. The same
/// experiment run (a) alone, (b) first in a grid, (c) last in a grid,
/// with different worker counts, is bit-identical every time — if any
/// worker or slot index leaked into the seed derivation, (b) or (c)
/// would diverge from (a).
#[test]
fn seeds_do_not_alias_across_shards() {
    let solo_exp = || {
        Experiment::new(
            bench::by_name("gcc").unwrap(),
            "MemLeak",
            SystemConfig::fade_single_core().with_seed(0xabcd),
        )
        .engine(Engine::Cycle)
        .window(WARM, MEAS)
    };
    let mut solo_matrix = ExperimentMatrix::new().workers(1);
    solo_matrix.push(solo_exp());
    let solo = fingerprint(&solo_matrix.run_stats().remove(0));

    for workers in [1, 3] {
        // Embedded first.
        let mut m = ExperimentMatrix::new().workers(workers);
        m.push(solo_exp());
        m.extend(grid(7));
        let first = fingerprint(&m.run_stats().remove(0));
        assert_eq!(solo, first, "experiment drifted when run first on {workers} workers");

        // Embedded last.
        let mut m = ExperimentMatrix::new().workers(workers);
        m.extend(grid(9));
        m.push(solo_exp());
        let stats = m.run_stats();
        let last = fingerprint(stats.last().unwrap());
        assert_eq!(solo, last, "experiment drifted when run last on {workers} workers");
    }
}

/// Two experiments differing only in seed must not collapse to the same
/// result (the seed actually reaches the workload).
#[test]
fn distinct_seeds_produce_distinct_runs() {
    let exp = |seed: u64| {
        Experiment::new(
            bench::by_name("gcc").unwrap(),
            "MemLeak",
            SystemConfig::fade_single_core().with_seed(seed),
        )
        .engine(Engine::Cycle)
        .window(WARM, MEAS)
    };
    let mut m = ExperimentMatrix::new().workers(2);
    m.push(exp(1));
    m.push(exp(2));
    let stats = m.run_stats();
    assert_ne!(
        fingerprint(&stats[0]),
        fingerprint(&stats[1]),
        "different seeds must generate different traces"
    );
}
