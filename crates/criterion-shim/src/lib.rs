//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no package registry access, so this crate
//! provides the API subset the workspace's benches use — benchmark
//! groups, `iter`/`iter_batched_ref`, throughput reporting, and the
//! `criterion_group!`/`criterion_main!` macros — over a simple
//! wall-clock harness: per sample the routine runs long enough to
//! amortize timer overhead, and the reported figure is the median
//! per-iteration time across samples (with min/max bounds).
//!
//! Set `FADE_BENCH_QUICK=1` to cut measurement time for smoke runs.

use std::time::{Duration, Instant};

/// How a batched routine's input is sized (API compatibility only; the
/// harness always materializes one input per routine call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: many per sample.
    SmallInput,
    /// Large inputs: few per sample.
    LargeInput,
    /// One input per sample.
    PerIteration,
}

/// Units processed per routine call, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many elements per call.
    Elements(u64),
    /// The routine processes this many bytes per call.
    Bytes(u64),
}

/// One benchmark's measured result.
#[derive(Clone, Debug)]
pub struct Sampled {
    /// Full benchmark id (`group/function`).
    pub id: String,
    /// Median seconds per routine call.
    pub median_s: f64,
    /// Fastest sample (seconds per call).
    pub min_s: f64,
    /// Slowest sample (seconds per call).
    pub max_s: f64,
    /// Declared units per call.
    pub throughput: Option<Throughput>,
}

impl Sampled {
    /// Elements (or bytes) per second at the median, if a throughput
    /// was declared.
    pub fn units_per_sec(&self) -> Option<f64> {
        let n = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
        };
        Some(n / self.median_s)
    }
}

/// Top-level harness state; collects results from every group.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Sampled>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[Sampled] {
        &self.results
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares units processed per routine call.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let quick = std::env::var("FADE_BENCH_QUICK").is_ok();
        let budget = if quick {
            Duration::from_millis(120)
        } else {
            self.measurement_time
        };
        let samples = if quick { 5 } else { self.sample_size };

        let mut b = Bencher {
            mode: Mode::Calibrate,
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibration: find an iteration count whose sample lasts about
        // budget / samples, so timer overhead stays negligible.
        let per_sample = budget.div_duration_f64(Duration::from_secs(1)) / samples as f64;
        f(&mut b);
        let mut iters = 1u64;
        if b.elapsed > Duration::ZERO {
            let one = b.elapsed.div_duration_f64(Duration::from_secs(1)) / b.iters as f64;
            iters = ((per_sample / one).ceil() as u64).clamp(1, 1 << 24);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            b.mode = Mode::Measure;
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter.push(
                b.elapsed.div_duration_f64(Duration::from_secs(1)) / iters as f64,
            );
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let sampled = Sampled {
            id: id.clone(),
            median_s: per_iter[per_iter.len() / 2],
            min_s: per_iter[0],
            max_s: *per_iter.last().unwrap(),
            throughput: self.throughput,
        };
        report(&sampled);
        self.parent.results.push(sampled);
        self
    }

    /// Ends the group (prints nothing; results live on the parent).
    pub fn finish(self) {}
}

fn report(s: &Sampled) {
    print!(
        "{:<44} time: [{} .. {} .. {}]",
        s.id,
        fmt_time(s.min_s),
        fmt_time(s.median_s),
        fmt_time(s.max_s)
    );
    if let Some(ups) = s.units_per_sec() {
        let unit = match s.throughput {
            Some(Throughput::Bytes(_)) => "B/s",
            _ => "elem/s",
        };
        print!("  thrpt: {}", fmt_rate(ups, unit));
    }
    println!();
}

fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} s", s)
    }
}

fn fmt_rate(r: f64, unit: &str) -> String {
    if r >= 1e9 {
        format!("{:.2} G{unit}", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2} M{unit}", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} K{unit}", r / 1e3)
    } else {
        format!("{r:.1} {unit}")
    }
}

enum Mode {
    Calibrate,
    Measure,
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = match self.mode {
            Mode::Calibrate => 1,
            Mode::Measure => self.iters,
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let iters = match self.mode {
            Mode::Calibrate => 1,
            Mode::Measure => self.iters,
        };
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            total += start.elapsed();
            drop(input);
        }
        self.elapsed = total;
        self.iters = iters;
    }
}

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        std::env::set_var("FADE_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5)
            .measurement_time(Duration::from_millis(50));
        g.throughput(Throughput::Elements(100));
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched_ref(
                || vec![1u64; 100],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(c.results().len(), 2);
        for s in c.results() {
            assert!(s.median_s > 0.0);
            assert!(s.units_per_sec().unwrap() > 0.0);
        }
    }
}
