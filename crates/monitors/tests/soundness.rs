//! Cross-cutting property tests: for every monitor, the FADE hardware
//! path and the pure-software path are *functionally equivalent*.
//!
//! DESIGN.md invariants exercised here:
//!
//! 1. **Filtering soundness** — events FADE filters are exactly the
//!    events the software monitor classifies as clean-check /
//!    redundant-update (no-ops on critical metadata).
//! 2. **Non-blocking equivalence** — after any event sequence, critical
//!    metadata produced by the FADE path (non-blocking update rules +
//!    handlers for unfiltered events) equals the software-only path.
//! 5. **Blocking/NB functional equality** — both FADE modes classify
//!    and update identically.

use fade::{Fade, FadeConfig, FilterMode};
use fade_isa::{
    event_ids, instr_event_for, AppEvent, AppInstr, HighLevelEvent, InstrClass, MemRef, Reg,
    StackUpdateEvent, StackUpdateKind, VirtAddr, layout,
};
use fade_monitors::{all_monitors, monitor_by_name, EventClass, Monitor};
use fade_shadow::MetadataState;
use proptest::prelude::*;

/// Abstract operations the property generator draws from.
#[derive(Clone, Copy, Debug)]
enum Op {
    Load { slot: u8, dest: u8 },
    Store { slot: u8, src: u8 },
    Alu { s1: u8, s2: u8, d: u8 },
    Mul { s1: u8, s2: u8, d: u8 },
    Mov { s1: u8, d: u8 },
    Malloc { block: u8 },
    Free { block: u8 },
    Taint { block: u8 },
    Call,
    Ret,
    Switch { tid: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, 0u8..6).prop_map(|(slot, dest)| Op::Load { slot, dest }),
        (0u8..12, 0u8..6).prop_map(|(slot, src)| Op::Store { slot, src }),
        (0u8..6, 0u8..6, 0u8..6).prop_map(|(s1, s2, d)| Op::Alu { s1, s2, d }),
        (0u8..6, 0u8..6, 0u8..6).prop_map(|(s1, s2, d)| Op::Mul { s1, s2, d }),
        (0u8..6, 0u8..6).prop_map(|(s1, d)| Op::Mov { s1, d }),
        (0u8..4).prop_map(|block| Op::Malloc { block }),
        (0u8..4).prop_map(|block| Op::Free { block }),
        (0u8..4).prop_map(|block| Op::Taint { block }),
        Just(Op::Call),
        Just(Op::Ret),
        (0u8..4).prop_map(|tid| Op::Switch { tid }),
    ]
}

/// Fixed address pool: 4 heap blocks of 32 bytes plus 4 global words.
/// Slots 0..8 hit the heap blocks (2 words each), slots 8..12 globals.
fn slot_addr(slot: u8) -> VirtAddr {
    if slot < 8 {
        let block = (slot / 2) as u32;
        let word = (slot % 2) as u32;
        VirtAddr::new(layout::HEAP_BASE + block * 32 + word * 4)
    } else {
        VirtAddr::new(layout::GLOBALS_BASE + ((slot - 8) as u32) * 4)
    }
}

fn block_base(block: u8) -> VirtAddr {
    VirtAddr::new(layout::HEAP_BASE + (block as u32) * 32)
}

fn reg(i: u8) -> Reg {
    Reg::new(2 + i) // avoid r0 and ABI registers
}

/// Interprets ops into concrete application events.
struct Interp {
    tid: u8,
    frames: Vec<(VirtAddr, u32)>,
    sp: u32,
    allocated: [bool; 4],
}

impl Interp {
    fn new() -> Self {
        Interp {
            tid: 0,
            frames: Vec::new(),
            sp: layout::STACK_TOP - 4096,
            allocated: [false; 4],
        }
    }

    fn lower(&mut self, op: Op) -> Vec<AppEvent> {
        match op {
            Op::Load { slot, dest } => {
                let i = AppInstr::new(VirtAddr::new(0x400), InstrClass::Load)
                    .with_dest(reg(dest))
                    .with_mem(MemRef::word(slot_addr(slot)))
                    .with_tid(self.tid);
                vec![AppEvent::Instr(instr_event_for(&i))]
            }
            Op::Store { slot, src } => {
                let i = AppInstr::new(VirtAddr::new(0x404), InstrClass::Store)
                    .with_src1(reg(src))
                    .with_mem(MemRef::word(slot_addr(slot)))
                    .with_tid(self.tid);
                vec![AppEvent::Instr(instr_event_for(&i))]
            }
            Op::Alu { s1, s2, d } => {
                let i = AppInstr::new(VirtAddr::new(0x408), InstrClass::IntAlu)
                    .with_src1(reg(s1))
                    .with_src2(reg(s2))
                    .with_dest(reg(d))
                    .with_tid(self.tid);
                vec![AppEvent::Instr(instr_event_for(&i))]
            }
            Op::Mul { s1, s2, d } => {
                let i = AppInstr::new(VirtAddr::new(0x40c), InstrClass::IntMul)
                    .with_src1(reg(s1))
                    .with_src2(reg(s2))
                    .with_dest(reg(d))
                    .with_tid(self.tid);
                vec![AppEvent::Instr(instr_event_for(&i))]
            }
            Op::Mov { s1, d } => {
                let i = AppInstr::new(VirtAddr::new(0x410), InstrClass::IntMove)
                    .with_src1(reg(s1))
                    .with_dest(reg(d))
                    .with_tid(self.tid);
                vec![AppEvent::Instr(instr_event_for(&i))]
            }
            Op::Malloc { block } => {
                if self.allocated[block as usize] {
                    return vec![];
                }
                self.allocated[block as usize] = true;
                vec![AppEvent::HighLevel(HighLevelEvent::Malloc {
                    base: block_base(block),
                    len: 32,
                    ctx: 100 + block as u32,
                })]
            }
            Op::Free { block } => {
                if !self.allocated[block as usize] {
                    return vec![];
                }
                self.allocated[block as usize] = false;
                vec![AppEvent::HighLevel(HighLevelEvent::Free {
                    base: block_base(block),
                    len: 32,
                })]
            }
            Op::Taint { block } => vec![AppEvent::HighLevel(HighLevelEvent::TaintSource {
                base: block_base(block),
                len: 32,
            })],
            Op::Call => {
                self.sp -= 64;
                let ev = StackUpdateEvent {
                    base: VirtAddr::new(self.sp),
                    len: 64,
                    kind: StackUpdateKind::Call,
                    tid: self.tid,
                };
                self.frames.push((ev.base, ev.len));
                vec![AppEvent::StackUpdate(ev)]
            }
            Op::Ret => match self.frames.pop() {
                Some((base, len)) => {
                    self.sp += len;
                    vec![AppEvent::StackUpdate(StackUpdateEvent {
                        base,
                        len,
                        kind: StackUpdateKind::Return,
                        tid: self.tid,
                    })]
                }
                None => vec![],
            },
            Op::Switch { tid } => {
                self.tid = tid;
                vec![AppEvent::HighLevel(HighLevelEvent::ThreadSwitch { tid })]
            }
        }
    }
}

fn fast_config(mode: FilterMode) -> FadeConfig {
    let mut c = FadeConfig::paper(mode);
    c.tlb_miss_penalty = 0;
    c.blocking_resume_latency = 0;
    c.mem_lat = fade_sim::MemLatency {
        l1: 0,
        l2: 0,
        dram: 0,
    };
    c
}

/// Every address the pool can touch (for state comparison).
fn comparison_addrs() -> Vec<VirtAddr> {
    let mut v: Vec<VirtAddr> = (0..12).map(slot_addr).collect();
    for i in 0..24u32 {
        v.push(VirtAddr::new(layout::STACK_TOP - 4096 - 256 + i * 4));
    }
    v
}

fn states_equal(a: &MetadataState, b: &MetadataState) -> Result<(), String> {
    for r in Reg::all() {
        if a.reg_meta(r) != b.reg_meta(r) {
            return Err(format!(
                "reg {r} differs: fade={} sw={}",
                a.reg_meta(r),
                b.reg_meta(r)
            ));
        }
    }
    for addr in comparison_addrs() {
        if a.mem_meta(addr) != b.mem_meta(addr) {
            return Err(format!(
                "mem {addr} differs: fade={} sw={}",
                a.mem_meta(addr),
                b.mem_meta(addr)
            ));
        }
    }
    Ok(())
}

/// Runs one op sequence through the FADE path and the software path for
/// one monitor, checking classification agreement and state equality.
fn check_monitor(monitor_name: &str, ops: &[Op], mode: FilterMode) -> Result<(), TestCaseError> {
    let mut hw_mon = monitor_by_name(monitor_name).unwrap();
    let mut sw_mon = monitor_by_name(monitor_name).unwrap();

    let program = hw_mon.program();
    let mut hw_state = MetadataState::new(program.md_map());
    let mut sw_state = MetadataState::new(program.md_map());
    hw_mon.init_state(&mut hw_state);
    sw_mon.init_state(&mut sw_state);
    let mut fade = Fade::new(fast_config(mode), program);

    let mut interp = Interp::new();
    for &op in ops {
        for event in interp.lower(op) {
            // Producer-side selection.
            let monitored = match event {
                AppEvent::Instr(_) => true, // instr lowering below selects
                AppEvent::StackUpdate(_) => hw_mon.monitors_stack(),
                AppEvent::HighLevel(_) => true,
            };
            if let AppEvent::Instr(ref iev) = event {
                // Re-derive the AppInstr-level selection from the event:
                // the interpreter only creates selected classes for the
                // propagation monitors; memory monitors skip ALU ops.
                let class_selected = match iev.id {
                    id if id == event_ids::LOAD || id == event_ids::STORE => {
                        // AddrCheck/AtomCheck exclude stack accesses.
                        let i = AppInstr::new(iev.app_pc, InstrClass::Load)
                            .with_mem(MemRef::word(iev.app_addr));
                        hw_mon.selects(&i)
                            || hw_mon.selects(
                                &AppInstr::new(iev.app_pc, InstrClass::Store)
                                    .with_mem(MemRef::word(iev.app_addr)),
                            )
                    }
                    _ => {
                        hw_mon.selects(&AppInstr::new(iev.app_pc, InstrClass::IntAlu))
                    }
                };
                if !class_selected {
                    continue;
                }
                // Software-path classification *before* any effect.
                let sw_class = sw_mon.classify(iev, &sw_state);
                let before = *fade.stats();
                fade.enqueue(event).map_err(|_| {
                    TestCaseError::fail("event queue overflow in test")
                })?;
                pump(&mut fade, &mut hw_state, &mut hw_mon);
                let after = *fade.stats();
                // Classification agreement (invariant 1).
                let hw_class = if after.filtered > before.filtered {
                    EventClass::CleanCheck // CC or RU: both "filtered"
                } else if after.partial_hits > before.partial_hits {
                    EventClass::PartialShort
                } else {
                    EventClass::Complex
                };
                let sw_filterable = matches!(
                    sw_class,
                    EventClass::CleanCheck | EventClass::RedundantUpdate
                );
                let hw_filterable = hw_class == EventClass::CleanCheck;
                prop_assert_eq!(
                    hw_filterable,
                    sw_filterable,
                    "{}: {:?} classified sw={:?} hw={:?} (op {:?})",
                    monitor_name,
                    iev,
                    sw_class,
                    hw_class,
                    op
                );
                if sw_class == EventClass::PartialShort || hw_class == EventClass::PartialShort {
                    prop_assert_eq!(
                        sw_class,
                        hw_class,
                        "{}: partial-hit mismatch",
                        monitor_name
                    );
                }
                // Software path applies its handler for every event.
                sw_mon.apply_instr(iev, &mut sw_state);
            } else {
                if !monitored {
                    continue;
                }
                fade.enqueue(event).map_err(|_| {
                    TestCaseError::fail("event queue overflow in test")
                })?;
                pump(&mut fade, &mut hw_state, &mut hw_mon);
                match event {
                    AppEvent::StackUpdate(ev) => sw_mon.apply_stack_update(&ev, &mut sw_state),
                    AppEvent::HighLevel(ev) => sw_mon.apply_high_level(&ev, &mut sw_state),
                    AppEvent::Instr(_) => unreachable!(),
                }
            }
            // State equality after every event (invariant 2).
            if let Err(msg) = states_equal(&hw_state, &sw_state) {
                return Err(TestCaseError::fail(format!(
                    "{monitor_name} after {op:?}: {msg}"
                )));
            }
        }
    }
    Ok(())
}

/// Drives the accelerator until quiescent, emulating the system's
/// consumer loop (handlers complete immediately).
fn pump(fade: &mut Fade, state: &mut MetadataState, mon: &mut Box<dyn Monitor>) {
    for _ in 0..10_000 {
        let tick = fade.tick(state);
        if let Some(uf) = tick.dispatched {
            // Functional handler effect applies at dispatch (program
            // order); the pop below only models consumer timing.
            match uf.event {
                AppEvent::Instr(ev) => mon.apply_instr(&ev, state),
                AppEvent::HighLevel(hl) => {
                    mon.apply_high_level(&hl, state);
                    if let HighLevelEvent::ThreadSwitch { tid } = hl {
                        for (id, v) in mon.on_thread_switch(tid) {
                            fade.write_invariant(id, v);
                        }
                    }
                }
                AppEvent::StackUpdate(_) => unreachable!(),
            }
        }
        while let Some(uf) = fade.pop_unfiltered() {
            fade.handler_completed(uf.token);
        }
        if fade.is_idle() && fade.outstanding_handlers() == 0 {
            return;
        }
    }
    panic!("accelerator failed to quiesce");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn addrcheck_hw_sw_equivalent(ops in prop::collection::vec(op_strategy(), 0..120)) {
        check_monitor("addrcheck", &ops, FilterMode::NonBlocking)?;
    }

    #[test]
    fn memcheck_hw_sw_equivalent(ops in prop::collection::vec(op_strategy(), 0..120)) {
        check_monitor("memcheck", &ops, FilterMode::NonBlocking)?;
    }

    #[test]
    fn memleak_hw_sw_equivalent(ops in prop::collection::vec(op_strategy(), 0..120)) {
        check_monitor("memleak", &ops, FilterMode::NonBlocking)?;
    }

    #[test]
    fn taintcheck_hw_sw_equivalent(ops in prop::collection::vec(op_strategy(), 0..120)) {
        check_monitor("taintcheck", &ops, FilterMode::NonBlocking)?;
    }

    #[test]
    fn atomcheck_hw_sw_equivalent(ops in prop::collection::vec(op_strategy(), 0..120)) {
        check_monitor("atomcheck", &ops, FilterMode::NonBlocking)?;
    }

    #[test]
    fn blocking_mode_is_functionally_identical(ops in prop::collection::vec(op_strategy(), 0..80)) {
        // Invariant 5: blocking and non-blocking FADE agree.
        check_monitor("memleak", &ops, FilterMode::Blocking)?;
        check_monitor("atomcheck", &ops, FilterMode::Blocking)?;
    }
}

#[test]
fn all_monitors_quiesce_on_empty_input() {
    for mon in all_monitors() {
        let program = mon.program();
        let mut st = MetadataState::new(program.md_map());
        mon.init_state(&mut st);
        let mut fade = Fade::new(fast_config(FilterMode::NonBlocking), program);
        for _ in 0..10 {
            fade.tick(&mut st);
        }
        assert!(fade.is_idle(), "{} should be idle", mon.name());
    }
}
