//! Structural coverage checks across all monitors: every event the
//! producer can enqueue for a monitor must have a programmed
//! event-table entry, and the cost models must be internally
//! consistent. These catch the silent-drop class of bugs (a selected
//! event with no entry would be mis-filtered).

use fade_isa::{event_id_for, AppInstr, InstrClass, MemRef, VirtAddr, layout};
use fade_monitors::all_monitors;

/// One representative instruction per class, with both stack and
/// non-stack memory variants.
fn representatives() -> Vec<AppInstr> {
    let mut v = Vec::new();
    for class in InstrClass::ALL {
        let base = AppInstr::new(VirtAddr::new(0x400), class);
        if class.is_memory() {
            v.push(base.with_mem(MemRef::word(VirtAddr::new(layout::HEAP_BASE))));
            v.push(base.with_mem(MemRef::word(VirtAddr::new(layout::GLOBALS_BASE))));
            v.push(base.with_mem(MemRef::word(VirtAddr::new(layout::STACK_TOP - 64))));
        } else {
            v.push(base);
        }
    }
    v
}

#[test]
fn every_selected_event_has_a_table_entry() {
    for mon in all_monitors() {
        let program = mon.program();
        for instr in representatives() {
            if mon.selects(&instr) {
                let id = event_id_for(&instr);
                assert!(
                    program.table().entry(id).is_some(),
                    "{} selects {:?} but its table has no entry for {id}",
                    mon.name(),
                    instr.class
                );
            }
        }
    }
}

#[test]
fn selection_is_a_pure_function_of_class_and_region() {
    // Register choice must never affect selection.
    for mon in all_monitors() {
        for instr in representatives() {
            let with_regs = instr
                .with_src1(fade_isa::Reg::new(5))
                .with_dest(fade_isa::Reg::new(6));
            assert_eq!(
                mon.selects(&instr),
                mon.selects(&with_regs),
                "{}: selection must ignore register operands",
                mon.name()
            );
        }
    }
}

#[test]
fn memory_monitors_never_select_computation() {
    for mon in all_monitors() {
        if mon.kind() == fade_monitors::MonitorKind::MemoryTracking {
            let alu = AppInstr::new(VirtAddr::new(0), InstrClass::IntAlu);
            assert!(!mon.selects(&alu), "{}", mon.name());
        }
    }
}

#[test]
fn cost_models_are_internally_consistent() {
    for mon in all_monitors() {
        let c = mon.costs();
        assert!(c.complex >= c.cc, "{}: complex >= cc", mon.name());
        assert!(c.complex >= c.partial_short, "{}", mon.name());
        assert!(c.cc > 0 && c.complex > 0, "{}", mon.name());
        // Stack costs grow with frame size for stack-shadowing monitors.
        if mon.monitors_stack() {
            let small = fade_isa::StackUpdateEvent {
                base: VirtAddr::new(layout::STACK_TOP - 4096),
                len: 32,
                kind: fade_isa::StackUpdateKind::Call,
                tid: 0,
            };
            let big = fade_isa::StackUpdateEvent { len: 1024, ..small };
            assert!(mon.stack_cost(&big) > mon.stack_cost(&small), "{}", mon.name());
        }
    }
}

#[test]
fn nb_rules_cover_metadata_writing_entries_for_propagation_monitors() {
    // For propagation trackers, every programmed *primary* entry whose
    // handler changes critical metadata must carry a non-blocking rule
    // — otherwise filtering would run ahead with stale state.
    for mon in all_monitors() {
        if mon.kind() != fade_monitors::MonitorKind::PropagationTracking {
            continue;
        }
        let program = mon.program();
        for instr in representatives() {
            if !mon.selects(&instr) {
                continue;
            }
            let id = event_id_for(&instr);
            let entry = program.table().entry(id).unwrap();
            assert!(
                entry.nb.is_some(),
                "{}: entry {id} lacks a non-blocking update rule",
                mon.name()
            );
        }
    }
}

#[test]
fn high_level_costs_scale_with_size() {
    for mon in all_monitors() {
        let small = fade_isa::HighLevelEvent::Malloc {
            base: VirtAddr::new(layout::HEAP_BASE),
            len: 16,
            ctx: 1,
        };
        let big = fade_isa::HighLevelEvent::Malloc {
            base: VirtAddr::new(layout::HEAP_BASE),
            len: 4096,
            ctx: 1,
        };
        assert!(
            mon.high_level_cost(&big) > mon.high_level_cost(&small),
            "{}: bulk handlers must scale with the region",
            mon.name()
        );
    }
}
