//! The `Monitor` trait: what every instruction-grain monitoring tool
//! provides to the simulation harness.

use fade::FadeProgram;
use fade::InvId;
use fade_isa::{AppInstr, HighLevelEvent, InstrEvent, StackUpdateEvent};
use fade_shadow::MetadataState;

/// Memory tracking vs propagation tracking (Section 3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorKind {
    /// Processes only memory instructions (AddrCheck, AtomCheck).
    MemoryTracking,
    /// May track any instruction type and propagates metadata from
    /// sources to destination (MemCheck, MemLeak, TaintCheck).
    PropagationTracking,
}

/// How the monitor's software would handle one instruction event — the
/// classification behind Figure 4(a)'s time breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventClass {
    /// The metadata matches the invariant; the handler just checks.
    CleanCheck,
    /// The update leaves metadata unchanged; the handler just updates.
    RedundantUpdate,
    /// A hardware pre-check passed; only the short handler tail runs
    /// (AtomCheck's common case).
    PartialShort,
    /// Full (complex) handler required.
    Complex,
}

/// Software handler lengths, in dynamic instructions.
///
/// The absolute values model Valgrind-style inline handlers (checks,
/// table lookups, register spills/fills around the instrumentation);
/// only their relative magnitudes matter for the paper's shape results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// A clean-check handler (check + exit).
    pub cc: u32,
    /// A redundant-update handler (load + compare + store).
    pub ru: u32,
    /// The short handler after a passed hardware pre-check.
    pub partial_short: u32,
    /// The full handler for an unfilterable event.
    pub complex: u32,
    /// Per-metadata-word cost of a software stack update.
    pub stack_per_word: u32,
    /// Fixed cost of a software stack update.
    pub stack_base: u32,
    /// Fixed cost of a malloc/free/taint-source handler.
    pub high_level_base: u32,
    /// Per-metadata-word cost of a high-level handler's bulk update.
    pub high_level_per_word: u32,
    /// Cost of a thread-switch notification.
    pub thread_switch: u32,
}

impl CostModel {
    /// Cost of handling `class` in software.
    pub fn for_class(&self, class: EventClass) -> u32 {
        match class {
            EventClass::CleanCheck => self.cc,
            EventClass::RedundantUpdate => self.ru,
            EventClass::PartialShort => self.partial_short,
            EventClass::Complex => self.complex,
        }
    }
}

/// An instruction-grain monitoring tool.
///
/// The simulation harness uses the same object for every system
/// configuration: the *software* path calls [`Monitor::classify`] /
/// [`Monitor::apply_instr`] per monitored event; the *FADE* path loads
/// [`Monitor::program`] into the accelerator and only consults the
/// software handlers for unfiltered events.
///
/// Monitors are `Send` so whole monitoring sessions can be sharded
/// across worker threads (each session owns its monitor exclusively —
/// no `Sync` needed).
pub trait Monitor: Send {
    /// Display name (paper spelling, e.g. "MemLeak").
    fn name(&self) -> &'static str;

    /// Memory or propagation tracking.
    fn kind(&self) -> MonitorKind;

    /// Producer-side event selection: `true` if the retired instruction
    /// is a monitored event for this tool.
    fn selects(&self, instr: &AppInstr) -> bool;

    /// Whether the monitor shadows stack allocation (and therefore
    /// consumes stack-update events).
    fn monitors_stack(&self) -> bool;

    /// The FADE program implementing this monitor in hardware.
    fn program(&self) -> FadeProgram;

    /// One-time metadata initialization at application load (e.g.
    /// pre-allocating the globals segment and initial stack).
    fn init_state(&self, state: &mut MetadataState);

    /// How the software monitor would handle this event *in the current
    /// metadata state*: the class determines both cost and — for
    /// `Complex` — whether FADE could have filtered it.
    fn classify(&self, ev: &InstrEvent, state: &MetadataState) -> EventClass;

    /// Applies the handler's full metadata effect (critical metadata,
    /// matching the FADE program's non-blocking rules, plus any
    /// monitor-internal bookkeeping).
    fn apply_instr(&mut self, ev: &InstrEvent, state: &mut MetadataState);

    /// Applies a high-level event (malloc/free/taint-source/thread
    /// switch): bulk metadata updates and bookkeeping.
    fn apply_high_level(&mut self, ev: &HighLevelEvent, state: &mut MetadataState);

    /// Applies a stack update in software (unaccelerated systems; FADE
    /// systems use the SUU instead).
    fn apply_stack_update(&self, ev: &StackUpdateEvent, state: &mut MetadataState);

    /// The monitor's handler cost model.
    fn costs(&self) -> CostModel;

    /// Invariant-register updates to push into the accelerator when the
    /// scheduler switches threads (AtomCheck's thread signature).
    fn on_thread_switch(&mut self, _tid: u8) -> Vec<(InvId, u64)> {
        Vec::new()
    }

    /// Bug reports accumulated so far (for the example applications).
    fn reports(&self) -> Vec<String> {
        Vec::new()
    }

    /// An independent copy of this monitor with all its internal
    /// bookkeeping (allocation tables, lock sets, reports) — the
    /// checkpointing hook behind epoch-parallel replay, which snapshots
    /// the monitor alongside the metadata state at epoch boundaries.
    ///
    /// The default returns `None`, meaning the monitor cannot be
    /// checkpointed; sessions for such monitors fall back to sequential
    /// replay. All built-in monitors fork via `Clone`.
    fn fork(&self) -> Option<Box<dyn Monitor>> {
        None
    }

    /// Software cost of a stack update over `ev.len` bytes.
    fn stack_cost(&self, ev: &StackUpdateEvent) -> u32 {
        let c = self.costs();
        c.stack_base + c.stack_per_word * (ev.len / 4)
    }

    /// Software cost of a high-level event.
    fn high_level_cost(&self, ev: &HighLevelEvent) -> u32 {
        let c = self.costs();
        match ev {
            HighLevelEvent::Malloc { len, .. }
            | HighLevelEvent::Free { len, .. }
            | HighLevelEvent::TaintSource { len, .. } => {
                c.high_level_base + c.high_level_per_word * (len / 4)
            }
            HighLevelEvent::ThreadSwitch { .. } => c.thread_switch,
        }
    }
}

/// All five paper monitors, freshly constructed.
pub fn all_monitors() -> Vec<Box<dyn Monitor>> {
    vec![
        Box::new(crate::AddrCheck::new()),
        Box::new(crate::AtomCheck::new()),
        Box::new(crate::MemCheck::new()),
        Box::new(crate::MemLeak::new()),
        Box::new(crate::TaintCheck::new()),
    ]
}

/// Constructs a monitor by (case-insensitive) name.
pub fn monitor_by_name(name: &str) -> Option<Box<dyn Monitor>> {
    match name.to_ascii_lowercase().as_str() {
        "addrcheck" => Some(Box::new(crate::AddrCheck::new())),
        "atomcheck" => Some(Box::new(crate::AtomCheck::new())),
        "memcheck" => Some(Box::new(crate::MemCheck::new())),
        "memleak" => Some(Box::new(crate::MemLeak::new())),
        "taintcheck" => Some(Box::new(crate::TaintCheck::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_five_monitors() {
        let all = all_monitors();
        assert_eq!(all.len(), 5);
        let names: Vec<&str> = all.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec!["AddrCheck", "AtomCheck", "MemCheck", "MemLeak", "TaintCheck"]
        );
    }

    #[test]
    fn by_name_round_trips() {
        for m in all_monitors() {
            let again = monitor_by_name(m.name()).unwrap();
            assert_eq!(again.name(), m.name());
        }
        assert!(monitor_by_name("nope").is_none());
    }

    #[test]
    fn all_programs_validate() {
        for m in all_monitors() {
            assert!(m.program().validate().is_ok(), "{} program", m.name());
        }
    }

    #[test]
    fn cost_model_class_lookup() {
        let c = CostModel {
            cc: 1,
            ru: 2,
            partial_short: 3,
            complex: 4,
            stack_per_word: 0,
            stack_base: 0,
            high_level_base: 0,
            high_level_per_word: 0,
            thread_switch: 0,
        };
        assert_eq!(c.for_class(EventClass::CleanCheck), 1);
        assert_eq!(c.for_class(EventClass::RedundantUpdate), 2);
        assert_eq!(c.for_class(EventClass::PartialShort), 3);
        assert_eq!(c.for_class(EventClass::Complex), 4);
    }
}
