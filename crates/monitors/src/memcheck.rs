//! MemCheck: detects accesses to unallocated memory and uses of
//! uninitialized values (Nethercote & Seward; Section 6 of the paper).
//!
//! * **Critical metadata**: one byte per word/register encoding three
//!   states — 0 = unallocated, 1 = allocated-but-uninitialized,
//!   3 = initialized (bit 0 = allocated, bit 1 = defined, so definedness
//!   composes with bitwise AND).
//! * **Selection**: memory instructions plus integer propagation
//!   classes (definedness flows through computation).
//! * **FADE technique**: clean checks for initialized operands and
//!   redundant-update filtering for stores of defined data over defined
//!   words; 98% filtering ratio in Table 2. The SUU bulk-marks stack
//!   frames allocated-uninitialized on calls and unallocated on returns.

use fade::{
    EventTableEntry, FadeProgram, HandlerPc, InvId, NbAction, NbUpdate, OperandRule, SuuConfig,
};
use fade_isa::{
    event_ids, layout, AppInstr, HighLevelEvent, InstrClass, InstrEvent, StackUpdateEvent,
    StackUpdateKind,
};
use fade_shadow::{MetadataMap, MetadataState};

use crate::monitor::{CostModel, EventClass, Monitor, MonitorKind};

/// Metadata encoding: unallocated.
pub const UNALLOCATED: u8 = 0;
/// Metadata encoding: allocated but uninitialized.
pub const UNINIT: u8 = 1;
/// Metadata encoding: allocated and initialized (defined).
pub const INIT: u8 = 3;

const INV_INIT: InvId = InvId::new(0);
const INV_CALL: InvId = InvId::new(1);
const INV_RET: InvId = InvId::new(2);
const HANDLER: HandlerPc = HandlerPc::new(0x3c00_0000);

/// The MemCheck monitor.
#[derive(Clone, Debug, Default)]
pub struct MemCheck {
    reports: Vec<String>,
}

impl MemCheck {
    /// Creates the monitor.
    pub fn new() -> Self {
        MemCheck::default()
    }

    /// An alternative FADE program that encodes the load/store checks
    /// as two-shot multi-shot chains (one operand checked per shot),
    /// exactly like the chained entries of Figure 6(b). Functionally
    /// identical to [`Monitor::program`]; each memory event costs one
    /// extra filter-stage cycle. Used by the multi-shot ablation.
    pub fn program_multi_shot(&self) -> FadeProgram {
        use fade_isa::EventId;
        let mut p = self.program();
        // Continuation entries live in the monitor-managed upper half
        // of the table (Section 4.1, Multi-shot Filtering).
        let load_cont = EventId::new(event_ids::FIRST_CONTINUATION);
        let store_cont = EventId::new(event_ids::FIRST_CONTINUATION + 1);
        p.set_entry(
            event_ids::LOAD,
            EventTableEntry::clean_check([
                Some(OperandRule::mem_operand(1, 0xff, INV_INIT)),
                None,
                None,
            ])
            .with_handler(HANDLER)
            .with_next(load_cont)
            .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
        );
        p.set_entry(
            load_cont,
            EventTableEntry::clean_check([
                None,
                None,
                Some(OperandRule::reg_operand(0xff, INV_INIT)),
            ])
            .with_ms(),
        );
        p.set_entry(
            event_ids::STORE,
            EventTableEntry::clean_check([
                Some(OperandRule::reg_operand(0xff, INV_INIT)),
                None,
                None,
            ])
            .with_handler(HANDLER)
            .with_next(store_cont)
            .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
        );
        p.set_entry(
            store_cont,
            EventTableEntry::clean_check([
                None,
                None,
                Some(OperandRule::mem_operand(1, 0xff, INV_INIT)),
            ])
            .with_ms(),
        );
        p
    }

    fn operand_values(&self, ev: &InstrEvent, state: &MetadataState) -> (u8, u8, u8) {
        // Returns (s1, s2, d) metadata as the event-table rules fetch
        // them: loads read s1 from memory, stores write d to memory.
        match ev.id {
            id if id == event_ids::LOAD => (
                state.mem_meta(ev.app_addr),
                INIT, // unused source reads as clean
                state.reg_meta(ev.dest),
            ),
            id if id == event_ids::STORE => (
                state.reg_meta(ev.src1),
                INIT,
                state.mem_meta(ev.app_addr),
            ),
            id if id == event_ids::INT_MOVE => (
                state.reg_meta(ev.src1),
                INIT,
                state.reg_meta(ev.dest),
            ),
            _ => (
                state.reg_meta(ev.src1),
                state.reg_meta(ev.src2),
                state.reg_meta(ev.dest),
            ),
        }
    }
}

impl Monitor for MemCheck {
    fn name(&self) -> &'static str {
        "MemCheck"
    }

    fn fork(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }

    fn kind(&self) -> MonitorKind {
        MonitorKind::PropagationTracking
    }

    fn selects(&self, instr: &AppInstr) -> bool {
        matches!(
            instr.class,
            InstrClass::Load
                | InstrClass::Store
                | InstrClass::IntAlu
                | InstrClass::IntMove
                | InstrClass::IntMul
        )
    }

    fn monitors_stack(&self) -> bool {
        true
    }

    fn program(&self) -> FadeProgram {
        let mut p = FadeProgram::new(MetadataMap::per_word());
        p.set_invariant(INV_INIT, INIT as u64);
        p.set_invariant(INV_CALL, UNINIT as u64);
        p.set_invariant(INV_RET, UNALLOCATED as u64);
        p.set_entry(
            event_ids::LOAD,
            EventTableEntry::clean_check([
                Some(OperandRule::mem_operand(1, 0xff, INV_INIT)),
                None,
                Some(OperandRule::reg_operand(0xff, INV_INIT)),
            ])
            .with_handler(HANDLER)
            .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
        );
        p.set_entry(
            event_ids::STORE,
            EventTableEntry::clean_check([
                Some(OperandRule::reg_operand(0xff, INV_INIT)),
                None,
                Some(OperandRule::mem_operand(1, 0xff, INV_INIT)),
            ])
            .with_handler(HANDLER)
            .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
        );
        for id in [event_ids::INT_ALU, event_ids::INT_MUL] {
            p.set_entry(
                id,
                EventTableEntry::clean_check([
                    Some(OperandRule::reg_operand(0xff, INV_INIT)),
                    Some(OperandRule::reg_operand(0xff, INV_INIT)),
                    Some(OperandRule::reg_operand(0xff, INV_INIT)),
                ])
                .with_handler(HANDLER)
                .with_nb(NbUpdate::unconditional(NbAction::ComposeAnd)),
            );
        }
        p.set_entry(
            event_ids::INT_MOVE,
            EventTableEntry::clean_check([
                Some(OperandRule::reg_operand(0xff, INV_INIT)),
                None,
                Some(OperandRule::reg_operand(0xff, INV_INIT)),
            ])
            .with_handler(HANDLER)
            .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
        );
        p.set_suu(SuuConfig {
            call_inv: INV_CALL,
            ret_inv: INV_RET,
        });
        p
    }

    fn init_state(&self, state: &mut MetadataState) {
        // The zero register always holds the (defined) value 0.
        state.regs.set_zero_value(INIT);
        // Data segment: allocated and defined. Registers start defined.
        state.fill_app_range(
            fade_isa::VirtAddr::new(layout::GLOBALS_BASE),
            layout::GLOBALS_SIZE,
            INIT,
        );
        state.regs.fill(INIT);
        // Initial stacks (one per possible thread).
        for tid in 0..4u32 {
            let base = layout::STACK_TOP - tid * (8 << 20) - 4096;
            state.fill_app_range(fade_isa::VirtAddr::new(base), 4096, UNINIT);
        }
    }

    fn classify(&self, ev: &InstrEvent, state: &MetadataState) -> EventClass {
        let (s1, s2, d) = self.operand_values(ev, state);
        if s1 == INIT && s2 == INIT && d == INIT {
            if ev.id == event_ids::STORE {
                EventClass::RedundantUpdate
            } else {
                EventClass::CleanCheck
            }
        } else {
            EventClass::Complex
        }
    }

    fn apply_instr(&mut self, ev: &InstrEvent, state: &mut MetadataState) {
        let (s1, s2, _) = self.operand_values(ev, state);
        let new = match ev.id {
            id if id == event_ids::INT_ALU || id == event_ids::INT_MUL => s1 & s2,
            _ => s1,
        };
        if ev.id == event_ids::STORE {
            state.set_mem_meta(ev.app_addr, new);
        } else {
            state.set_reg_meta(ev.dest, new);
        }
        if ev.id == event_ids::LOAD && s1 != INIT && self.reports.len() < 1000 {
            let what = if s1 == UNALLOCATED {
                "unallocated"
            } else {
                "uninitialized"
            };
            self.reports
                .push(format!("load of {what} word {} at pc {}", ev.app_addr, ev.app_pc));
        }
    }

    fn apply_high_level(&mut self, ev: &HighLevelEvent, state: &mut MetadataState) {
        match *ev {
            HighLevelEvent::Malloc { base, len, .. } => {
                state.fill_app_range(base, len, UNINIT);
            }
            HighLevelEvent::Free { base, len } => {
                state.fill_app_range(base, len, UNALLOCATED);
            }
            HighLevelEvent::TaintSource { base, len } => {
                // External input defines the buffer.
                state.fill_app_range(base, len, INIT);
            }
            HighLevelEvent::ThreadSwitch { .. } => {}
        }
    }

    fn apply_stack_update(&self, ev: &StackUpdateEvent, state: &mut MetadataState) {
        let value = match ev.kind {
            StackUpdateKind::Call => UNINIT,
            StackUpdateKind::Return => UNALLOCATED,
        };
        state.fill_app_range(ev.base, ev.len, value);
    }

    fn costs(&self) -> CostModel {
        CostModel {
            cc: 13,
            ru: 13,
            partial_short: 16,
            complex: 18,
            stack_per_word: 1,
            stack_base: 18,
            high_level_base: 40,
            high_level_per_word: 1,
            thread_switch: 10,
        }
    }

    fn reports(&self) -> Vec<String> {
        self.reports.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fade_isa::{instr_event_for, MemRef, Reg, VirtAddr};

    fn fresh() -> (MemCheck, MetadataState) {
        let m = MemCheck::new();
        let mut st = MetadataState::new(MetadataMap::per_word());
        m.init_state(&mut st);
        (m, st)
    }

    fn load(addr: u32, dest: u8) -> InstrEvent {
        instr_event_for(
            &AppInstr::new(VirtAddr::new(4), InstrClass::Load)
                .with_dest(Reg::new(dest))
                .with_mem(MemRef::word(VirtAddr::new(addr))),
        )
    }

    fn store(addr: u32, src: u8) -> InstrEvent {
        instr_event_for(
            &AppInstr::new(VirtAddr::new(8), InstrClass::Store)
                .with_src1(Reg::new(src))
                .with_mem(MemRef::word(VirtAddr::new(addr))),
        )
    }

    #[test]
    fn defined_data_flows_are_filterable() {
        let (m, st) = fresh();
        let g = layout::GLOBALS_BASE;
        assert_eq!(m.classify(&load(g, 2), &st), EventClass::CleanCheck);
        assert_eq!(m.classify(&store(g, 2), &st), EventClass::RedundantUpdate);
    }

    #[test]
    fn first_write_to_fresh_allocation_is_complex() {
        let (mut m, mut st) = fresh();
        let base = VirtAddr::new(layout::HEAP_BASE);
        m.apply_high_level(
            &HighLevelEvent::Malloc {
                base,
                len: 64,
                ctx: 1,
            },
            &mut st,
        );
        // First write: uninit -> init transition cannot be filtered.
        assert_eq!(
            m.classify(&store(base.raw(), 2), &st),
            EventClass::Complex
        );
        m.apply_instr(&store(base.raw(), 2), &mut st);
        assert_eq!(st.mem_meta(base), INIT);
        // Second write is redundant.
        assert_eq!(
            m.classify(&store(base.raw(), 2), &st),
            EventClass::RedundantUpdate
        );
    }

    #[test]
    fn uninit_load_reports_and_poisons_register() {
        let (mut m, mut st) = fresh();
        let base = VirtAddr::new(layout::HEAP_BASE + 0x40);
        m.apply_high_level(
            &HighLevelEvent::Malloc {
                base,
                len: 32,
                ctx: 2,
            },
            &mut st,
        );
        let ev = load(base.raw(), 9);
        assert_eq!(m.classify(&ev, &st), EventClass::Complex);
        m.apply_instr(&ev, &mut st);
        assert_eq!(st.reg_meta(Reg::new(9)), UNINIT);
        assert_eq!(m.reports().len(), 1);
        assert!(m.reports()[0].contains("uninitialized"));
    }

    #[test]
    fn definedness_composes_with_and() {
        let (mut m, mut st) = fresh();
        st.set_reg_meta(Reg::new(3), UNINIT);
        let alu = instr_event_for(
            &AppInstr::new(VirtAddr::new(12), InstrClass::IntAlu)
                .with_src1(Reg::new(2))
                .with_src2(Reg::new(3))
                .with_dest(Reg::new(4)),
        );
        assert_eq!(m.classify(&alu, &st), EventClass::Complex);
        m.apply_instr(&alu, &mut st);
        assert_eq!(st.reg_meta(Reg::new(4)), UNINIT, "init AND uninit = uninit");
    }

    #[test]
    fn stack_updates_toggle_frame_state() {
        let (m, mut st) = fresh();
        let frame = StackUpdateEvent {
            base: VirtAddr::new(layout::STACK_TOP - 0x2000),
            len: 128,
            kind: StackUpdateKind::Call,
            tid: 0,
        };
        m.apply_stack_update(&frame, &mut st);
        assert_eq!(st.mem_meta(frame.base), UNINIT);
        let ret = StackUpdateEvent {
            kind: StackUpdateKind::Return,
            ..frame
        };
        m.apply_stack_update(&ret, &mut st);
        assert_eq!(st.mem_meta(frame.base), UNALLOCATED);
    }

    #[test]
    fn multi_shot_program_validates_and_chains() {
        let p = MemCheck::new().program_multi_shot();
        assert!(p.validate().is_ok());
        let load = p.table().entry(event_ids::LOAD).unwrap();
        assert!(load.next_entry.is_some());
        let cont = p.table().entry(load.next_entry.unwrap()).unwrap();
        assert!(cont.ms, "continuation must AND into the chain");
    }

    #[test]
    fn program_has_suu_and_validates() {
        let p = MemCheck::new().program();
        assert!(p.validate().is_ok());
        assert!(p.suu().is_some());
        assert_eq!(p.invariants().read(INV_CALL), UNINIT as u64);
        assert_eq!(p.invariants().read(INV_RET), UNALLOCATED as u64);
    }
}
