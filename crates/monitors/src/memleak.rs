//! MemLeak: precise memory-leak detection through reference counting
//! (Maebe et al.; Section 6 of the paper).
//!
//! * **Critical metadata**: the pointer/non-pointer status of every
//!   register and memory word (one byte, 0 = non-pointer, 1 = pointer).
//! * **Non-critical metadata**: a pointer to the allocation *context*
//!   of the block each pointer refers to — a unique ID, PC, and a
//!   reference counter — maintained in the monitor.
//! * **Selection**: instructions that may propagate a pointer value
//!   (loads, stores, integer ALU/move/mul); floating point is
//!   eliminated.
//! * **FADE technique**: clean checks filter events whose operands are
//!   all non-pointers (87% suite-wide, ~70% for astar/gcc); the SUU
//!   clears frame pointer-status on calls and returns.

use std::collections::HashMap;

use fade::{
    EventTableEntry, FadeProgram, HandlerPc, InvId, NbAction, NbUpdate, OperandRule, SuuConfig,
};
use fade_isa::{
    event_ids, AppInstr, HighLevelEvent, InstrClass, InstrEvent, Reg, StackUpdateEvent,
    VirtAddr,
};
use fade_shadow::{MetadataMap, MetadataState};

use crate::monitor::{CostModel, EventClass, Monitor, MonitorKind};

/// Metadata encoding: not a pointer.
pub const NON_POINTER: u8 = 0;
/// Metadata encoding: a pointer into a live allocation.
pub const POINTER: u8 = 1;

const INV_NONPTR: InvId = InvId::new(0);
const HANDLER: HandlerPc = HandlerPc::new(0x1e00_0000);

/// An allocation context: the non-critical metadata of one malloc site.
#[derive(Clone, Debug)]
struct Context {
    /// Allocation-site identifier.
    id: u32,
    /// Live references to the block.
    refs: i64,
    /// Block still allocated.
    live: bool,
    /// Leak already reported.
    reported: bool,
}

/// The MemLeak monitor.
#[derive(Clone, Debug, Default)]
pub struct MemLeak {
    reports: Vec<String>,
    contexts: HashMap<u32, Context>,
    /// Allocation context referenced by each pointer-holding register.
    reg_ctx: [u32; fade_isa::NUM_REGS],
    /// Allocation context referenced by each pointer-holding word.
    word_ctx: HashMap<u32, u32>,
    /// Live block base -> its own context id.
    blocks: HashMap<u32, u32>,
}

impl MemLeak {
    /// Creates the monitor.
    pub fn new() -> Self {
        MemLeak::default()
    }

    /// Count of leak reports so far (for the example applications).
    pub fn leaks_found(&self) -> usize {
        self.reports.iter().filter(|r| r.contains("leak")).count()
    }

    fn inc(&mut self, ctx: u32) {
        if let Some(c) = self.contexts.get_mut(&ctx) {
            c.refs += 1;
        }
    }

    fn dec(&mut self, ctx: u32) {
        let mut leak: Option<u32> = None;
        if let Some(c) = self.contexts.get_mut(&ctx) {
            c.refs -= 1;
            if c.refs <= 0 && c.live && !c.reported {
                c.reported = true;
                leak = Some(c.id);
            }
        }
        if let Some(id) = leak {
            if self.reports.len() < 1000 {
                self.reports
                    .push(format!("possible leak: allocation context {id} lost its last reference"));
            }
        }
    }

    fn set_reg(&mut self, state: &mut MetadataState, reg: Reg, status: u8, ctx: u32) {
        let old_status = state.reg_meta(reg);
        let old_ctx = self.reg_ctx[reg.index() as usize];
        if old_status == POINTER {
            self.dec(old_ctx);
        }
        state.set_reg_meta(reg, status);
        self.reg_ctx[reg.index() as usize] = if status == POINTER { ctx } else { 0 };
        if status == POINTER {
            self.inc(ctx);
        }
    }

    fn set_word(&mut self, state: &mut MetadataState, addr: VirtAddr, status: u8, ctx: u32) {
        let w = addr.word_index();
        if state.mem_meta(addr) == POINTER {
            if let Some(old) = self.word_ctx.remove(&w) {
                self.dec(old);
            }
        }
        state.set_mem_meta(addr, status);
        if status == POINTER {
            self.word_ctx.insert(w, ctx);
            self.inc(ctx);
        }
    }

    fn reg_info(&self, state: &MetadataState, reg: Reg) -> (u8, u32) {
        (state.reg_meta(reg), self.reg_ctx[reg.index() as usize])
    }

    fn word_info(&self, state: &MetadataState, addr: VirtAddr) -> (u8, u32) {
        (
            state.mem_meta(addr),
            self.word_ctx
                .get(&addr.word_index())
                .copied()
                .unwrap_or(0),
        )
    }
}

impl Monitor for MemLeak {
    fn name(&self) -> &'static str {
        "MemLeak"
    }

    fn fork(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }

    fn kind(&self) -> MonitorKind {
        MonitorKind::PropagationTracking
    }

    fn selects(&self, instr: &AppInstr) -> bool {
        matches!(
            instr.class,
            InstrClass::Load
                | InstrClass::Store
                | InstrClass::IntAlu
                | InstrClass::IntMove
                | InstrClass::IntMul
        )
    }

    fn monitors_stack(&self) -> bool {
        true
    }

    fn program(&self) -> FadeProgram {
        let mut p = FadeProgram::new(MetadataMap::per_word());
        p.set_invariant(INV_NONPTR, NON_POINTER as u64);
        p.set_entry(
            event_ids::LOAD,
            EventTableEntry::clean_check([
                Some(OperandRule::mem_operand(1, 0xff, INV_NONPTR)),
                None,
                Some(OperandRule::reg_operand(0xff, INV_NONPTR)),
            ])
            .with_handler(HANDLER)
            .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
        );
        p.set_entry(
            event_ids::STORE,
            EventTableEntry::clean_check([
                Some(OperandRule::reg_operand(0xff, INV_NONPTR)),
                None,
                Some(OperandRule::mem_operand(1, 0xff, INV_NONPTR)),
            ])
            .with_handler(HANDLER)
            .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
        );
        p.set_entry(
            event_ids::INT_ALU,
            EventTableEntry::clean_check([
                Some(OperandRule::reg_operand(0xff, INV_NONPTR)),
                Some(OperandRule::reg_operand(0xff, INV_NONPTR)),
                Some(OperandRule::reg_operand(0xff, INV_NONPTR)),
            ])
            .with_handler(HANDLER)
            .with_nb(NbUpdate::unconditional(NbAction::ComposeOr)),
        );
        // Multiplying pointers yields a non-pointer.
        p.set_entry(
            event_ids::INT_MUL,
            EventTableEntry::clean_check([
                Some(OperandRule::reg_operand(0xff, INV_NONPTR)),
                Some(OperandRule::reg_operand(0xff, INV_NONPTR)),
                Some(OperandRule::reg_operand(0xff, INV_NONPTR)),
            ])
            .with_handler(HANDLER)
            .with_nb(NbUpdate::unconditional(NbAction::SetConst(INV_NONPTR))),
        );
        p.set_entry(
            event_ids::INT_MOVE,
            EventTableEntry::clean_check([
                Some(OperandRule::reg_operand(0xff, INV_NONPTR)),
                None,
                Some(OperandRule::reg_operand(0xff, INV_NONPTR)),
            ])
            .with_handler(HANDLER)
            .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
        );
        // Frames carry no pointers when allocated or after release.
        p.set_invariant(InvId::new(1), NON_POINTER as u64);
        p.set_invariant(InvId::new(2), NON_POINTER as u64);
        p.set_suu(SuuConfig {
            call_inv: InvId::new(1),
            ret_inv: InvId::new(2),
        });
        p
    }

    fn init_state(&self, _state: &mut MetadataState) {
        // Everything starts as non-pointer.
    }

    fn classify(&self, ev: &InstrEvent, state: &MetadataState) -> EventClass {
        let clean = match ev.id {
            id if id == event_ids::LOAD => {
                state.mem_meta(ev.app_addr) == NON_POINTER
                    && state.reg_meta(ev.dest) == NON_POINTER
            }
            id if id == event_ids::STORE => {
                state.reg_meta(ev.src1) == NON_POINTER
                    && state.mem_meta(ev.app_addr) == NON_POINTER
            }
            id if id == event_ids::INT_MOVE => {
                state.reg_meta(ev.src1) == NON_POINTER
                    && state.reg_meta(ev.dest) == NON_POINTER
            }
            _ => {
                state.reg_meta(ev.src1) == NON_POINTER
                    && state.reg_meta(ev.src2) == NON_POINTER
                    && state.reg_meta(ev.dest) == NON_POINTER
            }
        };
        if clean {
            EventClass::CleanCheck
        } else {
            EventClass::Complex
        }
    }

    fn apply_instr(&mut self, ev: &InstrEvent, state: &mut MetadataState) {
        match ev.id {
            id if id == event_ids::LOAD => {
                let (s, c) = self.word_info(state, ev.app_addr);
                self.set_reg(state, ev.dest, s, c);
            }
            id if id == event_ids::STORE => {
                let (s, c) = self.reg_info(state, ev.src1);
                self.set_word(state, ev.app_addr, s, c);
            }
            id if id == event_ids::INT_MOVE => {
                let (s, c) = self.reg_info(state, ev.src1);
                self.set_reg(state, ev.dest, s, c);
            }
            id if id == event_ids::INT_MUL => {
                self.set_reg(state, ev.dest, NON_POINTER, 0);
            }
            _ => {
                // ALU: the handler *inspects the result value* to decide
                // whether it still points into a live block (ptr+offset
                // does; ptr-ptr differences and comparisons do not). The
                // hardware's non-blocking rule is the conservative OR;
                // the handler's value-informed answer is authoritative
                // and overwrites it (Section 5.2: the handler updates
                // both critical and non-critical metadata).
                let (s1, c1) = self.reg_info(state, ev.src1);
                let status = if ev.result_ptr { POINTER } else { NON_POINTER };
                let ctx = if s1 == POINTER {
                    c1
                } else {
                    self.reg_info(state, ev.src2).1
                };
                self.set_reg(state, ev.dest, status, ctx);
            }
        }
    }

    fn apply_high_level(&mut self, ev: &HighLevelEvent, state: &mut MetadataState) {
        match *ev {
            HighLevelEvent::Malloc { base, len, ctx } => {
                self.contexts.insert(
                    ctx,
                    Context {
                        id: ctx,
                        refs: 0,
                        live: true,
                        reported: false,
                    },
                );
                self.blocks.insert(base.raw(), ctx);
                // Fresh block holds no pointers.
                state.fill_app_range(base, len, NON_POINTER);
                for w in base.word_index()..base.wrapping_add(len).word_index() {
                    self.word_ctx.remove(&w);
                }
                // The returned pointer lands in the ABI return register.
                self.set_reg(state, Reg::RET, POINTER, ctx);
            }
            HighLevelEvent::Free { base, len } => {
                // Pointers stored inside the freed block release their
                // referents.
                for off in (0..len).step_by(4) {
                    let a = base.wrapping_add(off);
                    if state.mem_meta(a) == POINTER {
                        if let Some(c) = self.word_ctx.remove(&a.word_index()) {
                            self.dec(c);
                        }
                    }
                }
                state.fill_app_range(base, len, NON_POINTER);
                if let Some(ctx) = self.blocks.remove(&base.raw()) {
                    if let Some(c) = self.contexts.get_mut(&ctx) {
                        c.live = false;
                    }
                }
            }
            HighLevelEvent::TaintSource { .. } | HighLevelEvent::ThreadSwitch { .. } => {}
        }
    }

    fn apply_stack_update(&self, ev: &StackUpdateEvent, state: &mut MetadataState) {
        // Frame pointer-status is cleared both on allocation and on
        // release. (Reference-count adjustment for spilled pointers is
        // folded into the per-word handler cost.)
        state.fill_app_range(ev.base, ev.len, NON_POINTER);
    }

    fn costs(&self) -> CostModel {
        CostModel {
            cc: 15,
            ru: 15,
            partial_short: 18,
            complex: 20,
            stack_per_word: 1,
            stack_base: 20,
            high_level_base: 55,
            high_level_per_word: 1,
            thread_switch: 10,
        }
    }

    fn reports(&self) -> Vec<String> {
        self.reports.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fade_isa::{instr_event_for, MemRef, VirtAddr};

    fn fresh() -> (MemLeak, MetadataState) {
        (MemLeak::new(), MetadataState::new(MetadataMap::per_word()))
    }

    fn malloc(m: &mut MemLeak, st: &mut MetadataState, base: u32, len: u32, ctx: u32) {
        m.apply_high_level(
            &HighLevelEvent::Malloc {
                base: VirtAddr::new(base),
                len,
                ctx,
            },
            st,
        );
    }

    fn store(addr: u32, src: u8) -> InstrEvent {
        instr_event_for(
            &AppInstr::new(VirtAddr::new(8), InstrClass::Store)
                .with_src1(Reg::new(src))
                .with_mem(MemRef::word(VirtAddr::new(addr))),
        )
    }

    fn mov(src: u8, dst: u8) -> InstrEvent {
        instr_event_for(
            &AppInstr::new(VirtAddr::new(12), InstrClass::IntMove)
                .with_src1(Reg::new(src))
                .with_dest(Reg::new(dst)),
        )
    }

    #[test]
    fn non_pointer_events_are_clean_checks() {
        let (m, st) = fresh();
        assert_eq!(m.classify(&store(0x1000, 5), &st), EventClass::CleanCheck);
        assert_eq!(m.classify(&mov(5, 6), &st), EventClass::CleanCheck);
    }

    #[test]
    fn malloc_makes_return_register_a_pointer() {
        let (mut m, mut st) = fresh();
        malloc(&mut m, &mut st, 0x4000_0000, 64, 1);
        assert_eq!(st.reg_meta(Reg::RET), POINTER);
        // Any event touching the pointer register is complex.
        assert_eq!(
            m.classify(&mov(Reg::RET.index(), 5), &st),
            EventClass::Complex
        );
    }

    #[test]
    fn overwriting_last_pointer_reports_a_leak() {
        let (mut m, mut st) = fresh();
        malloc(&mut m, &mut st, 0x4000_0000, 64, 42);
        // Overwrite the only reference (RET) with a non-pointer.
        m.apply_instr(&mov(1, Reg::RET.index()), &mut st);
        assert_eq!(st.reg_meta(Reg::RET), NON_POINTER);
        assert_eq!(m.leaks_found(), 1, "reports: {:?}", m.reports());
    }

    #[test]
    fn spilled_pointer_keeps_block_reachable() {
        let (mut m, mut st) = fresh();
        malloc(&mut m, &mut st, 0x4000_0000, 64, 7);
        // Spill RET to memory, then overwrite RET: refcount stays > 0.
        m.apply_instr(&store(0x1000_0100, Reg::RET.index()), &mut st);
        assert_eq!(st.mem_meta(VirtAddr::new(0x1000_0100)), POINTER);
        m.apply_instr(&mov(1, Reg::RET.index()), &mut st);
        assert_eq!(m.leaks_found(), 0);
        // Clearing the spilled copy loses the last reference.
        m.apply_instr(&store(0x1000_0100, 1), &mut st);
        assert_eq!(m.leaks_found(), 1);
    }

    #[test]
    fn free_releases_interior_pointers() {
        let (mut m, mut st) = fresh();
        // Block 1, kept reachable through a spill to a global.
        malloc(&mut m, &mut st, 0x4000_0000, 64, 1);
        m.apply_instr(&store(0x1000_0200, Reg::RET.index()), &mut st);
        // Block 2, whose only lasting reference lives *inside* block 1.
        malloc(&mut m, &mut st, 0x4000_1000, 64, 2);
        m.apply_instr(&store(0x4000_0010, Reg::RET.index()), &mut st);
        m.apply_instr(&mov(1, Reg::RET.index()), &mut st);
        assert_eq!(m.leaks_found(), 0, "reports: {:?}", m.reports());
        // Freeing block 1 drops the interior reference to block 2.
        m.apply_high_level(
            &HighLevelEvent::Free {
                base: VirtAddr::new(0x4000_0000),
                len: 64,
            },
            &mut st,
        );
        assert_eq!(m.leaks_found(), 1);
    }

    #[test]
    fn mul_clears_pointer_status() {
        let (mut m, mut st) = fresh();
        malloc(&mut m, &mut st, 0x4000_0000, 64, 1);
        let mul = instr_event_for(
            &AppInstr::new(VirtAddr::new(16), InstrClass::IntMul)
                .with_src1(Reg::RET)
                .with_src2(Reg::new(2))
                .with_dest(Reg::new(3)),
        );
        m.apply_instr(&mul, &mut st);
        assert_eq!(st.reg_meta(Reg::new(3)), NON_POINTER);
    }

    #[test]
    fn program_validates_with_suu() {
        let p = MemLeak::new().program();
        assert!(p.validate().is_ok());
        assert!(p.suu().is_some());
    }
}
