//! AtomCheck: atomicity-violation detection via access-interleaving
//! invariants (AVIO, Lu et al.; Section 6 of the paper).
//!
//! * **Critical metadata**: one byte per application word — a
//!   thread-status bit (0x80) plus the ID of the thread that last
//!   referenced the word.
//! * **Non-critical metadata**: the type (read/write) of the last access
//!   by each thread, in per-thread tables; interleaving analysis state.
//! * **Selection**: non-stack memory instructions.
//! * **FADE technique**: *partial filtering*. The hardware checks
//!   whether the word was last referenced by the same thread; when the
//!   check passes (the common case, 85.5% in Table 2) only a short
//!   software handler runs to update the access-type table. Otherwise
//!   the complex interleaving-analysis handler runs. The current-thread
//!   signature lives in an INV register that the monitor rewrites on
//!   every thread switch.

use std::collections::HashMap;

use fade::{EventTableEntry, FadeProgram, HandlerPc, InvId, NbAction, NbUpdate, OperandRule};
use fade_isa::{
    event_ids, layout, AppInstr, HighLevelEvent, InstrClass, InstrEvent, StackUpdateEvent,
};
use fade_shadow::{MetadataMap, MetadataState};

use crate::monitor::{CostModel, EventClass, Monitor, MonitorKind};

/// The thread-status bit: set once a word has been referenced.
pub const THREAD_STATUS: u8 = 0x80;

/// INV register holding the current thread's signature.
pub const INV_SIG: InvId = InvId::new(0);

const HANDLER_LONG: HandlerPc = HandlerPc::new(0xa700_0000);
const HANDLER_SHORT: HandlerPc = HandlerPc::new(0xa700_0100);

/// Signature byte for a thread.
#[inline]
pub fn signature(tid: u8) -> u8 {
    THREAD_STATUS | (tid & 0x7f)
}

/// The AtomCheck monitor.
#[derive(Clone, Debug)]
pub struct AtomCheck {
    cur_tid: u8,
    reports: Vec<String>,
    /// Last access type per (thread, word): true = write. Bounded.
    last_type: HashMap<(u8, u32), bool>,
    /// Non-critical: which thread last accessed each word. The critical
    /// metadata byte encodes the same fact for the hardware check, but
    /// the handler must not rely on it — the non-blocking update logic
    /// may already have overwritten it by the time the handler runs.
    last_owner: HashMap<u32, u8>,
}

impl AtomCheck {
    /// Creates the monitor (thread 0 running).
    pub fn new() -> Self {
        AtomCheck {
            cur_tid: 0,
            reports: Vec::new(),
            last_type: HashMap::new(),
            last_owner: HashMap::new(),
        }
    }

    /// The thread the monitor currently believes is running.
    pub fn current_tid(&self) -> u8 {
        self.cur_tid
    }
}

impl Default for AtomCheck {
    fn default() -> Self {
        AtomCheck::new()
    }
}

impl Monitor for AtomCheck {
    fn name(&self) -> &'static str {
        "AtomCheck"
    }

    fn fork(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }

    fn kind(&self) -> MonitorKind {
        MonitorKind::MemoryTracking
    }

    fn selects(&self, instr: &AppInstr) -> bool {
        match instr.mem {
            Some(m) => {
                matches!(instr.class, InstrClass::Load | InstrClass::Store)
                    && !layout::is_stack(m.addr)
            }
            None => false,
        }
    }

    fn monitors_stack(&self) -> bool {
        false
    }

    fn program(&self) -> FadeProgram {
        let mut p = FadeProgram::new(MetadataMap::per_word());
        p.set_invariant(INV_SIG, signature(0) as u64);
        // Loads: check the accessed word (s1); the update target is the
        // same word, declared as the (memory) destination operand.
        p.set_entry(
            event_ids::LOAD,
            EventTableEntry::clean_check([
                Some(OperandRule::mem_operand(1, 0xff, INV_SIG)),
                None,
                Some(OperandRule::mem_plain(1, 0xff)),
            ])
            .with_handler(HANDLER_LONG)
            .with_partial(HANDLER_SHORT)
            .with_nb(NbUpdate::unconditional(NbAction::SetConst(INV_SIG))),
        );
        // Stores: the accessed word is the destination operand.
        p.set_entry(
            event_ids::STORE,
            EventTableEntry::clean_check([
                None,
                None,
                Some(OperandRule::mem_operand(1, 0xff, INV_SIG)),
            ])
            .with_handler(HANDLER_LONG)
            .with_partial(HANDLER_SHORT)
            .with_nb(NbUpdate::unconditional(NbAction::SetConst(INV_SIG))),
        );
        p
    }

    fn init_state(&self, _state: &mut MetadataState) {
        // Words start untouched (0), which never matches a signature:
        // the first access to each word takes the long handler.
    }

    fn classify(&self, ev: &InstrEvent, state: &MetadataState) -> EventClass {
        if state.mem_meta(ev.app_addr) == signature(ev.tid) {
            EventClass::PartialShort
        } else {
            EventClass::Complex
        }
    }

    fn apply_instr(&mut self, ev: &InstrEvent, state: &mut MetadataState) {
        let word = ev.app_addr.word_index();
        let sig = signature(ev.tid);
        let is_write = ev.id == event_ids::STORE;
        // Interleaving analysis (long-handler path): a write right after
        // a remote access is an atomicity-violation candidate per AVIO.
        // The ownership history comes from the monitor's own tables.
        let prev_owner = self.last_owner.get(&word).copied();
        if let Some(remote) = prev_owner {
            if remote != ev.tid && is_write && self.reports.len() < 1000 {
                self.reports.push(format!(
                    "unserializable interleaving candidate at {} (thread {} after thread {remote})",
                    ev.app_addr, ev.tid
                ));
            }
        }
        state.set_mem_meta(ev.app_addr, sig);
        // Non-critical: ownership + per-thread access-type tables.
        if self.last_owner.len() < (1 << 20) {
            self.last_owner.insert(word, ev.tid);
        }
        if self.last_type.len() < (1 << 20) {
            self.last_type.insert((ev.tid, word), is_write);
        }
    }

    fn apply_high_level(&mut self, ev: &HighLevelEvent, state: &mut MetadataState) {
        match *ev {
            HighLevelEvent::ThreadSwitch { tid } => self.cur_tid = tid,
            HighLevelEvent::Malloc { base, len, .. } | HighLevelEvent::Free { base, len } => {
                state.fill_app_range(base, len, 0);
                for w in base.word_index()..base.wrapping_add(len).word_index() {
                    self.last_owner.remove(&w);
                }
            }
            HighLevelEvent::TaintSource { .. } => {}
        }
    }

    fn apply_stack_update(&self, _ev: &StackUpdateEvent, _state: &mut MetadataState) {
        // Stack data is thread-private; not monitored.
    }

    fn costs(&self) -> CostModel {
        CostModel {
            cc: 26,
            ru: 26,
            partial_short: 4,
            complex: 50,
            stack_per_word: 0,
            stack_base: 0,
            high_level_base: 40,
            high_level_per_word: 1,
            thread_switch: 45,
        }
    }

    fn on_thread_switch(&mut self, tid: u8) -> Vec<(InvId, u64)> {
        self.cur_tid = tid;
        vec![(INV_SIG, signature(tid) as u64)]
    }

    fn reports(&self) -> Vec<String> {
        self.reports.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fade_isa::{instr_event_for, MemRef, Reg, VirtAddr};

    fn access(addr: u32, tid: u8, write: bool) -> InstrEvent {
        let class = if write {
            InstrClass::Store
        } else {
            InstrClass::Load
        };
        let mut i = AppInstr::new(VirtAddr::new(4), class)
            .with_mem(MemRef::word(VirtAddr::new(addr)))
            .with_tid(tid);
        i = if write {
            i.with_src1(Reg::new(2))
        } else {
            i.with_dest(Reg::new(2))
        };
        instr_event_for(&i)
    }

    fn heap(off: u32) -> u32 {
        layout::HEAP_BASE + off
    }

    #[test]
    fn signature_encodes_thread_and_status() {
        assert_eq!(signature(0), 0x80);
        assert_eq!(signature(3), 0x83);
    }

    #[test]
    fn first_access_is_complex_then_same_thread_is_short() {
        let mut m = AtomCheck::new();
        let mut st = MetadataState::new(MetadataMap::per_word());
        let ev = access(heap(0x10), 0, false);
        assert_eq!(m.classify(&ev, &st), EventClass::Complex);
        m.apply_instr(&ev, &mut st);
        assert_eq!(m.classify(&ev, &st), EventClass::PartialShort);
    }

    #[test]
    fn cross_thread_access_is_complex_and_write_reports() {
        let mut m = AtomCheck::new();
        let mut st = MetadataState::new(MetadataMap::per_word());
        m.apply_instr(&access(heap(0x20), 0, false), &mut st);
        let remote_write = access(heap(0x20), 1, true);
        assert_eq!(m.classify(&remote_write, &st), EventClass::Complex);
        m.apply_instr(&remote_write, &mut st);
        assert_eq!(m.reports().len(), 1);
        assert_eq!(st.mem_meta(VirtAddr::new(heap(0x20))), signature(1));
        // Remote *read* does not report.
        m.apply_instr(&access(heap(0x24), 0, true), &mut st);
        let remote_read = access(heap(0x24), 1, false);
        m.apply_instr(&remote_read, &mut st);
        assert_eq!(m.reports().len(), 1);
    }

    #[test]
    fn thread_switch_updates_invariant_register() {
        let mut m = AtomCheck::new();
        let writes = m.on_thread_switch(2);
        assert_eq!(writes, vec![(INV_SIG, signature(2) as u64)]);
        assert_eq!(m.current_tid(), 2);
    }

    #[test]
    fn selects_only_non_stack_memory() {
        let m = AtomCheck::new();
        let heap_ld = AppInstr::new(VirtAddr::new(0), InstrClass::Load)
            .with_mem(MemRef::word(VirtAddr::new(heap(0))));
        let stack_ld = AppInstr::new(VirtAddr::new(0), InstrClass::Load)
            .with_mem(MemRef::word(VirtAddr::new(layout::STACK_TOP - 64)));
        assert!(m.selects(&heap_ld));
        assert!(!m.selects(&stack_ld));
    }

    #[test]
    fn malloc_resets_word_ownership() {
        let mut m = AtomCheck::new();
        let mut st = MetadataState::new(MetadataMap::per_word());
        m.apply_instr(&access(heap(0x40), 1, true), &mut st);
        m.apply_high_level(
            &HighLevelEvent::Malloc {
                base: VirtAddr::new(heap(0x40)),
                len: 16,
                ctx: 1,
            },
            &mut st,
        );
        assert_eq!(st.mem_meta(VirtAddr::new(heap(0x40))), 0);
    }

    #[test]
    fn program_uses_partial_filtering() {
        let p = AtomCheck::new().program();
        assert!(p.validate().is_ok());
        let load = p.table().entry(event_ids::LOAD).unwrap();
        assert!(load.partial);
        assert_ne!(load.handler_pc, load.partial_handler_pc);
    }
}
