//! AddrCheck: checks that memory accesses go to allocated memory
//! (Nethercote & Seward; Section 6 of the paper).
//!
//! * **Critical metadata**: one byte per application word — 0 =
//!   unallocated, 1 = allocated.
//! * **Non-critical metadata**: bookkeeping for bug reporting.
//! * **Selection**: non-stack memory instructions only.
//! * **FADE technique**: clean checks against the "allocated" invariant;
//!   nearly all accesses hit allocated memory, giving the paper's 99.5%
//!   filtering ratio.

use fade::{
    EventTableEntry, FadeProgram, HandlerPc, InvId, OperandRule,
};
use fade_isa::{
    event_ids, layout, AppInstr, HighLevelEvent, InstrClass, InstrEvent, StackUpdateEvent,
};
use fade_shadow::{MetadataMap, MetadataState};

use crate::monitor::{CostModel, EventClass, Monitor, MonitorKind};

/// Metadata encoding: unallocated.
pub const UNALLOCATED: u8 = 0;
/// Metadata encoding: allocated.
pub const ALLOCATED: u8 = 1;

const INV_ALLOCATED: InvId = InvId::new(0);
const HANDLER_ACCESS: HandlerPc = HandlerPc::new(0xac00_0000);

/// The AddrCheck monitor.
#[derive(Clone, Debug, Default)]
pub struct AddrCheck {
    reports: Vec<String>,
}

impl AddrCheck {
    /// Creates the monitor.
    pub fn new() -> Self {
        AddrCheck::default()
    }
}

impl Monitor for AddrCheck {
    fn name(&self) -> &'static str {
        "AddrCheck"
    }

    fn fork(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }

    fn kind(&self) -> MonitorKind {
        MonitorKind::MemoryTracking
    }

    fn selects(&self, instr: &AppInstr) -> bool {
        match instr.mem {
            Some(m) => {
                matches!(instr.class, InstrClass::Load | InstrClass::Store)
                    && !layout::is_stack(m.addr)
            }
            None => false,
        }
    }

    fn monitors_stack(&self) -> bool {
        false
    }

    fn program(&self) -> FadeProgram {
        let mut p = FadeProgram::new(MetadataMap::per_word());
        p.set_invariant(INV_ALLOCATED, ALLOCATED as u64);
        // Loads: the memory operand is s1.
        p.set_entry(
            event_ids::LOAD,
            EventTableEntry::clean_check([
                Some(OperandRule::mem_operand(1, 0xff, INV_ALLOCATED)),
                None,
                None,
            ])
            .with_handler(HANDLER_ACCESS),
        );
        // Stores: the memory operand is the destination.
        p.set_entry(
            event_ids::STORE,
            EventTableEntry::clean_check([
                None,
                None,
                Some(OperandRule::mem_operand(1, 0xff, INV_ALLOCATED)),
            ])
            .with_handler(HANDLER_ACCESS),
        );
        p
    }

    fn init_state(&self, state: &mut MetadataState) {
        // The data segment is allocated at load time.
        state.fill_app_range(
            fade_isa::VirtAddr::new(layout::GLOBALS_BASE),
            layout::GLOBALS_SIZE,
            ALLOCATED,
        );
    }

    fn classify(&self, ev: &InstrEvent, state: &MetadataState) -> EventClass {
        if state.mem_meta(ev.app_addr) == ALLOCATED {
            EventClass::CleanCheck
        } else {
            EventClass::Complex
        }
    }

    fn apply_instr(&mut self, ev: &InstrEvent, state: &mut MetadataState) {
        // Accesses never change allocation state; the complex handler
        // only reports.
        if state.mem_meta(ev.app_addr) != ALLOCATED && self.reports.len() < 1000 {
            self.reports
                .push(format!("invalid access to {} at pc {}", ev.app_addr, ev.app_pc));
        }
    }

    fn apply_high_level(&mut self, ev: &HighLevelEvent, state: &mut MetadataState) {
        match *ev {
            HighLevelEvent::Malloc { base, len, .. } => {
                state.fill_app_range(base, len, ALLOCATED);
            }
            HighLevelEvent::Free { base, len } => {
                state.fill_app_range(base, len, UNALLOCATED);
            }
            HighLevelEvent::TaintSource { .. } | HighLevelEvent::ThreadSwitch { .. } => {}
        }
    }

    fn apply_stack_update(&self, _ev: &StackUpdateEvent, _state: &mut MetadataState) {
        // AddrCheck does not shadow the stack.
    }

    fn costs(&self) -> CostModel {
        CostModel {
            cc: 6,
            ru: 6,
            partial_short: 6,
            complex: 20,
            stack_per_word: 0,
            stack_base: 0,
            high_level_base: 40,
            high_level_per_word: 1,
            thread_switch: 10,
        }
    }

    fn reports(&self) -> Vec<String> {
        self.reports.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fade_isa::{MemRef, Reg, VirtAddr};

    fn load_at(addr: u32) -> AppInstr {
        AppInstr::new(VirtAddr::new(0x400), InstrClass::Load)
            .with_dest(Reg::new(1))
            .with_mem(MemRef::word(VirtAddr::new(addr)))
    }

    #[test]
    fn selects_non_stack_memory_only() {
        let m = AddrCheck::new();
        assert!(m.selects(&load_at(layout::HEAP_BASE)));
        assert!(m.selects(&load_at(layout::GLOBALS_BASE)));
        assert!(!m.selects(&load_at(layout::STACK_TOP - 64)));
        let alu = AppInstr::new(VirtAddr::new(0), InstrClass::IntAlu);
        assert!(!m.selects(&alu));
    }

    #[test]
    fn classify_follows_allocation_state() {
        let m = AddrCheck::new();
        let mut st = MetadataState::new(MetadataMap::per_word());
        m.init_state(&mut st);
        let ev = fade_isa::instr_event_for(&load_at(layout::GLOBALS_BASE + 16));
        assert_eq!(m.classify(&ev, &st), EventClass::CleanCheck);
        let wild = fade_isa::instr_event_for(&load_at(layout::HEAP_BASE + 0x100));
        assert_eq!(m.classify(&wild, &st), EventClass::Complex);
    }

    #[test]
    fn malloc_free_toggle_allocation() {
        let mut m = AddrCheck::new();
        let mut st = MetadataState::new(MetadataMap::per_word());
        let base = VirtAddr::new(layout::HEAP_BASE);
        m.apply_high_level(
            &HighLevelEvent::Malloc {
                base,
                len: 64,
                ctx: 1,
            },
            &mut st,
        );
        assert_eq!(st.mem_meta(base), ALLOCATED);
        m.apply_high_level(&HighLevelEvent::Free { base, len: 64 }, &mut st);
        assert_eq!(st.mem_meta(base), UNALLOCATED);
    }

    #[test]
    fn invalid_access_is_reported_without_state_change() {
        let mut m = AddrCheck::new();
        let mut st = MetadataState::new(MetadataMap::per_word());
        let ev = fade_isa::instr_event_for(&load_at(layout::HEAP_BASE + 0x500));
        m.apply_instr(&ev, &mut st);
        assert_eq!(m.reports().len(), 1);
        assert_eq!(st.mem_meta(ev.app_addr), UNALLOCATED);
    }

    #[test]
    fn program_validates_and_covers_loads_and_stores() {
        let m = AddrCheck::new();
        let p = m.program();
        assert!(p.validate().is_ok());
        assert!(p.table().entry(event_ids::LOAD).is_some());
        assert!(p.table().entry(event_ids::STORE).is_some());
        assert!(p.suu().is_none());
    }
}
