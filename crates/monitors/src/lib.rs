//! # fade-monitors
//!
//! The five instruction-grain monitors the paper evaluates (Section 6),
//! implemented in full: event selection, metadata encodings, software
//! handlers (functional effect plus an instruction-count cost model),
//! and the FADE program each monitor loads into the accelerator.
//!
//! | Monitor    | Tracks                              | Kind        | FADE technique |
//! |------------|-------------------------------------|-------------|----------------|
//! | AddrCheck  | accesses to unallocated memory      | memory      | clean checks   |
//! | MemCheck   | uses of uninitialized values        | propagation | CC + RU        |
//! | MemLeak    | memory leaks via reference counting | propagation | clean checks   |
//! | TaintCheck | overwrite-related security exploits | propagation | CC + RU        |
//! | AtomCheck  | atomicity violations                | memory      | partial        |
//!
//! All monitors keep one byte of *critical* metadata per application
//! word (the state FADE checks and updates); non-critical bookkeeping
//! (MemLeak's allocation contexts and reference counts, AtomCheck's
//! access-type tables, bug reports) lives in the monitor structs.
//!
//! # Example
//!
//! ```
//! use fade_monitors::{AddrCheck, Monitor};
//! use fade_shadow::MetadataState;
//!
//! let mut mon = AddrCheck::new();
//! let mut state = MetadataState::new(mon.program().md_map());
//! mon.init_state(&mut state);
//! assert!(mon.program().validate().is_ok());
//! ```

pub mod addrcheck;
pub mod atomcheck;
pub mod memcheck;
pub mod memleak;
pub mod monitor;
pub mod taintcheck;

pub use addrcheck::AddrCheck;
pub use atomcheck::AtomCheck;
pub use memcheck::MemCheck;
pub use memleak::MemLeak;
pub use monitor::{all_monitors, monitor_by_name, CostModel, EventClass, Monitor, MonitorKind};
pub use taintcheck::TaintCheck;
