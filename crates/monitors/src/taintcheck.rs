//! TaintCheck: dynamic taint analysis for overwrite-related security
//! exploits (Newsome & Song; Section 6 of the paper).
//!
//! * **Critical metadata**: one byte per word/register — 0 = untainted,
//!   1 = tainted.
//! * **Non-critical metadata**: taint origin bookkeeping.
//! * **Selection**: all propagation classes (loads, stores, integer
//!   ALU/move/mul).
//! * **FADE technique**: clean checks for untainted operands plus
//!   redundant-update filtering when propagation leaves the destination
//!   unchanged; long propagation chains make this the lowest filtering
//!   ratio in Table 2 (84%).

use fade::{
    EventTableEntry, FadeProgram, HandlerPc, InvId, NbAction, NbUpdate, OperandRule,
};
use fade_isa::{
    event_ids, AppInstr, HighLevelEvent, InstrClass, InstrEvent, StackUpdateEvent,
};
use fade_shadow::{MetadataMap, MetadataState};

use crate::monitor::{CostModel, EventClass, Monitor, MonitorKind};

/// Metadata encoding: untainted.
pub const UNTAINTED: u8 = 0;
/// Metadata encoding: tainted.
pub const TAINTED: u8 = 1;

const INV_UNTAINTED: InvId = InvId::new(0);
const HANDLER_PROP: HandlerPc = HandlerPc::new(0x7a00_0000);

/// The TaintCheck monitor.
#[derive(Clone, Debug, Default)]
pub struct TaintCheck {
    reports: Vec<String>,
}

impl TaintCheck {
    /// Creates the monitor.
    pub fn new() -> Self {
        TaintCheck::default()
    }

    fn propagated(&self, ev: &InstrEvent, state: &MetadataState) -> u8 {
        match ev.id {
            id if id == event_ids::LOAD => state.mem_meta(ev.app_addr),
            id if id == event_ids::STORE => state.reg_meta(ev.src1),
            id if id == event_ids::INT_MOVE => state.reg_meta(ev.src1),
            _ => state.reg_meta(ev.src1) | state.reg_meta(ev.src2),
        }
    }
}

impl Monitor for TaintCheck {
    fn name(&self) -> &'static str {
        "TaintCheck"
    }

    fn fork(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }

    fn kind(&self) -> MonitorKind {
        MonitorKind::PropagationTracking
    }

    fn selects(&self, instr: &AppInstr) -> bool {
        matches!(
            instr.class,
            InstrClass::Load
                | InstrClass::Store
                | InstrClass::IntAlu
                | InstrClass::IntMove
                | InstrClass::IntMul
        )
    }

    fn monitors_stack(&self) -> bool {
        false
    }

    fn program(&self) -> FadeProgram {
        let mut p = FadeProgram::new(MetadataMap::per_word());
        p.set_invariant(INV_UNTAINTED, UNTAINTED as u64);
        p.set_entry(
            event_ids::LOAD,
            EventTableEntry::clean_check([
                Some(OperandRule::mem_operand(1, 0xff, INV_UNTAINTED)),
                None,
                Some(OperandRule::reg_operand(0xff, INV_UNTAINTED)),
            ])
            .with_handler(HANDLER_PROP)
            .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
        );
        p.set_entry(
            event_ids::STORE,
            EventTableEntry::clean_check([
                Some(OperandRule::reg_operand(0xff, INV_UNTAINTED)),
                None,
                Some(OperandRule::mem_operand(1, 0xff, INV_UNTAINTED)),
            ])
            .with_handler(HANDLER_PROP)
            .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
        );
        for id in [event_ids::INT_ALU, event_ids::INT_MUL] {
            p.set_entry(
                id,
                EventTableEntry::clean_check([
                    Some(OperandRule::reg_operand(0xff, INV_UNTAINTED)),
                    Some(OperandRule::reg_operand(0xff, INV_UNTAINTED)),
                    Some(OperandRule::reg_operand(0xff, INV_UNTAINTED)),
                ])
                .with_handler(HANDLER_PROP)
                .with_nb(NbUpdate::unconditional(NbAction::ComposeOr)),
            );
        }
        p.set_entry(
            event_ids::INT_MOVE,
            EventTableEntry::clean_check([
                Some(OperandRule::reg_operand(0xff, INV_UNTAINTED)),
                None,
                Some(OperandRule::reg_operand(0xff, INV_UNTAINTED)),
            ])
            .with_handler(HANDLER_PROP)
            .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
        );
        p
    }

    fn init_state(&self, _state: &mut MetadataState) {
        // Everything starts untainted.
    }

    fn classify(&self, ev: &InstrEvent, state: &MetadataState) -> EventClass {
        let (sources, dest) = match ev.id {
            id if id == event_ids::LOAD => (
                state.mem_meta(ev.app_addr),
                state.reg_meta(ev.dest),
            ),
            id if id == event_ids::STORE => (
                state.reg_meta(ev.src1),
                state.mem_meta(ev.app_addr),
            ),
            id if id == event_ids::INT_MOVE => {
                (state.reg_meta(ev.src1), state.reg_meta(ev.dest))
            }
            _ => (
                state.reg_meta(ev.src1) | state.reg_meta(ev.src2),
                state.reg_meta(ev.dest),
            ),
        };
        if sources == UNTAINTED && dest == UNTAINTED {
            // Stores are update-shaped handlers; the rest are checks.
            if ev.id == event_ids::STORE {
                EventClass::RedundantUpdate
            } else {
                EventClass::CleanCheck
            }
        } else {
            EventClass::Complex
        }
    }

    fn apply_instr(&mut self, ev: &InstrEvent, state: &mut MetadataState) {
        let v = self.propagated(ev, state);
        if ev.id == event_ids::STORE {
            state.set_mem_meta(ev.app_addr, v);
        } else {
            state.set_reg_meta(ev.dest, v);
        }
        // A tainted value flowing into a jump target would be the
        // exploit signal; jumps are rare enough to report at the sink.
        if v == TAINTED && ev.id == event_ids::INT_MUL && self.reports.len() < 1000 {
            self.reports
                .push(format!("tainted arithmetic at pc {}", ev.app_pc));
        }
    }

    fn apply_high_level(&mut self, ev: &HighLevelEvent, state: &mut MetadataState) {
        match *ev {
            HighLevelEvent::TaintSource { base, len } => {
                state.fill_app_range(base, len, TAINTED);
            }
            HighLevelEvent::Malloc { base, len, .. } | HighLevelEvent::Free { base, len } => {
                state.fill_app_range(base, len, UNTAINTED);
            }
            HighLevelEvent::ThreadSwitch { .. } => {}
        }
    }

    fn apply_stack_update(&self, _ev: &StackUpdateEvent, _state: &mut MetadataState) {
        // Taint does not shadow stack allocation.
    }

    fn costs(&self) -> CostModel {
        CostModel {
            cc: 13,
            ru: 13,
            partial_short: 16,
            complex: 18,
            stack_per_word: 0,
            stack_base: 0,
            high_level_base: 40,
            high_level_per_word: 1,
            thread_switch: 10,
        }
    }

    fn reports(&self) -> Vec<String> {
        self.reports.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fade_isa::{instr_event_for, MemRef, Reg, VirtAddr};

    fn state() -> MetadataState {
        MetadataState::new(MetadataMap::per_word())
    }

    fn load(addr: u32, dest: u8) -> InstrEvent {
        instr_event_for(
            &AppInstr::new(VirtAddr::new(4), InstrClass::Load)
                .with_dest(Reg::new(dest))
                .with_mem(MemRef::word(VirtAddr::new(addr))),
        )
    }

    fn alu(s1: u8, s2: u8, d: u8) -> InstrEvent {
        instr_event_for(
            &AppInstr::new(VirtAddr::new(8), InstrClass::IntAlu)
                .with_src1(Reg::new(s1))
                .with_src2(Reg::new(s2))
                .with_dest(Reg::new(d)),
        )
    }

    #[test]
    fn untainted_flow_is_filterable() {
        let m = TaintCheck::new();
        let st = state();
        assert_eq!(m.classify(&load(0x1000, 2), &st), EventClass::CleanCheck);
        assert_eq!(m.classify(&alu(1, 2, 3), &st), EventClass::CleanCheck);
    }

    #[test]
    fn tainted_source_makes_event_complex() {
        let mut m = TaintCheck::new();
        let mut st = state();
        m.apply_high_level(
            &HighLevelEvent::TaintSource {
                base: VirtAddr::new(0x1000),
                len: 16,
            },
            &mut st,
        );
        assert_eq!(m.classify(&load(0x1004, 2), &st), EventClass::Complex);
    }

    #[test]
    fn taint_propagates_through_load_and_alu() {
        let mut m = TaintCheck::new();
        let mut st = state();
        st.set_mem_meta(VirtAddr::new(0x2000), TAINTED);
        m.apply_instr(&load(0x2000, 4), &mut st);
        assert_eq!(st.reg_meta(Reg::new(4)), TAINTED);
        m.apply_instr(&alu(4, 1, 5), &mut st);
        assert_eq!(st.reg_meta(Reg::new(5)), TAINTED);
        // Untainted pair clears the destination.
        m.apply_instr(&alu(1, 2, 5), &mut st);
        assert_eq!(st.reg_meta(Reg::new(5)), UNTAINTED);
    }

    #[test]
    fn store_of_tainted_taints_memory_and_dirty_dest_is_complex() {
        let mut m = TaintCheck::new();
        let mut st = state();
        st.set_reg_meta(Reg::new(7), TAINTED);
        let store = instr_event_for(
            &AppInstr::new(VirtAddr::new(12), InstrClass::Store)
                .with_src1(Reg::new(7))
                .with_mem(MemRef::word(VirtAddr::new(0x3000))),
        );
        assert_eq!(m.classify(&store, &st), EventClass::Complex);
        m.apply_instr(&store, &mut st);
        assert_eq!(st.mem_meta(VirtAddr::new(0x3000)), TAINTED);
        // Overwriting with untainted data untaints (and is complex,
        // because the destination was tainted).
        let clean_store = instr_event_for(
            &AppInstr::new(VirtAddr::new(16), InstrClass::Store)
                .with_src1(Reg::new(1))
                .with_mem(MemRef::word(VirtAddr::new(0x3000))),
        );
        assert_eq!(m.classify(&clean_store, &st), EventClass::Complex);
        m.apply_instr(&clean_store, &mut st);
        assert_eq!(st.mem_meta(VirtAddr::new(0x3000)), UNTAINTED);
    }

    #[test]
    fn malloc_clears_taint() {
        let mut m = TaintCheck::new();
        let mut st = state();
        st.set_mem_meta(VirtAddr::new(0x4000), TAINTED);
        m.apply_high_level(
            &HighLevelEvent::Malloc {
                base: VirtAddr::new(0x4000),
                len: 32,
                ctx: 9,
            },
            &mut st,
        );
        assert_eq!(st.mem_meta(VirtAddr::new(0x4000)), UNTAINTED);
    }

    #[test]
    fn program_validates() {
        assert!(TaintCheck::new().program().validate().is_ok());
    }
}
