//! Application-level value tags.
//!
//! The synthetic program tracks what its values *are* — pointers,
//! tainted input, initialized data — and propagates those properties
//! through the instructions it generates, exactly like a real program's
//! dataflow would. Monitors never see these tags; they reconstruct their
//! own metadata from the event stream. The tags only shape the workload
//! (which registers hold pointers, which words are initialized, ...).

use std::collections::HashMap;

use fade_isa::{Reg, VirtAddr, NUM_REGS};

/// A small set of value properties.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct ValueTags(u8);

impl ValueTags {
    /// The value is a pointer into a live allocation.
    pub const POINTER: ValueTags = ValueTags(1 << 0);
    /// The value derives from tainted (external) input.
    pub const TAINT: ValueTags = ValueTags(1 << 1);
    /// The value has been written (is initialized).
    pub const INIT: ValueTags = ValueTags(1 << 2);

    /// No properties.
    pub const fn empty() -> Self {
        ValueTags(0)
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: ValueTags) -> ValueTags {
        ValueTags(self.0 | other.0)
    }

    /// Removes the given tags.
    #[inline]
    pub const fn without(self, other: ValueTags) -> ValueTags {
        ValueTags(self.0 & !other.0)
    }

    /// Returns `true` if every tag in `other` is present.
    #[inline]
    pub const fn contains(self, other: ValueTags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if no tags are set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for ValueTags {
    type Output = ValueTags;
    fn bitor(self, rhs: ValueTags) -> ValueTags {
        self.union(rhs)
    }
}

/// Per-thread register tags plus process-wide memory word tags.
#[derive(Clone, Debug, Default)]
pub struct ValueState {
    regs: [ValueTags; NUM_REGS],
    mem: HashMap<u32, ValueTags>, // keyed by word index
}

impl ValueState {
    /// Creates a clean value state.
    pub fn new() -> Self {
        ValueState::default()
    }

    /// Tags of a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> ValueTags {
        self.regs[r.index() as usize]
    }

    /// Sets a register's tags (the zero register stays clean).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, t: ValueTags) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = t;
        }
    }

    /// Tags of the memory word containing `addr`.
    #[inline]
    pub fn mem(&self, addr: VirtAddr) -> ValueTags {
        self.mem
            .get(&addr.word_index())
            .copied()
            .unwrap_or_default()
    }

    /// Sets the tags of the word containing `addr`.
    #[inline]
    pub fn set_mem(&mut self, addr: VirtAddr, t: ValueTags) {
        if t.is_empty() {
            self.mem.remove(&addr.word_index());
        } else {
            self.mem.insert(addr.word_index(), t);
        }
    }

    /// Clears the tags of every word in `[base, base+len)` (frame
    /// deallocation, free).
    pub fn clear_range(&mut self, base: VirtAddr, len: u32) {
        let first = base.word_index();
        let last = base.wrapping_add(len.saturating_sub(1)).word_index();
        for w in first..=last {
            self.mem.remove(&w);
        }
    }

    /// Registers currently holding pointers.
    pub fn pointer_regs(&self) -> Vec<Reg> {
        Reg::all()
            .filter(|&r| self.reg(r).contains(ValueTags::POINTER))
            .collect()
    }

    /// Registers currently holding tainted values.
    pub fn tainted_regs(&self) -> Vec<Reg> {
        Reg::all()
            .filter(|&r| self.reg(r).contains(ValueTags::TAINT))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_algebra() {
        let t = ValueTags::POINTER | ValueTags::INIT;
        assert!(t.contains(ValueTags::POINTER));
        assert!(t.contains(ValueTags::INIT));
        assert!(!t.contains(ValueTags::TAINT));
        assert!(t.without(ValueTags::POINTER | ValueTags::INIT).is_empty());
    }

    #[test]
    fn reg_round_trip_and_zero_reg() {
        let mut s = ValueState::new();
        s.set_reg(Reg::new(4), ValueTags::POINTER);
        assert!(s.reg(Reg::new(4)).contains(ValueTags::POINTER));
        s.set_reg(Reg::ZERO, ValueTags::TAINT);
        assert!(s.reg(Reg::ZERO).is_empty());
    }

    #[test]
    fn mem_round_trip_word_granular() {
        let mut s = ValueState::new();
        s.set_mem(VirtAddr::new(0x1002), ValueTags::INIT);
        assert!(s.mem(VirtAddr::new(0x1000)).contains(ValueTags::INIT));
        assert!(s.mem(VirtAddr::new(0x1004)).is_empty());
    }

    #[test]
    fn clear_range_sweeps_words() {
        let mut s = ValueState::new();
        for a in (0x2000..0x2040).step_by(4) {
            s.set_mem(VirtAddr::new(a), ValueTags::INIT);
        }
        s.clear_range(VirtAddr::new(0x2000), 0x20);
        assert!(s.mem(VirtAddr::new(0x201c)).is_empty());
        assert!(s.mem(VirtAddr::new(0x2020)).contains(ValueTags::INIT));
    }

    #[test]
    fn pointer_reg_enumeration() {
        let mut s = ValueState::new();
        assert!(s.pointer_regs().is_empty());
        s.set_reg(Reg::new(8), ValueTags::POINTER);
        s.set_reg(Reg::new(9), ValueTags::TAINT);
        assert_eq!(s.pointer_regs(), vec![Reg::new(8)]);
        assert_eq!(s.tainted_regs(), vec![Reg::new(9)]);
    }
}
