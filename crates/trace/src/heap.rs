//! A heap model: bump allocation with live-block tracking and reuse.

use fade_isa::{layout, VirtAddr};
use fade_sim::Rng;

/// One live heap block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Block {
    /// Base address.
    pub base: VirtAddr,
    /// Length in bytes.
    pub len: u32,
}

/// The synthetic program's heap: tracks live blocks so the generator
/// can aim accesses at allocated memory (the common case AddrCheck
/// filters) or deliberately at freed memory (the `wild_rate` knob).
#[derive(Clone, Debug)]
pub struct HeapModel {
    cursor: u32,
    live: Vec<Block>,
    freed: Vec<Block>,
    bytes_live: u64,
}

impl HeapModel {
    /// Maximum live blocks tracked (oldest reused beyond this).
    const MAX_LIVE: usize = 4096;
    /// Maximum retained freed blocks (for wild-access sampling).
    const MAX_FREED: usize = 256;

    /// Creates an empty heap.
    pub fn new() -> Self {
        HeapModel {
            cursor: layout::HEAP_BASE,
            live: Vec::new(),
            freed: Vec::new(),
            bytes_live: 0,
        }
    }

    /// Allocates `len` bytes (word-aligned), returning the block.
    pub fn malloc(&mut self, len: u32) -> Block {
        let len = len.max(4).next_multiple_of(4);
        // Wrap the bump cursor long before the segment ends; the heap
        // working set is bounded by MAX_LIVE blocks anyway.
        if self.cursor.saturating_add(len) >= layout::HEAP_BASE + layout::HEAP_SIZE / 2 {
            self.cursor = layout::HEAP_BASE;
        }
        let block = Block {
            base: VirtAddr::new(self.cursor),
            len,
        };
        self.cursor += len;
        self.live.push(block);
        self.bytes_live += len as u64;
        if self.live.len() > Self::MAX_LIVE {
            let victim = self.live.remove(0);
            self.bytes_live -= victim.len as u64;
        }
        block
    }

    /// Frees a random live block, returning it (None if the heap is
    /// empty).
    pub fn free_random(&mut self, rng: &mut Rng) -> Option<Block> {
        if self.live.is_empty() {
            return None;
        }
        let idx = rng.below(self.live.len() as u64) as usize;
        let block = self.live.swap_remove(idx);
        self.bytes_live -= block.len as u64;
        self.freed.push(block);
        if self.freed.len() > Self::MAX_FREED {
            self.freed.remove(0);
        }
        Some(block)
    }

    /// A random address inside a random live block (None if empty).
    pub fn random_live_addr(&mut self, rng: &mut Rng) -> Option<VirtAddr> {
        if self.live.is_empty() {
            return None;
        }
        let b = self.live[rng.below(self.live.len() as u64) as usize];
        let words = (b.len / 4).max(1);
        Some(b.base.wrapping_add(4 * rng.below(words as u64) as u32))
    }

    /// A random address inside a previously freed block, if any — a
    /// use-after-free style wild access.
    pub fn random_freed_addr(&mut self, rng: &mut Rng) -> Option<VirtAddr> {
        if self.freed.is_empty() {
            return None;
        }
        let b = self.freed[rng.below(self.freed.len() as u64) as usize];
        let words = (b.len / 4).max(1);
        Some(b.base.wrapping_add(4 * rng.below(words as u64) as u32))
    }

    /// Number of live blocks.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Bytes currently allocated.
    pub fn bytes_live(&self) -> u64 {
        self.bytes_live
    }
}

impl Default for HeapModel {
    fn default() -> Self {
        HeapModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_returns_heap_addresses() {
        let mut h = HeapModel::new();
        let b = h.malloc(100);
        assert!(layout::is_heap(b.base));
        assert_eq!(b.len, 100);
        assert_eq!(h.live_blocks(), 1);
        assert_eq!(h.bytes_live(), 100);
    }

    #[test]
    fn malloc_aligns_and_rounds_up() {
        let mut h = HeapModel::new();
        assert_eq!(h.malloc(1).len, 4);
        assert_eq!(h.malloc(0).len, 4);
        let b = h.malloc(13);
        assert_eq!(b.len, 16);
        assert_eq!(b.base.raw() % 4, 0);
    }

    #[test]
    fn free_moves_block_to_freed_pool() {
        let mut h = HeapModel::new();
        let mut rng = Rng::seed_from(1);
        h.malloc(64);
        let freed = h.free_random(&mut rng).unwrap();
        assert_eq!(h.live_blocks(), 0);
        assert_eq!(h.bytes_live(), 0);
        let wild = h.random_freed_addr(&mut rng).unwrap();
        assert!(wild.raw() >= freed.base.raw());
        assert!(wild.raw() < freed.base.raw() + freed.len);
    }

    #[test]
    fn live_addr_sampling_stays_in_blocks() {
        let mut h = HeapModel::new();
        let mut rng = Rng::seed_from(2);
        let b = h.malloc(256);
        for _ in 0..100 {
            let a = h.random_live_addr(&mut rng).unwrap();
            assert!(a.raw() >= b.base.raw() && a.raw() < b.base.raw() + 256);
            assert_eq!(a.raw() % 4, 0);
        }
    }

    #[test]
    fn empty_heap_yields_none() {
        let mut h = HeapModel::new();
        let mut rng = Rng::seed_from(3);
        assert!(h.random_live_addr(&mut rng).is_none());
        assert!(h.free_random(&mut rng).is_none());
        assert!(h.random_freed_addr(&mut rng).is_none());
    }

    #[test]
    fn live_set_is_bounded() {
        let mut h = HeapModel::new();
        for _ in 0..(HeapModel::MAX_LIVE + 100) {
            h.malloc(16);
        }
        assert_eq!(h.live_blocks(), HeapModel::MAX_LIVE);
    }
}
