//! The synthetic program engine.
//!
//! Generates a deterministic dynamic instruction stream with the
//! structural properties instruction-grain monitors react to: a call
//! stack, heap allocation with reuse and (optionally) misuse, pointer
//! and taint dataflow through registers and memory, temporal locality,
//! and multi-threaded time-slicing for the parallel suite.

use std::collections::VecDeque;

use fade_isa::{
    layout, AppInstr, HighLevelEvent, InstrClass, MemRef, Reg, StackUpdateEvent, StackUpdateKind,
    VirtAddr,
};
use fade_sim::Rng;

use crate::heap::HeapModel;
use crate::profile::BenchProfile;
use crate::value::{ValueState, ValueTags};

/// One element of the generated trace.
///
/// Only `Instr` records consume retirement bandwidth; `Stack` and `High`
/// records ride along with the instruction that caused them (a call's
/// frame allocation, a malloc's library call, ...).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceRecord {
    /// A retired instruction.
    Instr(AppInstr),
    /// A stack-update event accompanying a call/return.
    Stack(StackUpdateEvent),
    /// A high-level event (malloc/free/taint-source/thread-switch).
    High(HighLevelEvent),
}

#[derive(Clone, Debug)]
struct Frame {
    base: VirtAddr,
    len: u32,
}

#[derive(Clone, Debug)]
struct ThreadCtx {
    regs: ValueState, // only the register half is used
    frames: Vec<Frame>,
    sp: u32,
    /// Recently *stored* (thus initialized) non-stack addresses.
    hot: VecDeque<VirtAddr>,
    /// Larger pool of initialized non-stack addresses for far reuse.
    stored_pool: Vec<VirtAddr>,
    /// Words of the current frame that have been written (locals the
    /// function may legitimately read back).
    frame_written: Vec<VirtAddr>,
    pc: u32,
}

impl ThreadCtx {
    fn new(tid: u8) -> Self {
        let stack_base = layout::STACK_TOP - (tid as u32) * (8 << 20);
        ThreadCtx {
            regs: ValueState::new(),
            frames: vec![Frame {
                base: VirtAddr::new(stack_base - 4096),
                len: 4096,
            }],
            sp: stack_base - 4096,
            hot: VecDeque::with_capacity(64),
            stored_pool: Vec::new(),
            frame_written: Vec::new(),
            pc: layout::TEXT_BASE + (tid as u32) * 0x10000,
        }
    }
}

/// Deterministic synthetic program for one benchmark profile.
pub struct SyntheticProgram {
    profile: BenchProfile,
    rng: Rng,
    threads: Vec<ThreadCtx>,
    cur_tid: usize,
    slice_left: u32,
    heap: HeapModel,
    mem_tags: ValueState, // only the memory half is used (shared)
    pending: VecDeque<TraceRecord>,
    /// Words of fresh allocations awaiting their first write.
    to_init: VecDeque<VirtAddr>,
    /// Tainted addresses (for taint-density targeting).
    tainted: VecDeque<VirtAddr>,
    next_ctx: u32,
    instrs: u64,
    calls: u64,
    mallocs: u64,
}

const GENERAL_REGS: [u8; 24] = [
    1, 2, 3, 4, 5, 6, 7, 9, 10, 11, 12, 13, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26,
];

impl SyntheticProgram {
    /// Creates the program with a deterministic seed.
    pub fn new(profile: &BenchProfile, seed: u64) -> Self {
        let threads = (0..profile.threads.max(1))
            .map(ThreadCtx::new)
            .collect::<Vec<_>>();
        let mut prog = SyntheticProgram {
            profile: profile.clone(),
            rng: Rng::seed_from(seed ^ 0xfade_0000_0000_0000),
            threads,
            cur_tid: 0,
            slice_left: profile.timeslice,
            heap: HeapModel::new(),
            mem_tags: ValueState::new(),
            pending: VecDeque::new(),
            to_init: VecDeque::new(),
            tainted: VecDeque::new(),
            next_ctx: 1,
            instrs: 0,
            calls: 0,
            mallocs: 0,
        };
        // Warm the heap so early accesses have live blocks to target.
        // The malloc events stay queued so monitors learn about the
        // blocks before the first instructions retire.
        for _ in 0..16 {
            prog.do_malloc();
        }
        prog
    }

    /// The benchmark profile driving this program.
    pub fn profile(&self) -> &BenchProfile {
        &self.profile
    }

    /// Instructions generated so far.
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Calls generated so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Mallocs generated so far.
    pub fn mallocs(&self) -> u64 {
        self.mallocs
    }

    /// Appends the next `n` trace records to `buf` — the batched feed
    /// for consumers that drain events in slices (the batched filtering
    /// path, the experiment harness's refill buffer) instead of one
    /// generator round trip per record. Produces exactly the sequence
    /// `n` calls of [`SyntheticProgram::next_record`] would.
    pub fn next_records_into(&mut self, buf: &mut Vec<TraceRecord>, n: usize) {
        buf.reserve(n);
        for _ in 0..n {
            buf.push(self.next_record());
        }
    }

    /// Produces the next trace record.
    pub fn next_record(&mut self) -> TraceRecord {
        if let Some(r) = self.pending.pop_front() {
            return r;
        }
        // Thread switch boundary (parallel suite, time-sliced core).
        if self.threads.len() > 1 {
            if self.slice_left == 0 {
                self.cur_tid = (self.cur_tid + 1) % self.threads.len();
                self.slice_left = self.profile.timeslice;
                return TraceRecord::High(HighLevelEvent::ThreadSwitch {
                    tid: self.cur_tid as u8,
                });
            }
            self.slice_left -= 1;
        }

        // High-level activity interleaved with the instruction stream.
        if self.rng.chance(self.profile.malloc_rate) {
            self.do_malloc();
        }
        if self.heap.live_blocks() > 24 && self.rng.chance(self.profile.malloc_rate) {
            self.do_free();
        }
        if self.profile.taint_source_rate > 0.0 && self.rng.chance(self.profile.taint_source_rate)
        {
            self.do_taint_source();
        }

        // Call/return machinery.
        let depth = self.threads[self.cur_tid].frames.len();
        if depth < 24 && self.rng.chance(self.profile.call_rate) {
            self.do_call();
        } else if depth > 2 && self.rng.chance(self.profile.call_rate) {
            self.do_return();
        }

        if let Some(r) = self.pending.pop_front() {
            return r;
        }
        TraceRecord::Instr(self.gen_instr())
    }

    fn next_pc(&mut self) -> VirtAddr {
        let t = &mut self.threads[self.cur_tid];
        t.pc = t.pc.wrapping_add(4);
        if t.pc >= layout::TEXT_BASE + 0x0100_0000 {
            t.pc = layout::TEXT_BASE;
        }
        VirtAddr::new(t.pc)
    }

    fn do_malloc(&mut self) {
        let len = 8 + self.rng.below(2 * self.profile.alloc_mean as u64) as u32;
        let block = self.heap.malloc(len);
        // Reused address ranges no longer name old data.
        self.purge_range(block.base, block.len);
        self.mem_tags.clear_range(block.base, block.len);
        self.mallocs += 1;
        let ctx = self.next_ctx;
        self.next_ctx += 1;
        // The returned pointer lands in the return-value register.
        let tid = self.cur_tid;
        self.threads[tid]
            .regs
            .set_reg(Reg::RET, ValueTags::POINTER | ValueTags::INIT);
        // Queue the block's words for first-write targeting.
        for w in (0..block.len.min(512)).step_by(4) {
            self.to_init.push_back(block.base.wrapping_add(w));
            if self.to_init.len() > 8192 {
                self.to_init.pop_front();
            }
        }
        self.pending.push_back(TraceRecord::High(HighLevelEvent::Malloc {
            base: block.base,
            len: block.len,
            ctx,
        }));
    }

    fn do_free(&mut self) {
        if let Some(block) = self.heap.free_random(&mut self.rng) {
            self.mem_tags.clear_range(block.base, block.len);
            self.purge_range(block.base, block.len);
            self.pending.push_back(TraceRecord::High(HighLevelEvent::Free {
                base: block.base,
                len: block.len,
            }));
        }
    }

    /// Removes addresses in `[base, base+len)` from every reuse pool: a
    /// correct program stops touching memory it freed (the deliberate
    /// exception is the `wild_rate` knob).
    fn purge_range(&mut self, base: VirtAddr, len: u32) {
        let lo = base.raw();
        let hi = lo.wrapping_add(len);
        // The pools only ever admit non-stack addresses (stack stores
        // go to `frame_written`, which call/return clear wholesale), so
        // purging a stack range — every call and return — is a no-op:
        // skip the scan over thousands of pool entries. This is the
        // hottest path of trace generation for call-heavy profiles.
        if layout::is_stack(base) && layout::is_stack(VirtAddr::new(hi - 1)) {
            debug_assert!(self
                .threads
                .iter()
                .flat_map(|t| t.hot.iter().chain(t.stored_pool.iter()))
                .chain(self.to_init.iter())
                .chain(self.tainted.iter())
                .all(|a| !layout::is_stack(*a)));
            return;
        }
        let out = |a: &VirtAddr| a.raw() < lo || a.raw() >= hi;
        for t in &mut self.threads {
            t.hot.retain(out);
            t.stored_pool.retain(out);
        }
        self.to_init.retain(out);
        self.tainted.retain(out);
    }

    fn do_taint_source(&mut self) {
        // Taint a stretch of a live block (an external read into it).
        let Some(addr) = self.heap.random_live_addr(&mut self.rng) else {
            return;
        };
        let len = 32 + self.rng.below(96) as u32;
        for w in (0..len).step_by(4) {
            let a = addr.wrapping_add(w);
            self.mem_tags
                .set_mem(a, ValueTags::TAINT | ValueTags::INIT);
            self.tainted.push_back(a);
            if self.tainted.len() > 1024 {
                self.tainted.pop_front();
            }
        }
        self.pending
            .push_back(TraceRecord::High(HighLevelEvent::TaintSource {
                base: addr,
                len,
            }));
    }

    fn do_call(&mut self) {
        self.calls += 1;
        let len = (32 + self.rng.below(2 * self.profile.frame_mean as u64) as u32)
            .next_multiple_of(16);
        let pc = self.next_pc();
        let tid = self.cur_tid as u8;
        let t = &mut self.threads[self.cur_tid];
        t.sp -= len;
        let frame = Frame {
            base: VirtAddr::new(t.sp),
            len,
        };
        let (fb, fl) = (frame.base, frame.len);
        {
            let t = &mut self.threads[self.cur_tid];
            t.frames.push(frame);
            t.frame_written.clear();
        }
        // Fresh frame: uninitialized; stale pool entries at reused
        // stack addresses no longer name live data.
        self.mem_tags.clear_range(fb, fl);
        self.purge_range(fb, fl);
        let ev = StackUpdateEvent {
            base: fb,
            len,
            kind: StackUpdateKind::Call,
            tid,
        };
        self.pending.push_back(TraceRecord::Instr(
            AppInstr::new(pc, InstrClass::Call).with_tid(tid),
        ));
        self.pending.push_back(TraceRecord::Stack(ev));
    }

    fn do_return(&mut self) {
        let pc = self.next_pc();
        let tid = self.cur_tid as u8;
        let t = &mut self.threads[self.cur_tid];
        let Some(frame) = t.frames.pop() else { return };
        t.frame_written.clear();
        t.sp += frame.len;
        self.mem_tags.clear_range(frame.base, frame.len);
        self.purge_range(frame.base, frame.len);
        let ev = StackUpdateEvent {
            base: frame.base,
            len: frame.len,
            kind: StackUpdateKind::Return,
            tid,
        };
        self.pending.push_back(TraceRecord::Instr(
            AppInstr::new(pc, InstrClass::Return).with_tid(tid),
        ));
        self.pending.push_back(TraceRecord::Stack(ev));
    }

    fn gen_instr(&mut self) -> AppInstr {
        self.instrs += 1;
        let pc = self.next_pc();
        let tid = self.cur_tid as u8;
        let class = match self.rng.weighted_index(&self.profile.mix.weights()) {
            0 => InstrClass::Load,
            1 => InstrClass::Store,
            2 => InstrClass::IntAlu,
            3 => InstrClass::IntMove,
            4 => InstrClass::IntMul,
            5 => InstrClass::FpAlu,
            6 => InstrClass::Branch,
            7 => InstrClass::Jump,
            _ => InstrClass::Nop,
        };
        match class {
            InstrClass::Load => self.gen_load(pc, tid),
            InstrClass::Store => self.gen_store(pc, tid),
            InstrClass::IntAlu | InstrClass::IntMul => self.gen_alu(pc, tid, class),
            InstrClass::IntMove => self.gen_move(pc, tid),
            InstrClass::FpAlu => AppInstr::new(pc, InstrClass::FpAlu).with_tid(tid),
            InstrClass::Branch => {
                let s1 = self.pick_reg();
                let s2 = self.pick_reg();
                AppInstr::new(pc, InstrClass::Branch)
                    .with_src1(s1)
                    .with_src2(s2)
                    .with_tid(tid)
            }
            InstrClass::Jump => {
                let s1 = self.pick_reg();
                AppInstr::new(pc, InstrClass::Jump).with_src1(s1).with_tid(tid)
            }
            _ => AppInstr::new(pc, InstrClass::Nop).with_tid(tid),
        }
    }

    fn gen_load(&mut self, pc: VirtAddr, tid: u8) -> AppInstr {
        let (addr, wild) = self.pick_addr(false);
        let dest = self.pick_reg();
        let tags = self.mem_tags.mem(addr);
        self.threads[self.cur_tid].regs.set_reg(dest, tags);
        // Only initialized, valid data enters the reuse set: wild or
        // uninitialized reads are one-off events, not new hot data.
        if !wild && tags.contains(ValueTags::INIT) {
            self.touch_hot(addr);
        }
        AppInstr::new(pc, InstrClass::Load)
            .with_dest(dest)
            .with_mem(MemRef::word(addr))
            .with_tid(tid)
            .with_result_ptr(tags.contains(ValueTags::POINTER))
    }

    fn gen_store(&mut self, pc: VirtAddr, tid: u8) -> AppInstr {
        let (addr, wild) = self.pick_addr(true);
        let src = self.pick_store_src();
        // Defined-ness propagates as-is: storing an undefined value
        // leaves the word written-but-undefined.
        let tags = self.threads[self.cur_tid].regs.reg(src);
        self.mem_tags.set_mem(addr, tags);
        // Tainted output is written and rarely read back (output
        // buffers), so it mostly stays out of the reuse set; everything
        // else initialized and valid becomes reusable.
        let suppress_taint =
            tags.contains(ValueTags::TAINT) && self.rng.chance(0.8);
        if !wild && tags.contains(ValueTags::INIT) && !suppress_taint {
            if layout::is_stack(addr) {
                let t = &mut self.threads[self.cur_tid];
                if t.frame_written.len() < 64 {
                    t.frame_written.push(addr);
                }
            } else {
                let replace = self.rng.below(4096) as usize;
                let t = &mut self.threads[self.cur_tid];
                t.hot.push_back(addr);
                if t.hot.len() > 64 {
                    t.hot.pop_front();
                }
                if t.stored_pool.len() < 4096 {
                    t.stored_pool.push(addr);
                } else {
                    t.stored_pool[replace] = addr;
                }
            }
        }
        AppInstr::new(pc, InstrClass::Store)
            .with_src1(src)
            .with_mem(MemRef::word(addr))
            .with_tid(tid)
            .with_result_ptr(tags.contains(ValueTags::POINTER))
    }

    fn gen_alu(&mut self, pc: VirtAddr, tid: u8, class: InstrClass) -> AppInstr {
        let s1 = self.pick_alu_src();
        // Half of integer ALU operations take a register-immediate
        // form; the immediate operand is architecturally the zero
        // register and carries clean metadata.
        // Register-immediate forms dominate compiled integer code.
        let s2 = if self.rng.chance(0.7) {
            None
        } else {
            Some(self.pick_reg())
        };
        let dest = self.pick_reg();
        let keep_ptr = self.rng.chance(0.4);
        let t = &mut self.threads[self.cur_tid];
        let s1_tags = t.regs.reg(s1);
        let s2_tags = s2.map(|r| t.regs.reg(r)).unwrap_or(ValueTags::INIT);
        // The result is defined only if every register source is.
        let defined = s1_tags.contains(ValueTags::INIT) && s2_tags.contains(ValueTags::INIT);
        let mut tags = (s1_tags | s2_tags).without(ValueTags::INIT);
        if defined {
            tags = tags | ValueTags::INIT;
        }
        if class == InstrClass::IntMul {
            // Multiplying pointers does not yield a pointer.
            tags = tags.without(ValueTags::POINTER);
        } else if tags.contains(ValueTags::POINTER) && !keep_ptr {
            // Much pointer arithmetic computes offsets/differences,
            // which are integers; without this decay pointer-ness would
            // spread virally through the register file.
            tags = tags.without(ValueTags::POINTER);
        }
        t.regs.set_reg(dest, tags);
        let mut i = AppInstr::new(pc, class)
            .with_src1(s1)
            .with_dest(dest)
            .with_tid(tid)
            .with_result_ptr(tags.contains(ValueTags::POINTER));
        if let Some(s2) = s2 {
            i = i.with_src2(s2);
        }
        i
    }

    fn gen_move(&mut self, pc: VirtAddr, tid: u8) -> AppInstr {
        let dest = self.pick_reg();
        // Most moves materialize immediates/constants: they *clean* the
        // destination register, the mechanism by which real programs
        // keep most registers free of pointers/taint/undef values.
        if self.rng.chance(0.55) {
            let t = &mut self.threads[self.cur_tid];
            t.regs.set_reg(dest, ValueTags::INIT);
            return AppInstr::new(pc, InstrClass::IntMove)
                .with_dest(dest)
                .with_tid(tid);
        }
        let s1 = self.pick_alu_src();
        let t = &mut self.threads[self.cur_tid];
        let tags = t.regs.reg(s1);
        t.regs.set_reg(dest, tags);
        AppInstr::new(pc, InstrClass::IntMove)
            .with_src1(s1)
            .with_dest(dest)
            .with_tid(tid)
            .with_result_ptr(tags.contains(ValueTags::POINTER))
    }

    fn touch_hot(&mut self, addr: VirtAddr) {
        if layout::is_stack(addr) {
            return;
        }
        let t = &mut self.threads[self.cur_tid];
        t.hot.push_back(addr);
        if t.hot.len() > 64 {
            t.hot.pop_front();
        }
    }

    /// Index into a pool of `len` entries, biased towards the most
    /// recent entries (geometric with mean ~48): working sets are
    /// concentrated, which is what keeps the M-TLB and MD cache
    /// effective on real programs.
    fn recent_index(&mut self, len: usize) -> usize {
        let g = self.rng.geometric(1.0 / 48.0) as usize;
        len - 1 - g.min(len - 1)
    }

    /// A uniformly random general-purpose register.
    fn pick_reg(&mut self) -> Reg {
        Reg::new(GENERAL_REGS[self.rng.below(GENERAL_REGS.len() as u64) as usize])
    }

    /// ALU source selection: biased towards pointer-holding registers
    /// per the profile's pointer density.
    fn pick_alu_src(&mut self) -> Reg {
        if self.rng.chance(self.profile.pointer_density) {
            let ptrs = self.threads[self.cur_tid].regs.pointer_regs();
            if !ptrs.is_empty() {
                return ptrs[self.rng.below(ptrs.len() as u64) as usize];
            }
        }
        self.pick_reg()
    }

    /// Store value selection: occasionally spills a pointer register
    /// (half as often as pointer arithmetic uses one — most stores are
    /// data, not pointer spills).
    fn pick_store_src(&mut self) -> Reg {
        if self.rng.chance(self.profile.pointer_density * 0.5) {
            let ptrs = self.threads[self.cur_tid].regs.pointer_regs();
            if !ptrs.is_empty() {
                return ptrs[self.rng.below(ptrs.len() as u64) as usize];
            }
        }
        self.pick_reg()
    }

    /// Address selection, the heart of the workload's behaviour.
    /// Returns the address and whether it is a *wild* access (freed or
    /// never-allocated memory) that must not enter the reuse pools.
    fn pick_addr(&mut self, is_store: bool) -> (VirtAddr, bool) {
        let p = &self.profile;
        // Wild access (unallocated / freed memory).
        if self.rng.chance(p.wild_rate) {
            if let Some(a) = self.heap.random_freed_addr(&mut self.rng) {
                return (a, true);
            }
            // Never-allocated heap territory.
            let off = (layout::HEAP_SIZE / 2) + 4 * self.rng.below(1 << 20) as u32;
            return (VirtAddr::new(layout::HEAP_BASE + off), true);
        }
        // Tainted data (TaintCheck workloads).
        if !is_store
            && p.taint_density > 0.0
            && self.rng.chance(p.taint_density)
            && !self.tainted.is_empty()
        {
            let idx = self.rng.below(self.tainted.len() as u64) as usize;
            return (self.tainted[idx], false);
        }
        // Stack accesses: a stable fraction of the access stream hits
        // the current frame's locals.
        if self.rng.chance(p.stack_frac) {
            if is_store {
                // Stores concentrate on a few hot slots; the first
                // store to each slot after a call is a first-write.
                let t = &self.threads[self.cur_tid];
                let f = &t.frames[t.frames.len() - 1];
                let words = (f.len / 16).max(2);
                let a = f.base.wrapping_add(4 * self.rng.below(words as u64) as u32);
                return (a, false);
            }
            // Loads read back locals the function has written.
            let t = &self.threads[self.cur_tid];
            if !t.frame_written.is_empty() {
                let idx = self.rng.below(t.frame_written.len() as u64) as usize;
                return (t.frame_written[idx], false);
            }
            // No locals written yet: fall through to the data path.
        }
        // First writes into fresh allocations (stores), uninitialized
        // reads (loads).
        if is_store {
            if !self.to_init.is_empty() && self.rng.chance(p.first_write_rate) {
                return (self.to_init.pop_front().expect("checked non-empty"), false);
            }
        } else if self.rng.chance(p.uninit_rate) && !self.to_init.is_empty() {
            let idx = self.rng.below(self.to_init.len() as u64) as usize;
            return (self.to_init[idx], false);
        }
        // Temporal locality: recently stored addresses (possibly another
        // thread's, for the sharing knob).
        if self.rng.chance(p.locality) {
            let victim_tid = if self.threads.len() > 1 && self.rng.chance(p.sharing) {
                let other = self.rng.below((self.threads.len() - 1) as u64) as usize;
                (self.cur_tid + 1 + other) % self.threads.len()
            } else {
                self.cur_tid
            };
            let t = &self.threads[victim_tid];
            if !t.hot.is_empty() {
                let idx = self.rng.below(t.hot.len() as u64) as usize;
                return (t.hot[idx], false);
            }
        }
        // Far reuse from the initialized pool, biased towards recent
        // entries (concentrated working set).
        if !self.threads[self.cur_tid].stored_pool.is_empty() && self.rng.chance(0.9) {
            let len = self.threads[self.cur_tid].stored_pool.len();
            let idx = self.recent_index(len);
            return (self.threads[self.cur_tid].stored_pool[idx], false);
        }
        // Fresh addresses: stores explore live regions (creating the
        // first-write stream); loads fall back to the (initialized)
        // globals — correct programs do not read never-written words
        // except through the explicit `uninit_rate` knob.
        let addr = if is_store {
            if self.rng.chance(0.6) {
                self.heap
                    .random_live_addr(&mut self.rng)
                    .unwrap_or(VirtAddr::new(layout::GLOBALS_BASE))
            } else {
                let words = 1 << 12; // 16 KiB of hot globals
                VirtAddr::new(layout::GLOBALS_BASE + 4 * self.rng.below(words) as u32)
            }
        } else {
            let words = 1 << 12;
            VirtAddr::new(layout::GLOBALS_BASE + 4 * self.rng.below(words) as u32)
        };
        (addr, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use std::collections::HashMap;

    fn run(name: &str, n: u64, seed: u64) -> (Vec<TraceRecord>, SyntheticProgram) {
        let p = bench::by_name(name).unwrap();
        let mut prog = SyntheticProgram::new(&p, seed);
        let mut out = Vec::new();
        while prog.instrs() < n {
            out.push(prog.next_record());
        }
        (out, prog)
    }

    #[test]
    fn deterministic_across_runs() {
        let (a, _) = run("gcc", 5_000, 7);
        let (b, _) = run("gcc", 5_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let (a, _) = run("gcc", 1_000, 1);
        let (b, _) = run("gcc", 1_000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn instruction_mix_roughly_matches_profile() {
        let (records, prog) = run("bzip", 100_000, 3);
        let mut counts: HashMap<InstrClass, u64> = HashMap::new();
        for r in &records {
            if let TraceRecord::Instr(i) = r {
                *counts.entry(i.class).or_default() += 1;
            }
        }
        let total = prog.instrs() as f64;
        let load_frac = counts[&InstrClass::Load] as f64 / total;
        assert!(
            (load_frac - prog.profile().mix.load).abs() < 0.03,
            "load fraction {load_frac}"
        );
        assert!(counts[&InstrClass::Store] > 0);
        assert!(counts.contains_key(&InstrClass::Branch));
    }

    #[test]
    fn calls_and_returns_emit_stack_updates() {
        let (records, prog) = run("gcc", 50_000, 11);
        let calls = records
            .iter()
            .filter(|r| matches!(r, TraceRecord::Stack(s) if s.kind == StackUpdateKind::Call))
            .count();
        let rets = records
            .iter()
            .filter(|r| matches!(r, TraceRecord::Stack(s) if s.kind == StackUpdateKind::Return))
            .count();
        assert!(calls > 100, "calls {calls}");
        assert!(rets > 50, "returns {rets}");
        assert!(prog.calls() as usize == calls);
        // Stack updates stay word-sane.
        for r in &records {
            if let TraceRecord::Stack(s) = r {
                assert!(layout::is_stack(s.base), "frame outside stack: {}", s.base);
                assert!(s.len >= 32 && s.len % 16 == 0);
            }
        }
    }

    #[test]
    fn mallocs_and_frees_flow() {
        let (records, prog) = run("omnet", 100_000, 13);
        let mallocs = records
            .iter()
            .filter(|r| matches!(r, TraceRecord::High(HighLevelEvent::Malloc { .. })))
            .count();
        let frees = records
            .iter()
            .filter(|r| matches!(r, TraceRecord::High(HighLevelEvent::Free { .. })))
            .count();
        assert!(mallocs > 10);
        assert!(frees > 5);
        assert!(prog.mallocs() >= mallocs as u64);
    }

    #[test]
    fn memory_accesses_target_live_segments_mostly() {
        let (records, _) = run("astar", 50_000, 17);
        let mut in_segments = 0u64;
        let mut total = 0u64;
        for r in &records {
            if let TraceRecord::Instr(i) = r {
                if let Some(m) = i.mem {
                    total += 1;
                    if layout::is_stack(m.addr) || layout::is_heap(m.addr) || layout::is_globals(m.addr)
                    {
                        in_segments += 1;
                    }
                }
            }
        }
        assert!(total > 10_000);
        assert_eq!(in_segments, total, "all addresses fall in known segments");
    }

    #[test]
    fn parallel_benchmarks_switch_threads() {
        let p = bench::by_name("water").unwrap();
        assert_eq!(p.threads, 4);
        let mut prog = SyntheticProgram::new(&p, 5);
        let mut seen = std::collections::HashSet::new();
        let mut switches = 0;
        for _ in 0..200_000 {
            match prog.next_record() {
                TraceRecord::High(HighLevelEvent::ThreadSwitch { tid }) => {
                    switches += 1;
                    seen.insert(tid);
                }
                TraceRecord::Instr(i) => {
                    seen.insert(i.tid);
                }
                _ => {}
            }
        }
        assert!(switches >= 3, "switches {switches}");
        assert!(seen.len() >= 4, "threads seen: {seen:?}");
    }

    #[test]
    fn taint_suite_generates_taint_events() {
        let (records, _) = run("astar-taint", 200_000, 19);
        let sources = records
            .iter()
            .filter(|r| matches!(r, TraceRecord::High(HighLevelEvent::TaintSource { .. })))
            .count();
        assert!(sources > 0, "taint workloads must inject taint");
    }

    #[test]
    fn pointer_registers_exist_in_steady_state() {
        let p = bench::by_name("gcc").unwrap();
        let mut prog = SyntheticProgram::new(&p, 23);
        let mut samples = 0;
        let mut with_ptrs = 0;
        for i in 0..100_000u64 {
            prog.next_record();
            if i % 1000 == 0 {
                samples += 1;
                if !prog.threads[prog.cur_tid].regs.pointer_regs().is_empty() {
                    with_ptrs += 1;
                }
            }
        }
        assert!(
            with_ptrs * 2 > samples,
            "pointer registers should usually be live ({with_ptrs}/{samples})"
        );
    }
}
