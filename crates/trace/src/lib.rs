//! # fade-trace
//!
//! Synthetic workload generation for the FADE reproduction.
//!
//! The paper drives its evaluation with SPEC2006-int benchmarks (plus
//! SPLASH-2/PARSEC applications for AtomCheck) running on a full-system
//! simulator. This crate provides the equivalent: a *synthetic program
//! engine* ([`SyntheticProgram`]) that behaves like a real program at
//! the level instruction-grain monitors observe —
//!
//! * a call stack with frames allocated/deallocated on call/return,
//! * a heap with malloc/free and live-block reuse,
//! * registers and memory words carrying *value tags* (pointer, taint,
//!   initialized) propagated by the generated instructions,
//! * bursty, benchmark-dependent retirement statistics.
//!
//! Each benchmark is a [`BenchProfile`] whose knobs (instruction mix,
//! call/malloc rates, pointer/taint densities, locality, burstiness) are
//! calibrated against the per-benchmark numbers the paper reports
//! (monitored IPC, filtering ratios, queue occupancies). The 13 paper
//! benchmarks are in [`mod@bench`].
//!
//! Generated (or captured) record streams can be frozen to disk in the
//! versioned `.fadet` format ([`mod@file`]: chunked, checksummed,
//! varint/delta-encoded by [`mod@codec`]) and replayed bit-exactly —
//! the interchange point between trace capture and analysis.
//!
//! # Example
//!
//! ```
//! use fade_trace::{bench, SyntheticProgram, TraceRecord};
//!
//! let profile = bench::by_name("mcf").unwrap();
//! let mut prog = SyntheticProgram::new(&profile, 42);
//! let mut instrs = 0;
//! while instrs < 1000 {
//!     if let TraceRecord::Instr(_) = prog.next_record() {
//!         instrs += 1;
//!     }
//! }
//! ```

pub mod bench;
pub mod codec;
pub mod faultinject;
pub mod file;
pub mod heap;
pub mod profile;
pub mod program;
pub mod soa;
pub mod value;

pub use bench::{by_name, parallel_suite, spec_int_suite, taint_suite};
pub use faultinject::{FaultKind, FaultPlan, FaultyReader};
pub use file::{
    decode_trace, decode_trace_recovering, encode_trace, read_trace_file, write_trace_file,
    ChunkIndex, ChunkIndexEntry, DegradationReport, EpochSpan, SkippedChunk, TraceFileError,
    TraceMeta, TraceReader, TraceWriter,
};
pub use heap::HeapModel;
pub use profile::{BenchProfile, InstrMix};
pub use program::{SyntheticProgram, TraceRecord};
pub use soa::{read_trace_soa, SoaDecoder, SoaItem};
pub use value::{ValueState, ValueTags};
