//! The `.fadet` recorded-trace file format.
//!
//! A versioned, chunked, checksummed container around the
//! [`crate::codec`] record encoding — the interchange point between
//! trace capture and analysis. A recorded trace freezes a workload
//! independently of future generator/profile changes, makes any real
//! workload "a file we replay", and gives tests byte-stable fixtures.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! file    := header chunk* index trailer
//! header  := magic[8]="FADETRCF"  version:u16  hlen:u16
//!            hpayload[hlen]  crc32(hpayload):u32
//! hpayload:= name_len:u8  bench_name[name_len]  seed:u64
//! chunk   := 0x01  plen:u32  nrecords:u32  crc32(payload):u32
//!            payload[plen]            (codec context resets per chunk)
//! index   := 0x02  plen:u32  nchunks:u32  crc32(payload):u32
//!            payload[plen]            (12 bytes per chunk:
//!                                      offset:u64  nrecords:u32)
//! trailer := 0x00  total_records:u64  index_offset:u64
//!            crc32(total_records index_offset):u32
//! ```
//!
//! Version 2 (current) appends the chunk-offset index frame and widens
//! the trailer to carry `index_offset`, so a consumer can seek straight
//! to any chunk — [`ChunkIndex::from_bytes`] reads the trailer and the
//! index frame in O(index) without touching chunk payloads, which is
//! what epoch-parallel replay splits a trace with. Version-1 files
//! (13-byte trailer, no index frame) still read through both paths: the
//! sequential reader keys the trailer layout off the header version,
//! and [`ChunkIndex::from_bytes`] falls back to a forward frame scan.
//!
//! Unknown trailing header-payload bytes are skipped, so minor-version
//! extensions can add metadata without breaking old readers; a major
//! format change bumps `version` and old readers reject it with
//! [`TraceFileError::UnsupportedVersion`].
//!
//! Every failure mode is a typed [`TraceFileError`] naming the file
//! offset of the failing chunk — decoding never panics, whatever the
//! bytes.
//!
//! # Recovery
//!
//! Readers run in one of two modes. The default *strict* mode fails the
//! whole read on the first fault. *Recover* mode
//! ([`TraceReader::with_recovery`]) instead skips the faulty frame,
//! scans forward for the next offset at which a whole frame parses and
//! verifies (chunks carry their own CRC-32 and decode with a fresh
//! codec context, so any surviving chunk is independently decodable),
//! and keeps going. Every skip is accounted in a [`DegradationReport`]:
//! which byte ranges were dropped, how many records were lost (exact
//! when the trailer survives, best-effort otherwise), and whether the
//! tail of the file was truncated. On a clean file the two modes are
//! byte-for-byte identical.
//!
//! # Example
//!
//! ```
//! use fade_trace::{bench, SyntheticProgram};
//! use fade_trace::file::{decode_trace, encode_trace, TraceMeta};
//!
//! let p = bench::by_name("mcf").unwrap();
//! let mut prog = SyntheticProgram::new(&p, 7);
//! let records: Vec<_> = (0..1000).map(|_| prog.next_record()).collect();
//! let meta = TraceMeta { bench: "mcf".into(), seed: 7 };
//! let bytes = encode_trace(&meta, &records);
//! let (meta2, records2) = decode_trace(&bytes).unwrap();
//! assert_eq!(meta2, meta);
//! assert_eq!(records2, records);
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use crate::codec::{crc32, encode_record, ChunkDecoder, CodecError, Ctx};
use crate::program::TraceRecord;

/// Magic header of a `.fadet` trace file.
pub const FILE_MAGIC: &[u8; 8] = b"FADETRCF";

/// Current schema version. Readers reject anything newer and accept
/// everything older (version 1 lacks the chunk index and uses the
/// short trailer).
pub const FORMAT_VERSION: u16 = 2;

/// Records per chunk the writer flushes at by default: large enough to
/// amortize per-chunk overhead (13 bytes) to noise, small enough that
/// corruption and resynchronization stay fine-grained.
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;

const CHUNK_MARKER: u8 = 0x01;
const END_MARKER: u8 = 0x00;
const INDEX_MARKER: u8 = 0x02;

/// Bytes one chunk costs in the index frame: offset + record count.
const INDEX_ENTRY_BYTES: usize = 12;
/// Version-1 trailer: marker + total_records + crc.
const TRAILER_V1: usize = 13;
/// Version-2 trailer: marker + total_records + index_offset + crc.
const TRAILER_V2: usize = 21;

/// Upper bound a reader accepts for one chunk payload: a corrupted (or
/// hostile) length field must not drive allocation.
const MAX_CHUNK_PAYLOAD: u32 = 1 << 26;
/// Upper bound a reader accepts for one chunk's record count.
const MAX_CHUNK_RECORDS: u32 = 1 << 24;
/// Upper bound for the bench-name field.
const MAX_NAME_LEN: usize = 255;

/// Profile metadata carried in the file header: enough to rebuild the
/// [`crate::BenchProfile`] context a recorded trace was captured under.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Benchmark profile name (`crate::bench::by_name` key) the trace
    /// was generated from, or a free-form workload label for captured
    /// real-workload traces.
    pub bench: String,
    /// Generator seed (for provenance; replay does not re-generate).
    pub seed: u64,
}

impl TraceMeta {
    /// Metadata for a synthetic workload.
    pub fn new(bench: impl Into<String>, seed: u64) -> Self {
        TraceMeta {
            bench: bench.into(),
            seed,
        }
    }
}

/// An error while reading or decoding a recorded-trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceFileError {
    /// An underlying I/O failure (other than clean truncation).
    Io(String),
    /// The file does not start with [`FILE_MAGIC`].
    BadMagic,
    /// The file's schema version is newer than this reader.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The header payload is malformed or fails its checksum.
    BadHeader,
    /// The stream ended mid-structure.
    Truncated {
        /// File offset at which more bytes were needed.
        offset: u64,
    },
    /// A chunk payload failed its CRC-32 check.
    ChecksumMismatch {
        /// File offset of the failing chunk's marker byte.
        chunk_offset: u64,
    },
    /// A chunk payload passed its checksum but decoded to garbage
    /// (possible only for writer bugs or checksum collisions).
    Corrupt {
        /// File offset of the failing chunk's marker byte.
        chunk_offset: u64,
        /// The codec-level error inside the payload.
        error: CodecError,
    },
    /// The trailer's total record count disagrees with the chunks.
    CountMismatch {
        /// Records the trailer promised.
        expected: u64,
        /// Records the chunks actually held.
        found: u64,
    },
    /// A structural field is out of its sane range (chunk larger than
    /// the maximum chunk payload, oversized name, unknown marker).
    BadStructure {
        /// File offset of the offending field.
        offset: u64,
    },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O error: {e}"),
            TraceFileError::BadMagic => write!(f, "not a FADE trace file (bad magic)"),
            TraceFileError::UnsupportedVersion { found } => write!(
                f,
                "unsupported trace format version {found} (reader supports <= {FORMAT_VERSION})"
            ),
            TraceFileError::BadHeader => write!(f, "malformed trace file header"),
            TraceFileError::Truncated { offset } => {
                write!(f, "trace file truncated at byte offset {offset}")
            }
            TraceFileError::ChecksumMismatch { chunk_offset } => {
                write!(f, "checksum mismatch in chunk at byte offset {chunk_offset}")
            }
            TraceFileError::Corrupt { chunk_offset, error } => {
                write!(f, "corrupt chunk at byte offset {chunk_offset}: {error}")
            }
            TraceFileError::CountMismatch { expected, found } => write!(
                f,
                "record count mismatch: trailer promises {expected}, chunks hold {found}"
            ),
            TraceFileError::BadStructure { offset } => {
                write!(f, "malformed structure at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Degradation accounting
// ---------------------------------------------------------------------

/// One fault a recovering reader survived: the frame it gave up on and
/// where (if anywhere) it found the next parseable frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkippedChunk {
    /// File offset of the frame that failed to parse or verify.
    pub offset: u64,
    /// File offset of the next frame that parsed and verified, or
    /// `None` when the scan ran off the end of the stream.
    pub resumed_at: Option<u64>,
    /// The typed error the frame failed with.
    pub error: TraceFileError,
}

/// What a [`TraceReader`] in recover mode survived: skipped-chunk and
/// lost-record accounting for a faulty `.fadet` stream.
///
/// Produced by [`TraceReader::degradation`] (and surfaced through
/// `fade_system::Session::degradation` on replay sessions). All counts
/// are final once the reader reports end-of-trace; a report on a
/// fault-free stream is [`DegradationReport::is_clean`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Frames skipped after a fault (corrupt, truncated or garbage).
    pub chunks_skipped: u64,
    /// Records lost to skipped frames. Exact — taken from the trailer's
    /// total — when the trailer survived; otherwise the sum of the
    /// record counts claimed by skipped chunks whose headers were still
    /// parseable (a lower bound).
    pub records_lost: u64,
    /// Total bytes the resynchronization scan stepped over.
    pub bytes_skipped: u64,
    /// The stream ended before a verified trailer (mid-chunk or
    /// mid-scan end-of-file).
    pub truncated_tail: bool,
    /// A structurally-valid trailer was found, making `records_lost`
    /// exact.
    pub trailer_verified: bool,
    /// Per-fault detail, in stream order.
    pub faults: Vec<SkippedChunk>,
}

impl DegradationReport {
    /// `true` when the stream replayed without a single fault.
    pub fn is_clean(&self) -> bool {
        self.chunks_skipped == 0
            && self.records_lost == 0
            && self.bytes_skipped == 0
            && !self.truncated_tail
            && self.faults.is_empty()
    }
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "clean replay (no faults)");
        }
        write!(
            f,
            "degraded replay: {} chunk(s) skipped, {}{} record(s) lost, {} byte(s) skipped{}",
            self.chunks_skipped,
            if self.trailer_verified { "" } else { ">= " },
            self.records_lost,
            self.bytes_skipped,
            if self.truncated_tail {
                ", tail truncated"
            } else {
                ""
            }
        )
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Streaming `.fadet` writer.
///
/// Records are buffered into chunks of
/// [`TraceWriter::with_chunk_records`] records (default
/// [`DEFAULT_CHUNK_RECORDS`]), each flushed with its own record count
/// and CRC-32; [`TraceWriter::finish`] writes the trailer. Dropping a
/// writer without `finish` leaves a file readers reject as truncated —
/// a half-written capture never masquerades as a complete one.
pub struct TraceWriter<W: Write> {
    w: W,
    ctx: Ctx,
    chunk: Vec<u8>,
    chunk_records: u32,
    chunk_capacity: usize,
    total: u64,
    /// File offset the next byte will land at (header included), so
    /// each flushed chunk can be recorded in the index frame.
    offset: u64,
    /// (file offset, record count) per flushed chunk.
    index: Vec<(u64, u32)>,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the file header.
    pub fn new(mut w: W, meta: &TraceMeta) -> io::Result<Self> {
        assert!(
            meta.bench.len() <= MAX_NAME_LEN,
            "bench name too long for the trace header"
        );
        let mut hpayload = Vec::with_capacity(1 + meta.bench.len() + 8);
        hpayload.push(meta.bench.len() as u8);
        hpayload.extend_from_slice(meta.bench.as_bytes());
        hpayload.extend_from_slice(&meta.seed.to_le_bytes());
        w.write_all(FILE_MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(hpayload.len() as u16).to_le_bytes())?;
        w.write_all(&hpayload)?;
        w.write_all(&crc32(&hpayload).to_le_bytes())?;
        let header_len = 8 + 2 + 2 + hpayload.len() as u64 + 4;
        Ok(TraceWriter {
            w,
            ctx: Ctx::default(),
            chunk: Vec::new(),
            chunk_records: 0,
            chunk_capacity: DEFAULT_CHUNK_RECORDS,
            total: 0,
            offset: header_len,
            index: Vec::new(),
        })
    }

    /// Sets the records-per-chunk flush threshold (min 1).
    pub fn with_chunk_records(mut self, n: usize) -> Self {
        self.chunk_capacity = n.max(1);
        self
    }

    /// Appends one record.
    pub fn write_record(&mut self, r: &TraceRecord) -> io::Result<()> {
        encode_record(&mut self.ctx, r, &mut self.chunk);
        self.chunk_records += 1;
        self.total += 1;
        if self.chunk_records as usize >= self.chunk_capacity {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends a record slice.
    pub fn write_all(&mut self, records: &[TraceRecord]) -> io::Result<()> {
        for r in records {
            self.write_record(r)?;
        }
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.total
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.chunk_records == 0 {
            return Ok(());
        }
        self.index.push((self.offset, self.chunk_records));
        self.w.write_all(&[CHUNK_MARKER])?;
        self.w.write_all(&(self.chunk.len() as u32).to_le_bytes())?;
        self.w.write_all(&self.chunk_records.to_le_bytes())?;
        self.w.write_all(&crc32(&self.chunk).to_le_bytes())?;
        self.w.write_all(&self.chunk)?;
        self.offset += 13 + self.chunk.len() as u64;
        self.chunk.clear();
        self.chunk_records = 0;
        // Fresh prediction context per chunk: chunks decode independently.
        self.ctx = Ctx::default();
        Ok(())
    }

    /// Flushes the last chunk, writes the chunk-offset index frame and
    /// the trailer, and returns the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_chunk()?;
        // Index frame: seekable consumers jump here via the trailer's
        // index_offset and never touch chunk payloads.
        let index_offset = self.offset;
        let mut ipayload = Vec::with_capacity(self.index.len() * INDEX_ENTRY_BYTES);
        for &(off, nrecords) in &self.index {
            ipayload.extend_from_slice(&off.to_le_bytes());
            ipayload.extend_from_slice(&nrecords.to_le_bytes());
        }
        self.w.write_all(&[INDEX_MARKER])?;
        self.w.write_all(&(ipayload.len() as u32).to_le_bytes())?;
        self.w.write_all(&(self.index.len() as u32).to_le_bytes())?;
        self.w.write_all(&crc32(&ipayload).to_le_bytes())?;
        self.w.write_all(&ipayload)?;
        // Version-2 trailer: total record count plus the index frame's
        // file offset, CRC-protected together.
        self.w.write_all(&[END_MARKER])?;
        let mut tail = [0u8; 16];
        tail[..8].copy_from_slice(&self.total.to_le_bytes());
        tail[8..].copy_from_slice(&index_offset.to_le_bytes());
        self.w.write_all(&tail)?;
        self.w.write_all(&crc32(&tail).to_le_bytes())?;
        self.w.flush()?;
        Ok(self.w)
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Streaming `.fadet` reader.
///
/// Parses the header eagerly ([`TraceReader::meta`]), then decodes one
/// chunk at a time on demand — a trace never needs to fit in memory
/// twice. Implements `Iterator<Item = Result<TraceRecord, _>>`, and
/// plugs directly into the replay path of
/// `fade_system::MonitoringSystem` through the `TraceSource` trait.
///
/// In strict mode (the default) the first fault aborts the read with a
/// typed [`TraceFileError`]; [`TraceReader::with_recovery`] switches to
/// skip-and-resynchronize with a [`DegradationReport`].
pub struct TraceReader<R: Read> {
    r: R,
    meta: TraceMeta,
    /// Header schema version; selects the trailer layout (version 1
    /// uses the short trailer and has no index frame).
    version: u16,
    /// File offset of the next logically-unread byte (the front of
    /// `buf`, when `buf` is non-empty).
    pos: u64,
    /// Look-ahead over `r`: frame parsing peeks here and only consumes
    /// bytes once the whole frame verifies, so a failed parse leaves
    /// the stream intact for resynchronization.
    buf: std::collections::VecDeque<u8>,
    /// `r` reported end-of-stream.
    eof: bool,
    chunk: Vec<TraceRecord>,
    chunk_pos: usize,
    payload: Vec<u8>,
    total_seen: u64,
    /// End of trace reached (verified trailer, or a recovered reader
    /// ran off the end of the stream).
    done: bool,
    recover: bool,
    degradation: DegradationReport,
    /// Records claimed by skipped chunks whose headers were parseable.
    claimed_lost: u64,
}

impl TraceReader<io::BufReader<std::fs::File>> {
    /// Opens a trace file from disk (strict mode).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let f = std::fs::File::open(path)?;
        TraceReader::new(io::BufReader::new(f))
    }

    /// Opens a trace file from disk in recover mode (see
    /// [`TraceReader::with_recovery`]).
    pub fn open_recovering(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        Ok(Self::open(path)?.with_recovery())
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps a byte stream, parsing and validating the header.
    pub fn new(mut r: R) -> Result<Self, TraceFileError> {
        let mut pos = 0u64;
        let mut magic = [0u8; 8];
        read_exact_at(&mut r, &mut magic, &mut pos).map_err(|e| match e {
            TraceFileError::Truncated { .. } => TraceFileError::BadMagic,
            other => other,
        })?;
        if &magic != FILE_MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        let version = read_u16(&mut r, &mut pos)?;
        if version > FORMAT_VERSION || version == 0 {
            return Err(TraceFileError::UnsupportedVersion { found: version });
        }
        let hlen = read_u16(&mut r, &mut pos)? as usize;
        let mut hpayload = vec![0u8; hlen];
        read_exact_at(&mut r, &mut hpayload, &mut pos)?;
        let hcrc = read_u32(&mut r, &mut pos)?;
        if crc32(&hpayload) != hcrc {
            return Err(TraceFileError::BadHeader);
        }
        // name_len + name + seed; later minor versions may append more.
        let name_len = *hpayload.first().ok_or(TraceFileError::BadHeader)? as usize;
        if hpayload.len() < 1 + name_len + 8 {
            return Err(TraceFileError::BadHeader);
        }
        let bench = std::str::from_utf8(&hpayload[1..1 + name_len])
            .map_err(|_| TraceFileError::BadHeader)?
            .to_string();
        let mut seed_bytes = [0u8; 8];
        seed_bytes.copy_from_slice(&hpayload[1 + name_len..1 + name_len + 8]);
        let seed = u64::from_le_bytes(seed_bytes);
        Ok(TraceReader {
            r,
            meta: TraceMeta { bench, seed },
            version,
            pos,
            buf: std::collections::VecDeque::new(),
            eof: false,
            chunk: Vec::new(),
            chunk_pos: 0,
            payload: Vec::new(),
            total_seen: 0,
            done: false,
            recover: false,
            degradation: DegradationReport::default(),
            claimed_lost: 0,
        })
    }

    /// Switches the reader to recover mode: a corrupt, truncated or
    /// garbage frame is skipped and the reader resynchronizes on the
    /// next offset at which a complete frame parses and verifies,
    /// accounting every skip in [`TraceReader::degradation`]. Faults in
    /// the file *header* are not recoverable (there is nothing to
    /// replay without the metadata) and still fail
    /// [`TraceReader::new`]; underlying I/O errors other than clean
    /// end-of-stream still abort the read.
    ///
    /// On a fault-free stream, recover mode returns bit-identical
    /// records to strict mode.
    pub fn with_recovery(mut self) -> Self {
        self.recover = true;
        self
    }

    /// The profile metadata from the file header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The schema version from the file header.
    pub fn format_version(&self) -> u16 {
        self.version
    }

    /// Trailer frame length for this file's schema version.
    fn trailer_len(&self) -> usize {
        if self.version >= 2 {
            TRAILER_V2
        } else {
            TRAILER_V1
        }
    }

    /// `true` once the end of the trace has been reached (verified
    /// trailer, or — in recover mode — the end of a damaged stream).
    pub fn is_done(&self) -> bool {
        self.done && self.chunk_pos >= self.chunk.len()
    }

    /// Skipped-chunk accounting, in recover mode ([`None`] in strict
    /// mode, which aborts on the first fault instead). Counts are final
    /// once [`TraceReader::is_done`]; a fault-free replay yields a
    /// [`DegradationReport::is_clean`] report.
    pub fn degradation(&self) -> Option<&DegradationReport> {
        if self.recover {
            Some(&self.degradation)
        } else {
            None
        }
    }

    // -- buffered look-ahead ------------------------------------------

    /// Ensures up to `n` bytes are buffered; returns how many are
    /// available (fewer than `n` only at end-of-stream).
    fn fill(&mut self, n: usize) -> Result<usize, TraceFileError> {
        let mut tmp = [0u8; 8192];
        while self.buf.len() < n && !self.eof {
            let want = (n - self.buf.len()).min(tmp.len());
            match self.r.read(&mut tmp[..want]) {
                Ok(0) => self.eof = true,
                Ok(k) => self.buf.extend(&tmp[..k]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(self.buf.len().min(n))
    }

    /// Drops `n` already-buffered bytes from the front of `buf`.
    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.buf.len(), "consume beyond buffered look-ahead");
        self.buf.drain(..n);
        self.pos += n as u64;
    }

    fn peek_u32(&self, off: usize) -> u32 {
        let mut b = [0u8; 4];
        for (i, x) in b.iter_mut().enumerate() {
            *x = self.buf[off + i];
        }
        u32::from_le_bytes(b)
    }

    fn peek_u64(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        for (i, x) in b.iter_mut().enumerate() {
            *x = self.buf[off + i];
        }
        u64::from_le_bytes(b)
    }

    // -- frame parsing ------------------------------------------------

    /// Loads and verifies the next chunk; `false` at the (verified)
    /// trailer. Peeks via `buf` and consumes bytes only when the whole
    /// frame verifies, so on `Err` the stream still holds the failed
    /// frame's bytes and recovery can rescan them.
    fn load_next_frame_strict(&mut self) -> Result<bool, TraceFileError> {
        let chunk_offset = self.pos;
        if self.fill(1)? < 1 {
            return Err(TraceFileError::Truncated { offset: self.pos });
        }
        match self.buf[0] {
            CHUNK_MARKER => {
                let avail = self.fill(13)?;
                if avail < 13 {
                    return Err(TraceFileError::Truncated {
                        offset: self.pos + avail as u64,
                    });
                }
                let plen = self.peek_u32(1);
                let nrecords = self.peek_u32(5);
                if plen > MAX_CHUNK_PAYLOAD
                    || nrecords > MAX_CHUNK_RECORDS
                    || (nrecords == 0) != (plen == 0)
                    // Every record costs at least a tag byte.
                    || (nrecords as u64) > (plen as u64)
                {
                    return Err(TraceFileError::BadStructure { offset: chunk_offset });
                }
                let crc = self.peek_u32(9);
                let frame_len = 13 + plen as usize;
                let avail = self.fill(frame_len)?;
                if avail < frame_len {
                    return Err(TraceFileError::Truncated {
                        offset: self.pos + avail as u64,
                    });
                }
                self.payload.clear();
                self.payload.extend(self.buf.iter().skip(13).take(plen as usize));
                if crc32(&self.payload) != crc {
                    return Err(TraceFileError::ChecksumMismatch { chunk_offset });
                }
                // The old chunk is fully drained (loop invariant), so
                // decoding into it is safe — but a failed decode may
                // leave partial records behind, which must not be
                // served as real ones.
                self.chunk.clear();
                self.chunk_pos = 0;
                if let Err(error) = ChunkDecoder::new(&self.payload)
                    .decode_all(nrecords as usize, &mut self.chunk)
                {
                    self.chunk.clear();
                    return Err(TraceFileError::Corrupt { chunk_offset, error });
                }
                self.consume(frame_len);
                self.total_seen += nrecords as u64;
                Ok(true)
            }
            INDEX_MARKER => {
                // Chunk-offset index frame (version 2+): advisory for a
                // sequential read — seekable consumers parse it through
                // [`ChunkIndex::from_bytes`] instead. Verify and skip.
                if self.version < 2 {
                    return Err(TraceFileError::BadStructure { offset: chunk_offset });
                }
                let avail = self.fill(13)?;
                if avail < 13 {
                    return Err(TraceFileError::Truncated {
                        offset: self.pos + avail as u64,
                    });
                }
                let plen = self.peek_u32(1);
                let nchunks = self.peek_u32(5);
                if plen > MAX_CHUNK_PAYLOAD
                    || u64::from(nchunks) * INDEX_ENTRY_BYTES as u64 != u64::from(plen)
                {
                    return Err(TraceFileError::BadStructure { offset: chunk_offset });
                }
                let crc = self.peek_u32(9);
                let frame_len = 13 + plen as usize;
                let avail = self.fill(frame_len)?;
                if avail < frame_len {
                    return Err(TraceFileError::Truncated {
                        offset: self.pos + avail as u64,
                    });
                }
                self.payload.clear();
                self.payload.extend(self.buf.iter().skip(13).take(plen as usize));
                if crc32(&self.payload) != crc {
                    return Err(TraceFileError::ChecksumMismatch { chunk_offset });
                }
                self.consume(frame_len);
                // No records loaded; the caller's drain loop advances to
                // the trailer.
                Ok(true)
            }
            END_MARKER => {
                let tlen = self.trailer_len();
                let avail = self.fill(tlen)?;
                if avail < tlen {
                    return Err(TraceFileError::Truncated {
                        offset: self.pos + avail as u64,
                    });
                }
                let count = self.peek_u64(1);
                let crc = self.peek_u32(tlen - 4);
                let mut crc_input = [0u8; 16];
                for (i, x) in crc_input[..tlen - 5].iter_mut().enumerate() {
                    *x = self.buf[1 + i];
                }
                if crc32(&crc_input[..tlen - 5]) != crc {
                    return Err(TraceFileError::ChecksumMismatch { chunk_offset });
                }
                if count != self.total_seen {
                    return Err(TraceFileError::CountMismatch {
                        expected: count,
                        found: self.total_seen,
                    });
                }
                self.consume(tlen);
                self.done = true;
                self.degradation.trailer_verified = true;
                Ok(false)
            }
            _ => Err(TraceFileError::BadStructure { offset: chunk_offset }),
        }
    }

    /// Accepts a structurally-valid trailer whose count disagrees with
    /// the decoded records (recover mode: the normal outcome after
    /// skipping a chunk).
    fn accept_mismatched_trailer(&mut self, trailer_offset: u64, expected: u64) {
        let tlen = self.trailer_len();
        self.consume(tlen);
        self.done = true;
        if expected >= self.total_seen {
            // Trailer is authoritative: it was CRC-verified and counts
            // at least as many records as survived.
            self.degradation.trailer_verified = true;
            self.degradation.records_lost = expected - self.total_seen;
            if self.degradation.chunks_skipped == 0 {
                // No chunk fault explains the gap (e.g. a whole chunk
                // was cleanly excised): account it explicitly.
                self.degradation.faults.push(SkippedChunk {
                    offset: trailer_offset,
                    resumed_at: None,
                    error: TraceFileError::CountMismatch {
                        expected,
                        found: self.total_seen,
                    },
                });
            }
        } else {
            // The trailer claims *fewer* records than actually decoded:
            // the count field itself is damaged. Fall back to the
            // per-chunk claimed counts.
            self.degradation.trailer_verified = false;
            self.degradation.records_lost = self.claimed_lost;
            self.degradation.faults.push(SkippedChunk {
                offset: trailer_offset,
                resumed_at: None,
                error: TraceFileError::CountMismatch {
                    expected,
                    found: self.total_seen,
                },
            });
        }
    }

    /// Ends a recovering read at a damaged tail (end-of-stream before a
    /// verified trailer).
    fn end_at_truncated_tail(&mut self) {
        self.done = true;
        self.degradation.truncated_tail = true;
        self.degradation.records_lost = self.claimed_lost;
    }

    /// Loads the next chunk, recovering from faults in recover mode.
    fn load_next_chunk(&mut self) -> Result<bool, TraceFileError> {
        debug_assert!(self.chunk_pos >= self.chunk.len());
        if !self.recover {
            return self.load_next_frame_strict();
        }
        let fault_offset = self.pos;
        let first_err = match self.load_next_frame_strict() {
            Ok(r) => return Ok(r),
            Err(e @ TraceFileError::Io(_)) => return Err(e),
            Err(TraceFileError::CountMismatch { expected, .. }) => {
                self.accept_mismatched_trailer(fault_offset, expected);
                return Ok(false);
            }
            Err(e) => e,
        };
        // Records the failed frame claimed to hold, when its header was
        // still parseable (checksum/decode faults leave it intact).
        let claimed = match first_err {
            TraceFileError::ChecksumMismatch { .. } | TraceFileError::Corrupt { .. }
                if self.buf.len() >= 13 && self.buf[0] == CHUNK_MARKER =>
            {
                self.peek_u32(5) as u64
            }
            _ => 0,
        };
        if matches!(first_err, TraceFileError::Truncated { .. }) && self.buf.is_empty() {
            // Clean end-of-stream at a frame boundary: a missing
            // trailer, not a skippable frame.
            self.degradation.faults.push(SkippedChunk {
                offset: fault_offset,
                resumed_at: None,
                error: first_err,
            });
            self.end_at_truncated_tail();
            return Ok(false);
        }
        // Skip the failed frame's first byte and scan forward for the
        // next offset at which a complete frame parses and verifies.
        self.consume(1);
        loop {
            if self.fill(1)? == 0 {
                self.degradation.chunks_skipped += 1;
                self.claimed_lost += claimed;
                self.degradation.bytes_skipped += self.pos - fault_offset;
                self.degradation.faults.push(SkippedChunk {
                    offset: fault_offset,
                    resumed_at: None,
                    error: first_err,
                });
                self.end_at_truncated_tail();
                return Ok(false);
            }
            let b = self.buf[0];
            if b != CHUNK_MARKER && b != END_MARKER && b != INDEX_MARKER {
                self.consume(1);
                continue;
            }
            let resume = self.pos;
            match self.load_next_frame_strict() {
                Ok(r) => {
                    self.degradation.chunks_skipped += 1;
                    self.claimed_lost += claimed;
                    self.degradation.bytes_skipped += resume - fault_offset;
                    self.degradation.faults.push(SkippedChunk {
                        offset: fault_offset,
                        resumed_at: Some(resume),
                        error: first_err,
                    });
                    return Ok(r);
                }
                Err(e @ TraceFileError::Io(_)) => return Err(e),
                Err(TraceFileError::CountMismatch { expected, .. }) => {
                    self.degradation.chunks_skipped += 1;
                    self.claimed_lost += claimed;
                    self.degradation.bytes_skipped += resume - fault_offset;
                    self.degradation.faults.push(SkippedChunk {
                        offset: fault_offset,
                        resumed_at: Some(resume),
                        error: first_err,
                    });
                    self.accept_mismatched_trailer(resume, expected);
                    return Ok(false);
                }
                // False synchronization point: keep scanning.
                Err(_) => self.consume(1),
            }
        }
    }

    /// The next record, or `None` at the verified end of the trace.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceFileError> {
        while self.chunk_pos >= self.chunk.len() {
            if self.done || !self.load_next_chunk()? {
                return Ok(None);
            }
        }
        let r = self.chunk[self.chunk_pos];
        self.chunk_pos += 1;
        Ok(Some(r))
    }

    /// Appends up to `n` records to `buf`, returning how many were
    /// appended (fewer only at the verified end of the trace).
    pub fn next_records_into(
        &mut self,
        buf: &mut Vec<TraceRecord>,
        n: usize,
    ) -> Result<usize, TraceFileError> {
        let mut appended = 0;
        while appended < n {
            if self.chunk_pos >= self.chunk.len() {
                if self.done || !self.load_next_chunk()? {
                    break;
                }
                continue;
            }
            let take = (self.chunk.len() - self.chunk_pos).min(n - appended);
            buf.extend_from_slice(&self.chunk[self.chunk_pos..self.chunk_pos + take]);
            self.chunk_pos += take;
            appended += take;
        }
        Ok(appended)
    }

    /// Reads and validates the whole remaining trace.
    pub fn read_all(&mut self) -> Result<Vec<TraceRecord>, TraceFileError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceFileError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

fn read_exact_at<R: Read>(r: &mut R, buf: &mut [u8], pos: &mut u64) -> Result<(), TraceFileError> {
    match r.read_exact(buf) {
        Ok(()) => {
            *pos += buf.len() as u64;
            Ok(())
        }
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            Err(TraceFileError::Truncated { offset: *pos })
        }
        Err(e) => Err(e.into()),
    }
}

fn read_u16<R: Read>(r: &mut R, pos: &mut u64) -> Result<u16, TraceFileError> {
    let mut b = [0u8; 2];
    read_exact_at(r, &mut b, pos)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R, pos: &mut u64) -> Result<u32, TraceFileError> {
    let mut b = [0u8; 4];
    read_exact_at(r, &mut b, pos)?;
    Ok(u32::from_le_bytes(b))
}

// ---------------------------------------------------------------------
// Convenience one-shot APIs
// ---------------------------------------------------------------------

/// Encodes a whole trace into a `.fadet` byte buffer.
pub fn encode_trace(meta: &TraceMeta, records: &[TraceRecord]) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new(), meta).expect("Vec<u8> writes are infallible");
    w.write_all(records).expect("Vec<u8> writes are infallible");
    w.finish().expect("Vec<u8> writes are infallible")
}

/// Decodes and fully validates a `.fadet` byte buffer.
pub fn decode_trace(bytes: &[u8]) -> Result<(TraceMeta, Vec<TraceRecord>), TraceFileError> {
    let mut r = TraceReader::new(bytes)?;
    let records = r.read_all()?;
    Ok((r.meta.clone(), records))
}

/// Decodes a `.fadet` byte buffer in recover mode: surviving records
/// plus the [`DegradationReport`] accounting whatever was skipped.
/// Header faults and I/O errors still fail (see
/// [`TraceReader::with_recovery`]).
pub fn decode_trace_recovering(
    bytes: &[u8],
) -> Result<(TraceMeta, Vec<TraceRecord>, DegradationReport), TraceFileError> {
    let mut r = TraceReader::new(bytes)?.with_recovery();
    let records = r.read_all()?;
    let report = r.degradation().cloned().unwrap_or_default();
    Ok((r.meta.clone(), records, report))
}

/// Writes a whole trace to a file.
pub fn write_trace_file(
    path: impl AsRef<Path>,
    meta: &TraceMeta,
    records: &[TraceRecord],
) -> Result<(), TraceFileError> {
    let f = std::fs::File::create(path)?;
    let mut w = TraceWriter::new(io::BufWriter::new(f), meta)?;
    w.write_all(records)?;
    w.finish()?.flush()?;
    Ok(())
}

/// Reads and fully validates a trace file.
pub fn read_trace_file(
    path: impl AsRef<Path>,
) -> Result<(TraceMeta, Vec<TraceRecord>), TraceFileError> {
    let mut r = TraceReader::open(path)?;
    let records = r.read_all()?;
    Ok((r.meta.clone(), records))
}

// ---------------------------------------------------------------------
// Seekable chunk index
// ---------------------------------------------------------------------

/// One chunk's position in a `.fadet` buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkIndexEntry {
    /// File offset of the chunk's marker byte.
    pub offset: u64,
    /// Records the chunk holds.
    pub records: u32,
}

/// A contiguous run of chunks assigned to one replay epoch (see
/// [`ChunkIndex::split_epochs`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochSpan {
    /// First chunk in the span (index into [`ChunkIndex::entries`]).
    pub chunk_start: usize,
    /// One past the last chunk in the span.
    pub chunk_end: usize,
    /// Global index of the span's first record.
    pub record_start: u64,
    /// Records the span holds.
    pub records: u64,
}

/// The chunk-offset map of a `.fadet` buffer: where every chunk lives
/// and how many records it holds, without decoding any payload.
///
/// For version-2 files this is O(index): the trailer's `index_offset`
/// points straight at the index frame. Version-1 files fall back to a
/// forward scan over frame *headers* (still never decoding payloads).
/// Epoch-parallel replay uses this to split one trace into chunk-aligned
/// spans that decode independently — the per-chunk codec-context reset
/// is what makes a mid-file chunk a valid decode entry point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkIndex {
    entries: Vec<ChunkIndexEntry>,
    total_records: u64,
}

impl ChunkIndex {
    /// Builds the index from a complete `.fadet` buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceFileError> {
        if bytes.len() < 12 {
            return Err(TraceFileError::BadMagic);
        }
        if &bytes[..8] != FILE_MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version > FORMAT_VERSION || version == 0 {
            return Err(TraceFileError::UnsupportedVersion { found: version });
        }
        if version < 2 {
            return Self::scan(bytes);
        }
        if bytes.len() < TRAILER_V2 {
            return Err(TraceFileError::Truncated {
                offset: bytes.len() as u64,
            });
        }
        let t = bytes.len() - TRAILER_V2;
        if bytes[t] != END_MARKER {
            return Err(TraceFileError::BadStructure { offset: t as u64 });
        }
        let crc = u32_at(bytes, t + 17);
        if crc32(&bytes[t + 1..t + 17]) != crc {
            return Err(TraceFileError::ChecksumMismatch {
                chunk_offset: t as u64,
            });
        }
        let total_records = u64_at(bytes, t + 1);
        let index_offset = u64_at(bytes, t + 9);
        let io_ = usize::try_from(index_offset)
            .map_err(|_| TraceFileError::BadStructure { offset: index_offset })?;
        if io_ + 13 > t || bytes[io_] != INDEX_MARKER {
            return Err(TraceFileError::BadStructure { offset: index_offset });
        }
        let plen = u32_at(bytes, io_ + 1);
        let nchunks = u32_at(bytes, io_ + 5);
        if plen > MAX_CHUNK_PAYLOAD
            || u64::from(nchunks) * INDEX_ENTRY_BYTES as u64 != u64::from(plen)
            || io_ + 13 + plen as usize > t
        {
            return Err(TraceFileError::BadStructure { offset: index_offset });
        }
        let icrc = u32_at(bytes, io_ + 9);
        let payload = &bytes[io_ + 13..io_ + 13 + plen as usize];
        if crc32(payload) != icrc {
            return Err(TraceFileError::ChecksumMismatch {
                chunk_offset: index_offset,
            });
        }
        let entries: Vec<ChunkIndexEntry> = payload
            .chunks_exact(INDEX_ENTRY_BYTES)
            .map(|e| ChunkIndexEntry {
                offset: u64_at(e, 0),
                records: u32_at(e, 8),
            })
            .collect();
        let summed: u64 = entries.iter().map(|e| u64::from(e.records)).sum();
        if summed != total_records {
            return Err(TraceFileError::CountMismatch {
                expected: total_records,
                found: summed,
            });
        }
        Ok(ChunkIndex {
            entries,
            total_records,
        })
    }

    /// Version-1 fallback: walk frame headers front to back.
    fn scan(bytes: &[u8]) -> Result<Self, TraceFileError> {
        if bytes.len() < 12 {
            return Err(TraceFileError::BadHeader);
        }
        let hlen = u16::from_le_bytes([bytes[10], bytes[11]]) as usize;
        let mut at = 12 + hlen + 4;
        if at > bytes.len() {
            return Err(TraceFileError::Truncated {
                offset: bytes.len() as u64,
            });
        }
        let mut entries = Vec::new();
        loop {
            if at >= bytes.len() {
                return Err(TraceFileError::Truncated { offset: at as u64 });
            }
            match bytes[at] {
                CHUNK_MARKER => {
                    if at + 13 > bytes.len() {
                        return Err(TraceFileError::Truncated {
                            offset: bytes.len() as u64,
                        });
                    }
                    let plen = u32_at(bytes, at + 1);
                    let records = u32_at(bytes, at + 5);
                    if plen > MAX_CHUNK_PAYLOAD || records > MAX_CHUNK_RECORDS {
                        return Err(TraceFileError::BadStructure { offset: at as u64 });
                    }
                    entries.push(ChunkIndexEntry {
                        offset: at as u64,
                        records,
                    });
                    at += 13 + plen as usize;
                }
                END_MARKER => {
                    if at + TRAILER_V1 > bytes.len() {
                        return Err(TraceFileError::Truncated {
                            offset: bytes.len() as u64,
                        });
                    }
                    let total_records = u64_at(bytes, at + 1);
                    let crc = u32_at(bytes, at + 9);
                    if crc32(&bytes[at + 1..at + 9]) != crc {
                        return Err(TraceFileError::ChecksumMismatch {
                            chunk_offset: at as u64,
                        });
                    }
                    let summed: u64 = entries.iter().map(|e| u64::from(e.records)).sum();
                    if summed != total_records {
                        return Err(TraceFileError::CountMismatch {
                            expected: total_records,
                            found: summed,
                        });
                    }
                    return Ok(ChunkIndex {
                        entries,
                        total_records,
                    });
                }
                _ => return Err(TraceFileError::BadStructure { offset: at as u64 }),
            }
        }
    }

    /// Per-chunk (offset, record count) entries, in file order.
    pub fn entries(&self) -> &[ChunkIndexEntry] {
        &self.entries
    }

    /// Total records the trailer promises.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Partitions the trace into at most `epochs` contiguous
    /// chunk-aligned spans.
    ///
    /// The partition is a pure function of the index and `epochs` —
    /// never of worker count or timing — so epoch boundaries (and with
    /// them every epoch-parallel replay result) are deterministic.
    /// Returns fewer spans than requested when there are fewer chunks;
    /// empty spans are never produced.
    pub fn split_epochs(&self, epochs: usize) -> Vec<EpochSpan> {
        let n = self.entries.len();
        let epochs = epochs.max(1).min(n.max(1));
        if n == 0 {
            return Vec::new();
        }
        let mut spans = Vec::with_capacity(epochs);
        let mut record_start = 0u64;
        for e in 0..epochs {
            let chunk_start = e * n / epochs;
            let chunk_end = (e + 1) * n / epochs;
            let records: u64 = self.entries[chunk_start..chunk_end]
                .iter()
                .map(|c| u64::from(c.records))
                .sum();
            spans.push(EpochSpan {
                chunk_start,
                chunk_end,
                record_start,
                records,
            });
            record_start += records;
        }
        spans
    }

    /// Decodes one span's records straight from `bytes`, seeking to each
    /// chunk by its indexed offset (payload CRCs still verified).
    pub fn read_span(
        &self,
        bytes: &[u8],
        span: &EpochSpan,
    ) -> Result<Vec<TraceRecord>, TraceFileError> {
        let mut out = Vec::with_capacity(span.records as usize);
        for entry in &self.entries[span.chunk_start..span.chunk_end] {
            let at = usize::try_from(entry.offset)
                .map_err(|_| TraceFileError::BadStructure { offset: entry.offset })?;
            if at + 13 > bytes.len() || bytes[at] != CHUNK_MARKER {
                return Err(TraceFileError::BadStructure { offset: entry.offset });
            }
            let plen = u32_at(bytes, at + 1) as usize;
            let nrecords = u32_at(bytes, at + 5);
            let crc = u32_at(bytes, at + 9);
            if nrecords != entry.records || at + 13 + plen > bytes.len() {
                return Err(TraceFileError::BadStructure { offset: entry.offset });
            }
            let payload = &bytes[at + 13..at + 13 + plen];
            if crc32(payload) != crc {
                return Err(TraceFileError::ChecksumMismatch {
                    chunk_offset: entry.offset,
                });
            }
            ChunkDecoder::new(payload)
                .decode_all(nrecords as usize, &mut out)
                .map_err(|error| TraceFileError::Corrupt {
                    chunk_offset: entry.offset,
                    error,
                })?;
        }
        Ok(out)
    }
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(b)
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::program::SyntheticProgram;

    fn sample(name: &str, seed: u64, n: usize) -> Vec<TraceRecord> {
        let p = bench::by_name(name).unwrap();
        let mut prog = SyntheticProgram::new(&p, seed);
        (0..n).map(|_| prog.next_record()).collect()
    }

    fn meta() -> TraceMeta {
        TraceMeta::new("gcc", 42)
    }

    #[test]
    fn round_trips_across_chunk_boundaries() {
        let records = sample("gcc", 42, 10_000);
        for chunk_records in [1usize, 3, 100, 4096, 100_000] {
            let mut w = TraceWriter::new(Vec::new(), &meta())
                .unwrap()
                .with_chunk_records(chunk_records);
            w.write_all(&records).unwrap();
            let bytes = w.finish().unwrap();
            let (m, back) = decode_trace(&bytes).unwrap();
            assert_eq!(m, meta());
            assert_eq!(back, records, "chunk size {chunk_records}");
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode_trace(&meta(), &[]);
        let (m, back) = decode_trace(&bytes).unwrap();
        assert_eq!(m, meta());
        assert!(back.is_empty());
    }

    #[test]
    fn streaming_reader_matches_one_shot() {
        let records = sample("water", 1, 5_000);
        let bytes = encode_trace(&meta(), &records);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let mut buf = Vec::new();
        // Odd-sized pulls deliberately straddle chunk boundaries.
        while reader.next_records_into(&mut buf, 777).unwrap() > 0 {}
        assert_eq!(buf, records);
        assert!(reader.is_done());
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(decode_trace(b"").unwrap_err(), TraceFileError::BadMagic);
        assert_eq!(
            decode_trace(b"NOTATRCE\x01\x00").unwrap_err(),
            TraceFileError::BadMagic
        );
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode_trace(&meta(), &[]);
        bytes[8] = 9; // version low byte
        assert_eq!(
            decode_trace(&bytes).unwrap_err(),
            TraceFileError::UnsupportedVersion { found: 9 }
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let records = sample("gcc", 42, 300);
        let bytes = encode_trace(&meta(), &records);
        for cut in 0..bytes.len() {
            let err = decode_trace(&bytes[..cut]).unwrap_err();
            // Any strict prefix must fail (the trailer is mandatory),
            // and must fail with a typed error, not a panic.
            match err {
                TraceFileError::BadMagic
                | TraceFileError::BadHeader
                | TraceFileError::Truncated { .. } => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn payload_corruption_names_the_chunk_offset() {
        let records = sample("gcc", 42, 3000);
        let mut w = TraceWriter::new(Vec::new(), &meta())
            .unwrap()
            .with_chunk_records(1000);
        w.write_all(&records).unwrap();
        let bytes = w.finish().unwrap();
        // Locate the second chunk: header, then chunk 1.
        let header_len = 8 + 2 + 2 + (1 + 3 + 8) + 4;
        let c1_plen = u32::from_le_bytes(bytes[header_len + 1..header_len + 5].try_into().unwrap());
        let c2_offset = header_len + 13 + c1_plen as usize;
        assert_eq!(bytes[c2_offset], CHUNK_MARKER);
        // Flip a byte in the middle of the second chunk's payload.
        let mut corrupted = bytes.clone();
        corrupted[c2_offset + 13 + 40] ^= 0x40;
        assert_eq!(
            decode_trace(&corrupted).unwrap_err(),
            TraceFileError::ChecksumMismatch {
                chunk_offset: c2_offset as u64
            }
        );
    }

    #[test]
    fn trailer_count_mismatch_is_detected() {
        let records = sample("gcc", 42, 100);
        let mut bytes = encode_trace(&meta(), &records);
        // Rewrite the trailer with a wrong count (and matching CRC, so
        // only the cross-check can catch it).
        let n = bytes.len();
        let wrong = 99u64.to_le_bytes();
        bytes[n - 20..n - 12].copy_from_slice(&wrong);
        let tail: [u8; 16] = bytes[n - 20..n - 4].try_into().unwrap();
        bytes[n - 4..].copy_from_slice(&crc32(&tail).to_le_bytes());
        assert_eq!(
            decode_trace(&bytes).unwrap_err(),
            TraceFileError::CountMismatch {
                expected: 99,
                found: 100
            }
        );
    }

    #[test]
    fn oversized_length_fields_do_not_allocate() {
        let mut bytes = encode_trace(&meta(), &sample("gcc", 42, 50)[..]);
        let header_len = 8 + 2 + 2 + (1 + 3 + 8) + 4;
        // Claim a 4 GiB payload.
        bytes[header_len + 1..header_len + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_trace(&bytes).unwrap_err(),
            TraceFileError::BadStructure {
                offset: header_len as u64
            }
        );
    }

    #[test]
    fn file_round_trip_on_disk() {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file_round_trip.fadet");
        let records = sample("mcf", 9, 4_000);
        let m = TraceMeta::new("mcf", 9);
        write_trace_file(&path, &m, &records).unwrap();
        let (m2, back) = read_trace_file(&path).unwrap();
        assert_eq!(m2, m);
        assert_eq!(back, records);
    }

    /// Encodes with small chunks and returns (bytes, per-chunk record
    /// ranges, chunk marker offsets).
    fn chunked(records: &[TraceRecord], per_chunk: usize) -> (Vec<u8>, Vec<usize>) {
        let mut w = TraceWriter::new(Vec::new(), &meta())
            .unwrap()
            .with_chunk_records(per_chunk);
        w.write_all(records).unwrap();
        let bytes = w.finish().unwrap();
        // Walk the frame structure to find each chunk's marker offset.
        let header_len = 8 + 2 + 2 + (1 + meta().bench.len() + 8) + 4;
        let mut offsets = Vec::new();
        let mut at = header_len;
        while bytes[at] == CHUNK_MARKER {
            offsets.push(at);
            let plen = u32::from_le_bytes(bytes[at + 1..at + 5].try_into().unwrap());
            at += 13 + plen as usize;
        }
        (bytes, offsets)
    }

    #[test]
    fn recovery_is_bit_exact_without_faults() {
        let records = sample("gcc", 42, 5_000);
        let bytes = encode_trace(&meta(), &records);
        let (m, back, report) = decode_trace_recovering(&bytes).unwrap();
        assert_eq!(m, meta());
        assert_eq!(back, records);
        assert!(report.is_clean(), "{report:?}");
        assert!(report.trailer_verified);
    }

    #[test]
    fn recovery_skips_a_corrupt_chunk_and_accounts_for_it() {
        let records = sample("gcc", 42, 3_000);
        let (mut bytes, offsets) = chunked(&records, 1000);
        assert_eq!(offsets.len(), 3);
        // Flip a payload byte in the middle chunk.
        bytes[offsets[1] + 13 + 40] ^= 0x40;
        let (_, back, report) = decode_trace_recovering(&bytes).unwrap();
        let mut expect = records[..1000].to_vec();
        expect.extend_from_slice(&records[2000..]);
        assert_eq!(back, expect);
        assert_eq!(report.chunks_skipped, 1);
        assert_eq!(report.records_lost, 1000);
        assert!(report.trailer_verified);
        assert!(!report.truncated_tail);
        assert_eq!(report.faults.len(), 1);
        assert_eq!(report.faults[0].offset, offsets[1] as u64);
        assert_eq!(report.faults[0].resumed_at, Some(offsets[2] as u64));
        assert_eq!(
            report.faults[0].error,
            TraceFileError::ChecksumMismatch {
                chunk_offset: offsets[1] as u64
            }
        );
        assert_eq!(
            report.bytes_skipped,
            (offsets[2] - offsets[1]) as u64,
            "skipped exactly the failed frame"
        );
    }

    #[test]
    fn recovery_survives_truncation_mid_chunk() {
        let records = sample("gcc", 42, 3_000);
        let (bytes, offsets) = chunked(&records, 1000);
        // Cut inside the last chunk's payload.
        let cut = offsets[2] + 20;
        let (_, back, report) = decode_trace_recovering(&bytes[..cut]).unwrap();
        assert_eq!(back, records[..2000]);
        assert!(report.truncated_tail);
        assert!(!report.trailer_verified);
        assert_eq!(report.chunks_skipped, 1);
        // The trailer is gone, so the loss estimate comes from the
        // truncated chunk's (unreadable) header: best-effort zero here,
        // but the truncation itself is accounted.
        assert_eq!(report.faults.len(), 1);
        assert_eq!(report.faults[0].offset, offsets[2] as u64);
        assert_eq!(report.faults[0].resumed_at, None);
    }

    #[test]
    fn recovery_survives_a_missing_trailer() {
        let records = sample("gcc", 42, 500);
        let (bytes, offsets) = chunked(&records, 1000);
        let plen = u32::from_le_bytes(bytes[offsets[0] + 1..offsets[0] + 5].try_into().unwrap());
        let trailer_at = offsets[0] + 13 + plen as usize;
        let (_, back, report) = decode_trace_recovering(&bytes[..trailer_at]).unwrap();
        assert_eq!(back, records);
        assert!(report.truncated_tail);
        assert_eq!(report.chunks_skipped, 0);
        assert_eq!(report.records_lost, 0);
        assert_eq!(report.faults.len(), 1);
        assert_eq!(report.faults[0].resumed_at, None);
    }

    #[test]
    fn recovery_accounts_an_excised_chunk_via_the_trailer() {
        let records = sample("gcc", 42, 3_000);
        let (bytes, offsets) = chunked(&records, 1000);
        // Cleanly splice out the middle chunk: every CRC still passes,
        // only the trailer count can catch it.
        let mut spliced = bytes[..offsets[1]].to_vec();
        spliced.extend_from_slice(&bytes[offsets[2]..]);
        let (_, back, report) = decode_trace_recovering(&spliced).unwrap();
        let mut expect = records[..1000].to_vec();
        expect.extend_from_slice(&records[2000..]);
        assert_eq!(back, expect);
        assert_eq!(report.chunks_skipped, 0);
        assert_eq!(report.records_lost, 1000);
        assert!(report.trailer_verified);
        assert!(matches!(
            report.faults[0].error,
            TraceFileError::CountMismatch {
                expected: 3000,
                found: 2000
            }
        ));
    }

    #[test]
    fn recovery_resyncs_past_garbage_between_chunks() {
        let records = sample("gcc", 42, 2_000);
        let (bytes, offsets) = chunked(&records, 1000);
        // Inject 37 garbage bytes between the two chunks.
        let mut noisy = bytes[..offsets[1]].to_vec();
        noisy.extend((0u8..37).map(|i| i.wrapping_mul(0xA5) | 0x02));
        noisy.extend_from_slice(&bytes[offsets[1]..]);
        let (_, back, report) = decode_trace_recovering(&noisy).unwrap();
        assert_eq!(back, records, "no record lost to inter-chunk garbage");
        assert_eq!(report.chunks_skipped, 1);
        assert_eq!(report.records_lost, 0);
        assert_eq!(report.bytes_skipped, 37);
        assert!(report.trailer_verified);
    }

    #[test]
    fn strict_mode_still_fails_fast() {
        let records = sample("gcc", 42, 3_000);
        let (mut bytes, offsets) = chunked(&records, 1000);
        bytes[offsets[1] + 13 + 40] ^= 0x40;
        assert!(decode_trace(&bytes).is_err());
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        assert!(r.degradation().is_none(), "strict mode has no report");
        assert!(r.read_all().is_err());
    }

    /// Strips the version-2 index frame and rewrites the short trailer,
    /// producing the byte-exact version-1 encoding of the same records.
    fn downgrade_to_v1(bytes: &[u8]) -> Vec<u8> {
        let n = bytes.len();
        let index_offset = u64::from_le_bytes(bytes[n - 12..n - 4].try_into().unwrap()) as usize;
        let total = &bytes[n - 20..n - 12];
        let mut v1 = bytes[..index_offset].to_vec();
        v1.push(END_MARKER);
        v1.extend_from_slice(total);
        v1.extend_from_slice(&crc32(total).to_le_bytes());
        v1[8..10].copy_from_slice(&1u16.to_le_bytes());
        v1
    }

    #[test]
    fn chunk_index_round_trips_and_seeks() {
        let records = sample("gcc", 42, 3_000);
        let (bytes, offsets) = chunked(&records, 1000);
        let idx = ChunkIndex::from_bytes(&bytes).unwrap();
        assert_eq!(idx.total_records(), 3000);
        assert_eq!(
            idx.entries()
                .iter()
                .map(|e| (e.offset as usize, e.records))
                .collect::<Vec<_>>(),
            offsets.iter().map(|&o| (o, 1000)).collect::<Vec<_>>()
        );
        // Each span decodes independently and concatenates to the trace.
        for epochs in [1usize, 2, 3, 7] {
            let spans = idx.split_epochs(epochs);
            assert_eq!(spans.len(), epochs.min(3));
            let mut all = Vec::new();
            for s in &spans {
                assert_eq!(s.record_start, all.len() as u64);
                let part = idx.read_span(&bytes, s).unwrap();
                assert_eq!(part.len() as u64, s.records);
                all.extend(part);
            }
            assert_eq!(all, records, "epochs {epochs}");
        }
    }

    #[test]
    fn chunk_index_of_empty_trace_is_empty() {
        let bytes = encode_trace(&meta(), &[]);
        let idx = ChunkIndex::from_bytes(&bytes).unwrap();
        assert!(idx.entries().is_empty());
        assert_eq!(idx.total_records(), 0);
        assert!(idx.split_epochs(4).is_empty());
    }

    #[test]
    fn version1_files_still_read_through_both_paths() {
        let records = sample("gcc", 42, 3_000);
        let (bytes, offsets) = chunked(&records, 1000);
        let v1 = downgrade_to_v1(&bytes);
        assert!(v1.len() < bytes.len(), "v1 drops the index frame");
        let mut r = TraceReader::new(&v1[..]).unwrap();
        assert_eq!(r.format_version(), 1);
        assert_eq!(r.read_all().unwrap(), records);
        // Recover mode too: the short trailer must be consumed whole.
        let (_, back, report) = decode_trace_recovering(&v1).unwrap();
        assert_eq!(back, records);
        assert!(report.is_clean(), "{report:?}");
        // The index fallback scans frame headers to the same entries.
        let idx = ChunkIndex::from_bytes(&v1).unwrap();
        assert_eq!(
            idx.entries()
                .iter()
                .map(|e| (e.offset as usize, e.records))
                .collect::<Vec<_>>(),
            offsets.iter().map(|&o| (o, 1000)).collect::<Vec<_>>()
        );
        let spans = idx.split_epochs(1);
        assert_eq!(idx.read_span(&v1, &spans[0]).unwrap(), records);
    }

    #[test]
    fn chunk_index_rejects_corruption_with_typed_errors() {
        let records = sample("gcc", 42, 2_000);
        let bytes = encode_trace(&meta(), &records);
        let n = bytes.len();
        let index_offset =
            u64::from_le_bytes(bytes[n - 12..n - 4].try_into().unwrap()) as usize;
        // Flip a byte inside the index payload: checksum catches it.
        let mut corrupt = bytes.clone();
        corrupt[index_offset + 13] ^= 0x01;
        assert_eq!(
            ChunkIndex::from_bytes(&corrupt).unwrap_err(),
            TraceFileError::ChecksumMismatch {
                chunk_offset: index_offset as u64
            }
        );
        // Every truncated tail fails with a typed error, never a panic.
        for cut in n.saturating_sub(TRAILER_V2 + 13 + 24)..n {
            assert!(
                ChunkIndex::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must not produce an index"
            );
        }
        // A sequential read also verifies the index frame it skips.
        assert_eq!(
            decode_trace(&corrupt).unwrap_err(),
            TraceFileError::ChecksumMismatch {
                chunk_offset: index_offset as u64
            }
        );
    }

    #[test]
    fn compression_beats_raw_memory_by_3x() {
        let records = sample("gcc", 42, 50_000);
        let bytes = encode_trace(&meta(), &records);
        let raw = records.len() * std::mem::size_of::<TraceRecord>();
        assert!(
            raw as f64 >= 3.0 * bytes.len() as f64,
            "encoded {} bytes vs {} raw ({}x)",
            bytes.len(),
            raw,
            raw as f64 / bytes.len() as f64
        );
    }
}
