//! The `.fadet` recorded-trace file format.
//!
//! A versioned, chunked, checksummed container around the
//! [`crate::codec`] record encoding — the interchange point between
//! trace capture and analysis. A recorded trace freezes a workload
//! independently of future generator/profile changes, makes any real
//! workload "a file we replay", and gives tests byte-stable fixtures.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! file    := header chunk* trailer
//! header  := magic[8]="FADETRCF"  version:u16  hlen:u16
//!            hpayload[hlen]  crc32(hpayload):u32
//! hpayload:= name_len:u8  bench_name[name_len]  seed:u64
//! chunk   := 0x01  plen:u32  nrecords:u32  crc32(payload):u32
//!            payload[plen]            (codec context resets per chunk)
//! trailer := 0x00  total_records:u64  crc32(total_records):u32
//! ```
//!
//! Unknown trailing header-payload bytes are skipped, so minor-version
//! extensions can add metadata without breaking old readers; a major
//! format change bumps `version` and old readers reject it with
//! [`TraceFileError::UnsupportedVersion`].
//!
//! Every failure mode is a typed [`TraceFileError`] naming the file
//! offset of the failing chunk — decoding never panics, whatever the
//! bytes.
//!
//! # Example
//!
//! ```
//! use fade_trace::{bench, SyntheticProgram};
//! use fade_trace::file::{decode_trace, encode_trace, TraceMeta};
//!
//! let p = bench::by_name("mcf").unwrap();
//! let mut prog = SyntheticProgram::new(&p, 7);
//! let records: Vec<_> = (0..1000).map(|_| prog.next_record()).collect();
//! let meta = TraceMeta { bench: "mcf".into(), seed: 7 };
//! let bytes = encode_trace(&meta, &records);
//! let (meta2, records2) = decode_trace(&bytes).unwrap();
//! assert_eq!(meta2, meta);
//! assert_eq!(records2, records);
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use crate::codec::{crc32, encode_record, ChunkDecoder, CodecError, Ctx};
use crate::program::TraceRecord;

/// Magic header of a `.fadet` trace file.
pub const FILE_MAGIC: &[u8; 8] = b"FADETRCF";

/// Current schema version. Readers reject anything newer.
pub const FORMAT_VERSION: u16 = 1;

/// Records per chunk the writer flushes at by default: large enough to
/// amortize per-chunk overhead (13 bytes) to noise, small enough that
/// corruption and resynchronization stay fine-grained.
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;

const CHUNK_MARKER: u8 = 0x01;
const END_MARKER: u8 = 0x00;

/// Upper bound a reader accepts for one chunk payload: a corrupted (or
/// hostile) length field must not drive allocation.
const MAX_CHUNK_PAYLOAD: u32 = 1 << 26;
/// Upper bound a reader accepts for one chunk's record count.
const MAX_CHUNK_RECORDS: u32 = 1 << 24;
/// Upper bound for the bench-name field.
const MAX_NAME_LEN: usize = 255;

/// Profile metadata carried in the file header: enough to rebuild the
/// [`crate::BenchProfile`] context a recorded trace was captured under.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Benchmark profile name (`crate::bench::by_name` key) the trace
    /// was generated from, or a free-form workload label for captured
    /// real-workload traces.
    pub bench: String,
    /// Generator seed (for provenance; replay does not re-generate).
    pub seed: u64,
}

impl TraceMeta {
    /// Metadata for a synthetic workload.
    pub fn new(bench: impl Into<String>, seed: u64) -> Self {
        TraceMeta {
            bench: bench.into(),
            seed,
        }
    }
}

/// An error while reading or decoding a recorded-trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceFileError {
    /// An underlying I/O failure (other than clean truncation).
    Io(String),
    /// The file does not start with [`FILE_MAGIC`].
    BadMagic,
    /// The file's schema version is newer than this reader.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The header payload is malformed or fails its checksum.
    BadHeader,
    /// The stream ended mid-structure.
    Truncated {
        /// File offset at which more bytes were needed.
        offset: u64,
    },
    /// A chunk payload failed its CRC-32 check.
    ChecksumMismatch {
        /// File offset of the failing chunk's marker byte.
        chunk_offset: u64,
    },
    /// A chunk payload passed its checksum but decoded to garbage
    /// (possible only for writer bugs or checksum collisions).
    Corrupt {
        /// File offset of the failing chunk's marker byte.
        chunk_offset: u64,
        /// The codec-level error inside the payload.
        error: CodecError,
    },
    /// The trailer's total record count disagrees with the chunks.
    CountMismatch {
        /// Records the trailer promised.
        expected: u64,
        /// Records the chunks actually held.
        found: u64,
    },
    /// A structural field is out of its sane range (chunk larger than
    /// the maximum chunk payload, oversized name, unknown marker).
    BadStructure {
        /// File offset of the offending field.
        offset: u64,
    },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O error: {e}"),
            TraceFileError::BadMagic => write!(f, "not a FADE trace file (bad magic)"),
            TraceFileError::UnsupportedVersion { found } => write!(
                f,
                "unsupported trace format version {found} (reader supports <= {FORMAT_VERSION})"
            ),
            TraceFileError::BadHeader => write!(f, "malformed trace file header"),
            TraceFileError::Truncated { offset } => {
                write!(f, "trace file truncated at byte offset {offset}")
            }
            TraceFileError::ChecksumMismatch { chunk_offset } => {
                write!(f, "checksum mismatch in chunk at byte offset {chunk_offset}")
            }
            TraceFileError::Corrupt { chunk_offset, error } => {
                write!(f, "corrupt chunk at byte offset {chunk_offset}: {error}")
            }
            TraceFileError::CountMismatch { expected, found } => write!(
                f,
                "record count mismatch: trailer promises {expected}, chunks hold {found}"
            ),
            TraceFileError::BadStructure { offset } => {
                write!(f, "malformed structure at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Streaming `.fadet` writer.
///
/// Records are buffered into chunks of
/// [`TraceWriter::with_chunk_records`] records (default
/// [`DEFAULT_CHUNK_RECORDS`]), each flushed with its own record count
/// and CRC-32; [`TraceWriter::finish`] writes the trailer. Dropping a
/// writer without `finish` leaves a file readers reject as truncated —
/// a half-written capture never masquerades as a complete one.
pub struct TraceWriter<W: Write> {
    w: W,
    ctx: Ctx,
    chunk: Vec<u8>,
    chunk_records: u32,
    chunk_capacity: usize,
    total: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the file header.
    pub fn new(mut w: W, meta: &TraceMeta) -> io::Result<Self> {
        assert!(
            meta.bench.len() <= MAX_NAME_LEN,
            "bench name too long for the trace header"
        );
        let mut hpayload = Vec::with_capacity(1 + meta.bench.len() + 8);
        hpayload.push(meta.bench.len() as u8);
        hpayload.extend_from_slice(meta.bench.as_bytes());
        hpayload.extend_from_slice(&meta.seed.to_le_bytes());
        w.write_all(FILE_MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(hpayload.len() as u16).to_le_bytes())?;
        w.write_all(&hpayload)?;
        w.write_all(&crc32(&hpayload).to_le_bytes())?;
        Ok(TraceWriter {
            w,
            ctx: Ctx::default(),
            chunk: Vec::new(),
            chunk_records: 0,
            chunk_capacity: DEFAULT_CHUNK_RECORDS,
            total: 0,
        })
    }

    /// Sets the records-per-chunk flush threshold (min 1).
    pub fn with_chunk_records(mut self, n: usize) -> Self {
        self.chunk_capacity = n.max(1);
        self
    }

    /// Appends one record.
    pub fn write_record(&mut self, r: &TraceRecord) -> io::Result<()> {
        encode_record(&mut self.ctx, r, &mut self.chunk);
        self.chunk_records += 1;
        self.total += 1;
        if self.chunk_records as usize >= self.chunk_capacity {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends a record slice.
    pub fn write_all(&mut self, records: &[TraceRecord]) -> io::Result<()> {
        for r in records {
            self.write_record(r)?;
        }
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.total
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.chunk_records == 0 {
            return Ok(());
        }
        self.w.write_all(&[CHUNK_MARKER])?;
        self.w.write_all(&(self.chunk.len() as u32).to_le_bytes())?;
        self.w.write_all(&self.chunk_records.to_le_bytes())?;
        self.w.write_all(&crc32(&self.chunk).to_le_bytes())?;
        self.w.write_all(&self.chunk)?;
        self.chunk.clear();
        self.chunk_records = 0;
        // Fresh prediction context per chunk: chunks decode independently.
        self.ctx = Ctx::default();
        Ok(())
    }

    /// Flushes the last chunk, writes the trailer and returns the inner
    /// writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_chunk()?;
        self.w.write_all(&[END_MARKER])?;
        let count = self.total.to_le_bytes();
        self.w.write_all(&count)?;
        self.w.write_all(&crc32(&count).to_le_bytes())?;
        self.w.flush()?;
        Ok(self.w)
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Streaming `.fadet` reader.
///
/// Parses the header eagerly ([`TraceReader::meta`]), then decodes one
/// chunk at a time on demand — a trace never needs to fit in memory
/// twice. Implements `Iterator<Item = Result<TraceRecord, _>>`, and
/// plugs directly into the replay path of
/// `fade_system::MonitoringSystem` through the `TraceSource` trait.
pub struct TraceReader<R: Read> {
    r: R,
    meta: TraceMeta,
    /// File offset of the next unread byte.
    pos: u64,
    chunk: Vec<TraceRecord>,
    chunk_pos: usize,
    payload: Vec<u8>,
    total_seen: u64,
    /// Trailer reached and verified.
    done: bool,
}

impl TraceReader<io::BufReader<std::fs::File>> {
    /// Opens a trace file from disk.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let f = std::fs::File::open(path)?;
        TraceReader::new(io::BufReader::new(f))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps a byte stream, parsing and validating the header.
    pub fn new(mut r: R) -> Result<Self, TraceFileError> {
        let mut pos = 0u64;
        let mut magic = [0u8; 8];
        read_exact_at(&mut r, &mut magic, &mut pos).map_err(|e| match e {
            TraceFileError::Truncated { .. } => TraceFileError::BadMagic,
            other => other,
        })?;
        if &magic != FILE_MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        let version = read_u16(&mut r, &mut pos)?;
        if version > FORMAT_VERSION || version == 0 {
            return Err(TraceFileError::UnsupportedVersion { found: version });
        }
        let hlen = read_u16(&mut r, &mut pos)? as usize;
        let mut hpayload = vec![0u8; hlen];
        read_exact_at(&mut r, &mut hpayload, &mut pos)?;
        let hcrc = read_u32(&mut r, &mut pos)?;
        if crc32(&hpayload) != hcrc {
            return Err(TraceFileError::BadHeader);
        }
        // name_len + name + seed; later minor versions may append more.
        let name_len = *hpayload.first().ok_or(TraceFileError::BadHeader)? as usize;
        if hpayload.len() < 1 + name_len + 8 {
            return Err(TraceFileError::BadHeader);
        }
        let bench = std::str::from_utf8(&hpayload[1..1 + name_len])
            .map_err(|_| TraceFileError::BadHeader)?
            .to_string();
        let seed = u64::from_le_bytes(
            hpayload[1 + name_len..1 + name_len + 8]
                .try_into()
                .expect("8 bytes"),
        );
        Ok(TraceReader {
            r,
            meta: TraceMeta { bench, seed },
            pos,
            chunk: Vec::new(),
            chunk_pos: 0,
            payload: Vec::new(),
            total_seen: 0,
            done: false,
        })
    }

    /// The profile metadata from the file header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// `true` once the trailer has been reached and verified.
    pub fn is_done(&self) -> bool {
        self.done && self.chunk_pos >= self.chunk.len()
    }

    /// Loads and verifies the next chunk; `false` at the (verified)
    /// trailer.
    fn load_next_chunk(&mut self) -> Result<bool, TraceFileError> {
        debug_assert!(self.chunk_pos >= self.chunk.len());
        let chunk_offset = self.pos;
        let marker = read_u8(&mut self.r, &mut self.pos)?;
        match marker {
            CHUNK_MARKER => {
                let plen = read_u32(&mut self.r, &mut self.pos)?;
                let nrecords = read_u32(&mut self.r, &mut self.pos)?;
                if plen > MAX_CHUNK_PAYLOAD
                    || nrecords > MAX_CHUNK_RECORDS
                    || (nrecords == 0) != (plen == 0)
                    // Every record costs at least a tag byte.
                    || (nrecords as u64) > (plen as u64)
                {
                    return Err(TraceFileError::BadStructure { offset: chunk_offset });
                }
                let crc = read_u32(&mut self.r, &mut self.pos)?;
                self.payload.resize(plen as usize, 0);
                read_exact_at(&mut self.r, &mut self.payload, &mut self.pos)?;
                if crc32(&self.payload) != crc {
                    return Err(TraceFileError::ChecksumMismatch { chunk_offset });
                }
                self.chunk.clear();
                self.chunk_pos = 0;
                ChunkDecoder::new(&self.payload)
                    .decode_all(nrecords as usize, &mut self.chunk)
                    .map_err(|error| TraceFileError::Corrupt { chunk_offset, error })?;
                self.total_seen += nrecords as u64;
                Ok(true)
            }
            END_MARKER => {
                let mut count = [0u8; 8];
                read_exact_at(&mut self.r, &mut count, &mut self.pos)?;
                let crc = read_u32(&mut self.r, &mut self.pos)?;
                if crc32(&count) != crc {
                    return Err(TraceFileError::ChecksumMismatch { chunk_offset });
                }
                let expected = u64::from_le_bytes(count);
                if expected != self.total_seen {
                    return Err(TraceFileError::CountMismatch {
                        expected,
                        found: self.total_seen,
                    });
                }
                self.done = true;
                Ok(false)
            }
            _ => Err(TraceFileError::BadStructure { offset: chunk_offset }),
        }
    }

    /// The next record, or `None` at the verified end of the trace.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceFileError> {
        while self.chunk_pos >= self.chunk.len() {
            if self.done || !self.load_next_chunk()? {
                return Ok(None);
            }
        }
        let r = self.chunk[self.chunk_pos];
        self.chunk_pos += 1;
        Ok(Some(r))
    }

    /// Appends up to `n` records to `buf`, returning how many were
    /// appended (fewer only at the verified end of the trace).
    pub fn next_records_into(
        &mut self,
        buf: &mut Vec<TraceRecord>,
        n: usize,
    ) -> Result<usize, TraceFileError> {
        let mut appended = 0;
        while appended < n {
            if self.chunk_pos >= self.chunk.len() {
                if self.done || !self.load_next_chunk()? {
                    break;
                }
                continue;
            }
            let take = (self.chunk.len() - self.chunk_pos).min(n - appended);
            buf.extend_from_slice(&self.chunk[self.chunk_pos..self.chunk_pos + take]);
            self.chunk_pos += take;
            appended += take;
        }
        Ok(appended)
    }

    /// Reads and validates the whole remaining trace.
    pub fn read_all(&mut self) -> Result<Vec<TraceRecord>, TraceFileError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceFileError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

fn read_exact_at<R: Read>(r: &mut R, buf: &mut [u8], pos: &mut u64) -> Result<(), TraceFileError> {
    match r.read_exact(buf) {
        Ok(()) => {
            *pos += buf.len() as u64;
            Ok(())
        }
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            Err(TraceFileError::Truncated { offset: *pos })
        }
        Err(e) => Err(e.into()),
    }
}

fn read_u8<R: Read>(r: &mut R, pos: &mut u64) -> Result<u8, TraceFileError> {
    let mut b = [0u8; 1];
    read_exact_at(r, &mut b, pos)?;
    Ok(b[0])
}

fn read_u16<R: Read>(r: &mut R, pos: &mut u64) -> Result<u16, TraceFileError> {
    let mut b = [0u8; 2];
    read_exact_at(r, &mut b, pos)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R, pos: &mut u64) -> Result<u32, TraceFileError> {
    let mut b = [0u8; 4];
    read_exact_at(r, &mut b, pos)?;
    Ok(u32::from_le_bytes(b))
}

// ---------------------------------------------------------------------
// Convenience one-shot APIs
// ---------------------------------------------------------------------

/// Encodes a whole trace into a `.fadet` byte buffer.
pub fn encode_trace(meta: &TraceMeta, records: &[TraceRecord]) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new(), meta).expect("Vec<u8> writes are infallible");
    w.write_all(records).expect("Vec<u8> writes are infallible");
    w.finish().expect("Vec<u8> writes are infallible")
}

/// Decodes and fully validates a `.fadet` byte buffer.
pub fn decode_trace(bytes: &[u8]) -> Result<(TraceMeta, Vec<TraceRecord>), TraceFileError> {
    let mut r = TraceReader::new(bytes)?;
    let records = r.read_all()?;
    Ok((r.meta.clone(), records))
}

/// Writes a whole trace to a file.
pub fn write_trace_file(
    path: impl AsRef<Path>,
    meta: &TraceMeta,
    records: &[TraceRecord],
) -> Result<(), TraceFileError> {
    let f = std::fs::File::create(path)?;
    let mut w = TraceWriter::new(io::BufWriter::new(f), meta)?;
    w.write_all(records)?;
    w.finish()?.flush()?;
    Ok(())
}

/// Reads and fully validates a trace file.
pub fn read_trace_file(
    path: impl AsRef<Path>,
) -> Result<(TraceMeta, Vec<TraceRecord>), TraceFileError> {
    let mut r = TraceReader::open(path)?;
    let records = r.read_all()?;
    Ok((r.meta.clone(), records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::program::SyntheticProgram;

    fn sample(name: &str, seed: u64, n: usize) -> Vec<TraceRecord> {
        let p = bench::by_name(name).unwrap();
        let mut prog = SyntheticProgram::new(&p, seed);
        (0..n).map(|_| prog.next_record()).collect()
    }

    fn meta() -> TraceMeta {
        TraceMeta::new("gcc", 42)
    }

    #[test]
    fn round_trips_across_chunk_boundaries() {
        let records = sample("gcc", 42, 10_000);
        for chunk_records in [1usize, 3, 100, 4096, 100_000] {
            let mut w = TraceWriter::new(Vec::new(), &meta())
                .unwrap()
                .with_chunk_records(chunk_records);
            w.write_all(&records).unwrap();
            let bytes = w.finish().unwrap();
            let (m, back) = decode_trace(&bytes).unwrap();
            assert_eq!(m, meta());
            assert_eq!(back, records, "chunk size {chunk_records}");
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode_trace(&meta(), &[]);
        let (m, back) = decode_trace(&bytes).unwrap();
        assert_eq!(m, meta());
        assert!(back.is_empty());
    }

    #[test]
    fn streaming_reader_matches_one_shot() {
        let records = sample("water", 1, 5_000);
        let bytes = encode_trace(&meta(), &records);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let mut buf = Vec::new();
        // Odd-sized pulls deliberately straddle chunk boundaries.
        while reader.next_records_into(&mut buf, 777).unwrap() > 0 {}
        assert_eq!(buf, records);
        assert!(reader.is_done());
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(decode_trace(b"").unwrap_err(), TraceFileError::BadMagic);
        assert_eq!(
            decode_trace(b"NOTATRCE\x01\x00").unwrap_err(),
            TraceFileError::BadMagic
        );
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode_trace(&meta(), &[]);
        bytes[8] = 9; // version low byte
        assert_eq!(
            decode_trace(&bytes).unwrap_err(),
            TraceFileError::UnsupportedVersion { found: 9 }
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let records = sample("gcc", 42, 300);
        let bytes = encode_trace(&meta(), &records);
        for cut in 0..bytes.len() {
            let err = decode_trace(&bytes[..cut]).unwrap_err();
            // Any strict prefix must fail (the trailer is mandatory),
            // and must fail with a typed error, not a panic.
            match err {
                TraceFileError::BadMagic
                | TraceFileError::BadHeader
                | TraceFileError::Truncated { .. } => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn payload_corruption_names_the_chunk_offset() {
        let records = sample("gcc", 42, 3000);
        let mut w = TraceWriter::new(Vec::new(), &meta())
            .unwrap()
            .with_chunk_records(1000);
        w.write_all(&records).unwrap();
        let bytes = w.finish().unwrap();
        // Locate the second chunk: header, then chunk 1.
        let header_len = 8 + 2 + 2 + (1 + 3 + 8) + 4;
        let c1_plen = u32::from_le_bytes(bytes[header_len + 1..header_len + 5].try_into().unwrap());
        let c2_offset = header_len + 13 + c1_plen as usize;
        assert_eq!(bytes[c2_offset], CHUNK_MARKER);
        // Flip a byte in the middle of the second chunk's payload.
        let mut corrupted = bytes.clone();
        corrupted[c2_offset + 13 + 40] ^= 0x40;
        assert_eq!(
            decode_trace(&corrupted).unwrap_err(),
            TraceFileError::ChecksumMismatch {
                chunk_offset: c2_offset as u64
            }
        );
    }

    #[test]
    fn trailer_count_mismatch_is_detected() {
        let records = sample("gcc", 42, 100);
        let mut bytes = encode_trace(&meta(), &records);
        // Rewrite the trailer with a wrong count (and matching CRC, so
        // only the cross-check can catch it).
        let n = bytes.len();
        let wrong = 99u64.to_le_bytes();
        bytes[n - 12..n - 4].copy_from_slice(&wrong);
        bytes[n - 4..].copy_from_slice(&crc32(&wrong).to_le_bytes());
        assert_eq!(
            decode_trace(&bytes).unwrap_err(),
            TraceFileError::CountMismatch {
                expected: 99,
                found: 100
            }
        );
    }

    #[test]
    fn oversized_length_fields_do_not_allocate() {
        let mut bytes = encode_trace(&meta(), &sample("gcc", 42, 50)[..]);
        let header_len = 8 + 2 + 2 + (1 + 3 + 8) + 4;
        // Claim a 4 GiB payload.
        bytes[header_len + 1..header_len + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_trace(&bytes).unwrap_err(),
            TraceFileError::BadStructure {
                offset: header_len as u64
            }
        );
    }

    #[test]
    fn file_round_trip_on_disk() {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file_round_trip.fadet");
        let records = sample("mcf", 9, 4_000);
        let m = TraceMeta::new("mcf", 9);
        write_trace_file(&path, &m, &records).unwrap();
        let (m2, back) = read_trace_file(&path).unwrap();
        assert_eq!(m2, m);
        assert_eq!(back, records);
    }

    #[test]
    fn compression_beats_raw_memory_by_3x() {
        let records = sample("gcc", 42, 50_000);
        let bytes = encode_trace(&meta(), &records);
        let raw = records.len() * std::mem::size_of::<TraceRecord>();
        assert!(
            raw as f64 >= 3.0 * bytes.len() as f64,
            "encoded {} bytes vs {} raw ({}x)",
            bytes.len(),
            raw,
            raw as f64 / bytes.len() as f64
        );
    }
}
