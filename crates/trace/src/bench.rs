//! The calibrated benchmark suite.
//!
//! Eight SPEC2006-int stand-ins (used by AddrCheck, MemCheck, MemLeak,
//! and — for the four benchmarks with taint propagation — TaintCheck)
//! and five multithreaded stand-ins from SPLASH-2/PARSEC (used by
//! AtomCheck), per Section 6 of the paper.
//!
//! Knob values are calibrated so the per-benchmark statistics the paper
//! reports emerge from the generator: monitored IPC (Figure 2), queue
//! occupancy (Figure 3), filtering ratios (Table 2; e.g. astar and gcc
//! run MemLeak at ~70% while the suite averages 87%).

use crate::profile::BenchProfile;

/// The eight SPEC2006-int stand-ins.
pub fn spec_int_suite() -> Vec<BenchProfile> {
    vec![
        astar(),
        bzip(),
        gcc(),
        gobmk(),
        hmmer(),
        libq(),
        mcf(),
        omnet(),
    ]
}

/// The four benchmarks with taint propagation (Section 6), with taint
/// knobs enabled. Named with a `-taint` suffix.
pub fn taint_suite() -> Vec<BenchProfile> {
    [astar(), bzip(), mcf(), omnet()]
        .into_iter()
        .map(|p| {
            let mut t = p;
            t.name = match t.name {
                "astar" => "astar-taint",
                "bzip" => "bzip-taint",
                "mcf" => "mcf-taint",
                "omnet" => "omnet-taint",
                other => other,
            };
            t.taint_density = 0.018;
            t.taint_source_rate = 0.00035;
            t
        })
        .collect()
}

/// The five multithreaded stand-ins for AtomCheck (water and ocean from
/// SPLASH-2; blackscholes, streamcluster and fluidanimate from PARSEC),
/// four threads time-sliced on one core.
pub fn parallel_suite() -> Vec<BenchProfile> {
    vec![
        water(),
        ocean(),
        blackscholes(),
        streamcluster(),
        fluidanimate(),
    ]
}

/// Looks a profile up by name across all three suites.
pub fn by_name(name: &str) -> Option<BenchProfile> {
    spec_int_suite()
        .into_iter()
        .chain(taint_suite())
        .chain(parallel_suite())
        .find(|p| p.name == name)
}

fn astar() -> BenchProfile {
    let mut p = BenchProfile::base("astar", 1.00, 300.0);
    // Path-finding: pointer-chasing over node structures; frequent
    // short calls. Low MemLeak filtering ratio (paper: ~70%).
    p.pointer_density = 0.095;
    p.call_rate = 0.011;
    p.frame_mean = 96;
    p.malloc_rate = 0.0007;
    p.mix.load = 0.27;
    p.mix.int_alu = 0.28;
    p
}

fn bzip() -> BenchProfile {
    let mut p = BenchProfile::base("bzip", 1.70, 900.0);
    // Compression: high IPC, long dependence-free runs; monitored IPC
    // above 1.0 for propagation trackers (Figure 3: queueing cannot
    // help).
    p.pointer_density = 0.012;
    p.call_rate = 0.006;
    p.malloc_rate = 0.0003;
    p.mix.load = 0.26;
    p.mix.store = 0.12;
    p
}

fn gcc() -> BenchProfile {
    let mut p = BenchProfile::base("gcc", 1.10, 500.0);
    // Compiler: allocation-heavy, call-heavy, pointer-rich IR walks.
    // Low MemLeak filtering ratio and frequent queue drains (paper
    // singles out gcc's 3.3x FADE slowdown for MemLeak).
    p.pointer_density = 0.105;
    p.call_rate = 0.013;
    p.frame_mean = 144;
    p.malloc_rate = 0.0012;
    p
}

fn gobmk() -> BenchProfile {
    let mut p = BenchProfile::base("gobmk", 0.90, 700.0);
    // Game tree search: deep recursion, moderate pointer use.
    p.pointer_density = 0.018;
    p.call_rate = 0.009;
    p.frame_mean = 160;
    p
}

fn hmmer() -> BenchProfile {
    let mut p = BenchProfile::base("hmmer", 1.90, 1200.0);
    // HMM scoring: hot loops over tables, few calls, few pointers.
    p.pointer_density = 0.010;
    p.call_rate = 0.004;
    p.malloc_rate = 0.0002;
    p.mix.load = 0.26;
    p.mix.int_alu = 0.26;
    p.mix.fp_alu = 0.12;
    p.mix.branch = 0.10;
    p.mix.nop = 0.06;
    p
}

fn libq() -> BenchProfile {
    let mut p = BenchProfile::base("libq", 1.30, 1600.0);
    // Quantum simulation: streaming over a large array.
    p.pointer_density = 0.010;
    p.call_rate = 0.003;
    p.malloc_rate = 0.0001;
    p.locality = 0.70;
    p
}

fn mcf() -> BenchProfile {
    let mut p = BenchProfile::base("mcf", 0.35, 60.0);
    // Memory bound: low IPC, short commit bursts, large working set.
    p.pointer_density = 0.020;
    p.call_rate = 0.006;
    p.locality = 0.60;
    p.mix.load = 0.31;
    p
}

fn omnet() -> BenchProfile {
    let mut p = BenchProfile::base("omnet", 1.00, 4000.0);
    // Discrete-event simulation: allocation-heavy with long
    // cache-resident phases — the deepest event-queue occupancy in
    // Figure 3(b).
    p.pointer_density = 0.020;
    p.call_rate = 0.007;
    p.malloc_rate = 0.0016;
    p.alloc_mean = 96;
    p
}

fn water() -> BenchProfile {
    let mut p = BenchProfile::base("water", 1.10, 600.0);
    p.threads = 4;
    p.sharing = 0.50;
    p.stack_frac = 0.25;
    p.timeslice = 2500;
    p.mix.fp_alu = 0.14;
    p.mix.int_alu = 0.22;
    p.mix.load = 0.24;
    p.call_rate = 0.008;
    p
}

fn ocean() -> BenchProfile {
    let mut p = BenchProfile::base("ocean", 0.80, 250.0);
    p.threads = 4;
    p.sharing = 0.70;
    p.stack_frac = 0.25;
    p.timeslice = 2500;
    p.mix.fp_alu = 0.16;
    p.mix.int_alu = 0.20;
    p.mix.load = 0.28;
    p.locality = 0.65;
    p
}

fn blackscholes() -> BenchProfile {
    let mut p = BenchProfile::base("blacks.", 1.50, 900.0);
    p.threads = 4;
    p.sharing = 0.20;
    p.stack_frac = 0.25;
    p.timeslice = 2500; // embarrassingly parallel
    p.mix.fp_alu = 0.20;
    p.mix.int_alu = 0.20;
    p.mix.load = 0.22;
    p.call_rate = 0.005;
    p
}

fn streamcluster() -> BenchProfile {
    let mut p = BenchProfile::base("stream.", 1.00, 400.0);
    p.threads = 4;
    p.sharing = 0.65;
    p.stack_frac = 0.25;
    p.timeslice = 2500;
    p.mix.load = 0.30;
    p.locality = 0.70;
    p
}

fn fluidanimate() -> BenchProfile {
    let mut p = BenchProfile::base("fluid.", 1.20, 500.0);
    p.threads = 4;
    p.sharing = 0.55;
    p.stack_frac = 0.25;
    p.timeslice = 2500;
    p.mix.fp_alu = 0.15;
    p.mix.int_alu = 0.22;
    p.mix.load = 0.25;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suites_have_paper_sizes() {
        assert_eq!(spec_int_suite().len(), 8);
        assert_eq!(taint_suite().len(), 4);
        assert_eq!(parallel_suite().len(), 5);
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<&str> = spec_int_suite()
            .iter()
            .chain(&taint_suite())
            .chain(&parallel_suite())
            .map(|p| p.name)
            .collect();
        let set: HashSet<&&str> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn by_name_finds_every_benchmark() {
        for p in spec_int_suite().iter().chain(&parallel_suite()) {
            assert!(by_name(p.name).is_some(), "{} missing", p.name);
        }
        assert!(by_name("astar-taint").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn taint_suite_has_taint_knobs() {
        for p in taint_suite() {
            assert!(p.taint_density > 0.0);
            assert!(p.taint_source_rate > 0.0);
        }
        // The plain suite does not.
        for p in spec_int_suite() {
            assert_eq!(p.taint_density, 0.0);
        }
    }

    #[test]
    fn parallel_suite_is_multithreaded() {
        for p in parallel_suite() {
            assert_eq!(p.threads, 4, "{}", p.name);
            assert!(p.sharing > 0.0);
        }
    }

    #[test]
    fn profiles_are_distinct() {
        // The calibration must differentiate benchmarks.
        let ipcs: HashSet<u64> = spec_int_suite()
            .iter()
            .map(|p| (p.commit.ipc_4way * 100.0) as u64)
            .collect();
        assert!(ipcs.len() >= 6);
    }
}
