//! Deterministic fault injection for byte streams.
//!
//! The robustness counterpart of [`crate::file`]: wraps any
//! `Read`-able trace stream (or an in-memory `.fadet` buffer) with
//! seeded, reproducible faults — bit flips, truncations, short reads
//! and injected I/O errors — so property tests can sweep thousands of
//! fault scenarios and assert that no fault ever panics, silently
//! corrupts replayed records, or goes unaccounted in a
//! [`crate::DegradationReport`].
//!
//! Everything here is a pure function of the `(seed, stream length)`
//! pair: the same seed always damages the same byte, so a failing
//! sweep case replays exactly.
//!
//! # Example
//!
//! ```
//! use fade_trace::{bench, encode_trace, SyntheticProgram, TraceMeta};
//! use fade_trace::faultinject::{FaultKind, FaultPlan};
//!
//! let p = bench::by_name("mcf").unwrap();
//! let mut prog = SyntheticProgram::new(&p, 7);
//! let records: Vec<_> = (0..500).map(|_| prog.next_record()).collect();
//! let bytes = encode_trace(&TraceMeta::new("mcf", 7), &records);
//!
//! let plan = FaultPlan::seeded(3, FaultKind::BitFlip, bytes.len() as u64);
//! let damaged = plan.apply(&bytes);
//! assert_ne!(damaged, bytes);
//! // Same seed, same damage.
//! assert_eq!(damaged, plan.apply(&bytes));
//! ```

use std::io::{self, Read};

/// The four kinds of fault the injector produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// One bit of one byte is flipped in place.
    BitFlip,
    /// The stream ends early, at the chosen offset.
    Truncate,
    /// Every read returns at most a few bytes (and occasionally
    /// `ErrorKind::Interrupted`). Semantically lossless: a correct
    /// reader must survive it with bit-identical results.
    ShortRead,
    /// Reads at and beyond the chosen offset fail with a persistent
    /// I/O error (a dying disk, not corrupt data).
    IoError,
}

impl FaultKind {
    /// All four kinds, for sweep loops.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::BitFlip,
        FaultKind::Truncate,
        FaultKind::ShortRead,
        FaultKind::IoError,
    ];
}

/// SplitMix64: tiny, high-quality, and fully deterministic.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    *state = z ^ (z >> 31);
}

/// A concrete, reproducible fault: what kind, at which byte, which bit.
///
/// Built by [`FaultPlan::seeded`] from a `(seed, kind, stream length)`
/// triple; the same triple always yields the same plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The kind of fault injected.
    pub kind: FaultKind,
    /// Byte offset the fault strikes at (always within the stream).
    pub offset: u64,
    /// For [`FaultKind::BitFlip`]: which bit (0–7) flips.
    pub bit: u8,
    /// For [`FaultKind::ShortRead`]: maximum bytes per read (1–7).
    pub max_read: usize,
}

impl FaultPlan {
    /// Derives the fault deterministically from a seed and the length
    /// of the stream it will damage.
    pub fn seeded(seed: u64, kind: FaultKind, len: u64) -> Self {
        let mut s = seed ^ 0xFADE_FADE_FADE_FADE;
        splitmix64(&mut s);
        let offset = if len == 0 { 0 } else { s % len };
        splitmix64(&mut s);
        let bit = (s % 8) as u8;
        splitmix64(&mut s);
        let max_read = 1 + (s % 7) as usize;
        FaultPlan {
            kind,
            offset,
            bit,
            max_read,
        }
    }

    /// Applies the fault to an in-memory buffer. [`FaultKind::ShortRead`]
    /// and [`FaultKind::IoError`] have no buffer representation (they
    /// are transport faults, not data faults) and return the bytes
    /// unchanged — wrap the buffer in a [`FaultyReader`] to exercise
    /// them.
    pub fn apply(&self, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        match self.kind {
            FaultKind::BitFlip => {
                if let Some(b) = out.get_mut(self.offset as usize) {
                    *b ^= 1 << self.bit;
                }
                out
            }
            FaultKind::Truncate => {
                out.truncate(self.offset as usize);
                out
            }
            FaultKind::ShortRead | FaultKind::IoError => out,
        }
    }
}

/// A `Read` adapter injecting one [`FaultPlan`] into an inner stream.
///
/// The data faults ([`FaultKind::BitFlip`], [`FaultKind::Truncate`])
/// behave exactly like [`FaultPlan::apply`] on the byte stream;
/// [`FaultKind::ShortRead`] bounds every read (sprinkling
/// `Interrupted` errors a conforming reader must retry);
/// [`FaultKind::IoError`] fails persistently once the fault offset is
/// reached.
pub struct FaultyReader<R: Read> {
    inner: R,
    plan: FaultPlan,
    /// Bytes delivered so far (the current stream offset).
    pos: u64,
    /// Deterministic per-read state for `ShortRead` interrupts.
    rng: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` with the given fault.
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        FaultyReader {
            inner,
            plan,
            pos: 0,
            rng: plan.offset ^ 0x5EED_5EED,
        }
    }

    /// The fault being injected.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut limit = buf.len();
        match self.plan.kind {
            FaultKind::Truncate => {
                let remaining = self.plan.offset.saturating_sub(self.pos);
                if remaining == 0 {
                    return Ok(0);
                }
                limit = limit.min(remaining as usize);
            }
            FaultKind::IoError => {
                let remaining = self.plan.offset.saturating_sub(self.pos);
                if remaining == 0 {
                    return Err(io::Error::other("injected I/O fault"));
                }
                limit = limit.min(remaining as usize);
            }
            FaultKind::ShortRead => {
                splitmix64(&mut self.rng);
                if self.rng.is_multiple_of(13) {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected interrupt",
                    ));
                }
                limit = limit.min(self.plan.max_read);
            }
            FaultKind::BitFlip => {}
        }
        let n = self.inner.read(&mut buf[..limit])?;
        if self.plan.kind == FaultKind::BitFlip
            && self.plan.offset >= self.pos
            && self.plan.offset < self.pos + n as u64
        {
            buf[(self.plan.offset - self.pos) as usize] ^= 1 << self.plan.bit;
        }
        self.pos += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> Vec<u8> {
        (0u8..=255).cycle().take(10_000).collect()
    }

    fn drain(mut r: impl Read) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut buf = [0u8; 97];
        loop {
            match r.read(&mut buf) {
                Ok(0) => return Ok(out),
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    #[test]
    fn plans_are_deterministic_and_in_bounds() {
        for seed in 0..200 {
            for kind in FaultKind::ALL {
                let a = FaultPlan::seeded(seed, kind, 10_000);
                let b = FaultPlan::seeded(seed, kind, 10_000);
                assert_eq!(a, b);
                assert!(a.offset < 10_000);
                assert!(a.bit < 8);
                assert!((1..=7).contains(&a.max_read));
            }
        }
    }

    #[test]
    fn bitflip_flips_exactly_one_bit() {
        let data = payload();
        let plan = FaultPlan::seeded(7, FaultKind::BitFlip, data.len() as u64);
        let damaged = plan.apply(&data);
        let diff: Vec<usize> = (0..data.len()).filter(|&i| data[i] != damaged[i]).collect();
        assert_eq!(diff, vec![plan.offset as usize]);
        assert_eq!(data[diff[0]] ^ damaged[diff[0]], 1 << plan.bit);
        // The streaming wrapper produces the same bytes.
        let streamed = drain(FaultyReader::new(&data[..], plan)).unwrap();
        assert_eq!(streamed, damaged);
    }

    #[test]
    fn truncate_cuts_at_the_planned_offset() {
        let data = payload();
        let plan = FaultPlan::seeded(11, FaultKind::Truncate, data.len() as u64);
        assert_eq!(plan.apply(&data), &data[..plan.offset as usize]);
        let streamed = drain(FaultyReader::new(&data[..], plan)).unwrap();
        assert_eq!(streamed, &data[..plan.offset as usize]);
    }

    #[test]
    fn short_reads_are_lossless() {
        let data = payload();
        let plan = FaultPlan::seeded(13, FaultKind::ShortRead, data.len() as u64);
        let streamed = drain(FaultyReader::new(&data[..], plan)).unwrap();
        assert_eq!(streamed, data, "short reads must not lose or alter bytes");
    }

    #[test]
    fn io_error_fires_at_the_planned_offset_and_persists() {
        let data = payload();
        let plan = FaultPlan::seeded(17, FaultKind::IoError, data.len() as u64);
        let mut r = FaultyReader::new(&data[..], plan);
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        let err = loop {
            match r.read(&mut buf) {
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) => break e,
            }
        };
        assert_eq!(out, &data[..plan.offset as usize]);
        assert_eq!(err.kind(), io::ErrorKind::Other);
        // Persistent: further reads keep failing.
        assert!(r.read(&mut buf).is_err());
    }
}
