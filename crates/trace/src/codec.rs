//! The per-record trace codec: compact, streaming, deterministic.
//!
//! Encodes a [`TraceRecord`] stream into the byte payload of one trace
//! chunk (see [`crate::file`] for the chunked container). The design
//! goals, in order:
//!
//! 1. **Density.** Instruction PCs advance by a word and memory
//!    accesses cluster, so both are stored as zigzag varint *deltas*
//!    against a running [`Ctx`]; operand presence, the pointer-result
//!    hint and the memory-operand size share one flags byte. Typical
//!    generated traces land around 4–6 bytes/record, better than 4×
//!    smaller than the in-memory [`TraceRecord`].
//! 2. **Robustness.** Decoding never panics: every read is
//!    bounds-checked and every operand validated, with byte-offset
//!    [`CodecError`]s for the container to wrap.
//! 3. **Chunk independence.** The context resets at chunk boundaries,
//!    so a corrupt chunk never poisons its neighbours and readers can
//!    skip or resynchronize at chunk granularity.
//!
//! The encoding is bit-stable: the same record sequence always produces
//! the same bytes (golden `.fadet` fixtures rely on this).

use fade_isa::{
    AppInstr, HighLevelEvent, InstrClass, MemRef, Reg, StackUpdateEvent, StackUpdateKind,
    VirtAddr, NUM_REGS,
};

use crate::program::TraceRecord;

/// A decode failure inside one chunk payload. Offsets are relative to
/// the payload start; [`crate::file`] adds the chunk's file offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended inside a record.
    Truncated {
        /// Payload offset at which more bytes were needed.
        offset: usize,
    },
    /// An unknown record tag.
    BadTag {
        /// Payload offset of the offending tag byte.
        offset: usize,
    },
    /// A structurally valid record carried an invalid operand (register
    /// index out of range, over-long varint).
    BadOperand {
        /// Payload offset of the offending operand.
        offset: usize,
    },
}

impl CodecError {
    /// The payload offset the error points at.
    pub fn offset(&self) -> usize {
        match *self {
            CodecError::Truncated { offset }
            | CodecError::BadTag { offset }
            | CodecError::BadOperand { offset } => offset,
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { offset } => {
                write!(f, "payload ends inside a record (offset {offset})")
            }
            CodecError::BadTag { offset } => {
                write!(f, "unknown record tag at payload offset {offset}")
            }
            CodecError::BadOperand { offset } => {
                write!(f, "invalid operand at payload offset {offset}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

// Record tags. 0..=10 are instructions, indexed by instruction class.
const TAG_STACK_CALL: u8 = 11;
const TAG_STACK_RETURN: u8 = 12;
const TAG_MALLOC: u8 = 13;
const TAG_FREE: u8 = 14;
const TAG_TAINT_SOURCE: u8 = 15;
const TAG_THREAD_SWITCH: u8 = 16;

// Instruction flags byte.
const F_SRC1: u8 = 1 << 0;
const F_SRC2: u8 = 1 << 1;
const F_DEST: u8 = 1 << 2;
const F_MEM: u8 = 1 << 3;
const F_RESULT_PTR: u8 = 1 << 4;
/// The instruction's tid differs from the context tid and follows
/// explicitly (in generated traces the context tid, maintained by
/// thread-switch records, almost always matches).
const F_TID: u8 = 1 << 5;
const SIZE_SHIFT: u8 = 6;

fn class_tag(c: InstrClass) -> u8 {
    match c {
        InstrClass::Load => 0,
        InstrClass::Store => 1,
        InstrClass::IntAlu => 2,
        InstrClass::IntMove => 3,
        InstrClass::IntMul => 4,
        InstrClass::FpAlu => 5,
        InstrClass::Branch => 6,
        InstrClass::Jump => 7,
        InstrClass::Call => 8,
        InstrClass::Return => 9,
        InstrClass::Nop => 10,
    }
}

fn class_from_tag(t: u8) -> Option<InstrClass> {
    Some(match t {
        0 => InstrClass::Load,
        1 => InstrClass::Store,
        2 => InstrClass::IntAlu,
        3 => InstrClass::IntMove,
        4 => InstrClass::IntMul,
        5 => InstrClass::FpAlu,
        6 => InstrClass::Branch,
        7 => InstrClass::Jump,
        8 => InstrClass::Call,
        9 => InstrClass::Return,
        10 => InstrClass::Nop,
        _ => return None,
    })
}

/// Memory-operand size codes (2 bits of the flags byte). Word accesses
/// dominate generated traces, so they cost nothing; the escape code
/// keeps every `u8` size representable.
const SIZE_WORD: u8 = 0; // 4 bytes, the common case
const SIZE_BYTE: u8 = 1;
const SIZE_HALF: u8 = 2;
const SIZE_EXPLICIT: u8 = 3; // size byte follows the address delta

/// The running prediction context. One per chunk: encoder and decoder
/// start from [`Ctx::default`] at every chunk boundary and must stay in
/// lockstep record-for-record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ctx {
    prev_pc: u32,
    prev_mem: u32,
    prev_stack: u32,
    prev_heap: u32,
    cur_tid: u8,
}

#[inline]
fn zigzag(v: u32, prev: u32) -> u32 {
    let d = v.wrapping_sub(prev) as i32;
    ((d << 1) ^ (d >> 31)) as u32
}

#[inline]
fn unzigzag(z: u32, prev: u32) -> u32 {
    let d = ((z >> 1) as i32) ^ -((z & 1) as i32);
    prev.wrapping_add(d as u32)
}

/// Appends a LEB128 varint.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(CodecError::Truncated { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint that must fit in 32 bits.
    fn varint32(&mut self) -> Result<u32, CodecError> {
        let start = self.pos;
        let mut v: u64 = 0;
        for shift in (0..).step_by(7) {
            let b = self.u8()?;
            // A 32-bit value spans at most 5 varint bytes.
            if shift >= 35 {
                return Err(CodecError::BadOperand { offset: start });
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                break;
            }
        }
        u32::try_from(v).map_err(|_| CodecError::BadOperand { offset: start })
    }

    fn reg(&mut self) -> Result<Reg, CodecError> {
        let at = self.pos;
        let idx = self.u8()?;
        if (idx as usize) < NUM_REGS {
            Ok(Reg::new(idx))
        } else {
            Err(CodecError::BadOperand { offset: at })
        }
    }
}

/// Encodes one record, updating the context.
pub fn encode_record(ctx: &mut Ctx, r: &TraceRecord, out: &mut Vec<u8>) {
    match r {
        TraceRecord::Instr(i) => {
            out.push(class_tag(i.class));
            let mut flags = 0u8;
            if i.src1.is_some() {
                flags |= F_SRC1;
            }
            if i.src2.is_some() {
                flags |= F_SRC2;
            }
            if i.dest.is_some() {
                flags |= F_DEST;
            }
            if i.result_ptr {
                flags |= F_RESULT_PTR;
            }
            if i.tid != ctx.cur_tid {
                flags |= F_TID;
            }
            let size_code = match i.mem {
                None => 0,
                Some(m) => {
                    flags |= F_MEM;
                    match m.size {
                        4 => SIZE_WORD,
                        1 => SIZE_BYTE,
                        2 => SIZE_HALF,
                        _ => SIZE_EXPLICIT,
                    }
                }
            };
            flags |= size_code << SIZE_SHIFT;
            out.push(flags);
            write_varint(out, zigzag(i.pc.raw(), ctx.prev_pc) as u64);
            ctx.prev_pc = i.pc.raw();
            if let Some(r) = i.src1 {
                out.push(r.index());
            }
            if let Some(r) = i.src2 {
                out.push(r.index());
            }
            if let Some(r) = i.dest {
                out.push(r.index());
            }
            if flags & F_TID != 0 {
                out.push(i.tid);
            }
            if let Some(m) = i.mem {
                write_varint(out, zigzag(m.addr.raw(), ctx.prev_mem) as u64);
                ctx.prev_mem = m.addr.raw();
                if size_code == SIZE_EXPLICIT {
                    out.push(m.size);
                }
            }
        }
        TraceRecord::Stack(s) => {
            out.push(match s.kind {
                StackUpdateKind::Call => TAG_STACK_CALL,
                StackUpdateKind::Return => TAG_STACK_RETURN,
            });
            write_varint(out, zigzag(s.base.raw(), ctx.prev_stack) as u64);
            ctx.prev_stack = s.base.raw();
            write_varint(out, s.len as u64);
            out.push(s.tid);
        }
        TraceRecord::High(h) => match *h {
            HighLevelEvent::Malloc { base, len, ctx: actx } => {
                out.push(TAG_MALLOC);
                write_varint(out, zigzag(base.raw(), ctx.prev_heap) as u64);
                ctx.prev_heap = base.raw();
                write_varint(out, len as u64);
                write_varint(out, actx as u64);
            }
            HighLevelEvent::Free { base, len } => {
                out.push(TAG_FREE);
                write_varint(out, zigzag(base.raw(), ctx.prev_heap) as u64);
                ctx.prev_heap = base.raw();
                write_varint(out, len as u64);
            }
            HighLevelEvent::TaintSource { base, len } => {
                out.push(TAG_TAINT_SOURCE);
                write_varint(out, zigzag(base.raw(), ctx.prev_heap) as u64);
                ctx.prev_heap = base.raw();
                write_varint(out, len as u64);
            }
            HighLevelEvent::ThreadSwitch { tid } => {
                out.push(TAG_THREAD_SWITCH);
                out.push(tid);
                ctx.cur_tid = tid;
            }
        },
    }
}

/// Encodes a record slice into a fresh-context payload (one chunk).
pub fn encode_chunk(records: &[TraceRecord], out: &mut Vec<u8>) {
    let mut ctx = Ctx::default();
    for r in records {
        encode_record(&mut ctx, r, out);
    }
}

/// Decoder over one chunk payload.
pub struct ChunkDecoder<'a> {
    cursor: Cursor<'a>,
    ctx: Ctx,
}

impl<'a> ChunkDecoder<'a> {
    /// Starts decoding a payload with a fresh context.
    pub fn new(payload: &'a [u8]) -> Self {
        ChunkDecoder {
            cursor: Cursor {
                buf: payload,
                pos: 0,
            },
            ctx: Ctx::default(),
        }
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.cursor.pos
    }

    /// `true` once the whole payload has been consumed.
    pub fn is_done(&self) -> bool {
        self.cursor.pos >= self.cursor.buf.len()
    }

    /// Decodes the next record, or `None` at the payload end.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, CodecError> {
        if self.is_done() {
            return Ok(None);
        }
        let tag_offset = self.cursor.pos;
        let tag = self.cursor.u8()?;
        let rec = match tag {
            t if t <= 10 => {
                let class = class_from_tag(t).expect("tags 0..=10 are classes");
                let flags = self.cursor.u8()?;
                let pc = unzigzag(self.cursor.varint32()?, self.ctx.prev_pc);
                self.ctx.prev_pc = pc;
                let mut i = AppInstr::new(VirtAddr::new(pc), class)
                    .with_result_ptr(flags & F_RESULT_PTR != 0)
                    .with_tid(self.ctx.cur_tid);
                if flags & F_SRC1 != 0 {
                    i = i.with_src1(self.cursor.reg()?);
                }
                if flags & F_SRC2 != 0 {
                    i = i.with_src2(self.cursor.reg()?);
                }
                if flags & F_DEST != 0 {
                    i = i.with_dest(self.cursor.reg()?);
                }
                if flags & F_TID != 0 {
                    i = i.with_tid(self.cursor.u8()?);
                }
                if flags & F_MEM != 0 {
                    let addr = unzigzag(self.cursor.varint32()?, self.ctx.prev_mem);
                    self.ctx.prev_mem = addr;
                    let size = match flags >> SIZE_SHIFT {
                        SIZE_WORD => 4,
                        SIZE_BYTE => 1,
                        SIZE_HALF => 2,
                        _ => self.cursor.u8()?,
                    };
                    i = i.with_mem(MemRef {
                        addr: VirtAddr::new(addr),
                        size,
                    });
                }
                TraceRecord::Instr(i)
            }
            TAG_STACK_CALL | TAG_STACK_RETURN => {
                let base = unzigzag(self.cursor.varint32()?, self.ctx.prev_stack);
                self.ctx.prev_stack = base;
                let len = self.cursor.varint32()?;
                let tid = self.cursor.u8()?;
                TraceRecord::Stack(StackUpdateEvent {
                    base: VirtAddr::new(base),
                    len,
                    kind: if tag == TAG_STACK_CALL {
                        StackUpdateKind::Call
                    } else {
                        StackUpdateKind::Return
                    },
                    tid,
                })
            }
            TAG_MALLOC => {
                let base = unzigzag(self.cursor.varint32()?, self.ctx.prev_heap);
                self.ctx.prev_heap = base;
                TraceRecord::High(HighLevelEvent::Malloc {
                    base: VirtAddr::new(base),
                    len: self.cursor.varint32()?,
                    ctx: self.cursor.varint32()?,
                })
            }
            TAG_FREE => {
                let base = unzigzag(self.cursor.varint32()?, self.ctx.prev_heap);
                self.ctx.prev_heap = base;
                TraceRecord::High(HighLevelEvent::Free {
                    base: VirtAddr::new(base),
                    len: self.cursor.varint32()?,
                })
            }
            TAG_TAINT_SOURCE => {
                let base = unzigzag(self.cursor.varint32()?, self.ctx.prev_heap);
                self.ctx.prev_heap = base;
                TraceRecord::High(HighLevelEvent::TaintSource {
                    base: VirtAddr::new(base),
                    len: self.cursor.varint32()?,
                })
            }
            TAG_THREAD_SWITCH => {
                let tid = self.cursor.u8()?;
                self.ctx.cur_tid = tid;
                TraceRecord::High(HighLevelEvent::ThreadSwitch { tid })
            }
            _ => return Err(CodecError::BadTag { offset: tag_offset }),
        };
        Ok(Some(rec))
    }

    /// Decodes exactly `expected` records, requiring the payload to end
    /// with the last one.
    pub fn decode_all(mut self, expected: usize, out: &mut Vec<TraceRecord>) -> Result<(), CodecError> {
        // `expected` comes from an untrusted length field: cap the
        // upfront reservation so a crafted count cannot drive a
        // payload-size-amplified allocation before the first record
        // validates — beyond the cap the vector grows only as records
        // actually decode.
        out.reserve(expected.min(64 * 1024));
        for _ in 0..expected {
            match self.next_record()? {
                Some(r) => out.push(r),
                // Fewer records than the chunk header promised.
                None => {
                    return Err(CodecError::Truncated {
                        offset: self.cursor.pos,
                    })
                }
            }
        }
        if !self.is_done() {
            // Trailing garbage after the promised record count.
            return Err(CodecError::BadTag {
                offset: self.cursor.pos,
            });
        }
        Ok(())
    }
}

/// CRC-32 (IEEE 802.3, reflected) — the per-chunk integrity check.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::program::SyntheticProgram;

    fn sample(name: &str, n: usize) -> Vec<TraceRecord> {
        let p = bench::by_name(name).unwrap();
        let mut prog = SyntheticProgram::new(&p, 42);
        (0..n).map(|_| prog.next_record()).collect()
    }

    fn round_trip(records: &[TraceRecord]) -> Vec<TraceRecord> {
        let mut payload = Vec::new();
        encode_chunk(records, &mut payload);
        let mut out = Vec::new();
        ChunkDecoder::new(&payload)
            .decode_all(records.len(), &mut out)
            .expect("valid payload");
        out
    }

    #[test]
    fn round_trips_generated_traces() {
        for name in ["gcc", "water", "mcf", "astar-taint"] {
            let records = sample(name, 20_000);
            assert_eq!(round_trip(&records), records, "{name}");
        }
    }

    #[test]
    fn delta_encoding_is_compact() {
        let records = sample("gcc", 20_000);
        let mut payload = Vec::new();
        encode_chunk(&records, &mut payload);
        let per_record = payload.len() as f64 / records.len() as f64;
        assert!(per_record < 8.0, "got {per_record:.2} bytes/record");
        let raw = std::mem::size_of::<TraceRecord>() as f64;
        assert!(
            raw >= 3.0 * per_record,
            "encoded {per_record:.2} B/record vs {raw:.0} B in memory"
        );
    }

    #[test]
    fn truncation_never_panics() {
        let records = sample("mcf", 200);
        let mut payload = Vec::new();
        encode_chunk(&records, &mut payload);
        for cut in 0..payload.len() {
            let mut dec = ChunkDecoder::new(&payload[..cut]);
            // Walk until error or clean end; must never panic.
            while let Ok(Some(_)) = dec.next_record() {}
        }
    }

    #[test]
    fn bad_tag_reports_offset() {
        let payload = [200u8, 0, 0];
        let mut dec = ChunkDecoder::new(&payload);
        assert_eq!(dec.next_record(), Err(CodecError::BadTag { offset: 0 }));
    }

    #[test]
    fn bad_register_is_a_typed_error() {
        // Load with src1 present but register index 0xff.
        let payload = [0u8, F_SRC1, 0, 0xff];
        let mut dec = ChunkDecoder::new(&payload);
        assert_eq!(dec.next_record(), Err(CodecError::BadOperand { offset: 3 }));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // Instr with a 6-byte pc varint.
        let payload = [0u8, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
        let mut dec = ChunkDecoder::new(&payload);
        assert!(matches!(
            dec.next_record(),
            Err(CodecError::BadOperand { .. })
        ));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
