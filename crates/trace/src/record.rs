//! Trace recording and replay.
//!
//! Serializes a [`TraceRecord`] stream to a compact binary format and
//! replays it later. Recorded traces freeze a workload independently of
//! future profile/engine changes — useful for regression pinning, for
//! sharing a workload between experiments, and for replaying the exact
//! event stream into different system configurations.
//!
//! Format: little-endian, one tagged record after a 8-byte header
//! (`b"FADETRC1"`). Instruction records encode class, operand presence
//! bits, registers, memory operand, tid, and the pointer-result hint.

use fade_isa::{
    AppInstr, HighLevelEvent, InstrClass, MemRef, Reg, StackUpdateEvent, StackUpdateKind,
    VirtAddr,
};

use crate::program::TraceRecord;

/// Magic header of the trace format.
pub const TRACE_MAGIC: &[u8; 8] = b"FADETRC1";

/// An error while decoding a recorded trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// The header is missing or wrong.
    BadMagic,
    /// The stream ended inside a record.
    Truncated,
    /// An unknown record/class tag was found at the given offset.
    BadTag {
        /// Byte offset of the offending tag.
        offset: usize,
    },
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::BadMagic => write!(f, "not a FADE trace (bad magic)"),
            TraceDecodeError::Truncated => write!(f, "trace ends inside a record"),
            TraceDecodeError::BadTag { offset } => {
                write!(f, "unknown tag at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for TraceDecodeError {}

fn class_tag(c: InstrClass) -> u8 {
    match c {
        InstrClass::Load => 0,
        InstrClass::Store => 1,
        InstrClass::IntAlu => 2,
        InstrClass::IntMove => 3,
        InstrClass::IntMul => 4,
        InstrClass::FpAlu => 5,
        InstrClass::Branch => 6,
        InstrClass::Jump => 7,
        InstrClass::Call => 8,
        InstrClass::Return => 9,
        InstrClass::Nop => 10,
    }
}

fn class_from_tag(t: u8) -> Option<InstrClass> {
    Some(match t {
        0 => InstrClass::Load,
        1 => InstrClass::Store,
        2 => InstrClass::IntAlu,
        3 => InstrClass::IntMove,
        4 => InstrClass::IntMul,
        5 => InstrClass::FpAlu,
        6 => InstrClass::Branch,
        7 => InstrClass::Jump,
        8 => InstrClass::Call,
        9 => InstrClass::Return,
        10 => InstrClass::Nop,
        _ => return None,
    })
}

/// Serializes records into a byte buffer.
///
/// # Example
///
/// ```
/// use fade_trace::{bench, record, SyntheticProgram};
///
/// let p = bench::by_name("mcf").unwrap();
/// let mut prog = SyntheticProgram::new(&p, 1);
/// let records: Vec<_> = (0..100).map(|_| prog.next_record()).collect();
/// let bytes = record::encode(&records);
/// let back = record::decode(&bytes).unwrap();
/// assert_eq!(records, back);
/// ```
pub fn encode(records: &[TraceRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + records.len() * 16);
    out.extend_from_slice(TRACE_MAGIC);
    for r in records {
        match r {
            TraceRecord::Instr(i) => {
                out.push(0u8);
                out.push(class_tag(i.class));
                out.extend_from_slice(&i.pc.raw().to_le_bytes());
                let mut flags = 0u8;
                if i.src1.is_some() {
                    flags |= 1;
                }
                if i.src2.is_some() {
                    flags |= 2;
                }
                if i.dest.is_some() {
                    flags |= 4;
                }
                if i.mem.is_some() {
                    flags |= 8;
                }
                if i.result_ptr {
                    flags |= 16;
                }
                out.push(flags);
                out.push(i.src1.map(Reg::index).unwrap_or(0));
                out.push(i.src2.map(Reg::index).unwrap_or(0));
                out.push(i.dest.map(Reg::index).unwrap_or(0));
                out.push(i.tid);
                if let Some(m) = i.mem {
                    out.extend_from_slice(&m.addr.raw().to_le_bytes());
                    out.push(m.size);
                }
            }
            TraceRecord::Stack(s) => {
                out.push(1u8);
                out.push(match s.kind {
                    StackUpdateKind::Call => 0,
                    StackUpdateKind::Return => 1,
                });
                out.extend_from_slice(&s.base.raw().to_le_bytes());
                out.extend_from_slice(&s.len.to_le_bytes());
                out.push(s.tid);
            }
            TraceRecord::High(h) => {
                out.push(2u8);
                match *h {
                    HighLevelEvent::Malloc { base, len, ctx } => {
                        out.push(0);
                        out.extend_from_slice(&base.raw().to_le_bytes());
                        out.extend_from_slice(&len.to_le_bytes());
                        out.extend_from_slice(&ctx.to_le_bytes());
                    }
                    HighLevelEvent::Free { base, len } => {
                        out.push(1);
                        out.extend_from_slice(&base.raw().to_le_bytes());
                        out.extend_from_slice(&len.to_le_bytes());
                    }
                    HighLevelEvent::TaintSource { base, len } => {
                        out.push(2);
                        out.extend_from_slice(&base.raw().to_le_bytes());
                        out.extend_from_slice(&len.to_le_bytes());
                    }
                    HighLevelEvent::ThreadSwitch { tid } => {
                        out.push(3);
                        out.push(tid);
                    }
                }
            }
        }
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, TraceDecodeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(TraceDecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, TraceDecodeError> {
        let s = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or(TraceDecodeError::Truncated)?;
        self.pos += 4;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }
}

/// Decodes a recorded trace.
///
/// # Errors
///
/// Returns a [`TraceDecodeError`] on a bad header, truncated stream, or
/// unknown tag.
pub fn decode(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceDecodeError> {
    if bytes.len() < 8 || &bytes[..8] != TRACE_MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let mut c = Cursor {
        buf: bytes,
        pos: 8,
    };
    let mut out = Vec::new();
    while c.pos < bytes.len() {
        let tag_offset = c.pos;
        match c.u8()? {
            0 => {
                let class = class_from_tag(c.u8()?)
                    .ok_or(TraceDecodeError::BadTag { offset: tag_offset })?;
                let pc = VirtAddr::new(c.u32()?);
                let flags = c.u8()?;
                let s1 = c.u8()?;
                let s2 = c.u8()?;
                let d = c.u8()?;
                let tid = c.u8()?;
                let mut i = AppInstr::new(pc, class)
                    .with_tid(tid)
                    .with_result_ptr(flags & 16 != 0);
                if flags & 1 != 0 {
                    i = i.with_src1(Reg::new(s1));
                }
                if flags & 2 != 0 {
                    i = i.with_src2(Reg::new(s2));
                }
                if flags & 4 != 0 {
                    i = i.with_dest(Reg::new(d));
                }
                if flags & 8 != 0 {
                    let addr = VirtAddr::new(c.u32()?);
                    let size = c.u8()?;
                    i = i.with_mem(MemRef { addr, size });
                }
                out.push(TraceRecord::Instr(i));
            }
            1 => {
                let kind = match c.u8()? {
                    0 => StackUpdateKind::Call,
                    1 => StackUpdateKind::Return,
                    _ => return Err(TraceDecodeError::BadTag { offset: tag_offset }),
                };
                let base = VirtAddr::new(c.u32()?);
                let len = c.u32()?;
                let tid = c.u8()?;
                out.push(TraceRecord::Stack(StackUpdateEvent {
                    base,
                    len,
                    kind,
                    tid,
                }));
            }
            2 => {
                let h = match c.u8()? {
                    0 => HighLevelEvent::Malloc {
                        base: VirtAddr::new(c.u32()?),
                        len: c.u32()?,
                        ctx: c.u32()?,
                    },
                    1 => HighLevelEvent::Free {
                        base: VirtAddr::new(c.u32()?),
                        len: c.u32()?,
                    },
                    2 => HighLevelEvent::TaintSource {
                        base: VirtAddr::new(c.u32()?),
                        len: c.u32()?,
                    },
                    3 => HighLevelEvent::ThreadSwitch { tid: c.u8()? },
                    _ => return Err(TraceDecodeError::BadTag { offset: tag_offset }),
                };
                out.push(TraceRecord::High(h));
            }
            _ => return Err(TraceDecodeError::BadTag { offset: tag_offset }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::program::SyntheticProgram;

    fn sample(name: &str, n: usize) -> Vec<TraceRecord> {
        let p = bench::by_name(name).unwrap();
        let mut prog = SyntheticProgram::new(&p, 42);
        (0..n).map(|_| prog.next_record()).collect()
    }

    #[test]
    fn round_trip_single_threaded() {
        let records = sample("gcc", 20_000);
        let bytes = encode(&records);
        assert_eq!(decode(&bytes).unwrap(), records);
    }

    #[test]
    fn round_trip_parallel_with_switches() {
        let records = sample("water", 20_000);
        let bytes = encode(&records);
        assert_eq!(decode(&bytes).unwrap(), records);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode(&[]);
        assert_eq!(bytes.len(), 8);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOTATRACE"), Err(TraceDecodeError::BadMagic));
        assert_eq!(decode(b""), Err(TraceDecodeError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let records = sample("mcf", 100);
        let bytes = encode(&records);
        for cut in [bytes.len() - 1, bytes.len() - 3, 9] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, TraceDecodeError::Truncated | TraceDecodeError::BadTag { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_tag_reports_offset() {
        let mut bytes = encode(&[]);
        bytes.push(9); // unknown record tag
        assert_eq!(
            decode(&bytes),
            Err(TraceDecodeError::BadTag { offset: 8 })
        );
    }

    #[test]
    fn compact_encoding() {
        let records = sample("gcc", 10_000);
        let bytes = encode(&records);
        let per_record = bytes.len() as f64 / records.len() as f64;
        assert!(per_record < 16.0, "got {per_record:.1} bytes/record");
    }
}
