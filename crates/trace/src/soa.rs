//! Trace-record decoding straight into structure-of-arrays event blocks.
//!
//! The scalar pipeline decodes a [`TraceRecord`] chunk into a `Vec` of
//! array-of-structs [`AppEvent`]s and only later (in the vectorized
//! engine) regroups instruction events into lanes. [`SoaDecoder`] skips
//! that round trip: instruction records go straight into
//! [`EventBlock`] lanes via [`EventBlock::push_app`] (event-ID
//! assignment and field extraction fused into the lane fill), and
//! non-instruction records flush the partial block so program order is
//! preserved.
//!
//! The decoder is *stateful across chunks*: a block may straddle a
//! [`TraceReader`] chunk boundary — feed each chunk's records with
//! [`SoaDecoder::push`] and the half-filled block simply keeps filling
//! from the next chunk. Call [`SoaDecoder::finish`] at end of stream to
//! emit the misaligned tail (a short block). The framing never changes
//! the decoded event sequence: flattening the emitted items always
//! reproduces the record stream's event order exactly.

use fade_isa::{AppEvent, AppInstr, EventBlock};

use crate::file::{TraceFileError, TraceReader};
use crate::program::TraceRecord;

/// One item of a SoA-decoded stream: a lane-packed block of
/// consecutive instruction events, or a passthrough event that cut the
/// block short (stack updates, high-level events).
// The size gap is the point: blocks are built and consumed in place on
// the hot decode path, and boxing them would trade the lane-fill's
// cache locality for an allocation per block.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum SoaItem {
    /// `1..=width` consecutive instruction events, lane-packed.
    Block(EventBlock),
    /// A non-instruction event in its program-order position.
    Event(AppEvent),
}

impl SoaItem {
    /// Number of application events this item carries.
    pub fn len(&self) -> usize {
        match self {
            SoaItem::Block(b) => b.len(),
            SoaItem::Event(_) => 1,
        }
    }

    /// `true` when the item carries no events (an empty block; never
    /// produced by [`SoaDecoder`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Streaming [`TraceRecord`] → [`SoaItem`] decoder with a selection
/// predicate (the monitor's event filter) applied before lane fill.
///
/// Unselected instruction records are dropped — the same contract as
/// the per-event decode path, where the monitor's `selects` filter
/// runs before events reach the accelerator.
pub struct SoaDecoder<S> {
    select: S,
    block: EventBlock,
}

impl<S: FnMut(&AppInstr) -> bool> SoaDecoder<S> {
    /// Creates a decoder emitting blocks of up to `width` lanes
    /// (clamped to `1..=`[`BLOCK_LANES`](fade_isa::BLOCK_LANES)).
    pub fn new(width: usize, select: S) -> Self {
        SoaDecoder {
            select,
            block: EventBlock::new(width),
        }
    }

    /// Feeds one record, appending any completed items to `out`.
    ///
    /// Instruction records fill lanes (a full block is emitted and the
    /// next lane fill starts a fresh one); non-instruction records
    /// flush the partial block first, then pass through, so emitted
    /// items replay in exact program order.
    pub fn push(&mut self, rec: &TraceRecord, out: &mut Vec<SoaItem>) {
        match rec {
            TraceRecord::Instr(i) => {
                if !(self.select)(i) {
                    return;
                }
                if !self.block.push_app(i) {
                    self.emit_block(out);
                    let ok = self.block.push_app(i);
                    debug_assert!(ok, "a freshly emitted block has free lanes");
                }
                if self.block.is_full() {
                    self.emit_block(out);
                }
            }
            TraceRecord::Stack(s) => {
                self.emit_block(out);
                out.push(SoaItem::Event(AppEvent::StackUpdate(*s)));
            }
            TraceRecord::High(h) => {
                self.emit_block(out);
                out.push(SoaItem::Event(AppEvent::HighLevel(*h)));
            }
        }
    }

    /// Feeds a slice of records (chunk-at-a-time decoding; partial
    /// blocks carry over to the next call).
    pub fn push_all(&mut self, recs: &[TraceRecord], out: &mut Vec<SoaItem>) {
        for r in recs {
            self.push(r, out);
        }
    }

    /// Flushes the misaligned tail — the partial block buffered after
    /// the last full one — at end of stream.
    pub fn finish(&mut self, out: &mut Vec<SoaItem>) {
        self.emit_block(out);
    }

    /// Lanes currently buffered in the unfinished block.
    pub fn pending(&self) -> usize {
        self.block.len()
    }

    fn emit_block(&mut self, out: &mut Vec<SoaItem>) {
        if !self.block.is_empty() {
            let width = self.block.width();
            out.push(SoaItem::Block(std::mem::replace(
                &mut self.block,
                EventBlock::new(width),
            )));
        }
    }
}

/// Decodes an entire trace into SoA items, selecting every
/// instruction: blocks of up to `width` lanes plus passthrough
/// non-instruction events, in program order. Chunk boundaries inside
/// the file are invisible in the output.
pub fn read_trace_soa<R: std::io::Read>(
    reader: &mut TraceReader<R>,
    width: usize,
) -> Result<Vec<SoaItem>, TraceFileError> {
    let mut dec = SoaDecoder::new(width, |_| true);
    let mut out = Vec::new();
    while let Some(rec) = reader.next_record()? {
        dec.push(&rec, &mut out);
    }
    dec.finish(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::program::SyntheticProgram;
    use fade_isa::instr_event_for;

    fn sample_records(n: usize) -> Vec<TraceRecord> {
        let profile = bench::by_name("gcc").unwrap();
        let mut prog = SyntheticProgram::new(&profile, 7);
        (0..n).map(|_| prog.next_record()).collect()
    }

    /// Flattening the SoA items must reproduce the AoS decode exactly.
    fn flatten(items: &[SoaItem]) -> Vec<AppEvent> {
        let mut out = Vec::new();
        for it in items {
            match it {
                SoaItem::Block(b) => {
                    for i in 0..b.len() {
                        out.push(AppEvent::Instr(b.lane(i)));
                    }
                }
                SoaItem::Event(e) => out.push(*e),
            }
        }
        out
    }

    fn aos_decode(recs: &[TraceRecord]) -> Vec<AppEvent> {
        recs.iter()
            .map(|r| match r {
                TraceRecord::Instr(i) => AppEvent::Instr(instr_event_for(i)),
                TraceRecord::Stack(s) => AppEvent::StackUpdate(*s),
                TraceRecord::High(h) => AppEvent::HighLevel(*h),
            })
            .collect()
    }

    #[test]
    fn soa_decode_matches_aos_in_program_order() {
        let recs = sample_records(3000);
        for width in [1, 3, 8, 16] {
            let mut dec = SoaDecoder::new(width, |_| true);
            let mut items = Vec::new();
            dec.push_all(&recs, &mut items);
            dec.finish(&mut items);
            assert_eq!(flatten(&items), aos_decode(&recs), "width {width}");
            for it in &items {
                if let SoaItem::Block(b) = it {
                    assert!(!b.is_empty() && b.len() <= width);
                }
            }
        }
    }

    #[test]
    fn chunked_feeding_is_invisible() {
        let recs = sample_records(1500);
        let mut whole = Vec::new();
        let mut dec = SoaDecoder::new(8, |_| true);
        dec.push_all(&recs, &mut whole);
        dec.finish(&mut whole);

        // Same records fed in awkward chunk sizes (prime, tiny, huge).
        for chunk in [1usize, 7, 13, 64, 1024] {
            let mut items = Vec::new();
            let mut dec = SoaDecoder::new(8, |_| true);
            for c in recs.chunks(chunk) {
                dec.push_all(c, &mut items);
            }
            dec.finish(&mut items);
            assert_eq!(flatten(&items), flatten(&whole), "chunk {chunk}");
        }
    }

    #[test]
    fn select_predicate_drops_lanes() {
        let recs = sample_records(800);
        let mut dec = SoaDecoder::new(16, |i: &AppInstr| i.mem.is_some());
        let mut items = Vec::new();
        dec.push_all(&recs, &mut items);
        dec.finish(&mut items);
        let selected: Vec<TraceRecord> = recs
            .iter()
            .filter(|r| match r {
                TraceRecord::Instr(i) => i.mem.is_some(),
                _ => true,
            })
            .copied()
            .collect();
        assert_eq!(flatten(&items), aos_decode(&selected));
    }
}
