//! Block-framing boundary tests for the SoA decode path: blocks that
//! straddle `.fadet` chunk boundaries, misaligned tails, and tiny
//! chunk sizes must all be invisible — the SoA-decoded event sequence
//! equals the flat AoS decode, record for record.

use fade_isa::{instr_event_for, AppEvent};
use fade_trace::soa::{SoaDecoder, SoaItem};
use fade_trace::{
    bench, read_trace_soa, SyntheticProgram, TraceMeta, TraceReader, TraceRecord, TraceWriter,
};

fn sample_records(n: usize, seed: u64) -> Vec<TraceRecord> {
    let profile = bench::by_name("hmmer").unwrap();
    let mut prog = SyntheticProgram::new(&profile, seed);
    (0..n).map(|_| prog.next_record()).collect()
}

fn flatten(items: &[SoaItem]) -> Vec<AppEvent> {
    let mut out = Vec::new();
    for it in items {
        match it {
            SoaItem::Block(b) => {
                for i in 0..b.len() {
                    out.push(AppEvent::Instr(b.lane(i)));
                }
            }
            SoaItem::Event(e) => out.push(*e),
        }
    }
    out
}

fn aos_decode(recs: &[TraceRecord]) -> Vec<AppEvent> {
    recs.iter()
        .map(|r| match r {
            TraceRecord::Instr(i) => AppEvent::Instr(instr_event_for(i)),
            TraceRecord::Stack(s) => AppEvent::StackUpdate(*s),
            TraceRecord::High(h) => AppEvent::HighLevel(*h),
        })
        .collect()
}

fn encode_with_chunks(recs: &[TraceRecord], chunk_records: usize) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new(), &TraceMeta::new("hmmer", 11))
        .unwrap()
        .with_chunk_records(chunk_records);
    w.write_all(recs).unwrap();
    w.finish().unwrap()
}

/// Chunk sizes chosen so SoA blocks straddle every chunk boundary
/// (chunk lengths prime to every lane width): the decoded stream must
/// be identical to the flat decode regardless of framing.
#[test]
fn blocks_straddling_reader_chunks_decode_identically() {
    let recs = sample_records(4000, 11);
    let flat = aos_decode(&recs);
    for chunk_records in [7usize, 13, 100, 257, 1000] {
        let bytes = encode_with_chunks(&recs, chunk_records);
        for width in [1usize, 8, 16] {
            let mut reader = TraceReader::new(&bytes[..]).unwrap();
            let items = read_trace_soa(&mut reader, width).unwrap();
            assert_eq!(
                flatten(&items),
                flat,
                "chunk_records={chunk_records} width={width}"
            );
            for it in &items {
                if let SoaItem::Block(b) = it {
                    assert!(!b.is_empty() && b.len() <= width);
                }
            }
        }
    }
}

/// Driving the decoder with `next_records_into` chunks of awkward
/// sizes (the batched engine's collection pattern) carries partial
/// blocks across calls without reordering or loss.
#[test]
fn chunked_reader_feeding_matches_whole_trace_decode() {
    let recs = sample_records(2500, 23);
    let bytes = encode_with_chunks(&recs, 300);
    let mut whole_reader = TraceReader::new(&bytes[..]).unwrap();
    let whole = read_trace_soa(&mut whole_reader, 16).unwrap();

    for take in [1usize, 9, 64, 511] {
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let mut dec = SoaDecoder::new(16, |_| true);
        let mut items = Vec::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if reader.next_records_into(&mut buf, take).unwrap() == 0 {
                break;
            }
            dec.push_all(&buf, &mut items);
        }
        dec.finish(&mut items);
        assert_eq!(flatten(&items), flatten(&whole), "take={take}");
    }
}

/// A trace whose length is prime relative to every width leaves a
/// misaligned tail shorter than a lane; `finish` must emit it exactly
/// once and `pending` must report it beforehand.
#[test]
fn misaligned_tails_are_flushed_exactly_once() {
    let recs: Vec<TraceRecord> = sample_records(6000, 5)
        .into_iter()
        .filter(|r| matches!(r, TraceRecord::Instr(_)))
        .take(1009) // prime: tail of 1 at w=16? 1009 = 63*16 + 1
        .collect();
    assert_eq!(recs.len(), 1009);
    for width in [2usize, 8, 16] {
        let mut dec = SoaDecoder::new(width, |_| true);
        let mut items = Vec::new();
        dec.push_all(&recs, &mut items);
        let tail = 1009 % width;
        assert_eq!(dec.pending(), tail, "width={width}");
        dec.finish(&mut items);
        assert_eq!(dec.pending(), 0);
        dec.finish(&mut items); // idempotent: nothing left to emit
        let total: usize = items.iter().map(SoaItem::len).sum();
        assert_eq!(total, 1009, "width={width}");
        if tail > 0 {
            let SoaItem::Block(last) = items.last().unwrap() else {
                panic!("tail must be a block");
            };
            assert_eq!(last.len(), tail, "width={width}: short tail block");
        }
    }
}
