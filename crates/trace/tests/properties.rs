//! Property tests for the synthetic program engine: structural
//! invariants every generated trace must satisfy.

use fade_isa::{layout, HighLevelEvent, StackUpdateKind};
use fade_trace::{bench, SyntheticProgram, TraceRecord};
use proptest::prelude::*;

fn benchmarks() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("astar"),
        Just("gcc"),
        Just("mcf"),
        Just("omnet"),
        Just("water"),
        Just("astar-taint"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Memory operands are word-aligned and land in known segments;
    /// stack frames nest properly (calls and returns balance as a
    /// prefix); high-level events carry sane ranges.
    #[test]
    fn trace_structural_invariants(name in benchmarks(), seed in 0u64..1000) {
        let profile = bench::by_name(name).unwrap();
        let mut prog = SyntheticProgram::new(&profile, seed);
        let mut depth: i64 = 0;
        let mut records = 0u64;
        while records < 30_000 {
            records += 1;
            match prog.next_record() {
                TraceRecord::Instr(i) => {
                    if let Some(m) = i.mem {
                        prop_assert_eq!(m.addr.raw() % 4, 0, "unaligned access");
                        prop_assert!(
                            layout::is_stack(m.addr)
                                || layout::is_heap(m.addr)
                                || layout::is_globals(m.addr),
                            "address {} outside all segments",
                            m.addr
                        );
                    }
                    prop_assert!((i.tid as usize) < profile.threads.max(1) as usize + 1);
                }
                TraceRecord::Stack(s) => {
                    prop_assert!(layout::is_stack(s.base), "frame at {}", s.base);
                    prop_assert!(s.len > 0 && s.len < (1 << 20));
                    match s.kind {
                        StackUpdateKind::Call => depth += 1,
                        StackUpdateKind::Return => depth -= 1,
                    }
                    prop_assert!(depth >= -1, "returns may not outnumber calls");
                }
                TraceRecord::High(h) => match h {
                    HighLevelEvent::Malloc { base, len, .. } => {
                        prop_assert!(layout::is_heap(base));
                        prop_assert!(len >= 4);
                    }
                    HighLevelEvent::Free { base, len } => {
                        prop_assert!(layout::is_heap(base));
                        prop_assert!(len >= 4);
                    }
                    HighLevelEvent::TaintSource { base, len } => {
                        prop_assert!(layout::is_heap(base));
                        prop_assert!(len > 0);
                    }
                    HighLevelEvent::ThreadSwitch { tid } => {
                        prop_assert!((tid as usize) < profile.threads.max(1) as usize);
                    }
                },
            }
        }
    }

    /// Frees only release previously malloc'd blocks, matching base and
    /// length (no double frees, no invented blocks).
    #[test]
    fn frees_match_mallocs(name in benchmarks(), seed in 0u64..1000) {
        use std::collections::HashMap;
        let profile = bench::by_name(name).unwrap();
        let mut prog = SyntheticProgram::new(&profile, seed);
        let mut live: HashMap<u32, u32> = HashMap::new();
        for _ in 0..60_000 {
            match prog.next_record() {
                TraceRecord::High(HighLevelEvent::Malloc { base, len, .. }) => {
                    prop_assert!(
                        live.insert(base.raw(), len).is_none(),
                        "block reallocated while live"
                    );
                }
                TraceRecord::High(HighLevelEvent::Free { base, len }) => {
                    match live.remove(&base.raw()) {
                        Some(l) => prop_assert_eq!(l, len, "free length mismatch"),
                        None => prop_assert!(false, "free of unknown block {}", base),
                    }
                }
                _ => {}
            }
        }
    }

    /// Generation is a pure function of (profile, seed).
    #[test]
    fn generation_is_deterministic(name in benchmarks(), seed in 0u64..1000) {
        let profile = bench::by_name(name).unwrap();
        let mut a = SyntheticProgram::new(&profile, seed);
        let mut b = SyntheticProgram::new(&profile, seed);
        for _ in 0..2_000 {
            prop_assert_eq!(a.next_record(), b.next_record());
        }
    }
}
