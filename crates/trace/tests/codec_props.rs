//! Property tests for the recorded-trace codec and the `.fadet`
//! container: the encode→decode round-trip is the identity for
//! *arbitrary* record sequences (not just generator output), whatever
//! the chunking; and no byte-level corruption — truncation, bit flips,
//! random garbage — ever panics the decoder or slips through as a
//! silently wrong trace.

use fade_isa::{
    AppInstr, HighLevelEvent, InstrClass, MemRef, Reg, StackUpdateEvent, StackUpdateKind,
    VirtAddr,
};
use fade_trace::file::{decode_trace, encode_trace, TraceFileError, TraceMeta, TraceWriter};
use fade_trace::TraceRecord;
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = InstrClass> {
    (0usize..InstrClass::ALL.len()).prop_map(|i| InstrClass::ALL[i])
}

fn arb_opt_reg() -> impl Strategy<Value = Option<Reg>> {
    prop_oneof![Just(None), (0u8..32).prop_map(|i| Some(Reg::new(i)))]
}

/// Access sizes: the architectural ones plus arbitrary bytes, so the
/// explicit-size escape path is exercised.
fn arb_mem() -> impl Strategy<Value = Option<MemRef>> {
    let size = prop_oneof![Just(4u8), Just(1u8), Just(2u8), Just(8u8), any::<u8>()];
    prop_oneof![
        Just(None),
        (any::<u32>(), size).prop_map(|(addr, size)| Some(MemRef {
            addr: VirtAddr::new(addr),
            size,
        })),
    ]
}

fn arb_instr() -> impl Strategy<Value = TraceRecord> {
    (
        (any::<u32>(), arb_class()),
        (arb_opt_reg(), arb_opt_reg(), arb_opt_reg()),
        arb_mem(),
        (any::<u8>(), any::<bool>()),
    )
        .prop_map(|((pc, class), (src1, src2, dest), mem, (tid, result_ptr))| {
            let mut i = AppInstr::new(VirtAddr::new(pc), class)
                .with_tid(tid)
                .with_result_ptr(result_ptr);
            if let Some(r) = src1 {
                i = i.with_src1(r);
            }
            if let Some(r) = src2 {
                i = i.with_src2(r);
            }
            if let Some(r) = dest {
                i = i.with_dest(r);
            }
            if let Some(m) = mem {
                i = i.with_mem(m);
            }
            TraceRecord::Instr(i)
        })
}

fn arb_stack() -> impl Strategy<Value = TraceRecord> {
    (any::<u32>(), any::<u32>(), any::<bool>(), any::<u8>()).prop_map(
        |(base, len, call, tid)| {
            TraceRecord::Stack(StackUpdateEvent {
                base: VirtAddr::new(base),
                len,
                kind: if call {
                    StackUpdateKind::Call
                } else {
                    StackUpdateKind::Return
                },
                tid,
            })
        },
    )
}

/// Every [`HighLevelEvent`] variant.
fn arb_high() -> impl Strategy<Value = TraceRecord> {
    prop_oneof![
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(base, len, ctx)| {
            TraceRecord::High(HighLevelEvent::Malloc {
                base: VirtAddr::new(base),
                len,
                ctx,
            })
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(base, len)| TraceRecord::High(
            HighLevelEvent::Free {
                base: VirtAddr::new(base),
                len,
            }
        )),
        (any::<u32>(), any::<u32>()).prop_map(|(base, len)| TraceRecord::High(
            HighLevelEvent::TaintSource {
                base: VirtAddr::new(base),
                len,
            }
        )),
        any::<u8>().prop_map(|tid| TraceRecord::High(HighLevelEvent::ThreadSwitch { tid })),
    ]
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    prop_oneof![arb_instr(), arb_stack(), arb_high()]
}

fn meta() -> TraceMeta {
    TraceMeta::new("arbitrary", 7)
}

fn encode_chunked(records: &[TraceRecord], chunk_records: usize) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new(), &meta())
        .unwrap()
        .with_chunk_records(chunk_records);
    w.write_all(records).unwrap();
    w.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode→decode is the identity for arbitrary record sequences,
    /// across chunk sizes down to one record per chunk — so every
    /// prediction-context reset at a chunk boundary is exercised, and
    /// records straddling boundaries in every possible way survive.
    #[test]
    fn round_trip_is_identity(
        records in prop::collection::vec(arb_record(), 0..300),
        chunk_records in 1usize..80,
    ) {
        let bytes = encode_chunked(&records, chunk_records);
        let (m, back) = decode_trace(&bytes)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(m, meta());
        prop_assert_eq!(back, records);
    }

    /// Chunking is invisible: any two chunk sizes produce byte streams
    /// that decode to the same records.
    #[test]
    fn chunking_does_not_change_the_decoded_trace(
        records in prop::collection::vec(arb_record(), 1..200),
        a in 1usize..50,
        b in 50usize..5000,
    ) {
        let da = decode_trace(&encode_chunked(&records, a))
            .map_err(|e| TestCaseError::fail(format!("decode a: {e}")))?;
        let db = decode_trace(&encode_chunked(&records, b))
            .map_err(|e| TestCaseError::fail(format!("decode b: {e}")))?;
        prop_assert_eq!(da.1, db.1);
    }

    /// Every strict prefix of a valid file fails with a typed error —
    /// the mandatory trailer means truncation can never read as a
    /// shorter-but-valid trace, and it never panics.
    #[test]
    fn truncation_is_always_a_typed_error(
        records in prop::collection::vec(arb_record(), 0..120),
        cut_seed in any::<u64>(),
    ) {
        let bytes = encode_chunked(&records, 32);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(decode_trace(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
    }

    /// Any single bit flip anywhere in the file is detected: header and
    /// trailer fields are covered by their own CRCs, payloads by the
    /// per-chunk CRC, and structure fields fail validation. Never Ok,
    /// never a panic.
    #[test]
    fn single_bit_flips_are_always_detected(
        records in prop::collection::vec(arb_record(), 1..120),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode_chunked(&records, 32);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        match decode_trace(&bytes) {
            Err(_) => {}
            Ok((m, back)) => {
                // The only acceptable "Ok" would be a flip that decodes
                // back to the identical trace — impossible for a real
                // flip, so flag it loudly.
                prop_assert!(
                    m == meta() && back == records,
                    "flip at byte {pos} bit {bit} produced a different valid trace"
                );
                prop_assert!(false, "flip at byte {pos} bit {bit} went undetected");
            }
        }
    }

    /// Feeding arbitrary garbage to the decoder returns an error (or an
    /// empty-but-valid trace if the bytes happen to be one) without
    /// panicking — the fuzz guarantee the robustness contract promises.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_trace(&bytes);
    }

    /// Same, but with a valid header prefix so the fuzz reaches the
    /// chunk machinery instead of dying at the magic check.
    #[test]
    fn garbage_after_a_valid_header_never_panics(tail in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut bytes = encode_trace(&meta(), &[]);
        // Strip the trailer (13 bytes), then append garbage.
        bytes.truncate(bytes.len() - 13);
        bytes.extend_from_slice(&tail);
        let _ = decode_trace(&bytes);
    }
}

/// Truncation mid-file names a typed error for *every* cut point, not
/// just sampled ones (exhaustive on a small trace).
#[test]
fn exhaustive_truncation_sweep() {
    let records: Vec<TraceRecord> = (0..64u32)
        .map(|i| {
            TraceRecord::Instr(
                AppInstr::new(VirtAddr::new(0x1000 + 4 * i), InstrClass::Load)
                    .with_dest(Reg::new(5))
                    .with_mem(MemRef::word(VirtAddr::new(0x8000_0000 + 8 * i))),
            )
        })
        .collect();
    let bytes = encode_chunked(&records, 16);
    for cut in 0..bytes.len() {
        match decode_trace(&bytes[..cut]) {
            Err(
                TraceFileError::BadMagic
                | TraceFileError::BadHeader
                | TraceFileError::Truncated { .. },
            ) => {}
            other => panic!("cut at {cut}: unexpected {other:?}"),
        }
    }
}
