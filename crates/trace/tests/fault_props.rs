//! Seeded fault-injection sweep over the `.fadet` reader.
//!
//! For every `(seed, fault kind)` pair the sweep damages a recorded
//! trace deterministically and asserts the reader's contract:
//!
//! * no injected fault ever panics, in either read mode;
//! * strict mode never silently corrupts: it returns the original
//!   records bit-exactly or a typed error;
//! * recover mode returns a chunk-aligned subsequence of the original
//!   records, with the loss accounted in the `DegradationReport`;
//! * transport-only faults (short reads) are fully lossless.
//!
//! The sweep width defaults to 256 seeds per kind; override with the
//! `FAULT_SEEDS` environment variable (CI runs the full sweep in
//! release mode).

use fade_trace::faultinject::{FaultKind, FaultPlan, FaultyReader};
use fade_trace::file::decode_trace_recovering;
use fade_trace::{bench, decode_trace, DegradationReport, SyntheticProgram, TraceMeta, TraceRecord};

const PER_CHUNK: usize = 256;

fn seeds() -> u64 {
    std::env::var("FAULT_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

fn sample_trace() -> (Vec<TraceRecord>, Vec<u8>) {
    let p = bench::by_name("gcc").unwrap();
    let mut prog = SyntheticProgram::new(&p, 42);
    let records: Vec<_> = (0..2_000).map(|_| prog.next_record()).collect();
    let mut w = fade_trace::TraceWriter::new(Vec::new(), &TraceMeta::new("gcc", 42))
        .unwrap()
        .with_chunk_records(PER_CHUNK);
    w.write_all(&records).unwrap();
    let bytes = w.finish().unwrap();
    (records, bytes)
}

/// `recovered` must be a concatenation of a subset of the original
/// writer chunks, in order — recovery drops whole chunks, never
/// reorders or invents records.
fn is_chunk_subsequence(recovered: &[TraceRecord], original: &[TraceRecord]) -> bool {
    let chunks: Vec<&[TraceRecord]> = original.chunks(PER_CHUNK).collect();
    let mut pos = 0;
    let mut ci = 0;
    while pos < recovered.len() {
        let mut matched = false;
        while ci < chunks.len() {
            let c = chunks[ci];
            ci += 1;
            if recovered[pos..].starts_with(c) {
                pos += c.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return false;
        }
    }
    true
}

fn check_accounting(
    ctx: &str,
    recovered: &[TraceRecord],
    report: &DegradationReport,
    original: &[TraceRecord],
) {
    assert!(
        is_chunk_subsequence(recovered, original),
        "{ctx}: recovered records are not a chunk-aligned subsequence"
    );
    if report.is_clean() {
        assert_eq!(recovered, original, "{ctx}: clean report but altered records");
    }
    let lost = original.len() as u64 - recovered.len() as u64;
    if report.trailer_verified {
        assert_eq!(
            report.records_lost, lost,
            "{ctx}: trailer-verified loss accounting is exact"
        );
    } else {
        assert!(
            report.records_lost <= lost,
            "{ctx}: best-effort loss accounting is a lower bound ({} > {lost})",
            report.records_lost
        );
        assert!(
            report.truncated_tail || !report.faults.is_empty(),
            "{ctx}: unverified trailer must be accounted"
        );
    }
    if lost > 0 {
        assert!(
            !report.faults.is_empty(),
            "{ctx}: {lost} records lost with no fault recorded"
        );
    }
}

#[test]
fn fault_sweep_never_panics_or_silently_corrupts() {
    let (records, bytes) = sample_trace();
    let n = seeds();
    for kind in FaultKind::ALL {
        for seed in 0..n {
            let plan = FaultPlan::seeded(seed, kind, bytes.len() as u64);
            let ctx = format!("{kind:?} seed {seed} (plan {plan:?})");

            // Strict mode over the faulty transport: typed error or
            // bit-exact records, never a panic, never silent damage.
            let strict = fade_trace::TraceReader::new(FaultyReader::new(&bytes[..], plan))
                .and_then(|mut r| r.read_all());
            match (kind, &strict) {
                (FaultKind::ShortRead, got) => {
                    assert_eq!(
                        got.as_ref().expect("short reads are lossless"),
                        &records,
                        "{ctx}"
                    );
                }
                (_, Ok(got)) => assert_eq!(got, &records, "{ctx}: silent corruption"),
                (_, Err(_)) => {}
            }

            // Recover mode: same transport, but chunk faults are
            // skipped and accounted.
            let recover = fade_trace::TraceReader::new(FaultyReader::new(&bytes[..], plan))
                .map(|r| r.with_recovery())
                .and_then(|mut r| {
                    let recs = r.read_all()?;
                    Ok((recs, r.degradation().cloned().unwrap()))
                });
            match (kind, recover) {
                (FaultKind::ShortRead, got) => {
                    let (recs, report) = got.expect("short reads are lossless");
                    assert_eq!(recs, records, "{ctx}");
                    assert!(report.is_clean(), "{ctx}: {report:?}");
                }
                (FaultKind::IoError, got) => {
                    // A dying transport is an environment failure, not
                    // data corruption: typed, in both modes.
                    match got {
                        Err(fade_trace::TraceFileError::Io(_)) => {}
                        Err(other) => panic!("{ctx}: expected Io error, got {other:?}"),
                        Ok((recs, report)) => {
                            // The fault offset can land in bytes the
                            // reader never needs (nothing after the
                            // trailer exists, so this means the fault
                            // hit exactly at end-of-stream).
                            assert_eq!(recs, records, "{ctx}");
                            assert!(report.is_clean(), "{ctx}: {report:?}");
                        }
                    }
                }
                (_, Ok((recs, report))) => check_accounting(&ctx, &recs, &report, &records),
                // Header faults are not recoverable: still typed.
                (_, Err(_)) => {}
            }
        }
    }
}

#[test]
fn fault_sweep_is_deterministic() {
    let (_, bytes) = sample_trace();
    for kind in FaultKind::ALL {
        for seed in 0..16 {
            let plan = FaultPlan::seeded(seed, kind, bytes.len() as u64);
            let run = || {
                fade_trace::TraceReader::new(FaultyReader::new(&bytes[..], plan))
                    .map(|r| r.with_recovery())
                    .and_then(|mut r| {
                        let recs = r.read_all()?;
                        Ok((recs, r.degradation().cloned().unwrap()))
                    })
            };
            match (run(), run()) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("nondeterministic outcome: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn zero_fault_modes_agree_bit_exactly() {
    let (records, bytes) = sample_trace();
    let (_, strict) = decode_trace(&bytes).unwrap();
    let (_, recovered, report) = decode_trace_recovering(&bytes).unwrap();
    assert_eq!(strict, records);
    assert_eq!(recovered, records);
    assert!(report.is_clean());
    assert!(report.trailer_verified);
}
