//! # fade-report
//!
//! The one JSON writer shared by everything in this repository that
//! emits JSON: the `reproduce_all` bench artifact
//! (`BENCH_pipeline.json`) and the `faded` service's JSON-lines report
//! stream. One writer means the two report shapes cannot drift — a row
//! rendered by the daemon and a row rendered by the bench harness go
//! through the same escaping and the same number formatting.
//!
//! The writer is deliberately *not* a serde: every emitter in this
//! repo builds flat objects with explicitly chosen float precision
//! (rates at `{:.0}`, ratios at `{:.3}`/`{:.4}`), because the artifact
//! is diffed across PRs and format stability is part of its contract.
//! [`JsonObject`] makes that precision explicit per field.
//!
//! # Example
//!
//! ```
//! use fade_report::JsonObject;
//!
//! let row = JsonObject::new()
//!     .str("benchmark", "hmmer")
//!     .uint("events", 200_000)
//!     .float("speedup", 4.5678, 3)
//!     .opt_float("rel_half_width", None, 4)
//!     .render();
//! assert_eq!(
//!     row,
//!     r#"{"benchmark": "hmmer", "events": 200000, "speedup": 4.568, "rel_half_width": null}"#
//! );
//! ```

use std::fmt::Write as _;

/// Escapes `s` for use inside a JSON string literal.
///
/// Handles the two mandatory escapes (`"` and `\`), the common control
/// characters by name, and the rest of the C0 range as `\u00XX` —
/// everything else (UTF-8 included) passes through verbatim, which is
/// valid JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A flat JSON object under construction: fields append in call order,
/// floats carry an explicit decimal count, and [`JsonObject::render`]
/// produces the compact one-line `{"k": v, ...}` form used both for
/// artifact rows and for service report lines.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
        let _ = write!(self.buf, "\"{}\": ", escape(key));
    }

    /// A string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// An unsigned integer field.
    pub fn uint(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// A boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// A float field rendered with exactly `decimals` fractional
    /// digits (`decimals == 0` renders an integer-looking literal,
    /// the artifact's convention for event rates).
    pub fn float(mut self, key: &str, value: f64, decimals: usize) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value:.decimals$}");
        self
    }

    /// An optional float: `null` when absent, else as [`JsonObject::float`].
    pub fn opt_float(self, key: &str, value: Option<f64>, decimals: usize) -> Self {
        match value {
            Some(v) => self.float(key, v, decimals),
            None => self.null(key),
        }
    }

    /// An optional unsigned integer: `null` when absent.
    pub fn opt_uint(self, key: &str, value: Option<u64>) -> Self {
        match value {
            Some(v) => self.uint(key, v),
            None => self.null(key),
        }
    }

    /// An explicit `null` field.
    pub fn null(mut self, key: &str) -> Self {
        self.key(key);
        self.buf.push_str("null");
        self
    }

    /// An array field of pre-rendered JSON values (typically
    /// [`JsonObject::render`] outputs), joined inline.
    pub fn array(mut self, key: &str, values: &[String]) -> Self {
        self.key(key);
        self.buf.push('[');
        self.buf.push_str(&values.join(", "));
        self.buf.push(']');
        self
    }

    /// A nested pre-rendered JSON value (object, array, or literal)
    /// embedded verbatim — the caller guarantees it is valid JSON.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// The compact `{"k": v, ...}` rendering.
    pub fn render(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// The top-level `BENCH_pipeline.json` document: a schema tag plus
/// named row sections, rendered in the stable indented layout the
/// artifact has carried since v1 (rows one per line, four-space
/// indent) so cross-PR diffs stay line-oriented.
#[derive(Clone, Debug)]
pub struct JsonDocument {
    schema: String,
    sections: Vec<(String, Vec<String>)>,
}

impl JsonDocument {
    /// A document with the given schema tag.
    pub fn new(schema: impl Into<String>) -> Self {
        JsonDocument {
            schema: schema.into(),
            sections: Vec::new(),
        }
    }

    /// Appends a named section of pre-rendered rows.
    pub fn section(mut self, name: impl Into<String>, rows: Vec<String>) -> Self {
        self.sections.push((name.into(), rows));
        self
    }

    /// Renders the full document (trailing newline included).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"schema\": \"{}\"", escape(&self.schema));
        for (name, rows) in &self.sections {
            let _ = write!(out, ",\n  \"{}\": [\n", escape(name));
            let indented: Vec<String> = rows.iter().map(|r| format!("    {r}")).collect();
            out.push_str(&indented.join(",\n"));
            out.push_str("\n  ]");
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("péché"), "péché");
    }

    #[test]
    fn field_order_and_precision_are_explicit() {
        let row = JsonObject::new()
            .str("name", "gcc")
            .uint("n", 7)
            .bool("ok", true)
            .float("rate", 1234.567, 0)
            .float("ratio", 0.123456, 4)
            .opt_float("ci", Some(0.05), 4)
            .opt_float("missing", None, 4)
            .render();
        assert_eq!(
            row,
            r#"{"name": "gcc", "n": 7, "ok": true, "rate": 1235, "ratio": 0.1235, "ci": 0.0500, "missing": null}"#
        );
    }

    #[test]
    fn arrays_and_raw_nest_prerendered_values() {
        let inner = JsonObject::new().uint("stratum", 0).render();
        let row = JsonObject::new()
            .array("strata", &[inner.clone(), inner])
            .raw("degradation", "null")
            .render();
        assert_eq!(
            row,
            r#"{"strata": [{"stratum": 0}, {"stratum": 0}], "degradation": null}"#
        );
    }

    #[test]
    fn document_renders_the_stable_artifact_layout() {
        let doc = JsonDocument::new("fade-pipeline-throughput/v8")
            .section("results", vec!["{\"a\": 1}".to_string(), "{\"b\": 2}".to_string()])
            .render();
        assert_eq!(
            doc,
            "{\n  \"schema\": \"fade-pipeline-throughput/v8\",\n  \"results\": [\n    {\"a\": 1},\n    {\"b\": 2}\n  ]\n}\n"
        );
    }
}
