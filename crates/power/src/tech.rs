//! 40 nm technology constants.
//!
//! Calibrated to the paper's synthesis results (TSMC 45 nm GS
//! standard-cell library, 0.9 V, scaled to the 40 nm half node). The
//! absolute values are first-order industry-typical numbers; the
//! synthesis overhead factor absorbs placement, routing and clock-tree
//! area that a bit-count model cannot see.

/// 40 nm (TSMC half-node) technology parameters.
#[derive(Clone, Copy, Debug)]
pub struct Tech40;

impl Tech40 {
    /// Supply voltage (V).
    pub const VDD: f64 = 0.9;
    /// SRAM cell area including array periphery share (µm²/bit).
    pub const SRAM_BIT_UM2: f64 = 0.45;
    /// CAM cell area including match-line share (µm²/bit).
    pub const CAM_BIT_UM2: f64 = 1.10;
    /// Standard-cell flip-flop area (µm²).
    pub const FLOP_UM2: f64 = 4.5;
    /// NAND2-equivalent gate area (µm²).
    pub const GATE_UM2: f64 = 0.9;
    /// Post-synthesis overhead: routing, clock tree, cell utilization.
    pub const SYNTHESIS_OVERHEAD: f64 = 2.38;
    /// Leakage power density (nW/µm²) at 0.9 V, typical corner.
    pub const LEAK_NW_PER_UM2: f64 = 45.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_are_physically_sensible() {
        assert!(Tech40::SRAM_BIT_UM2 < Tech40::CAM_BIT_UM2);
        assert!(Tech40::CAM_BIT_UM2 < Tech40::FLOP_UM2);
        assert!(Tech40::SYNTHESIS_OVERHEAD > 1.0);
        assert!(Tech40::VDD > 0.5 && Tech40::VDD < 1.2);
    }
}
