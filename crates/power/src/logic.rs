//! Per-structure synthesis-like area/power model for the FADE logic.

use crate::tech::Tech40;

/// Storage/logic class of a structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StructureKind {
    /// SRAM array (bits).
    Sram,
    /// CAM array (bits, searched associatively).
    Cam,
    /// Flip-flop array (bits).
    Flops,
    /// Random logic (NAND2-equivalent gates).
    Gates,
}

/// One FADE structure with its size and peak activity.
#[derive(Clone, Debug)]
pub struct StructureCost {
    /// Structure name (as in the paper's microarchitecture).
    pub name: &'static str,
    /// Storage class.
    pub kind: StructureKind,
    /// Bits (for arrays) or gate count (for logic).
    pub size: u64,
    /// Peak switching energy per cycle (pJ) at full activity.
    pub peak_pj_per_cycle: f64,
}

impl StructureCost {
    /// Pre-overhead cell area in µm².
    pub fn raw_area_um2(&self) -> f64 {
        let per_unit = match self.kind {
            StructureKind::Sram => Tech40::SRAM_BIT_UM2,
            StructureKind::Cam => Tech40::CAM_BIT_UM2,
            StructureKind::Flops => Tech40::FLOP_UM2,
            StructureKind::Gates => Tech40::GATE_UM2,
        };
        self.size as f64 * per_unit
    }
}

/// An area/power report: per-structure entries plus totals.
#[derive(Clone, Debug)]
pub struct AreaPowerReport {
    /// The modelled structures.
    pub entries: Vec<StructureCost>,
    /// Clock frequency used for power (GHz).
    pub freq_ghz: f64,
}

impl AreaPowerReport {
    /// Total area after synthesis overhead, in mm².
    pub fn area_mm2(&self) -> f64 {
        let raw: f64 = self.entries.iter().map(|e| e.raw_area_um2()).sum();
        raw * Tech40::SYNTHESIS_OVERHEAD / 1e6
    }

    /// Peak power (dynamic at full activity + leakage), in mW.
    pub fn peak_power_mw(&self) -> f64 {
        let dyn_pj: f64 = self.entries.iter().map(|e| e.peak_pj_per_cycle).sum();
        let dynamic_mw = dyn_pj * self.freq_ghz; // pJ * GHz = mW
        let leak_mw =
            self.area_mm2() * 1e6 * Tech40::LEAK_NW_PER_UM2 * 1e-6; // nW/µm² over µm²
        dynamic_mw + leak_mw
    }

    /// Per-structure `(name, area_mm2, peak_mw)` rows.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        self.entries
            .iter()
            .map(|e| {
                (
                    e.name,
                    e.raw_area_um2() * Tech40::SYNTHESIS_OVERHEAD / 1e6,
                    e.peak_pj_per_cycle * self.freq_ghz,
                )
            })
            .collect()
    }
}

/// The FADE logic inventory (Section 6 configuration: 128-entry event
/// table, 32-entry event queue, 16-entry unfiltered queue, 16-entry
/// FSQ, 16-entry M-TLB, 32×64b INV RF, 32×8b MD RF), with peak
/// per-cycle switching energies calibrated against the paper's
/// synthesis result (122 mW at 2 GHz).
pub fn fade_logic_report(freq_ghz: f64) -> AreaPowerReport {
    use StructureKind::*;
    let entries = vec![
        // 128 entries x 96 bits (Figure 6(b)).
        StructureCost { name: "event table", kind: Sram, size: 128 * 96, peak_pj_per_cycle: 8.0 },
        // 32 entries x 112 bits (Figure 6(a) event format).
        StructureCost { name: "event queue", kind: Sram, size: 32 * 112, peak_pj_per_cycle: 6.0 },
        // 16 entries x 128 bits (event + handler PC + token).
        StructureCost { name: "unfiltered queue", kind: Sram, size: 16 * 128, peak_pj_per_cycle: 4.0 },
        // 16 entries x 88 bits, address-searched.
        StructureCost { name: "filter store queue", kind: Cam, size: 16 * 88, peak_pj_per_cycle: 4.0 },
        // 16 entries x (20b tag + 24b frame).
        StructureCost { name: "M-TLB", kind: Cam, size: 16 * 44, peak_pj_per_cycle: 2.5 },
        // 32 x 64-bit invariant registers.
        StructureCost { name: "INV RF", kind: Flops, size: 32 * 64, peak_pj_per_cycle: 3.0 },
        // 32 x 8-bit register metadata.
        StructureCost { name: "MD RF", kind: Flops, size: 32 * 8, peak_pj_per_cycle: 1.5 },
        // 4(+1)-stage pipeline latches.
        StructureCost { name: "pipeline registers", kind: Flops, size: 600, peak_pj_per_cycle: 8.5 },
        // SUU FSM state.
        StructureCost { name: "stack-update unit", kind: Flops, size: 200, peak_pj_per_cycle: 1.5 },
        // Three comparator blocks + MS chain (Figure 7).
        StructureCost { name: "filter logic", kind: Gates, size: 6_000, peak_pj_per_cycle: 5.0 },
        // Non-blocking metadata-update logic (Section 5.2 rules).
        StructureCost { name: "MD update logic", kind: Gates, size: 3_500, peak_pj_per_cycle: 3.0 },
        // Control unit + muxing + MMIO programming interface.
        StructureCost { name: "control", kind: Gates, size: 5_500, peak_pj_per_cycle: 4.0 },
        // Clock distribution (energy only; area is in the overhead).
        StructureCost { name: "clock tree", kind: Gates, size: 0, peak_pj_per_cycle: 8.0 },
    ];
    AreaPowerReport { entries, freq_ghz }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_synthesis_area() {
        // Section 7.6: 0.09 mm^2.
        let r = fade_logic_report(2.0);
        let area = r.area_mm2();
        assert!(
            (area - 0.09).abs() / 0.09 < 0.10,
            "area {area:.4} mm^2 vs paper 0.09"
        );
    }

    #[test]
    fn matches_paper_peak_power() {
        // Section 7.6: 122 mW at 2 GHz.
        let r = fade_logic_report(2.0);
        let p = r.peak_power_mw();
        assert!((p - 122.0).abs() / 122.0 < 0.10, "power {p:.1} mW vs paper 122");
    }

    #[test]
    fn power_scales_with_frequency() {
        let slow = fade_logic_report(1.0).peak_power_mw();
        let fast = fade_logic_report(2.0).peak_power_mw();
        assert!(fast > 1.8 * slow && fast < 2.2 * slow);
    }

    #[test]
    fn event_table_dominates_storage() {
        let r = fade_logic_report(2.0);
        let rows = r.rows();
        let et = rows.iter().find(|(n, ..)| *n == "event table").unwrap();
        for (name, area, _) in &rows {
            if *name != "event table" && !name.contains("pipeline") && !name.contains("INV") {
                assert!(et.1 >= *area * 0.9, "{name} unexpectedly larger than the event table");
            }
        }
    }
}
