//! # fade-power
//!
//! Analytic area/power/timing model for FADE at 40 nm (Section 7.6 of
//! the paper).
//!
//! The paper synthesizes its VHDL with Synopsys Design Compiler (TSMC
//! 45 nm scaled to the 40 nm half node, 0.9 V, 2 GHz) and models the
//! 4 KB MD cache with CACTI 6.5, reporting:
//!
//! * FADE logic: **0.09 mm²**, **122 mW** peak;
//! * MD cache: **0.03 mm²**, **151 mW** peak, **0.3 ns** access;
//! * total: 0.12 mm², 273 mW.
//!
//! This crate reproduces those numbers from first-order per-structure
//! models: bit/gate counts of every FADE structure (event table,
//! queues, FSQ, register files, pipeline, SUU, filter/update logic)
//! multiplied by calibrated 40 nm per-bit/per-gate constants
//! ([`tech::Tech40`]), plus a mini-CACTI for SRAM arrays
//! ([`cacti::cache_model`]).

pub mod cacti;
pub mod logic;
pub mod tech;

pub use cacti::{cache_model, CacheEstimate};
pub use logic::{fade_logic_report, AreaPowerReport, StructureCost};
pub use tech::Tech40;
