//! Mini-CACTI: first-order SRAM cache area/power/timing at 40 nm.
//!
//! The paper models the 4 KB, 2-way MD cache with CACTI 6.5 and reports
//! 0.03 mm², 151 mW peak, 0.3 ns access (Section 7.6). This module
//! reproduces those numbers from the classic CACTI decomposition:
//! data + tag arrays with per-bit cell area, a periphery factor
//! (decoders, sense amps, drivers), and RC-flavoured delay terms that
//! grow with the number of sets and the associativity.

use crate::tech::Tech40;

/// Result of the cache model.
#[derive(Clone, Copy, Debug)]
pub struct CacheEstimate {
    /// Total area in mm².
    pub area_mm2: f64,
    /// Peak power at the given frequency, in mW.
    pub peak_power_mw: f64,
    /// Access latency in ns.
    pub access_ns: f64,
}

/// SRAM array periphery factor (decoders, sense amplifiers, drivers).
const PERIPHERY_FACTOR: f64 = 1.87;
/// Fixed component of the access path (decode + sense), ns.
const ACCESS_BASE_NS: f64 = 0.12;
/// Wordline/bitline delay per doubling of the set count, ns.
const ACCESS_PER_LOG2_SET_NS: f64 = 0.03;
/// Way-mux delay per way, ns.
const ACCESS_PER_WAY_NS: f64 = 0.02;
/// Peak read energy per access: fixed + per-bit components (pJ).
const READ_BASE_PJ: f64 = 24.0;
const READ_PER_LINE_BIT_PJ: f64 = 0.049;

/// Estimates a set-associative SRAM cache at 40 nm.
///
/// # Panics
///
/// Panics on degenerate geometry (zero ways/line, or fewer than one
/// set).
pub fn cache_model(size_bytes: u64, ways: u32, line_bytes: u32, freq_ghz: f64) -> CacheEstimate {
    assert!(ways > 0 && line_bytes > 0, "degenerate cache geometry");
    let sets = size_bytes / (ways as u64 * line_bytes as u64);
    assert!(sets >= 1, "cache smaller than one set");

    // Data array + tag array bits. 32-bit physical tags against a
    // line/set split, plus valid + LRU state.
    let data_bits = size_bytes as f64 * 8.0;
    let index_bits = (sets as f64).log2();
    let offset_bits = (line_bytes as f64).log2();
    let tag_bits_per_line = (40.0 - index_bits - offset_bits).max(8.0) + 2.0;
    let tag_bits = tag_bits_per_line * sets as f64 * ways as f64;

    let cell_um2 = (data_bits + tag_bits) * Tech40::SRAM_BIT_UM2;
    let area_mm2 = cell_um2 * PERIPHERY_FACTOR / 1e6;

    // Peak dynamic: one read per cycle touching `ways` lines' worth of
    // bitlines plus the tag compare.
    let line_bits = line_bytes as f64 * 8.0;
    let read_pj = READ_BASE_PJ + READ_PER_LINE_BIT_PJ * line_bits * ways as f64;
    let dynamic_mw = read_pj * freq_ghz;
    let leak_mw = area_mm2 * 1e6 * Tech40::LEAK_NW_PER_UM2 * 1e-6;

    let access_ns = ACCESS_BASE_NS
        + ACCESS_PER_LOG2_SET_NS * (sets as f64).log2()
        + ACCESS_PER_WAY_NS * ways as f64;

    CacheEstimate {
        area_mm2,
        peak_power_mw: dynamic_mw + leak_mw,
        access_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's MD cache: 4 KB, 2-way, 64 B lines, at 2 GHz.
    fn md_cache() -> CacheEstimate {
        cache_model(4096, 2, 64, 2.0)
    }

    #[test]
    fn matches_paper_md_cache_area() {
        let e = md_cache();
        assert!(
            (e.area_mm2 - 0.03).abs() / 0.03 < 0.15,
            "area {:.4} vs paper 0.03",
            e.area_mm2
        );
    }

    #[test]
    fn matches_paper_md_cache_power() {
        let e = md_cache();
        assert!(
            (e.peak_power_mw - 151.0).abs() / 151.0 < 0.10,
            "power {:.1} vs paper 151",
            e.peak_power_mw
        );
    }

    #[test]
    fn matches_paper_md_cache_latency() {
        let e = md_cache();
        assert!(
            (e.access_ns - 0.3).abs() < 0.05,
            "latency {:.3} vs paper 0.3",
            e.access_ns
        );
    }

    #[test]
    fn bigger_caches_are_bigger_and_slower() {
        let small = cache_model(4096, 2, 64, 2.0);
        let big = cache_model(32 * 1024, 2, 64, 2.0);
        assert!(big.area_mm2 > 4.0 * small.area_mm2);
        assert!(big.access_ns > small.access_ns);
    }

    #[test]
    fn associativity_costs_latency_and_power() {
        let dm = cache_model(4096, 1, 64, 2.0);
        let assoc = cache_model(4096, 8, 64, 2.0);
        assert!(assoc.access_ns > dm.access_ns);
        assert!(assoc.peak_power_mw > dm.peak_power_mw);
    }

    #[test]
    #[should_panic(expected = "degenerate cache geometry")]
    fn zero_ways_panics() {
        let _ = cache_model(4096, 0, 64, 2.0);
    }
}
