//! Application address arithmetic.
//!
//! The paper's benchmarks are 32-bit binaries (Section 6), so application
//! virtual addresses are 32 bits. Metadata addresses (in the monitor's
//! address space) are modelled separately in `fade-shadow`.

use std::fmt;

/// Log2 of the page size. 4 KiB pages, matching the M-TLB granularity.
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes.
pub const PAGE_SIZE: u32 = 1 << PAGE_SHIFT;
/// Application word size in bytes (32-bit binaries).
pub const WORD_SIZE: u32 = 4;

/// A 32-bit application virtual address.
///
/// # Example
///
/// ```
/// use fade_isa::VirtAddr;
/// let a = VirtAddr::new(0x8000_1234);
/// assert_eq!(a.page(), 0x8000_1);
/// assert_eq!(a.page_offset(), 0x234);
/// assert_eq!(a.word_aligned().raw(), 0x8000_1234);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u32);

impl VirtAddr {
    /// The null address.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Creates a virtual address from its raw 32-bit value.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw 32-bit value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the virtual page number.
    #[inline]
    pub const fn page(self) -> u32 {
        self.0 >> PAGE_SHIFT
    }

    /// Returns the byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u32 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Rounds the address down to its containing application word.
    #[inline]
    pub const fn word_aligned(self) -> Self {
        VirtAddr(self.0 & !(WORD_SIZE - 1))
    }

    /// Returns the application word index (address / word size).
    #[inline]
    pub const fn word_index(self) -> u32 {
        self.0 / WORD_SIZE
    }

    /// Address arithmetic with wrapping semantics (hardware-like).
    #[inline]
    pub const fn wrapping_add(self, delta: u32) -> Self {
        VirtAddr(self.0.wrapping_add(delta))
    }

    /// Address arithmetic with wrapping semantics (hardware-like).
    #[inline]
    pub const fn wrapping_sub(self, delta: u32) -> Self {
        VirtAddr(self.0.wrapping_sub(delta))
    }

    /// Returns `true` if the address is null.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtAddr({:#010x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u32> for VirtAddr {
    fn from(raw: u32) -> Self {
        VirtAddr(raw)
    }
}

impl From<VirtAddr> for u32 {
    fn from(addr: VirtAddr) -> Self {
        addr.0
    }
}

/// A physical address in the monitor's metadata space.
///
/// Produced by the M-TLB translation of an application page to the
/// physical page holding its metadata (Section 4.1, Metadata Read stage).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from its raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the physical frame number.
    #[inline]
    pub const fn frame(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#012x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic_round_trips() {
        let a = VirtAddr::new(0xdead_beef);
        assert_eq!(a.page() << PAGE_SHIFT | a.page_offset(), a.raw());
    }

    #[test]
    fn word_alignment_masks_low_bits() {
        assert_eq!(VirtAddr::new(7).word_aligned(), VirtAddr::new(4));
        assert_eq!(VirtAddr::new(8).word_aligned(), VirtAddr::new(8));
        assert_eq!(VirtAddr::new(3).word_index(), 0);
        assert_eq!(VirtAddr::new(4).word_index(), 1);
    }

    #[test]
    fn wrapping_add_wraps() {
        assert_eq!(VirtAddr::new(u32::MAX).wrapping_add(1), VirtAddr::NULL);
        assert_eq!(VirtAddr::new(0).wrapping_sub(4).raw(), u32::MAX - 3);
    }

    #[test]
    fn null_is_null() {
        assert!(VirtAddr::NULL.is_null());
        assert!(!VirtAddr::new(1).is_null());
    }

    #[test]
    fn display_formats_as_hex() {
        assert_eq!(VirtAddr::new(0x10).to_string(), "0x00000010");
        assert_eq!(format!("{:x}", VirtAddr::new(255)), "ff");
    }

    #[test]
    fn phys_addr_frame() {
        let p = PhysAddr::new(0x1234_5678);
        assert_eq!(p.frame(), 0x1234_5678 >> PAGE_SHIFT);
    }
}
