//! Application events — the currency of the monitoring system.
//!
//! Figure 6(a) of the paper defines the instruction-event format that the
//! application enqueues: a 6-bit event ID, the effective address, the PC,
//! and three 5-bit register operands. [`InstrEvent`] mirrors that format,
//! with two simulator-side side-band fields (`mem_size`, `tid`) that the
//! functional model needs but that hardware derives implicitly.

use std::fmt;

use crate::addr::VirtAddr;
use crate::reg::Reg;

/// Number of entries in the event table ("128 entries, covering the
/// heavily used subset of the modeled ISA", Section 6).
pub const EVENT_TABLE_ENTRIES: usize = 128;

/// A 7-bit index into the 128-entry event table.
///
/// The event format in Figure 6(a) allots 6 bits to the event ID for the
/// primary (decoder-assigned) IDs; the upper half of the table is reserved
/// for multi-shot continuation entries reachable only via `next_entry`
/// pointers, which is why the table itself has 128 entries.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EventId(u8);

impl EventId {
    /// Creates an event ID.
    ///
    /// # Panics
    ///
    /// Panics if `index >= EVENT_TABLE_ENTRIES`.
    #[inline]
    pub const fn new(index: u8) -> Self {
        assert!(
            (index as usize) < EVENT_TABLE_ENTRIES,
            "event id out of range"
        );
        EventId(index)
    }

    /// Returns the table index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw 7-bit value.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EventId({})", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev{}", self.0)
    }
}

/// An instruction event in the Figure 6(a) format.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct InstrEvent {
    /// Event table index assigned by the event producer.
    pub id: EventId,
    /// Effective address of the memory operand (undefined — by convention
    /// null — for non-memory events; the event-table `mem` bits decide
    /// whether it is consulted).
    pub app_addr: VirtAddr,
    /// Program counter of the monitored instruction.
    pub app_pc: VirtAddr,
    /// First source register field.
    pub src1: Reg,
    /// Second source register field.
    pub src2: Reg,
    /// Destination register field.
    pub dest: Reg,
    /// Side-band: memory access size in bytes (simulator-functional only).
    pub mem_size: u8,
    /// Side-band: retiring hardware thread (simulator-functional only).
    pub tid: u8,
    /// Side-band: the destination *value* is a pointer (consulted by
    /// value-inspecting software handlers, invisible to hardware).
    pub result_ptr: bool,
}

impl InstrEvent {
    /// Creates an instruction event with all register fields zeroed.
    pub const fn new(id: EventId, app_pc: VirtAddr) -> Self {
        InstrEvent {
            id,
            app_addr: VirtAddr::NULL,
            app_pc,
            src1: Reg::ZERO,
            src2: Reg::ZERO,
            dest: Reg::ZERO,
            mem_size: 0,
            tid: 0,
            result_ptr: false,
        }
    }

    /// Packs the architectural fields into the Figure 6(a) wire format:
    /// event ID (bits 0..7), app addr (8..40), app PC (40..72), src1
    /// (72..77), src2 (77..82), dest (82..87). The simulator side-band
    /// fields (`mem_size`, `tid`, `result_ptr`) are *not* encoded —
    /// hardware derives or never sees them.
    pub fn pack(&self) -> u128 {
        (self.id.raw() as u128)
            | ((self.app_addr.raw() as u128) << 8)
            | ((self.app_pc.raw() as u128) << 40)
            | ((self.src1.index() as u128) << 72)
            | ((self.src2.index() as u128) << 77)
            | ((self.dest.index() as u128) << 82)
    }

    /// Unpacks a Figure 6(a) word produced by [`InstrEvent::pack`].
    /// Side-band fields come back zeroed.
    pub fn unpack(word: u128) -> Self {
        InstrEvent {
            id: EventId::new((word & 0x7f) as u8),
            app_addr: VirtAddr::new((word >> 8) as u32),
            app_pc: VirtAddr::new((word >> 40) as u32),
            src1: Reg::new(((word >> 72) & 0x1f) as u8),
            src2: Reg::new(((word >> 77) & 0x1f) as u8),
            dest: Reg::new(((word >> 82) & 0x1f) as u8),
            mem_size: 0,
            tid: 0,
            result_ptr: false,
        }
    }
}

/// Whether a stack update allocates (call) or deallocates (return) a frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StackUpdateKind {
    /// Function call: the frame becomes allocated-and-uninitialized.
    Call,
    /// Function return: the frame becomes unallocated.
    Return,
}

impl fmt::Display for StackUpdateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StackUpdateKind::Call => "call",
            StackUpdateKind::Return => "return",
        })
    }
}

/// A stack-update event: bulk metadata (re)initialization for a stack
/// frame in response to a function call or return (Section 4.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StackUpdateEvent {
    /// Lowest address of the affected frame.
    pub base: VirtAddr,
    /// Frame length in bytes.
    pub len: u32,
    /// Allocation or deallocation.
    pub kind: StackUpdateKind,
    /// Retiring hardware thread.
    pub tid: u8,
}

impl StackUpdateEvent {
    /// One-past-the-end address of the frame.
    #[inline]
    pub const fn end(&self) -> VirtAddr {
        self.base.wrapping_add(self.len)
    }
}

/// High-level events: infrequent, complex actions that FADE deliberately
/// does not target (Section 3.3) and that always go to software.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HighLevelEvent {
    /// Heap allocation: `len` bytes at `base`; `ctx` identifies the
    /// allocation context (used by MemLeak's bookkeeping).
    Malloc {
        /// Base address of the new block.
        base: VirtAddr,
        /// Length of the new block in bytes.
        len: u32,
        /// Allocation-context identifier (PC-like).
        ctx: u32,
    },
    /// Heap deallocation of the block starting at `base` of `len` bytes.
    Free {
        /// Base address of the freed block.
        base: VirtAddr,
        /// Length of the freed block in bytes.
        len: u32,
    },
    /// External input marked tainted (file/network read), for TaintCheck.
    TaintSource {
        /// Base address of the tainted buffer.
        base: VirtAddr,
        /// Length of the tainted buffer in bytes.
        len: u32,
    },
    /// Scheduler switched the time-sliced core to another thread
    /// (parallel AtomCheck benchmarks run 4 threads on one core).
    ThreadSwitch {
        /// The thread now running.
        tid: u8,
    },
}

/// Any event the application can enqueue for the monitoring system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AppEvent {
    /// An instruction event (Figure 6(a)).
    Instr(InstrEvent),
    /// A stack-update event (function call/return frame management).
    StackUpdate(StackUpdateEvent),
    /// A high-level event (malloc/free/taint-source/thread-switch).
    HighLevel(HighLevelEvent),
}

impl AppEvent {
    /// Returns the contained instruction event, if this is one.
    #[inline]
    pub fn as_instr(&self) -> Option<&InstrEvent> {
        match self {
            AppEvent::Instr(e) => Some(e),
            _ => None,
        }
    }

    /// Returns `true` for instruction events.
    #[inline]
    pub const fn is_instr(&self) -> bool {
        matches!(self, AppEvent::Instr(_))
    }

    /// Returns `true` for stack-update events.
    #[inline]
    pub const fn is_stack_update(&self) -> bool {
        matches!(self, AppEvent::StackUpdate(_))
    }

    /// Returns `true` for high-level events.
    #[inline]
    pub const fn is_high_level(&self) -> bool {
        matches!(self, AppEvent::HighLevel(_))
    }
}

impl From<InstrEvent> for AppEvent {
    fn from(e: InstrEvent) -> Self {
        AppEvent::Instr(e)
    }
}

impl From<StackUpdateEvent> for AppEvent {
    fn from(e: StackUpdateEvent) -> Self {
        AppEvent::StackUpdate(e)
    }
}

impl From<HighLevelEvent> for AppEvent {
    fn from(e: HighLevelEvent) -> Self {
        AppEvent::HighLevel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_bounds() {
        assert_eq!(EventId::new(127).index(), 127);
    }

    #[test]
    #[should_panic(expected = "event id out of range")]
    fn event_id_rejects_128() {
        let _ = EventId::new(128);
    }

    #[test]
    fn pack_unpack_round_trips_architectural_fields() {
        let mut e = InstrEvent::new(EventId::new(5), VirtAddr::new(0xdead_beec));
        e.app_addr = VirtAddr::new(0x1234_5678);
        e.src1 = Reg::new(31);
        e.src2 = Reg::new(1);
        e.dest = Reg::new(17);
        let back = InstrEvent::unpack(e.pack());
        assert_eq!(back.id, e.id);
        assert_eq!(back.app_addr, e.app_addr);
        assert_eq!(back.app_pc, e.app_pc);
        assert_eq!(back.src1, e.src1);
        assert_eq!(back.src2, e.src2);
        assert_eq!(back.dest, e.dest);
    }

    #[test]
    fn packed_format_fits_87_bits() {
        let mut e = InstrEvent::new(EventId::new(127), VirtAddr::new(u32::MAX));
        e.app_addr = VirtAddr::new(u32::MAX);
        e.src1 = Reg::new(31);
        e.src2 = Reg::new(31);
        e.dest = Reg::new(31);
        assert!(e.pack() < (1u128 << 87), "event word exceeds its field budget");
    }

    #[test]
    fn stack_update_end() {
        let e = StackUpdateEvent {
            base: VirtAddr::new(0x1000),
            len: 96,
            kind: StackUpdateKind::Call,
            tid: 0,
        };
        assert_eq!(e.end(), VirtAddr::new(0x1060));
    }

    #[test]
    fn app_event_predicates() {
        let i: AppEvent = InstrEvent::new(EventId::new(1), VirtAddr::new(4)).into();
        assert!(i.is_instr());
        assert!(i.as_instr().is_some());
        let s: AppEvent = StackUpdateEvent {
            base: VirtAddr::NULL,
            len: 0,
            kind: StackUpdateKind::Return,
            tid: 0,
        }
        .into();
        assert!(s.is_stack_update());
        assert!(s.as_instr().is_none());
        let h: AppEvent = HighLevelEvent::Free {
            base: VirtAddr::NULL,
            len: 16,
        }
        .into();
        assert!(h.is_high_level());
    }
}
