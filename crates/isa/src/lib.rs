//! # fade-isa
//!
//! ISA-level model shared by every crate in the FADE reproduction.
//!
//! The paper evaluates FADE on a SPARC v9 machine running 32-bit binaries.
//! This crate models the pieces of that ISA that instruction-grain
//! monitoring actually observes:
//!
//! * [`VirtAddr`] — 32-bit application virtual addresses,
//! * [`Reg`] — architectural integer registers,
//! * [`AppInstr`] / [`InstrClass`] — retired dynamic instructions,
//! * [`AppEvent`] — the events the application enqueues for the monitoring
//!   system: instruction events ([`InstrEvent`], the format of Figure 6(a)
//!   in the paper), stack updates ([`StackUpdateEvent`]) and high-level
//!   events ([`HighLevelEvent`]),
//! * [`EventId`] — the 6-bit identifier used to index the event table.
//!
//! # Example
//!
//! ```
//! use fade_isa::{AppInstr, InstrClass, MemRef, Reg, VirtAddr, event_id_for};
//!
//! let load = AppInstr::new(VirtAddr::new(0x1000), InstrClass::Load)
//!     .with_dest(Reg::new(3))
//!     .with_mem(MemRef::word(VirtAddr::new(0x8000_0010)));
//! let id = event_id_for(&load);
//! assert_eq!(id, fade_isa::event_ids::LOAD);
//! ```

pub mod addr;
pub mod block;
pub mod event;
pub mod instr;
pub mod layout;
pub mod opclass;
pub mod reg;

pub use addr::{PhysAddr, VirtAddr, PAGE_SHIFT, PAGE_SIZE, WORD_SIZE};
pub use block::{EventBlock, BLOCK_LANES};
pub use event::{
    AppEvent, EventId, HighLevelEvent, InstrEvent, StackUpdateEvent, StackUpdateKind,
    EVENT_TABLE_ENTRIES,
};
pub use instr::{AppInstr, InstrClass, MemRef};
pub use opclass::{event_id_for, event_ids, instr_event_for, is_propagation_class};
pub use reg::{Reg, NUM_REGS};
