//! The application's virtual-memory layout.
//!
//! The synthetic benchmarks place their segments at fixed bases (32-bit
//! binaries, Section 6 of the paper); monitors use the same constants to
//! classify accesses (e.g. AddrCheck processes only non-stack memory
//! instructions).

use crate::addr::VirtAddr;

/// Base of the code segment.
pub const TEXT_BASE: u32 = 0x0040_0000;
/// Base of the globals/data segment.
pub const GLOBALS_BASE: u32 = 0x1000_0000;
/// Size of the globals segment (16 MiB).
pub const GLOBALS_SIZE: u32 = 16 << 20;
/// Base of the heap segment.
pub const HEAP_BASE: u32 = 0x4000_0000;
/// Size of the heap segment (1 GiB).
pub const HEAP_SIZE: u32 = 1 << 30;
/// Top of the downward-growing stack.
pub const STACK_TOP: u32 = 0xf000_0000;
/// Maximum stack size (256 MiB).
pub const STACK_SIZE: u32 = 256 << 20;

/// Returns `true` for addresses in the stack segment.
#[inline]
pub fn is_stack(addr: VirtAddr) -> bool {
    let a = addr.raw();
    a > STACK_TOP - STACK_SIZE && a <= STACK_TOP
}

/// Returns `true` for addresses in the heap segment.
#[inline]
pub fn is_heap(addr: VirtAddr) -> bool {
    let a = addr.raw();
    (HEAP_BASE..HEAP_BASE.wrapping_add(HEAP_SIZE)).contains(&a)
}

/// Returns `true` for addresses in the globals segment.
#[inline]
pub fn is_globals(addr: VirtAddr) -> bool {
    let a = addr.raw();
    (GLOBALS_BASE..GLOBALS_BASE + GLOBALS_SIZE).contains(&a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_do_not_overlap() {
        let stack = VirtAddr::new(STACK_TOP - 64);
        let heap = VirtAddr::new(HEAP_BASE + 64);
        let glob = VirtAddr::new(GLOBALS_BASE + 64);
        assert!(is_stack(stack) && !is_heap(stack) && !is_globals(stack));
        assert!(is_heap(heap) && !is_stack(heap) && !is_globals(heap));
        assert!(is_globals(glob) && !is_stack(glob) && !is_heap(glob));
    }

    #[test]
    fn stack_bounds() {
        assert!(is_stack(VirtAddr::new(STACK_TOP)));
        assert!(!is_stack(VirtAddr::new(STACK_TOP - STACK_SIZE)));
    }
}
