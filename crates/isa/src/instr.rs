//! Retired dynamic instructions as seen by the monitoring system.

use std::fmt;

use crate::addr::VirtAddr;
use crate::reg::Reg;

/// The coarse instruction classes that instruction-grain monitors
/// distinguish (Section 3.1 of the paper).
///
/// Memory-tracking monitors select only `Load`/`Store`; propagation
/// trackers additionally select the value-producing classes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstrClass {
    /// Memory load into a register.
    Load,
    /// Register stored to memory.
    Store,
    /// Two-source integer ALU operation (add, sub, logic ops, ...).
    IntAlu,
    /// Single-source integer operation (move, sign-extend, immediate load).
    IntMove,
    /// Integer multiply / divide.
    IntMul,
    /// Floating-point operation.
    FpAlu,
    /// Conditional branch.
    Branch,
    /// Unconditional or indirect jump.
    Jump,
    /// Function call (allocates a stack frame).
    Call,
    /// Function return (deallocates a stack frame).
    Return,
    /// No architectural effect (nop, prefetch, ...).
    Nop,
}

impl InstrClass {
    /// Every instruction class, in a stable order.
    pub const ALL: [InstrClass; 11] = [
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::IntAlu,
        InstrClass::IntMove,
        InstrClass::IntMul,
        InstrClass::FpAlu,
        InstrClass::Branch,
        InstrClass::Jump,
        InstrClass::Call,
        InstrClass::Return,
        InstrClass::Nop,
    ];

    /// Returns `true` for classes that reference memory.
    #[inline]
    pub const fn is_memory(self) -> bool {
        matches!(self, InstrClass::Load | InstrClass::Store)
    }

    /// Returns `true` for classes that write an integer destination
    /// register and therefore may propagate metadata.
    #[inline]
    pub const fn writes_int_dest(self) -> bool {
        matches!(
            self,
            InstrClass::Load | InstrClass::IntAlu | InstrClass::IntMove | InstrClass::IntMul
        )
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::Load => "load",
            InstrClass::Store => "store",
            InstrClass::IntAlu => "int-alu",
            InstrClass::IntMove => "int-move",
            InstrClass::IntMul => "int-mul",
            InstrClass::FpAlu => "fp-alu",
            InstrClass::Branch => "branch",
            InstrClass::Jump => "jump",
            InstrClass::Call => "call",
            InstrClass::Return => "return",
            InstrClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// A memory operand: effective address plus access size in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemRef {
    /// Effective virtual address of the access.
    pub addr: VirtAddr,
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: u8,
}

impl MemRef {
    /// A word-sized (4-byte) access.
    #[inline]
    pub const fn word(addr: VirtAddr) -> Self {
        MemRef { addr, size: 4 }
    }

    /// A byte-sized access.
    #[inline]
    pub const fn byte(addr: VirtAddr) -> Self {
        MemRef { addr, size: 1 }
    }
}

/// A retired dynamic instruction, the unit the event producer observes.
///
/// Built with a lightweight builder-style API because most fields are
/// optional for most classes:
///
/// ```
/// use fade_isa::{AppInstr, InstrClass, MemRef, Reg, VirtAddr};
/// let store = AppInstr::new(VirtAddr::new(0x400), InstrClass::Store)
///     .with_src1(Reg::new(5))
///     .with_mem(MemRef::word(VirtAddr::new(0x9000_0000)));
/// assert!(store.class.is_memory());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AppInstr {
    /// Program counter of the instruction.
    pub pc: VirtAddr,
    /// Instruction class.
    pub class: InstrClass,
    /// First source register, if any.
    pub src1: Option<Reg>,
    /// Second source register, if any.
    pub src2: Option<Reg>,
    /// Destination register, if any.
    pub dest: Option<Reg>,
    /// Memory operand, if any.
    pub mem: Option<MemRef>,
    /// Hardware thread that retired the instruction.
    pub tid: u8,
    /// Side-band ground truth: the destination value is a pointer into
    /// a live allocation. Software handlers that inspect values (e.g.
    /// MemLeak's) consult this; the hardware never sees it.
    pub result_ptr: bool,
}

impl AppInstr {
    /// Creates an instruction of the given class with no operands.
    pub const fn new(pc: VirtAddr, class: InstrClass) -> Self {
        AppInstr {
            pc,
            class,
            src1: None,
            src2: None,
            dest: None,
            mem: None,
            tid: 0,
            result_ptr: false,
        }
    }

    /// Sets the value-inspection hint: the result is a pointer.
    pub const fn with_result_ptr(mut self, is_ptr: bool) -> Self {
        self.result_ptr = is_ptr;
        self
    }

    /// Sets the first source register.
    pub const fn with_src1(mut self, r: Reg) -> Self {
        self.src1 = Some(r);
        self
    }

    /// Sets the second source register.
    pub const fn with_src2(mut self, r: Reg) -> Self {
        self.src2 = Some(r);
        self
    }

    /// Sets the destination register.
    pub const fn with_dest(mut self, r: Reg) -> Self {
        self.dest = Some(r);
        self
    }

    /// Sets the memory operand.
    pub const fn with_mem(mut self, m: MemRef) -> Self {
        self.mem = Some(m);
        self
    }

    /// Sets the retiring hardware thread.
    pub const fn with_tid(mut self, tid: u8) -> Self {
        self.tid = tid;
        self
    }

    /// Returns `true` if the instruction references memory.
    #[inline]
    pub const fn is_memory(&self) -> bool {
        self.mem.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let i = AppInstr::new(VirtAddr::new(4), InstrClass::IntAlu)
            .with_src1(Reg::new(1))
            .with_src2(Reg::new(2))
            .with_dest(Reg::new(3))
            .with_tid(2);
        assert_eq!(i.src1, Some(Reg::new(1)));
        assert_eq!(i.src2, Some(Reg::new(2)));
        assert_eq!(i.dest, Some(Reg::new(3)));
        assert_eq!(i.tid, 2);
        assert!(!i.is_memory());
    }

    #[test]
    fn class_predicates() {
        assert!(InstrClass::Load.is_memory());
        assert!(InstrClass::Store.is_memory());
        assert!(!InstrClass::IntAlu.is_memory());
        assert!(InstrClass::Load.writes_int_dest());
        assert!(!InstrClass::Store.writes_int_dest());
        assert!(!InstrClass::FpAlu.writes_int_dest());
    }

    #[test]
    fn all_classes_have_display_names() {
        for c in InstrClass::ALL {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn memref_constructors() {
        let m = MemRef::word(VirtAddr::new(0x100));
        assert_eq!(m.size, 4);
        assert_eq!(MemRef::byte(VirtAddr::new(0x100)).size, 1);
    }
}
