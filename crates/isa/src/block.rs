//! Structure-of-arrays event blocks for the vectorized filtering core.
//!
//! [`EventBlock`] holds up to [`BLOCK_LANES`] decoded instruction events
//! with each field in its own lane array — event-ID words, memory
//! addresses, PCs, register fields, memory sizes — instead of an array
//! of [`InstrEvent`] structs. The layout lets the filter kernel compare
//! one field across every lane at once (bitmask M-TLB/MD-window
//! matching, packed-byte verdict checks) and lets decoders fill lanes
//! straight from trace records without building an intermediate
//! array-of-structs event vector.
//!
//! A block has a fixed *width* (its lane capacity, `1..=BLOCK_LANES`)
//! chosen at construction; `len() <= width()` so misaligned tails —
//! the last few events of a chunk — travel as short blocks rather than
//! forcing a scalar detour.

use crate::addr::VirtAddr;
use crate::event::{EventId, InstrEvent};
use crate::instr::AppInstr;
use crate::opclass::event_id_for;
use crate::reg::Reg;

/// Maximum lanes per [`EventBlock`] (and the widest vector the filter
/// kernel processes at once). Sixteen lanes = two packed `u64` byte
/// words in the kernel's SWAR compares.
pub const BLOCK_LANES: usize = 16;

/// A structure-of-arrays block of decoded instruction events.
///
/// Field-per-lane twin of `[InstrEvent; N]`: lane `i` of every array
/// describes the same event. [`EventBlock::lane`] reconstructs the
/// array-of-structs view for scalar fallback paths, and is bit-exact —
/// `push(ev)` followed by `lane(i)` round-trips every field.
#[derive(Clone, Debug)]
pub struct EventBlock {
    len: usize,
    width: usize,
    /// Event-ID lane (raw 7-bit table indices — the "opclass word").
    ids: [u8; BLOCK_LANES],
    /// Memory-operand effective addresses (raw [`VirtAddr`] values).
    addrs: [u32; BLOCK_LANES],
    /// Program counters (absolute; codecs undo their PC-delta encoding
    /// while filling the lane).
    pcs: [u32; BLOCK_LANES],
    /// First-source register indices.
    src1: [u8; BLOCK_LANES],
    /// Second-source register indices.
    src2: [u8; BLOCK_LANES],
    /// Destination register indices.
    dest: [u8; BLOCK_LANES],
    /// Memory access sizes in bytes.
    mem_sizes: [u8; BLOCK_LANES],
    /// Retiring hardware threads.
    tids: [u8; BLOCK_LANES],
    /// Flag word: bit `i` set when lane `i`'s destination value is a
    /// pointer (`InstrEvent::result_ptr`).
    result_ptrs: u16,
}

impl EventBlock {
    /// Creates an empty block of the given lane width (clamped to
    /// `1..=BLOCK_LANES`).
    pub fn new(width: usize) -> Self {
        EventBlock {
            len: 0,
            width: width.clamp(1, BLOCK_LANES),
            ids: [0; BLOCK_LANES],
            addrs: [0; BLOCK_LANES],
            pcs: [0; BLOCK_LANES],
            src1: [0; BLOCK_LANES],
            src2: [0; BLOCK_LANES],
            dest: [0; BLOCK_LANES],
            mem_sizes: [0; BLOCK_LANES],
            tids: [0; BLOCK_LANES],
            result_ptrs: 0,
        }
    }

    /// Lane capacity chosen at construction.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Occupied lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no lanes are occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when every lane up to the block's width is occupied.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.width
    }

    /// Empties the block (the width is kept).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.result_ptrs = 0;
    }

    /// Bitmask with one set bit per occupied lane (bit `i` = lane `i`).
    #[inline]
    pub fn full_mask(&self) -> u64 {
        if self.len >= 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        }
    }

    /// Appends a decoded instruction event; returns `false` (leaving
    /// the block unchanged) when the block is full.
    pub fn push(&mut self, ev: &InstrEvent) -> bool {
        if self.is_full() {
            return false;
        }
        let i = self.len;
        self.ids[i] = ev.id.raw();
        self.addrs[i] = ev.app_addr.raw();
        self.pcs[i] = ev.app_pc.raw();
        self.src1[i] = ev.src1.index();
        self.src2[i] = ev.src2.index();
        self.dest[i] = ev.dest.index();
        self.mem_sizes[i] = ev.mem_size;
        self.tids[i] = ev.tid;
        if ev.result_ptr {
            self.result_ptrs |= 1 << i;
        }
        self.len = i + 1;
        true
    }

    /// Appends a retired instruction, decoding it straight into the
    /// lanes (event-ID assignment plus field extraction) without
    /// building an intermediate [`InstrEvent`]; returns `false` when
    /// the block is full. Equivalent to
    /// `push(&instr_event_for(instr))`.
    pub fn push_app(&mut self, instr: &AppInstr) -> bool {
        if self.is_full() {
            return false;
        }
        let i = self.len;
        self.ids[i] = event_id_for(instr).raw();
        self.addrs[i] = instr.mem.map(|m| m.addr.raw()).unwrap_or(0);
        self.pcs[i] = instr.pc.raw();
        self.src1[i] = instr.src1.map(|r| r.index()).unwrap_or(0);
        self.src2[i] = instr.src2.map(|r| r.index()).unwrap_or(0);
        self.dest[i] = instr.dest.map(|r| r.index()).unwrap_or(0);
        self.mem_sizes[i] = instr.mem.map(|m| m.size).unwrap_or(0);
        self.tids[i] = instr.tid;
        if instr.result_ptr {
            self.result_ptrs |= 1 << i;
        }
        self.len = i + 1;
        true
    }

    /// Reconstructs lane `i` as an [`InstrEvent`] (the scalar-fallback
    /// view).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn lane(&self, i: usize) -> InstrEvent {
        assert!(i < self.len, "lane {i} of a {}-event block", self.len);
        InstrEvent {
            id: EventId::new(self.ids[i]),
            app_addr: VirtAddr::new(self.addrs[i]),
            app_pc: VirtAddr::new(self.pcs[i]),
            src1: Reg::new(self.src1[i]),
            src2: Reg::new(self.src2[i]),
            dest: Reg::new(self.dest[i]),
            mem_size: self.mem_sizes[i],
            tid: self.tids[i],
            result_ptr: self.result_ptrs & (1 << i) != 0,
        }
    }

    /// The occupied event-ID lane (raw table indices).
    #[inline]
    pub fn ids(&self) -> &[u8] {
        &self.ids[..self.len]
    }

    /// The occupied memory-address lane (raw virtual addresses).
    #[inline]
    pub fn addrs(&self) -> &[u32] {
        &self.addrs[..self.len]
    }

    /// The occupied PC lane (raw virtual addresses).
    #[inline]
    pub fn pcs(&self) -> &[u32] {
        &self.pcs[..self.len]
    }

    /// The occupied first-source register lane.
    #[inline]
    pub fn src1s(&self) -> &[u8] {
        &self.src1[..self.len]
    }

    /// The occupied second-source register lane.
    #[inline]
    pub fn src2s(&self) -> &[u8] {
        &self.src2[..self.len]
    }

    /// The occupied destination register lane.
    #[inline]
    pub fn dests(&self) -> &[u8] {
        &self.dest[..self.len]
    }

    /// The occupied memory-size lane.
    #[inline]
    pub fn mem_sizes(&self) -> &[u8] {
        &self.mem_sizes[..self.len]
    }

    /// The occupied thread-ID lane.
    #[inline]
    pub fn tids(&self) -> &[u8] {
        &self.tids[..self.len]
    }

    /// The result-is-pointer flag word (bit `i` = lane `i`).
    #[inline]
    pub fn result_ptr_mask(&self) -> u16 {
        self.result_ptrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{InstrClass, MemRef};

    #[test]
    fn push_lane_round_trips_every_field() {
        let mut b = EventBlock::new(BLOCK_LANES);
        let evs: Vec<InstrEvent> = (0..BLOCK_LANES as u8)
            .map(|i| InstrEvent {
                id: EventId::new(i % 11),
                app_addr: VirtAddr::new(0x9000 + 4 * i as u32),
                app_pc: VirtAddr::new(0x40 + 4 * i as u32),
                src1: Reg::new(i % 32),
                src2: Reg::new((i + 1) % 32),
                dest: Reg::new((i + 2) % 32),
                mem_size: [0, 1, 2, 4, 8][i as usize % 5],
                tid: i % 4,
                result_ptr: i % 3 == 0,
            })
            .collect();
        for ev in &evs {
            assert!(b.push(ev));
        }
        assert_eq!(b.len(), evs.len());
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(b.lane(i), *ev, "lane {i}");
        }
    }

    #[test]
    fn width_bounds_push() {
        let mut b = EventBlock::new(2);
        let ev = InstrEvent::new(EventId::new(1), VirtAddr::new(4));
        assert!(b.push(&ev));
        assert!(b.push(&ev));
        assert!(b.is_full());
        assert!(!b.push(&ev), "third push into a width-2 block");
        assert_eq!(b.len(), 2);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.width(), 2);
    }

    #[test]
    fn width_is_clamped() {
        assert_eq!(EventBlock::new(0).width(), 1);
        assert_eq!(EventBlock::new(99).width(), BLOCK_LANES);
    }

    #[test]
    fn push_app_matches_instr_event_for() {
        let i = AppInstr::new(VirtAddr::new(0x44), InstrClass::Load)
            .with_dest(Reg::new(7))
            .with_mem(MemRef::word(VirtAddr::new(0x9010)))
            .with_tid(2);
        let mut b = EventBlock::new(8);
        assert!(b.push_app(&i));
        assert_eq!(b.lane(0), crate::opclass::instr_event_for(&i));
    }

    #[test]
    fn full_mask_tracks_len() {
        let mut b = EventBlock::new(4);
        assert_eq!(b.full_mask(), 0);
        let ev = InstrEvent::new(EventId::new(3), VirtAddr::new(8));
        b.push(&ev);
        b.push(&ev);
        assert_eq!(b.full_mask(), 0b11);
    }
}
