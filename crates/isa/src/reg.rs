//! Architectural registers.

use std::fmt;

/// Number of architectural integer registers visible to the monitor.
///
/// SPARC v9 exposes 32 integer registers per window; monitors shadow the
/// flat working set, which we model as 32 registers.
pub const NUM_REGS: usize = 32;

/// An architectural register identifier (5 bits in the event format of
/// Figure 6(a) in the paper).
///
/// # Example
///
/// ```
/// use fade_isa::Reg;
/// let r = Reg::new(17);
/// assert_eq!(r.index(), 17);
/// assert_eq!(r.to_string(), "r17");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// The zero register (`%g0` on SPARC): always reads zero and its
    /// metadata is always clean.
    pub const ZERO: Reg = Reg(0);
    /// Conventional stack pointer register (`%o6`/`%sp`).
    pub const SP: Reg = Reg(14);
    /// Conventional frame pointer register (`%i6`/`%fp`).
    pub const FP: Reg = Reg(30);
    /// Conventional return-value register (`%o0`).
    pub const RET: Reg = Reg(8);

    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    #[inline]
    pub const fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_REGS, "register index out of range");
        Reg(index)
    }

    /// Returns the register index.
    #[inline]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Returns `true` for the hard-wired zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all architectural registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({})", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_registers() {
        assert!(Reg::ZERO.is_zero());
        assert_eq!(Reg::SP.index(), 14);
        assert_eq!(Reg::FP.index(), 30);
    }

    #[test]
    fn all_yields_every_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), NUM_REGS);
        assert_eq!(regs[0], Reg::ZERO);
        assert_eq!(regs[31], Reg::new(31));
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(32);
    }
}
