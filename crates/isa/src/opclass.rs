//! Event-ID assignment: the event producer's decoder.
//!
//! The hardware event producer tags each monitored instruction with an
//! event ID that indexes the event table. The assignment is a pure
//! function of the instruction's class and operand shape; monitors then
//! program the table entries for the IDs they care about.

use crate::event::{EventId, InstrEvent};
use crate::instr::{AppInstr, InstrClass};
use crate::reg::Reg;

/// The canonical primary event IDs produced by the decoder.
///
/// IDs 0..=15 are decoder-assigned; IDs 64..128 are reserved for
/// multi-shot continuation entries that monitors allocate themselves.
pub mod event_ids {
    use crate::event::EventId;

    /// Memory load into an integer register.
    pub const LOAD: EventId = EventId::new(1);
    /// Integer register stored to memory.
    pub const STORE: EventId = EventId::new(2);
    /// Two-source integer ALU operation.
    pub const INT_ALU: EventId = EventId::new(3);
    /// Single-source integer move/immediate.
    pub const INT_MOVE: EventId = EventId::new(4);
    /// Integer multiply/divide.
    pub const INT_MUL: EventId = EventId::new(5);
    /// Floating-point operation.
    pub const FP_ALU: EventId = EventId::new(6);
    /// Conditional branch.
    pub const BRANCH: EventId = EventId::new(7);
    /// Unconditional/indirect jump.
    pub const JUMP: EventId = EventId::new(8);
    /// Function call instruction (beyond the stack update itself).
    pub const CALL: EventId = EventId::new(9);
    /// Function return instruction.
    pub const RETURN: EventId = EventId::new(10);
    /// Anything else (nop, prefetch): never monitored.
    pub const OTHER: EventId = EventId::new(0);

    /// First table index available for monitor-allocated multi-shot
    /// continuation entries.
    pub const FIRST_CONTINUATION: u8 = 64;
}

/// Maps a retired instruction to its primary event ID.
///
/// This models the fixed decode logic of the event producer; it is total
/// (every instruction gets an ID, monitored or not).
///
/// # Example
///
/// ```
/// use fade_isa::{event_id_for, event_ids, AppInstr, InstrClass, VirtAddr};
/// let i = AppInstr::new(VirtAddr::new(0), InstrClass::Branch);
/// assert_eq!(event_id_for(&i), event_ids::BRANCH);
/// ```
pub fn event_id_for(instr: &AppInstr) -> EventId {
    match instr.class {
        InstrClass::Load => event_ids::LOAD,
        InstrClass::Store => event_ids::STORE,
        InstrClass::IntAlu => event_ids::INT_ALU,
        InstrClass::IntMove => event_ids::INT_MOVE,
        InstrClass::IntMul => event_ids::INT_MUL,
        InstrClass::FpAlu => event_ids::FP_ALU,
        InstrClass::Branch => event_ids::BRANCH,
        InstrClass::Jump => event_ids::JUMP,
        InstrClass::Call => event_ids::CALL,
        InstrClass::Return => event_ids::RETURN,
        InstrClass::Nop => event_ids::OTHER,
    }
}

/// Returns `true` for instruction classes that propagation-tracking
/// monitors (MemLeak, TaintCheck, MemCheck) may need to observe because
/// they move metadata from sources to a destination.
pub fn is_propagation_class(class: InstrClass) -> bool {
    matches!(
        class,
        InstrClass::Load
            | InstrClass::Store
            | InstrClass::IntAlu
            | InstrClass::IntMove
            | InstrClass::IntMul
    )
}

/// Builds the Figure 6(a) instruction event for a retired instruction.
///
/// Register fields that the instruction does not use are encoded as the
/// zero register, whose metadata is always clean; the event-table operand
/// valid bits decide which fields participate in filtering.
pub fn instr_event_for(instr: &AppInstr) -> InstrEvent {
    InstrEvent {
        id: event_id_for(instr),
        app_addr: instr.mem.map(|m| m.addr).unwrap_or_default(),
        app_pc: instr.pc,
        src1: instr.src1.unwrap_or(Reg::ZERO),
        src2: instr.src2.unwrap_or(Reg::ZERO),
        dest: instr.dest.unwrap_or(Reg::ZERO),
        mem_size: instr.mem.map(|m| m.size).unwrap_or(0),
        tid: instr.tid,
        result_ptr: instr.result_ptr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VirtAddr;
    use crate::instr::MemRef;

    #[test]
    fn every_class_maps_to_an_id() {
        for class in InstrClass::ALL {
            let i = AppInstr::new(VirtAddr::new(0), class);
            let id = event_id_for(&i);
            assert!(id.index() < 16, "primary ids stay in decoder range");
        }
    }

    #[test]
    fn distinct_monitored_classes_get_distinct_ids() {
        use std::collections::HashSet;
        let ids: HashSet<_> = InstrClass::ALL
            .iter()
            .filter(|c| !matches!(c, InstrClass::Nop))
            .map(|&c| event_id_for(&AppInstr::new(VirtAddr::new(0), c)))
            .collect();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn instr_event_carries_operands() {
        let i = AppInstr::new(VirtAddr::new(0x40), InstrClass::Load)
            .with_dest(Reg::new(9))
            .with_mem(MemRef::word(VirtAddr::new(0x9000)))
            .with_tid(3);
        let e = instr_event_for(&i);
        assert_eq!(e.id, event_ids::LOAD);
        assert_eq!(e.app_addr, VirtAddr::new(0x9000));
        assert_eq!(e.dest, Reg::new(9));
        assert_eq!(e.src1, Reg::ZERO);
        assert_eq!(e.mem_size, 4);
        assert_eq!(e.tid, 3);
    }

    #[test]
    fn propagation_classes() {
        assert!(is_propagation_class(InstrClass::Load));
        assert!(is_propagation_class(InstrClass::IntAlu));
        assert!(!is_propagation_class(InstrClass::FpAlu));
        assert!(!is_propagation_class(InstrClass::Branch));
    }
}
