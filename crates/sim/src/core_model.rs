//! Core timing models.
//!
//! Table 1 of the paper evaluates three core microarchitectures: in-order
//! 1-way, lean OoO 2-way with a 48-entry ROB, and aggressive OoO 4-way
//! with a 96-entry ROB. For FADE, only two properties of a core matter:
//!
//! 1. **How it retires application instructions** — bursty commit is what
//!    fills the event queue (Figure 3). [`CommitModel`] models commit as
//!    a run/stall renewal process: during a *run* the core commits at
//!    full width every cycle (ROB drain / cache-resident loop); during a
//!    *stall* it commits nothing (miss stall). Run and stall lengths are
//!    geometrically distributed and scaled so long-run IPC matches the
//!    per-benchmark target.
//! 2. **How fast it executes monitor handlers** — Section 7.3 observes
//!    handlers run up to 3x faster on the 4-way OoO core than in-order
//!    because they are short, cache-resident instruction sequences.
//!    [`HandlerExec`] models handler execution at a per-core handler IPC.
//!
//! [`SmtArbiter`] models the fine-grained dual-threaded core of the
//! single-core system (Figure 8(b)): when both hardware threads are
//! active they share issue bandwidth.

use crate::rng::Rng;

/// The three evaluated core microarchitectures (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// In-order, 1-wide.
    InOrder1,
    /// Lean out-of-order, 2-wide, 48-entry ROB.
    LeanOoO2,
    /// Aggressive out-of-order, 4-wide, 96-entry ROB.
    AggrOoO4,
}

impl CoreKind {
    /// All core kinds, in increasing aggressiveness.
    pub const ALL: [CoreKind; 3] = [CoreKind::InOrder1, CoreKind::LeanOoO2, CoreKind::AggrOoO4];

    /// Commit width (instructions per cycle at peak).
    pub const fn width(self) -> u32 {
        match self {
            CoreKind::InOrder1 => 1,
            CoreKind::LeanOoO2 => 2,
            CoreKind::AggrOoO4 => 4,
        }
    }

    /// Reorder-buffer capacity (1 models the in-order pipeline).
    pub const fn rob(self) -> u32 {
        match self {
            CoreKind::InOrder1 => 1,
            CoreKind::LeanOoO2 => 48,
            CoreKind::AggrOoO4 => 96,
        }
    }

    /// Sustained IPC when executing monitor handlers standalone.
    ///
    /// Handlers are short, branchy but cache-resident sequences; the
    /// paper reports up to 3x faster handler execution on the 4-way OoO
    /// core than in-order (Section 7.3).
    pub const fn handler_ipc(self) -> f64 {
        match self {
            CoreKind::InOrder1 => 1.0,
            CoreKind::LeanOoO2 => 2.0,
            CoreKind::AggrOoO4 => 3.0,
        }
    }

    /// Application IPC on this core relative to the 4-way OoO core.
    ///
    /// The paper notes applications generate up to 2x fewer events per
    /// cycle on the in-order core (Section 7.3).
    pub const fn app_ipc_scale(self) -> f64 {
        match self {
            CoreKind::InOrder1 => 0.5,
            CoreKind::LeanOoO2 => 0.75,
            CoreKind::AggrOoO4 => 1.0,
        }
    }

    /// Short display name used in experiment tables.
    pub const fn name(self) -> &'static str {
        match self {
            CoreKind::InOrder1 => "in-order",
            CoreKind::LeanOoO2 => "2-way OoO",
            CoreKind::AggrOoO4 => "4-way OoO",
        }
    }
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-benchmark commit behaviour on the reference (4-way OoO) core.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommitProfile {
    /// Application IPC on the aggressive 4-way OoO core.
    pub ipc_4way: f64,
    /// Mean length of a full-width commit burst, in cycles. Longer runs
    /// model cache-resident phases and produce deeper event-queue
    /// occupancy (compare omnetpp vs mcf in Figure 3(b)).
    pub run_len_mean: f64,
}

impl CommitProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `ipc_4way` is not positive or `run_len_mean < 1`.
    pub fn new(ipc_4way: f64, run_len_mean: f64) -> Self {
        assert!(ipc_4way > 0.0, "IPC must be positive");
        assert!(run_len_mean >= 1.0, "runs last at least one cycle");
        CommitProfile {
            ipc_4way,
            run_len_mean,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CommitState {
    Run(u64),
    Stall(u64),
}

/// The run/stall commit process of one application hardware thread.
///
/// Each cycle, [`CommitModel::tick`] deposits newly committable
/// instructions into an internal window bounded by the ROB size (during
/// backpressure the window fills and the core stalls, exactly like a real
/// ROB); the system retires instructions from the window with
/// [`CommitModel::retire`].
#[derive(Clone, Debug)]
pub struct CommitModel {
    kind: CoreKind,
    run_len_mean: f64,
    stall_len_mean: f64,
    state: CommitState,
    pending: u32,
    rng: Rng,
    target_ipc: f64,
}

impl CommitModel {
    /// Creates a commit model for the given core and benchmark profile.
    pub fn new(kind: CoreKind, profile: CommitProfile, rng: Rng) -> Self {
        let width = kind.width() as f64;
        // IPC on this core, saturated just below peak so stalls exist.
        let target_ipc = (profile.ipc_4way * kind.app_ipc_scale()).min(width * 0.98);
        let run_frac = target_ipc / width;
        // Scale run length with the ROB: small windows cannot sustain
        // long full-width bursts.
        let rob_scale = (kind.rob() as f64 / CoreKind::AggrOoO4.rob() as f64).max(0.05);
        let run_len_mean = (profile.run_len_mean * rob_scale).max(1.0);
        let stall_len_mean = (run_len_mean * (1.0 - run_frac) / run_frac).max(0.0);
        let mut model = CommitModel {
            kind,
            run_len_mean,
            stall_len_mean,
            state: CommitState::Run(1),
            pending: 0,
            rng,
            target_ipc,
        };
        model.state = CommitState::Run(model.draw_run());
        model
    }

    fn draw_run(&mut self) -> u64 {
        1 + self.rng.geometric(1.0 / self.run_len_mean)
    }

    fn draw_stall(&mut self) -> u64 {
        if self.stall_len_mean <= 0.0 {
            0
        } else {
            // geometric(p) has mean (1-p)/p, so p = 1/(1+s) gives mean s.
            self.rng.geometric(1.0 / (1.0 + self.stall_len_mean))
        }
    }

    /// The long-run IPC this model targets on its core.
    pub fn target_ipc(&self) -> f64 {
        self.target_ipc
    }

    /// Advances one cycle: commit-eligible instructions accumulate in the
    /// window (bounded by the ROB).
    pub fn tick(&mut self) {
        let produce = match &mut self.state {
            CommitState::Run(left) => {
                *left -= 1;
                self.kind.width()
            }
            CommitState::Stall(left) => {
                *left -= 1;
                0
            }
        };
        self.pending = (self.pending + produce).min(self.kind.rob().max(self.kind.width()));
        // State transition when the current phase expires.
        let expired = matches!(self.state, CommitState::Run(0) | CommitState::Stall(0));
        if expired {
            self.state = if matches!(self.state, CommitState::Run(0)) {
                let s = self.draw_stall();
                if s == 0 {
                    CommitState::Run(self.draw_run())
                } else {
                    CommitState::Stall(s)
                }
            } else {
                CommitState::Run(self.draw_run())
            };
        }
    }

    /// Instructions available to retire this cycle (bounded by width).
    pub fn retirable(&self) -> u32 {
        self.pending.min(self.kind.width())
    }

    /// Instructions currently waiting in the window.
    pub fn pending(&self) -> u32 {
        self.pending
    }

    /// Consumes `n` retired instructions from the window.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`CommitModel::retirable`].
    pub fn retire(&mut self, n: u32) {
        assert!(n <= self.retirable(), "cannot retire beyond window");
        self.pending -= n;
    }

    /// The modelled core kind.
    pub fn kind(&self) -> CoreKind {
        self.kind
    }
}

/// Executes software handlers on the monitor's hardware context.
///
/// A handler is a straight-line instruction count; the executor retires
/// `ipc × scale` instructions per cycle, where `scale` models SMT
/// contention (1.0 when the monitor thread has the core to itself).
#[derive(Clone, Debug)]
pub struct HandlerExec {
    ipc: f64,
    credit: f64,
    remaining: f64,
    busy_cycles: u64,
    completed: u64,
}

impl HandlerExec {
    /// Creates an idle executor for a core kind.
    pub fn new(kind: CoreKind) -> Self {
        HandlerExec {
            ipc: kind.handler_ipc(),
            credit: 0.0,
            remaining: 0.0,
            busy_cycles: 0,
            completed: 0,
        }
    }

    /// Returns `true` while a handler is in flight.
    #[inline]
    pub fn busy(&self) -> bool {
        self.remaining > 0.0
    }

    /// Starts a handler of `instrs` instructions.
    ///
    /// # Panics
    ///
    /// Panics if a handler is already in flight.
    pub fn start(&mut self, instrs: u32) {
        assert!(!self.busy(), "handler executor is busy");
        self.remaining = instrs as f64;
        self.credit = 0.0;
    }

    /// Adds extra work to the in-flight handler (used for handler chains
    /// that the consumer fuses, e.g. draining a burst).
    pub fn add_work(&mut self, instrs: u32) {
        self.remaining += instrs as f64;
    }

    /// Advances one cycle at the given SMT scale; returns `true` if the
    /// handler completed this cycle.
    pub fn tick(&mut self, scale: f64) -> bool {
        if !self.busy() {
            return false;
        }
        self.busy_cycles += 1;
        self.credit += self.ipc * scale.clamp(0.0, 1.0);
        if self.credit >= self.remaining {
            self.remaining = 0.0;
            self.credit = 0.0;
            self.completed += 1;
            true
        } else {
            false
        }
    }

    /// Advances one cycle with `slots` issue slots available to the
    /// monitor thread this cycle (SMT slot-level sharing): the handler
    /// retires `min(ipc, slots)` instructions. Returns `true` on
    /// completion.
    pub fn tick_slots(&mut self, slots: u32) -> bool {
        if !self.busy() {
            return false;
        }
        self.busy_cycles += 1;
        self.credit += self.ipc.min(slots as f64);
        if self.credit >= self.remaining {
            self.remaining = 0.0;
            self.credit = 0.0;
            self.completed += 1;
            true
        } else {
            false
        }
    }

    /// Total cycles spent with a handler in flight.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total handlers completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

/// Issue-bandwidth arbitration for the fine-grained dual-threaded core
/// (single-core system, Figure 8(b)).
///
/// Slot-level sharing: when both hardware threads have work, the
/// application thread may use up to half the issue width and the
/// monitor thread runs in whatever slots remain; a thread alone gets
/// the whole core. On a 1-wide core the threads alternate cycles.
#[derive(Clone, Copy, Debug, Default)]
pub struct SmtArbiter {
    app_credit: f64,
}

impl SmtArbiter {
    /// Creates an arbiter.
    pub fn new() -> Self {
        SmtArbiter::default()
    }

    /// Computes this cycle's allocation.
    ///
    /// Returns `(app_slots, monitor_slots)`: how many instructions the
    /// application may retire this cycle, and the issue slots left for
    /// the monitor thread (feed to [`HandlerExec::tick_slots`]).
    pub fn arbitrate(
        &mut self,
        width: u32,
        app_wants: u32,
        monitor_active: bool,
    ) -> (u32, u32) {
        if !monitor_active {
            self.app_credit = 0.0;
            return (app_wants.min(width), width);
        }
        if app_wants == 0 {
            self.app_credit = 0.0;
            return (0, width);
        }
        if width == 1 {
            // Fine-grained alternation on a 1-wide core.
            self.app_credit += 0.5;
            let slots = (self.app_credit.floor() as u32).min(1);
            self.app_credit -= slots as f64;
            return (slots, 1 - slots);
        }
        // Both active on a wider core: the app is capped at half the
        // width; the monitor runs in the remaining slots.
        let slots = app_wants.min(width / 2);
        (slots, width - slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_kind_tables() {
        assert_eq!(CoreKind::InOrder1.width(), 1);
        assert_eq!(CoreKind::AggrOoO4.rob(), 96);
        assert!(CoreKind::AggrOoO4.handler_ipc() > CoreKind::InOrder1.handler_ipc());
        assert_eq!(CoreKind::AggrOoO4.app_ipc_scale(), 1.0);
        for k in CoreKind::ALL {
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn commit_model_hits_target_ipc() {
        for &(kind, ipc) in &[
            (CoreKind::AggrOoO4, 1.1),
            (CoreKind::LeanOoO2, 1.1),
            (CoreKind::InOrder1, 0.9),
        ] {
            let profile = CommitProfile::new(ipc, 100.0);
            let mut m = CommitModel::new(kind, profile, Rng::seed_from(7));
            let cycles = 2_000_000u64;
            let mut retired = 0u64;
            for _ in 0..cycles {
                m.tick();
                let n = m.retirable();
                m.retire(n);
                retired += n as u64;
            }
            let got = retired as f64 / cycles as f64;
            let want = m.target_ipc();
            assert!(
                (got - want).abs() / want < 0.08,
                "{kind:?}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn commit_window_respects_rob_under_backpressure() {
        let profile = CommitProfile::new(2.0, 50.0);
        let mut m = CommitModel::new(CoreKind::AggrOoO4, profile, Rng::seed_from(3));
        for _ in 0..10_000 {
            m.tick(); // never retire: window must saturate at the ROB
        }
        assert_eq!(m.pending(), CoreKind::AggrOoO4.rob());
        assert_eq!(m.retirable(), CoreKind::AggrOoO4.width());
    }

    #[test]
    #[should_panic(expected = "cannot retire beyond window")]
    fn retire_beyond_window_panics() {
        let profile = CommitProfile::new(1.0, 10.0);
        let mut m = CommitModel::new(CoreKind::AggrOoO4, profile, Rng::seed_from(3));
        m.retire(1);
    }

    #[test]
    fn handler_exec_takes_expected_cycles() {
        let mut h = HandlerExec::new(CoreKind::AggrOoO4); // IPC 3
        h.start(9);
        let mut cycles = 0;
        while !h.tick(1.0) {
            cycles += 1;
        }
        cycles += 1;
        assert_eq!(cycles, 3);
        assert_eq!(h.completed(), 1);
        assert_eq!(h.busy_cycles(), 3);
    }

    #[test]
    fn handler_exec_smt_scale_slows_execution() {
        let mut h = HandlerExec::new(CoreKind::AggrOoO4);
        h.start(9);
        let mut cycles = 0;
        while !h.tick(0.5) {
            cycles += 1;
        }
        cycles += 1;
        assert_eq!(cycles, 6);
    }

    #[test]
    #[should_panic(expected = "handler executor is busy")]
    fn handler_start_while_busy_panics() {
        let mut h = HandlerExec::new(CoreKind::InOrder1);
        h.start(10);
        h.start(10);
    }

    #[test]
    fn smt_arbiter_splits_bandwidth() {
        let mut arb = SmtArbiter::new();
        // Monitor inactive: app gets everything.
        assert_eq!(arb.arbitrate(4, 4, false), (4, 4));
        // Both active: app capped at half, monitor gets the rest.
        assert_eq!(arb.arbitrate(4, 4, true), (2, 2));
        // Light app demand leaves the monitor almost the whole core.
        assert_eq!(arb.arbitrate(4, 1, true), (1, 3));
    }

    #[test]
    fn smt_arbiter_alternates_on_narrow_core() {
        let mut arb = SmtArbiter::new();
        let mut app = 0;
        let mut monitor = 0;
        for _ in 0..10 {
            let (a, m) = arb.arbitrate(1, 1, true);
            app += a;
            monitor += m;
        }
        assert_eq!(app, 5, "width-1 SMT app thread gets every other cycle");
        assert_eq!(monitor, 5);
    }

    #[test]
    fn smt_arbiter_app_idle_gives_monitor_full_core() {
        let mut arb = SmtArbiter::new();
        assert_eq!(arb.arbitrate(4, 0, true), (0, 4));
    }

    #[test]
    fn handler_tick_slots_limits_throughput() {
        let mut h = HandlerExec::new(CoreKind::AggrOoO4); // IPC 3
        h.start(9);
        // 2 slots per cycle: 9 instrs need ceil(9/2) = 5 cycles.
        let mut cycles = 0;
        while !h.tick_slots(2) {
            cycles += 1;
        }
        cycles += 1;
        assert_eq!(cycles, 5);
        // With ample slots, IPC is the limit.
        h.start(9);
        let mut cycles = 0;
        while !h.tick_slots(8) {
            cycles += 1;
        }
        cycles += 1;
        assert_eq!(cycles, 3);
    }
}
