//! # fade-sim
//!
//! Cycle-level simulation substrate for the FADE reproduction.
//!
//! The paper evaluates FADE with Flexus full-system simulation (Section
//! 6). This crate provides the equivalent laptop-scale substrate:
//!
//! * [`Rng`] — deterministic in-crate RNG (SplitMix64 seeding +
//!   xoshiro256++ stream) so every experiment is bit-reproducible,
//! * [`BoundedQueue`] — the decoupling queues of Figure 1 with occupancy
//!   accounting,
//! * [`CoreKind`] / [`CommitModel`] / [`HandlerExec`] — the three core
//!   microarchitectures of Table 1 (in-order 1-way, lean OoO 2-way/48-ROB,
//!   aggressive OoO 4-way/96-ROB), modelled at the level FADE cares
//!   about: bursty retirement and handler execution throughput,
//! * [`MemLatency`] — Table 1 memory-hierarchy latencies,
//! * statistics helpers ([`LogHistogram`], [`RunningMean`], [`gmean`]).

pub mod cache;
pub mod core_model;
pub mod queue;
pub mod rng;
pub mod stats;

pub use cache::MemLatency;
pub use core_model::{CommitModel, CommitProfile, CoreKind, HandlerExec, SmtArbiter};
pub use queue::{BoundedQueue, QueueDepth};
pub use rng::Rng;
pub use stats::{
    congestion_stratum, gmean, t_critical_975, Cdf, CongestionCarry, CycleCi, CycleEstimate,
    LogHistogram, RunningMean, SampleEstimator, StratifiedEstimator, StratumStat, WindowSample,
};

/// Simulation time, in core clock cycles.
pub type Cycle = u64;
