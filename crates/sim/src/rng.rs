//! Deterministic random number generation.
//!
//! Implemented in-crate (SplitMix64 for seeding, xoshiro256++ for the
//! stream) so results are bit-identical across platforms and toolchain
//! versions — external RNG crates change default streams between major
//! versions, which would silently invalidate the calibrated experiment
//! numbers recorded in EXPERIMENTS.md.

/// A deterministic xoshiro256++ random number generator.
///
/// # Example
///
/// ```
/// use fade_sim::Rng;
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64, per the
    /// xoshiro authors' recommendation.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // All-zero state is the one invalid xoshiro state; SplitMix64
        // cannot produce four consecutive zeros, but guard anyway.
        let s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
        Rng { s }
    }

    /// Derives an independent child generator (for giving each simulation
    /// component its own stream).
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mix = self.next_u64() ^ stream.wrapping_mul(0xa076_1d64_78bd_642f);
        Rng::seed_from(mix)
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Widening multiply rejection-free approximation is fine for
        // simulation purposes; bias is < 2^-64 per draw.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Geometric draw: number of failures before the first success with
    /// success probability `p`; mean `(1-p)/p`. Returns 0 for `p >= 1`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 0;
        }
        let p = p.max(1e-12);
        let u = self.unit_f64().max(1e-300);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Exponential draw with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.unit_f64().max(1e-300);
        -mean * u.ln()
    }

    /// Picks an index from a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty with positive sum"
        );
        let mut x = self.unit_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::seed_from(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = Rng::seed_from(99);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = Rng::seed_from(5);
        for _ in 0..10_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = Rng::seed_from(11);
        for _ in 0..10_000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut r = Rng::seed_from(17);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = Rng::seed_from(23);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.geometric(0.25)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "got {mean}");
    }

    #[test]
    fn geometric_with_certain_success_is_zero() {
        let mut r = Rng::seed_from(1);
        assert_eq!(r.geometric(1.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = Rng::seed_from(31);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.weighted_index(&[1.0, 2.0, 1.0])] += 1;
        }
        assert!(counts[1] > counts[0]);
        assert!(counts[1] > counts[2]);
        let frac = counts[1] as f64 / 30_000.0;
        assert!((frac - 0.5).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = Rng::seed_from(41);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(8.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 8.0).abs() < 0.2, "got {mean}");
    }
}
