//! Statistics: histograms, CDFs and means for the evaluation harness.

/// A power-of-two bucketed histogram, used for queue-occupancy and
/// burst-size distributions (Figures 3 and 4 of the paper plot exactly
/// these power-of-two x-axes).
///
/// Bucket `i` counts samples in `[2^(i-1)+1 .. 2^i]`, with bucket 0
/// counting zeros and bucket 1 counting ones.
#[derive(Clone, Debug, Default)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = Self::bucket_of(value);
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => 64 - (v - 1).leading_zeros() as usize + 1,
        }
    }

    /// Upper bound of bucket `i` (inclusive).
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            i => 1u64 << (i - 1),
        }
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all samples (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The cumulative distribution: `(bucket_upper, cumulative_percent)`
    /// pairs, one per bucket.
    pub fn cdf(&self) -> Cdf {
        let mut points = Vec::with_capacity(self.counts.len());
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            let pct = if self.total == 0 {
                100.0
            } else {
                100.0 * cum as f64 / self.total as f64
            };
            points.push((Self::bucket_upper(i), pct));
        }
        Cdf { points }
    }

    /// Smallest value `v` such that at least `pct` percent of samples are
    /// `<= v` (reported at bucket granularity).
    pub fn percentile(&self, pct: f64) -> u64 {
        let target = (pct / 100.0 * self.total as f64).ceil() as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(self.counts.len().saturating_sub(1))
    }
}

/// A cumulative distribution function as `(value, percent)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Cdf {
    /// `(upper-bound, cumulative percent)` points in increasing order.
    pub points: Vec<(u64, f64)>,
}

impl Cdf {
    /// Cumulative percent at the first point whose bound is `>= value`
    /// (100 beyond the last point).
    pub fn percent_at(&self, value: u64) -> f64 {
        for &(v, p) in &self.points {
            if v >= value {
                return p;
            }
        }
        100.0
    }
}

/// An incrementally updated arithmetic mean.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl RunningMean {
    /// Creates an empty mean.
    pub fn new() -> Self {
        RunningMean::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.sum += x;
        self.n += 1;
    }

    /// The mean so far (0 if no samples).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// The 95% confidence interval of a [`CycleEstimate`].
///
/// Only exists when the estimator has enough information to compute
/// one: at least two sampled windows (a variance needs `n - 1 >= 1`
/// degrees of freedom) and a non-zero mean CPI. Degenerate inputs
/// yield `CycleEstimate::ci == None` instead of `NaN`/`INFINITY`
/// sentinel arithmetic leaking into reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CycleCi {
    /// Lower 95% confidence bound on the cycle count.
    pub lo: f64,
    /// Upper 95% confidence bound on the cycle count.
    pub hi: f64,
    /// Half-width of the CPI confidence interval relative to the mean
    /// CPI: the documented relative error bound of the estimate.
    pub rel_half_width: f64,
}

/// A cycle-count estimate extrapolated from sampled timing windows.
///
/// Produced by [`SampleEstimator::estimate`]; `ci` bounds the estimate
/// with a normal-approximation 95% confidence interval over the
/// per-window CPI samples (SMARTS-style sampling error bars), and is
/// `None` when fewer than two windows were sampled (no variance
/// information) or the mean CPI is zero (no relative scale).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CycleEstimate {
    /// Point estimate of the extrapolated cycle count.
    pub cycles: f64,
    /// 95% confidence interval, when one is computable.
    pub ci: Option<CycleCi>,
}

impl CycleEstimate {
    /// Lower confidence bound (the point estimate itself when no CI
    /// exists — callers quoting `lo..hi` degrade to a point estimate).
    pub fn lo(&self) -> f64 {
        self.ci.map_or(self.cycles, |c| c.lo)
    }

    /// Upper confidence bound (see [`CycleEstimate::lo`]).
    pub fn hi(&self) -> f64 {
        self.ci.map_or(self.cycles, |c| c.hi)
    }

    /// Relative error bound, when a CI exists.
    pub fn rel_half_width(&self) -> Option<f64> {
        self.ci.map(|c| c.rel_half_width)
    }
}

/// Two-sided 95% Student-t critical value (the 97.5th percentile of the
/// t distribution) for `df` degrees of freedom.
///
/// Sampled runs routinely produce single-digit window counts, where the
/// normal z=1.96 understates uncertainty badly (t₁ = 12.7, t₅ = 2.57).
/// Fractional `df` (from Welch–Satterthwaite combination) rounds *down*
/// to the next tabulated value, which rounds the critical value *up* —
/// always conservative. Inputs below one degree of freedom clamp to
/// df = 1.
pub fn t_critical_975(df: f64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    if !df.is_finite() || df < 1.0 {
        return TABLE[0];
    }
    match df.floor() as usize {
        i @ 1..=30 => TABLE[i - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// Extrapolates cycle counts from periodically sampled cycle-accurate
/// windows — the timing half of the batched execution mode.
///
/// Each window contributes an `(instructions, cycles)` pair measured by
/// running the cycle-accurate engine; unsampled (batched) stretches are
/// charged the ratio-estimator CPI `Σcycles / Σinstrs`. The error bound
/// is a 95% confidence interval on that *same ratio* — Taylor-linearized
/// (instruction-weighted) variance with a Student-t critical value — so
/// callers can report estimates as `cycles ± rel_half_width`.
///
/// Cycles are `f64` so callers can sample *differential* quantities —
/// the batched system mode records each window's monitoring *overhead*
/// (measured cycles minus the unimpeded-commit cycles for the same
/// instructions, which can dip below zero in a lucky window) and keeps
/// the large, noisy application-side term exact.
#[derive(Clone, Debug, Default)]
pub struct SampleEstimator {
    windows: Vec<(u64, f64)>,
}

impl SampleEstimator {
    /// Creates an estimator with no windows.
    pub fn new() -> Self {
        SampleEstimator::default()
    }

    /// Builds an estimator from pre-measured `(instrs, cycles)` windows.
    /// Zero-instruction windows carry no CPI information and are
    /// discarded, exactly as [`SampleEstimator::record_window`] would —
    /// otherwise a single degenerate window poisons every downstream
    /// ratio with `NaN`/`inf`.
    pub fn from_windows(windows: &[(u64, f64)]) -> Self {
        SampleEstimator {
            windows: windows.iter().copied().filter(|&(i, _)| i > 0).collect(),
        }
    }

    /// Records one sampled window of `instrs` instructions that took
    /// `cycles` cycles. Windows with zero instructions carry no CPI
    /// information and are ignored.
    pub fn record_window(&mut self, instrs: u64, cycles: f64) {
        if instrs > 0 {
            self.windows.push((instrs, cycles));
        }
    }

    /// The recorded `(instrs, cycles)` windows, in sampling order.
    pub fn windows(&self) -> &[(u64, f64)] {
        &self.windows
    }

    /// Number of recorded windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` when no window has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Ratio-estimator cycles-per-instruction over all windows
    /// (0 when empty).
    pub fn cpi(&self) -> f64 {
        let instrs: u64 = self.windows.iter().map(|&(i, _)| i).sum();
        let cycles: f64 = self.windows.iter().map(|&(_, c)| c).sum();
        if instrs == 0 {
            0.0
        } else {
            cycles / instrs as f64
        }
    }

    /// Half-width of the 95% confidence interval of the ratio-estimator
    /// CPI, relative to its absolute value. `None` with fewer than two
    /// windows (the `n - 1` variance denominator needs at least one
    /// degree of freedom) or a zero ratio (no relative scale) — the
    /// degenerate inputs that used to surface as sentinel infinities.
    ///
    /// The variance is the Taylor-linearized ratio-estimator form: with
    /// `R = ΣC/ΣI`, each window's residual is `dⱼ = cⱼ − R·iⱼ`, and
    /// `Var(R) ≈ n·s²_d / (ΣI)²` where `s²_d = Σdⱼ²/(n−1)`. Unlike a
    /// plain variance of per-window CPIs, this weighs each window by its
    /// instruction count — consistent with the point estimate — so the
    /// short-tail fallback windows the batched mode produces don't get
    /// outsized influence. The critical value is Student-t at `n − 1`
    /// degrees of freedom, not a hard-coded z.
    pub fn rel_half_width(&self) -> Option<f64> {
        let n = self.windows.len();
        if n < 2 {
            return None;
        }
        let instrs: f64 = self.windows.iter().map(|&(i, _)| i as f64).sum();
        let cycles: f64 = self.windows.iter().map(|&(_, c)| c).sum();
        let ratio = cycles / instrs;
        if ratio == 0.0 {
            return None;
        }
        let ss: f64 = self
            .windows
            .iter()
            .map(|&(i, c)| {
                let d = c - ratio * i as f64;
                d * d
            })
            .sum();
        let var_sum = ss * n as f64 / (n as f64 - 1.0); // estimated Var(Σdⱼ)
        let half = t_critical_975((n - 1) as f64) * var_sum.sqrt() / instrs;
        Some(half / ratio.abs())
    }

    /// Estimated cycles for `instrs` unsampled instructions, with 95%
    /// confidence bounds. With no windows the estimate is 0 cycles (the
    /// caller sampled nothing); with fewer than two windows (or a zero
    /// mean CPI) the point estimate stands alone and `ci` is `None`.
    pub fn estimate(&self, instrs: u64) -> CycleEstimate {
        let cpi = self.cpi();
        let cycles = cpi * instrs as f64;
        let ci = self.rel_half_width().map(|rel| {
            let half = cycles.abs() * rel;
            CycleCi {
                lo: cycles - half,
                hi: cycles + half,
                rel_half_width: rel,
            }
        });
        CycleEstimate { cycles, ci }
    }
}

/// Stratification key for a sampling window's congestion regime at
/// entry, derived from the [`CongestionCarry`] seed the window was
/// charged with.
///
/// Stratum 0 is "no carried backlog" (the window entered quiesced);
/// nonzero seeds bucket by magnitude, four powers of two per bucket, so
/// light and heavy congestion regimes — which have very different
/// residual-per-event distributions — are never pooled into one
/// variance estimate.
pub fn congestion_stratum(seed_cycles: u64) -> u8 {
    if seed_cycles == 0 {
        return 0;
    }
    let lg = (64 - seed_cycles.leading_zeros()) as u8; // 1..=64
    1 + ((lg - 1) / 4).min(3)
}

/// One sampled timing window as consumed by [`StratifiedEstimator`]:
/// the `(events, cycles)` pair plus its stratification key and control
/// covariate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowSample {
    /// Monitored events the window covered.
    pub events: u64,
    /// Measured cycles. The batched system mode records each window's
    /// *residual* overhead, which can dip below zero in a lucky window.
    pub cycles: f64,
    /// Congestion-regime stratum the window entered under (see
    /// [`congestion_stratum`]).
    pub stratum: u8,
    /// Control covariate: deterministic base cycles per event of the
    /// batched stretch adjacent to the window (0 when unknown). Only
    /// the variance estimate uses it; the point estimate never does.
    pub covariate: f64,
}

/// Per-stratum slice of a [`StratifiedEstimator`]'s interval, for
/// reporting. Strata thinner than the merge threshold are folded into a
/// neighbouring bucket before these are computed, so every row has
/// enough windows for its own variance estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct StratumStat {
    /// Stratum key (0 = entered with no carried backlog; higher keys =
    /// exponentially larger backlog buckets). After merging, the key of
    /// the group's lowest member.
    pub stratum: u8,
    /// Windows in this (merged) stratum.
    pub windows: usize,
    /// Events covered by this stratum's windows.
    pub events: u64,
    /// Total measured cycles in this stratum.
    pub cycles: f64,
    /// The stratum's own ratio estimate, cycles per event.
    pub cpi: f64,
    /// Relative half-width of the stratum's own 95% CI, when defined.
    pub rel_half_width: Option<f64>,
    /// Fitted control-variate coefficient, when the regression
    /// adjustment was applied to this stratum.
    pub beta: Option<f64>,
}

/// Variance decomposition of one merged stratum — internal to
/// [`StratifiedEstimator`].
struct GroupVar {
    stratum: u8,
    n: usize,
    events: f64,
    cycles: f64,
    /// `n_h · s²_h`: this stratum's contribution to `Var(Σdⱼ)`.
    var_contrib: f64,
    /// Degrees of freedom behind `s²_h` (`n−1`, or `n−2` with the
    /// control variate fitted).
    df: f64,
    beta: Option<f64>,
}

/// Stratified ratio estimator with a control variate — the tightened
/// replacement for [`SampleEstimator`] in the batched system mode.
///
/// The **point estimate** is the plain pooled ratio `ΣC/ΣE`, identical
/// to what [`SampleEstimator`] reports for the same windows:
/// post-stratification with sample-share weights `W_h = E_h/E` gives
/// `Σ_h W_h·(C_h/E_h) = ΣC/E` exactly, so stratification can only
/// change the *interval*, never the estimate.
///
/// The **interval** exploits two structures in the batched mode's
/// window stream:
///
/// 1. *Stratification.* Windows entered under different congestion
///    regimes (keyed by [`congestion_stratum`] of the carried seed)
///    have very different residual distributions. Grouping them makes
///    each stratum's ratio residuals `dⱼ = cⱼ − R_h·eⱼ` small, and the
///    combined variance `Var(R) = (1/E²)·Σ_h n_h·s²_h` drops the
///    between-strata component entirely. Strata with fewer than
///    [`StratifiedEstimator::MIN_STRATUM_WINDOWS`] windows merge into
///    the adjacent (next-lighter) bucket so no tiny-n stratum inflates
///    the Student-t penalty.
/// 2. *Control variate.* The deterministic base cycles per event of the
///    batched stretch adjacent to each window predict part of the
///    window's residual. Within each stratum, a regression coefficient
///    `β` is fitted and `dⱼ` is replaced by `dⱼ − β(zⱼ − z̄)`; the
///    centering keeps `Σdⱼ` (and hence the point estimate) untouched
///    while the fit removes the explained variance. One degree of
///    freedom pays for the fitted slope.
///
/// The strata intervals combine via a Welch–Satterthwaite effective
/// degrees of freedom and a Student-t critical value.
#[derive(Clone, Debug, Default)]
pub struct StratifiedEstimator {
    samples: Vec<WindowSample>,
}

impl StratifiedEstimator {
    /// Strata with fewer windows than this merge into the adjacent
    /// lighter-congestion bucket: below three windows a stratum's own
    /// variance estimate is so noisy (and its t penalty so steep) that
    /// keeping it separate widens the combined interval.
    pub const MIN_STRATUM_WINDOWS: usize = 3;

    /// Minimum windows in a (merged) stratum before the control-variate
    /// regression is fitted — with fewer, spending a degree of freedom
    /// on the slope costs more than the variance it removes (at n = 4
    /// the residual df drops from 3 to 2 and the t critical value
    /// jumps from 3.18 to 4.30, which a noise-fitted slope never
    /// repays).
    pub const CV_MIN_WINDOWS: usize = 6;

    /// Creates an estimator with no windows.
    pub fn new() -> Self {
        StratifiedEstimator::default()
    }

    /// Builds an estimator from pre-measured samples. Zero-event
    /// windows carry no per-event information and are discarded,
    /// exactly as [`StratifiedEstimator::record_window`] would.
    pub fn from_samples(samples: &[WindowSample]) -> Self {
        StratifiedEstimator {
            samples: samples.iter().copied().filter(|s| s.events > 0).collect(),
        }
    }

    /// Records one sampled window. Windows with zero events carry no
    /// per-event information and are ignored.
    pub fn record_window(&mut self, events: u64, cycles: f64, stratum: u8, covariate: f64) {
        if events > 0 {
            self.samples.push(WindowSample {
                events,
                cycles,
                stratum,
                covariate,
            });
        }
    }

    /// The recorded samples, in sampling order.
    pub fn samples(&self) -> &[WindowSample] {
        &self.samples
    }

    /// Number of recorded windows.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no window has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Pooled ratio-estimator cycles-per-event over all windows
    /// (0 when empty). Stratification never alters this value.
    pub fn cpi(&self) -> f64 {
        let events: u64 = self.samples.iter().map(|s| s.events).sum();
        let cycles: f64 = self.samples.iter().map(|s| s.cycles).sum();
        if events == 0 {
            0.0
        } else {
            cycles / events as f64
        }
    }

    /// Groups samples by stratum (ascending key) and merges groups
    /// thinner than [`Self::MIN_STRATUM_WINDOWS`] into the adjacent
    /// lighter bucket (or the next heavier one for the lightest).
    fn groups(&self) -> Vec<(u8, Vec<WindowSample>)> {
        let mut map: std::collections::BTreeMap<u8, Vec<WindowSample>> =
            std::collections::BTreeMap::new();
        for &s in &self.samples {
            map.entry(s.stratum).or_default().push(s);
        }
        let mut groups: Vec<(u8, Vec<WindowSample>)> = map.into_iter().collect();
        let mut i = 0;
        while groups.len() > 1 && i < groups.len() {
            if groups[i].1.len() < Self::MIN_STRATUM_WINDOWS {
                let (_, small) = groups.remove(i);
                let into = i.saturating_sub(1);
                groups[into].1.extend(small);
            } else {
                i += 1;
            }
        }
        groups
    }

    /// Variance decomposition of one merged stratum: ratio residuals
    /// against the stratum's own ratio, optionally control-variate
    /// adjusted, yielding the stratum's `n_h·s²_h` contribution.
    fn group_var(stratum: u8, g: &[WindowSample]) -> GroupVar {
        let n = g.len();
        let events: f64 = g.iter().map(|s| s.events as f64).sum();
        let cycles: f64 = g.iter().map(|s| s.cycles).sum();
        let ratio = if events > 0.0 { cycles / events } else { 0.0 };
        let mut d: Vec<f64> = g.iter().map(|s| s.cycles - ratio * s.events as f64).collect();

        // Control-variate regression on the centered covariate: the
        // slope soaks up the residual variance the adjacent batched
        // stretch already explains. Centering means Σ(adjusted d) =
        // Σd − β·0 = Σd, so nothing downstream of the variance moves.
        let mut beta = None;
        let mut df = n as f64 - 1.0;
        if n >= Self::CV_MIN_WINDOWS {
            let zbar: f64 = g.iter().map(|s| s.covariate).sum::<f64>() / n as f64;
            let szz: f64 = g.iter().map(|s| (s.covariate - zbar).powi(2)).sum();
            if szz > 0.0 {
                let sdz: f64 = g
                    .iter()
                    .zip(&d)
                    .map(|(s, &dj)| dj * (s.covariate - zbar))
                    .sum();
                let b = sdz / szz;
                for (s, dj) in g.iter().zip(&mut d) {
                    *dj -= b * (s.covariate - zbar);
                }
                beta = Some(b);
                df = n as f64 - 2.0;
            }
        }

        let ss: f64 = d.iter().map(|dj| dj * dj).sum();
        let var_contrib = if df >= 1.0 {
            n as f64 * ss / df
        } else {
            0.0 // single-window stratum: no variance information
        };
        GroupVar {
            stratum,
            n,
            events,
            cycles,
            var_contrib,
            df: df.max(0.0),
            beta,
        }
    }

    fn group_vars(&self) -> Vec<GroupVar> {
        self.groups()
            .iter()
            .map(|(k, g)| Self::group_var(*k, g))
            .collect()
    }

    /// Half-width of the stratified 95% confidence interval of the
    /// pooled CPI, relative to its absolute value. `None` with fewer
    /// than two windows or a zero ratio, mirroring
    /// [`SampleEstimator::rel_half_width`].
    ///
    /// Combined variance: `Var(R) = (1/E²)·Σ_h n_h·s²_h` (sample-share
    /// weights make the stratum weights cancel); critical value:
    /// Student-t at the Welch–Satterthwaite effective degrees of
    /// freedom `(Σ_h v_h)² / Σ_h(v_h²/df_h)` with `v_h = n_h·s²_h`.
    pub fn rel_half_width(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let events: f64 = self.samples.iter().map(|s| s.events as f64).sum();
        let cycles: f64 = self.samples.iter().map(|s| s.cycles).sum();
        let ratio = cycles / events;
        if ratio == 0.0 {
            return None;
        }
        let vars = self.group_vars();
        let var_sum: f64 = vars.iter().map(|v| v.var_contrib).sum();
        if var_sum <= 0.0 {
            return Some(0.0); // exact: every stratum's windows agree
        }
        let ws_denom: f64 = vars
            .iter()
            .filter(|v| v.df >= 1.0 && v.var_contrib > 0.0)
            .map(|v| v.var_contrib * v.var_contrib / v.df)
            .sum();
        let df_eff = if ws_denom > 0.0 {
            var_sum * var_sum / ws_denom
        } else {
            1.0
        };
        let half = t_critical_975(df_eff) * var_sum.sqrt() / events;
        Some(half / ratio.abs())
    }

    /// Per-stratum interval breakdown, one row per *merged* stratum in
    /// ascending key order — the reporting view behind the bench
    /// artifact's per-stratum columns.
    pub fn strata(&self) -> Vec<StratumStat> {
        self.group_vars()
            .into_iter()
            .map(|v| {
                let cpi = if v.events > 0.0 { v.cycles / v.events } else { 0.0 };
                let rel = if v.df >= 1.0 && cpi != 0.0 && v.events > 0.0 {
                    let half = t_critical_975(v.df) * v.var_contrib.sqrt() / v.events;
                    Some(half / cpi.abs())
                } else {
                    None
                };
                StratumStat {
                    stratum: v.stratum,
                    windows: v.n,
                    events: v.events as u64,
                    cycles: v.cycles,
                    cpi,
                    rel_half_width: rel,
                    beta: v.beta,
                }
            })
            .collect()
    }

    /// Estimated cycles for `events` unsampled events, with 95%
    /// confidence bounds — same contract as
    /// [`SampleEstimator::estimate`], but with the stratified interval.
    pub fn estimate(&self, events: u64) -> CycleEstimate {
        let cpi = self.cpi();
        let cycles = cpi * events as f64;
        let ci = self.rel_half_width().map(|rel| {
            let half = cycles.abs() * rel;
            CycleCi {
                lo: cycles - half,
                hi: cycles + half,
                rel_half_width: rel,
            }
        });
        CycleEstimate { cycles, ci }
    }

    /// Global event-weighted control-variate fit across *all* windows:
    /// `(slope, weighted covariate mean)`, or `None` when too few
    /// windows carry a covariate signal to spend a degree of freedom
    /// on. The per-stratum fits in [`Self::rel_half_width`] absorb
    /// variance; this single pooled slope carries the regression
    /// estimator's *point* correction in
    /// [`Self::estimate_with_covariate_mean`], and is deliberately
    /// blind to stratum labels so stratification still never moves the
    /// point estimate.
    fn global_fit(&self) -> Option<(f64, f64)> {
        let n = self.samples.len();
        if n < Self::CV_MIN_WINDOWS {
            return None;
        }
        let events: f64 = self.samples.iter().map(|s| s.events as f64).sum();
        if events <= 0.0 {
            return None;
        }
        let ratio = self.samples.iter().map(|s| s.cycles).sum::<f64>() / events;
        let zbar: f64 =
            self.samples.iter().map(|s| s.events as f64 * s.covariate).sum::<f64>() / events;
        let szz: f64 = self
            .samples
            .iter()
            .map(|s| s.events as f64 * (s.covariate - zbar).powi(2))
            .sum();
        if szz <= 0.0 {
            return None;
        }
        let sdz: f64 = self
            .samples
            .iter()
            .map(|s| (s.cycles - ratio * s.events as f64) * (s.covariate - zbar))
            .sum();
        Some((sdz / szz, zbar))
    }

    /// Regression-estimator variant of [`Self::estimate`]: extrapolates
    /// at the *population* covariate mean instead of the sample's.
    ///
    /// The control variate is only statistically sound as a regression
    /// estimator — conditioning the variance on a covariate while
    /// leaving the point estimate alone understates the unadjusted
    /// estimator's error. When the covariate is deterministic and its
    /// population mean over the extrapolated stretches is known (the
    /// batched mode's base-cycles-per-event covariate qualifies: every
    /// stretch's base is computed exactly), the sound form adjusts the
    /// point by `β·(z̄_pop − z̄_sample)` and then legitimately claims
    /// the regression residual variance. Periodic sampling pairs every
    /// stretch with a window, so the two means nearly coincide and the
    /// adjustment is a small bias correction — but it is what makes
    /// the tightened interval honest.
    pub fn estimate_with_covariate_mean(&self, events: u64, pop_mean: f64) -> CycleEstimate {
        let mut e = self.estimate(events);
        if let Some((beta, zbar)) = self.global_fit() {
            if pop_mean.is_finite() {
                let shift = beta * (pop_mean - zbar) * events as f64;
                e.cycles += shift;
                if let Some(ci) = &mut e.ci {
                    ci.lo += shift;
                    ci.hi += shift;
                }
            }
        }
        e
    }
}

/// Queue-congestion summary carried from a batched stretch into the
/// next cycle-accurate sampling window.
///
/// The batched fast path drains the event stream with an always-ready
/// consumer, so when the engine drops into a sampling window the
/// decoupling queues are empty — on monitor-bound workloads that
/// truncates the long congestion episodes the window was supposed to
/// measure, biasing the [`SampleEstimator`]'s per-event residual low.
/// This summary tracks, from the stretch's dispatch stream, how far the
/// software consumer would have been behind at the stretch boundary:
///
/// * [`CongestionCarry::on_dispatch`] records each dispatched event's
///   estimated handler cycles;
/// * [`CongestionCarry::on_stretch`] advances the backlog by one
///   batched chunk — handler work arrives, application cycles drain it
///   — capping the lag at what the bounded queues could actually hold
///   (the real producer stalls once they fill, so the carried backlog
///   can never exceed the recent dispatches that fit in them);
/// * [`CongestionCarry::take`] hands the accumulated backlog to the
///   window-entry seeding logic and resets for the next stretch.
///
/// The carry is a pure timing quantity: seeding it into a window
/// pre-loads the monitor thread with already-accounted work, which
/// cannot change any monitor-visible result.
#[derive(Clone, Debug)]
pub struct CongestionCarry {
    /// Handler-work backlog (estimated cycles) at the stretch boundary.
    lag_cycles: u64,
    /// Estimated handler cycles of the most recent dispatches — the
    /// events that could still be sitting in the bounded queues.
    recent: std::collections::VecDeque<u64>,
    recent_sum: u64,
    /// How many dispatched events the queues can hold at once.
    cap_entries: usize,
}

impl CongestionCarry {
    /// Creates an empty carry for queues holding `cap_entries`
    /// dispatched events (zero degenerates to "no carry ever").
    pub fn new(cap_entries: usize) -> Self {
        CongestionCarry {
            lag_cycles: 0,
            recent: std::collections::VecDeque::with_capacity(cap_entries),
            recent_sum: 0,
            cap_entries,
        }
    }

    /// Records one dispatched event's estimated handler cycles.
    pub fn on_dispatch(&mut self, est_cycles: u64) {
        if self.cap_entries == 0 {
            return;
        }
        if self.recent.len() == self.cap_entries {
            if let Some(old) = self.recent.pop_front() {
                self.recent_sum -= old;
            }
        }
        self.recent.push_back(est_cycles);
        self.recent_sum += est_cycles;
    }

    /// Advances the backlog by one batched chunk: `handler_cycles` of
    /// estimated handler work arrived while `app_cycles` of application
    /// time drained it. The lag saturates at the recent-dispatch sum —
    /// the work that could really be queued at the boundary.
    pub fn on_stretch(&mut self, handler_cycles: u64, app_cycles: u64) {
        self.lag_cycles = (self.lag_cycles + handler_cycles)
            .saturating_sub(app_cycles)
            .min(self.recent_sum);
    }

    /// The backlog that would be in flight at the stretch boundary.
    pub fn pending(&self) -> u64 {
        self.lag_cycles
    }

    /// Consumes the carried backlog (the window absorbed it) and resets
    /// the dispatch history for the next stretch.
    pub fn take(&mut self) -> u64 {
        let lag = self.lag_cycles;
        self.lag_cycles = 0;
        self.recent.clear();
        self.recent_sum = 0;
        lag
    }
}

/// Geometric mean of a slice of positive values — the paper reports
/// gmean slowdowns (Figure 3(c) x-axis label "gmean").
///
/// Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "gmean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 3);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(5), 4);
        assert_eq!(LogHistogram::bucket_of(8), 4);
        assert_eq!(LogHistogram::bucket_of(9), 5);
    }

    #[test]
    fn bucket_upper_matches_bucket_of() {
        for i in 1..20 {
            let upper = LogHistogram::bucket_upper(i);
            assert_eq!(LogHistogram::bucket_of(upper), i);
            assert_eq!(LogHistogram::bucket_of(upper + 1), i + 1);
        }
    }

    #[test]
    fn cdf_reaches_100() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 1, 2, 5, 9] {
            h.record(v);
        }
        let cdf = h.cdf();
        let last = cdf.points.last().unwrap();
        assert!((last.1 - 100.0).abs() < 1e-9);
        // 3 of 6 samples are <= 1.
        assert!((cdf.percent_at(1) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_finds_bucket() {
        let mut h = LogHistogram::new();
        for v in 0..100 {
            h.record(v);
        }
        assert!(h.percentile(50.0) >= 32);
        assert!(h.percentile(100.0) >= 64);
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn mean_tracks_sum() {
        let mut h = LogHistogram::new();
        h.record(2);
        h.record(4);
        assert!((h.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn running_mean() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.add(1.0);
        m.add(3.0);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn gmean_of_equal_values() {
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "gmean requires positive values")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[1.0, 0.0]);
    }

    #[test]
    fn sample_estimator_exact_for_constant_cpi() {
        let mut e = SampleEstimator::new();
        for _ in 0..4 {
            e.record_window(100, 250.0); // CPI 2.5 in every window
        }
        assert!((e.cpi() - 2.5).abs() < 1e-12);
        let est = e.estimate(1_000);
        assert!((est.cycles - 2_500.0).abs() < 1e-9);
        // Zero variance: the interval collapses onto the estimate.
        assert!((est.hi() - est.lo()).abs() < 1e-9);
        assert!(est.rel_half_width().unwrap() < 1e-12);
    }

    #[test]
    fn sample_estimator_bounds_cover_the_mean() {
        let e = SampleEstimator::from_windows(&[(100, 200.0), (100, 300.0), (100, 250.0)]);
        assert!((e.cpi() - 2.5).abs() < 1e-12);
        let est = e.estimate(100);
        assert!(est.lo() < est.cycles && est.cycles < est.hi());
        let rel = est.rel_half_width().expect("3 windows give a CI");
        assert!(rel > 0.0 && rel.is_finite());
    }

    #[test]
    fn sample_estimator_handles_negative_overhead_windows() {
        // Differential sampling: a lucky window can have negative
        // overhead; the estimator must keep working on signed cycles.
        let e = SampleEstimator::from_windows(&[(100, -10.0), (100, 30.0), (100, 10.0)]);
        assert!((e.cpi() - 0.1).abs() < 1e-12);
        let est = e.estimate(1_000);
        assert!((est.cycles - 100.0).abs() < 1e-9);
        assert!(est.lo() < est.cycles && est.cycles < est.hi());
    }

    #[test]
    fn sample_estimator_degenerate_cases() {
        let mut e = SampleEstimator::new();
        assert!(e.is_empty());
        let est = e.estimate(500);
        assert_eq!(est.cycles, 0.0);
        assert_eq!(est.ci, None);
        assert_eq!(e.cpi(), 0.0);
        assert_eq!(e.rel_half_width(), None);
        // Zero-instruction windows are discarded.
        e.record_window(0, 999.0);
        assert!(e.is_empty());
        // A single window gives a point estimate with no error bound —
        // and every derived quantity stays finite (no NaN from the
        // n - 1 variance denominator).
        e.record_window(10, 30.0);
        assert_eq!(e.len(), 1);
        let est = e.estimate(10);
        assert!((est.cycles - 30.0).abs() < 1e-12);
        assert_eq!(est.ci, None);
        assert_eq!(est.rel_half_width(), None);
        assert_eq!(est.lo(), est.cycles);
        assert_eq!(est.hi(), est.cycles);
        assert!(est.cycles.is_finite() && est.lo().is_finite() && est.hi().is_finite());
    }

    #[test]
    fn from_windows_discards_zero_instruction_windows() {
        // A zero-instruction window used to slip through `from_windows`
        // and divide by zero in the CPI vector (NaN variance, NaN CI).
        let e = SampleEstimator::from_windows(&[(0, 123.0), (100, 250.0), (0, 9.0), (100, 200.0)]);
        assert_eq!(e.len(), 2);
        assert!((e.cpi() - 2.25).abs() < 1e-12);
        let est = e.estimate(100);
        assert!(est.cycles.is_finite());
        let rel = est.rel_half_width().expect("two real windows give a CI");
        assert!(rel.is_finite() && !rel.is_nan());
    }

    #[test]
    fn zero_mean_cpi_has_no_relative_ci() {
        // Perfectly cancelling overhead windows: the mean CPI is zero,
        // so a *relative* half-width has no scale. Typed None, not inf.
        let e = SampleEstimator::from_windows(&[(100, -50.0), (100, 50.0)]);
        assert_eq!(e.rel_half_width(), None);
        assert_eq!(e.estimate(1_000).ci, None);
    }

    #[test]
    fn t_critical_tracks_degrees_of_freedom() {
        assert!((t_critical_975(1.0) - 12.706).abs() < 1e-9);
        assert!((t_critical_975(5.0) - 2.571).abs() < 1e-9);
        assert!((t_critical_975(29.0) - 2.045).abs() < 1e-9);
        assert!((t_critical_975(200.0) - 1.96).abs() < 1e-9);
        // Fractional df rounds down (critical value up): conservative.
        assert!((t_critical_975(5.9) - 2.571).abs() < 1e-9);
        // Degenerate inputs clamp to the widest tabulated value.
        assert!((t_critical_975(0.2) - 12.706).abs() < 1e-9);
        assert!((t_critical_975(f64::NAN) - 12.706).abs() < 1e-9);
    }

    #[test]
    fn small_n_intervals_use_student_t_not_z() {
        // Same per-window CPI spread at n = 2 and n = 30; the n = 2
        // interval must be wider by far more than the √n factor alone —
        // the t₁ = 12.706 critical value vs t₂₉ = 2.045.
        let two = SampleEstimator::from_windows(&[(100, 240.0), (100, 260.0)]);
        let mut wins = Vec::new();
        for k in 0..30 {
            wins.push((100, if k % 2 == 0 { 240.0 } else { 260.0 }));
        }
        let thirty = SampleEstimator::from_windows(&wins);
        let rel2 = two.rel_half_width().unwrap();
        let rel30 = thirty.rel_half_width().unwrap();
        // n = 2: sd of Σd is 10·√2·√2 = 20 over ΣC = 500, CPI 2.5 →
        // rel = 12.706 · 20/200/2.5... compute directly instead:
        // d = ∓10, s² = 200, Var(Σd) = n·s² = 400, half = 12.706·20,
        // rel = 12.706·20/500 ≈ 0.5082.
        assert!((rel2 - 12.706 * 20.0 / 500.0).abs() < 1e-9);
        // n = 30: Var(Σd) = 30·(30·100/29), half = t₂₉·√(Σ)… just pin
        // the closed form.
        let var_sum: f64 = 30.0 * (30.0 * 100.0 / 29.0);
        assert!((rel30 - 2.045 * var_sum.sqrt() / 7_500.0).abs() < 1e-9);
        assert!(rel2 > 6.0 * rel30, "t must dominate at tiny n: {rel2} vs {rel30}");
    }

    #[test]
    fn ci_weighs_windows_by_instruction_count() {
        // A short window with a wild CPI and a long window near the
        // ratio. The unweighted per-window-CPI variance treats both
        // deviations equally; the ratio-estimator (linearized) variance
        // weighs residuals in *cycles*, so the short window's influence
        // shrinks with its length. Pin the linearized closed form.
        let e = SampleEstimator::from_windows(&[(10, 60.0), (1_000, 2_000.0)]);
        let ratio: f64 = 2060.0 / 1010.0;
        let d1: f64 = 60.0 - ratio * 10.0;
        let d2: f64 = 2000.0 - ratio * 1000.0;
        let var_sum = (d1 * d1 + d2 * d2) * 2.0; // n/(n−1) = 2
        let want = 12.706 * var_sum.sqrt() / 1010.0 / ratio;
        assert!((e.rel_half_width().unwrap() - want).abs() < 1e-9);
        // Sanity: the residuals are equal-and-opposite small numbers,
        // not the enormous per-window CPI gap (6.0 vs 2.0).
        assert!((d1 + d2).abs() < 1e-9);
    }

    #[test]
    fn congestion_stratum_buckets_by_backlog_magnitude() {
        assert_eq!(congestion_stratum(0), 0);
        assert_eq!(congestion_stratum(1), 1);
        assert_eq!(congestion_stratum(15), 1);
        assert_eq!(congestion_stratum(16), 2);
        assert_eq!(congestion_stratum(255), 2);
        assert_eq!(congestion_stratum(256), 3);
        assert_eq!(congestion_stratum(4_095), 3);
        assert_eq!(congestion_stratum(4_096), 4);
        assert_eq!(congestion_stratum(u64::MAX), 4);
    }

    #[test]
    fn stratification_never_moves_the_point_estimate() {
        // Identical windows fed to the pooled and stratified
        // estimators: the point estimates agree exactly, whatever the
        // stratum labels, because sample-share weights telescope back
        // to the pooled ratio.
        let wins: Vec<(u64, f64)> = vec![
            (1_000, 1_500.0),
            (900, 4_000.0),
            (1_100, 1_300.0),
            (1_000, 3_900.0),
            (800, 1_100.0),
            (1_200, 4_700.0),
            (1_000, 1_450.0),
            (1_000, 4_100.0),
        ];
        let pooled = SampleEstimator::from_windows(&wins);
        let strat = StratifiedEstimator::from_samples(
            &wins
                .iter()
                .enumerate()
                .map(|(k, &(e, c))| WindowSample {
                    events: e,
                    cycles: c,
                    stratum: (k % 2) as u8,
                    covariate: 0.0,
                })
                .collect::<Vec<_>>(),
        );
        assert!((pooled.cpi() - strat.cpi()).abs() < 1e-12);
        let est_p = pooled.estimate(100_000);
        let est_s = strat.estimate(100_000);
        assert!((est_p.cycles - est_s.cycles).abs() < 1e-6);
        // The windows alternate between a ~1.4 and a ~4.0 CPI regime;
        // stratifying on that regime must tighten the interval.
        assert!(
            strat.rel_half_width().unwrap() < pooled.rel_half_width().unwrap(),
            "stratified {:?} !< pooled {:?}",
            strat.rel_half_width(),
            pooled.rel_half_width()
        );
    }

    #[test]
    fn stratified_single_stratum_matches_pooled_interval() {
        // With every window in one stratum and no covariate signal, the
        // stratified interval degenerates to the pooled ratio interval.
        let wins = [(100u64, 200.0), (120, 310.0), (90, 180.0), (110, 260.0)];
        let pooled = SampleEstimator::from_windows(&wins);
        let strat = StratifiedEstimator::from_samples(
            &wins
                .iter()
                .map(|&(e, c)| WindowSample {
                    events: e,
                    cycles: c,
                    stratum: 0,
                    covariate: 0.0,
                })
                .collect::<Vec<_>>(),
        );
        let a = pooled.rel_half_width().unwrap();
        let b = strat.rel_half_width().unwrap();
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn control_variate_tightens_but_never_shifts() {
        // Residuals perfectly explained by the covariate: the CV fit
        // removes essentially all variance, while the point estimate is
        // identical with and without the covariate.
        let mut with = StratifiedEstimator::new();
        let mut without = StratifiedEstimator::new();
        for k in 0..8u64 {
            let z = k as f64;
            let cycles = 200.0 + 40.0 * (z - 3.5); // linear in z, mean 200
            with.record_window(100, cycles, 0, z);
            without.record_window(100, cycles, 0, 0.0);
        }
        assert!((with.cpi() - without.cpi()).abs() < 1e-12);
        assert!((with.cpi() - 2.0).abs() < 1e-12);
        let tight = with.rel_half_width().unwrap();
        let loose = without.rel_half_width().unwrap();
        assert!(tight < loose / 10.0, "CV should kill a linear residual: {tight} vs {loose}");
        let strata = with.strata();
        assert_eq!(strata.len(), 1);
        assert!((strata[0].beta.unwrap() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn thin_strata_merge_into_neighbours() {
        // Six windows in stratum 0, one stray window each in strata 2
        // and 4: the strays merge down rather than standing alone with
        // zero degrees of freedom.
        let mut e = StratifiedEstimator::new();
        for _ in 0..6 {
            e.record_window(100, 250.0, 0, 0.0);
        }
        e.record_window(100, 400.0, 2, 0.0);
        e.record_window(100, 500.0, 4, 0.0);
        let strata = e.strata();
        assert_eq!(strata.len(), 1, "all windows fold into one group: {strata:?}");
        assert_eq!(strata[0].windows, 8);
        assert!(e.rel_half_width().unwrap().is_finite());
    }

    #[test]
    fn stratified_degenerate_cases_mirror_pooled() {
        let mut e = StratifiedEstimator::new();
        assert!(e.is_empty());
        assert_eq!(e.cpi(), 0.0);
        assert_eq!(e.rel_half_width(), None);
        assert_eq!(e.estimate(500).ci, None);
        e.record_window(0, 999.0, 1, 1.0); // zero-event window discarded
        assert!(e.is_empty());
        e.record_window(10, 30.0, 1, 1.0);
        assert_eq!(e.len(), 1);
        assert_eq!(e.rel_half_width(), None);
        // Perfectly cancelling windows: zero ratio, no relative scale.
        let z = StratifiedEstimator::from_samples(&[
            WindowSample { events: 100, cycles: -50.0, stratum: 0, covariate: 0.0 },
            WindowSample { events: 100, cycles: 50.0, stratum: 0, covariate: 0.0 },
        ]);
        assert_eq!(z.rel_half_width(), None);
    }

    #[test]
    fn congestion_carry_accumulates_and_caps() {
        let mut c = CongestionCarry::new(4);
        assert_eq!(c.pending(), 0);
        // Four dispatches of 10 estimated cycles each, in a chunk where
        // handler work (40) outpaced the application (25): 15 carried.
        for _ in 0..4 {
            c.on_dispatch(10);
        }
        c.on_stretch(40, 25);
        assert_eq!(c.pending(), 15);
        // An app-bound chunk drains the lag.
        c.on_stretch(0, 10);
        assert_eq!(c.pending(), 5);
        // The lag can never exceed what the queues hold: the recent
        // window is 4 dispatches x 10 cycles = 40, even if the nominal
        // excess is far larger.
        c.on_stretch(1_000, 0);
        assert_eq!(c.pending(), 40);
        // Taking the carry resets everything.
        assert_eq!(c.take(), 40);
        assert_eq!(c.pending(), 0);
        c.on_stretch(1_000, 0);
        assert_eq!(c.pending(), 0, "no recent dispatches, nothing can be queued");
    }

    #[test]
    fn congestion_carry_zero_capacity_is_inert() {
        let mut c = CongestionCarry::new(0);
        c.on_dispatch(10);
        c.on_stretch(100, 0);
        assert_eq!(c.pending(), 0);
        assert_eq!(c.take(), 0);
    }
}
