//! Statistics: histograms, CDFs and means for the evaluation harness.

/// A power-of-two bucketed histogram, used for queue-occupancy and
/// burst-size distributions (Figures 3 and 4 of the paper plot exactly
/// these power-of-two x-axes).
///
/// Bucket `i` counts samples in `[2^(i-1)+1 .. 2^i]`, with bucket 0
/// counting zeros and bucket 1 counting ones.
#[derive(Clone, Debug, Default)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = Self::bucket_of(value);
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => 64 - (v - 1).leading_zeros() as usize + 1,
        }
    }

    /// Upper bound of bucket `i` (inclusive).
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            i => 1u64 << (i - 1),
        }
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all samples (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The cumulative distribution: `(bucket_upper, cumulative_percent)`
    /// pairs, one per bucket.
    pub fn cdf(&self) -> Cdf {
        let mut points = Vec::with_capacity(self.counts.len());
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            let pct = if self.total == 0 {
                100.0
            } else {
                100.0 * cum as f64 / self.total as f64
            };
            points.push((Self::bucket_upper(i), pct));
        }
        Cdf { points }
    }

    /// Smallest value `v` such that at least `pct` percent of samples are
    /// `<= v` (reported at bucket granularity).
    pub fn percentile(&self, pct: f64) -> u64 {
        let target = (pct / 100.0 * self.total as f64).ceil() as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(self.counts.len().saturating_sub(1))
    }
}

/// A cumulative distribution function as `(value, percent)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Cdf {
    /// `(upper-bound, cumulative percent)` points in increasing order.
    pub points: Vec<(u64, f64)>,
}

impl Cdf {
    /// Cumulative percent at the first point whose bound is `>= value`
    /// (100 beyond the last point).
    pub fn percent_at(&self, value: u64) -> f64 {
        for &(v, p) in &self.points {
            if v >= value {
                return p;
            }
        }
        100.0
    }
}

/// An incrementally updated arithmetic mean.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl RunningMean {
    /// Creates an empty mean.
    pub fn new() -> Self {
        RunningMean::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.sum += x;
        self.n += 1;
    }

    /// The mean so far (0 if no samples).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// The 95% confidence interval of a [`CycleEstimate`].
///
/// Only exists when the estimator has enough information to compute
/// one: at least two sampled windows (a variance needs `n - 1 >= 1`
/// degrees of freedom) and a non-zero mean CPI. Degenerate inputs
/// yield `CycleEstimate::ci == None` instead of `NaN`/`INFINITY`
/// sentinel arithmetic leaking into reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CycleCi {
    /// Lower 95% confidence bound on the cycle count.
    pub lo: f64,
    /// Upper 95% confidence bound on the cycle count.
    pub hi: f64,
    /// Half-width of the CPI confidence interval relative to the mean
    /// CPI: the documented relative error bound of the estimate.
    pub rel_half_width: f64,
}

/// A cycle-count estimate extrapolated from sampled timing windows.
///
/// Produced by [`SampleEstimator::estimate`]; `ci` bounds the estimate
/// with a normal-approximation 95% confidence interval over the
/// per-window CPI samples (SMARTS-style sampling error bars), and is
/// `None` when fewer than two windows were sampled (no variance
/// information) or the mean CPI is zero (no relative scale).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CycleEstimate {
    /// Point estimate of the extrapolated cycle count.
    pub cycles: f64,
    /// 95% confidence interval, when one is computable.
    pub ci: Option<CycleCi>,
}

impl CycleEstimate {
    /// Lower confidence bound (the point estimate itself when no CI
    /// exists — callers quoting `lo..hi` degrade to a point estimate).
    pub fn lo(&self) -> f64 {
        self.ci.map_or(self.cycles, |c| c.lo)
    }

    /// Upper confidence bound (see [`CycleEstimate::lo`]).
    pub fn hi(&self) -> f64 {
        self.ci.map_or(self.cycles, |c| c.hi)
    }

    /// Relative error bound, when a CI exists.
    pub fn rel_half_width(&self) -> Option<f64> {
        self.ci.map(|c| c.rel_half_width)
    }
}

/// Extrapolates cycle counts from periodically sampled cycle-accurate
/// windows — the timing half of the batched execution mode.
///
/// Each window contributes an `(instructions, cycles)` pair measured by
/// running the cycle-accurate engine; unsampled (batched) stretches are
/// charged the ratio-estimator CPI `Σcycles / Σinstrs`. The error bound
/// is a 95% normal-approximation confidence interval over the
/// per-window CPI samples, so callers can report estimates as
/// `cycles ± rel_half_width`.
///
/// Cycles are `f64` so callers can sample *differential* quantities —
/// the batched system mode records each window's monitoring *overhead*
/// (measured cycles minus the unimpeded-commit cycles for the same
/// instructions, which can dip below zero in a lucky window) and keeps
/// the large, noisy application-side term exact.
#[derive(Clone, Debug, Default)]
pub struct SampleEstimator {
    windows: Vec<(u64, f64)>,
}

impl SampleEstimator {
    /// Creates an estimator with no windows.
    pub fn new() -> Self {
        SampleEstimator::default()
    }

    /// Builds an estimator from pre-measured `(instrs, cycles)` windows.
    /// Zero-instruction windows carry no CPI information and are
    /// discarded, exactly as [`SampleEstimator::record_window`] would —
    /// otherwise a single degenerate window poisons every downstream
    /// ratio with `NaN`/`inf`.
    pub fn from_windows(windows: &[(u64, f64)]) -> Self {
        SampleEstimator {
            windows: windows.iter().copied().filter(|&(i, _)| i > 0).collect(),
        }
    }

    /// Records one sampled window of `instrs` instructions that took
    /// `cycles` cycles. Windows with zero instructions carry no CPI
    /// information and are ignored.
    pub fn record_window(&mut self, instrs: u64, cycles: f64) {
        if instrs > 0 {
            self.windows.push((instrs, cycles));
        }
    }

    /// The recorded `(instrs, cycles)` windows, in sampling order.
    pub fn windows(&self) -> &[(u64, f64)] {
        &self.windows
    }

    /// Number of recorded windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` when no window has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Ratio-estimator cycles-per-instruction over all windows
    /// (0 when empty).
    pub fn cpi(&self) -> f64 {
        let instrs: u64 = self.windows.iter().map(|&(i, _)| i).sum();
        let cycles: f64 = self.windows.iter().map(|&(_, c)| c).sum();
        if instrs == 0 {
            0.0
        } else {
            cycles / instrs as f64
        }
    }

    /// Half-width of the 95% confidence interval of the per-window CPI,
    /// relative to the absolute mean CPI. `None` with fewer than two
    /// windows (the `n - 1` variance denominator needs at least one
    /// degree of freedom) or a zero mean (no relative scale) — the
    /// degenerate inputs that used to surface as sentinel infinities.
    pub fn rel_half_width(&self) -> Option<f64> {
        if self.windows.len() < 2 {
            return None;
        }
        let cpis: Vec<f64> = self.windows.iter().map(|&(i, c)| c / i as f64).collect();
        let n = cpis.len() as f64;
        let mean = cpis.iter().sum::<f64>() / n;
        if mean == 0.0 {
            return None;
        }
        let var = cpis.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (n - 1.0);
        Some(1.96 * (var / n).sqrt() / mean.abs())
    }

    /// Estimated cycles for `instrs` unsampled instructions, with 95%
    /// confidence bounds. With no windows the estimate is 0 cycles (the
    /// caller sampled nothing); with fewer than two windows (or a zero
    /// mean CPI) the point estimate stands alone and `ci` is `None`.
    pub fn estimate(&self, instrs: u64) -> CycleEstimate {
        let cpi = self.cpi();
        let cycles = cpi * instrs as f64;
        let ci = self.rel_half_width().map(|rel| {
            let half = cycles.abs() * rel;
            CycleCi {
                lo: cycles - half,
                hi: cycles + half,
                rel_half_width: rel,
            }
        });
        CycleEstimate { cycles, ci }
    }
}

/// Queue-congestion summary carried from a batched stretch into the
/// next cycle-accurate sampling window.
///
/// The batched fast path drains the event stream with an always-ready
/// consumer, so when the engine drops into a sampling window the
/// decoupling queues are empty — on monitor-bound workloads that
/// truncates the long congestion episodes the window was supposed to
/// measure, biasing the [`SampleEstimator`]'s per-event residual low.
/// This summary tracks, from the stretch's dispatch stream, how far the
/// software consumer would have been behind at the stretch boundary:
///
/// * [`CongestionCarry::on_dispatch`] records each dispatched event's
///   estimated handler cycles;
/// * [`CongestionCarry::on_stretch`] advances the backlog by one
///   batched chunk — handler work arrives, application cycles drain it
///   — capping the lag at what the bounded queues could actually hold
///   (the real producer stalls once they fill, so the carried backlog
///   can never exceed the recent dispatches that fit in them);
/// * [`CongestionCarry::take`] hands the accumulated backlog to the
///   window-entry seeding logic and resets for the next stretch.
///
/// The carry is a pure timing quantity: seeding it into a window
/// pre-loads the monitor thread with already-accounted work, which
/// cannot change any monitor-visible result.
#[derive(Clone, Debug)]
pub struct CongestionCarry {
    /// Handler-work backlog (estimated cycles) at the stretch boundary.
    lag_cycles: u64,
    /// Estimated handler cycles of the most recent dispatches — the
    /// events that could still be sitting in the bounded queues.
    recent: std::collections::VecDeque<u64>,
    recent_sum: u64,
    /// How many dispatched events the queues can hold at once.
    cap_entries: usize,
}

impl CongestionCarry {
    /// Creates an empty carry for queues holding `cap_entries`
    /// dispatched events (zero degenerates to "no carry ever").
    pub fn new(cap_entries: usize) -> Self {
        CongestionCarry {
            lag_cycles: 0,
            recent: std::collections::VecDeque::with_capacity(cap_entries),
            recent_sum: 0,
            cap_entries,
        }
    }

    /// Records one dispatched event's estimated handler cycles.
    pub fn on_dispatch(&mut self, est_cycles: u64) {
        if self.cap_entries == 0 {
            return;
        }
        if self.recent.len() == self.cap_entries {
            if let Some(old) = self.recent.pop_front() {
                self.recent_sum -= old;
            }
        }
        self.recent.push_back(est_cycles);
        self.recent_sum += est_cycles;
    }

    /// Advances the backlog by one batched chunk: `handler_cycles` of
    /// estimated handler work arrived while `app_cycles` of application
    /// time drained it. The lag saturates at the recent-dispatch sum —
    /// the work that could really be queued at the boundary.
    pub fn on_stretch(&mut self, handler_cycles: u64, app_cycles: u64) {
        self.lag_cycles = (self.lag_cycles + handler_cycles)
            .saturating_sub(app_cycles)
            .min(self.recent_sum);
    }

    /// The backlog that would be in flight at the stretch boundary.
    pub fn pending(&self) -> u64 {
        self.lag_cycles
    }

    /// Consumes the carried backlog (the window absorbed it) and resets
    /// the dispatch history for the next stretch.
    pub fn take(&mut self) -> u64 {
        let lag = self.lag_cycles;
        self.lag_cycles = 0;
        self.recent.clear();
        self.recent_sum = 0;
        lag
    }
}

/// Geometric mean of a slice of positive values — the paper reports
/// gmean slowdowns (Figure 3(c) x-axis label "gmean").
///
/// Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "gmean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 3);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(5), 4);
        assert_eq!(LogHistogram::bucket_of(8), 4);
        assert_eq!(LogHistogram::bucket_of(9), 5);
    }

    #[test]
    fn bucket_upper_matches_bucket_of() {
        for i in 1..20 {
            let upper = LogHistogram::bucket_upper(i);
            assert_eq!(LogHistogram::bucket_of(upper), i);
            assert_eq!(LogHistogram::bucket_of(upper + 1), i + 1);
        }
    }

    #[test]
    fn cdf_reaches_100() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 1, 2, 5, 9] {
            h.record(v);
        }
        let cdf = h.cdf();
        let last = cdf.points.last().unwrap();
        assert!((last.1 - 100.0).abs() < 1e-9);
        // 3 of 6 samples are <= 1.
        assert!((cdf.percent_at(1) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_finds_bucket() {
        let mut h = LogHistogram::new();
        for v in 0..100 {
            h.record(v);
        }
        assert!(h.percentile(50.0) >= 32);
        assert!(h.percentile(100.0) >= 64);
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn mean_tracks_sum() {
        let mut h = LogHistogram::new();
        h.record(2);
        h.record(4);
        assert!((h.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn running_mean() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.add(1.0);
        m.add(3.0);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn gmean_of_equal_values() {
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "gmean requires positive values")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[1.0, 0.0]);
    }

    #[test]
    fn sample_estimator_exact_for_constant_cpi() {
        let mut e = SampleEstimator::new();
        for _ in 0..4 {
            e.record_window(100, 250.0); // CPI 2.5 in every window
        }
        assert!((e.cpi() - 2.5).abs() < 1e-12);
        let est = e.estimate(1_000);
        assert!((est.cycles - 2_500.0).abs() < 1e-9);
        // Zero variance: the interval collapses onto the estimate.
        assert!((est.hi() - est.lo()).abs() < 1e-9);
        assert!(est.rel_half_width().unwrap() < 1e-12);
    }

    #[test]
    fn sample_estimator_bounds_cover_the_mean() {
        let e = SampleEstimator::from_windows(&[(100, 200.0), (100, 300.0), (100, 250.0)]);
        assert!((e.cpi() - 2.5).abs() < 1e-12);
        let est = e.estimate(100);
        assert!(est.lo() < est.cycles && est.cycles < est.hi());
        let rel = est.rel_half_width().expect("3 windows give a CI");
        assert!(rel > 0.0 && rel.is_finite());
    }

    #[test]
    fn sample_estimator_handles_negative_overhead_windows() {
        // Differential sampling: a lucky window can have negative
        // overhead; the estimator must keep working on signed cycles.
        let e = SampleEstimator::from_windows(&[(100, -10.0), (100, 30.0), (100, 10.0)]);
        assert!((e.cpi() - 0.1).abs() < 1e-12);
        let est = e.estimate(1_000);
        assert!((est.cycles - 100.0).abs() < 1e-9);
        assert!(est.lo() < est.cycles && est.cycles < est.hi());
    }

    #[test]
    fn sample_estimator_degenerate_cases() {
        let mut e = SampleEstimator::new();
        assert!(e.is_empty());
        let est = e.estimate(500);
        assert_eq!(est.cycles, 0.0);
        assert_eq!(est.ci, None);
        assert_eq!(e.cpi(), 0.0);
        assert_eq!(e.rel_half_width(), None);
        // Zero-instruction windows are discarded.
        e.record_window(0, 999.0);
        assert!(e.is_empty());
        // A single window gives a point estimate with no error bound —
        // and every derived quantity stays finite (no NaN from the
        // n - 1 variance denominator).
        e.record_window(10, 30.0);
        assert_eq!(e.len(), 1);
        let est = e.estimate(10);
        assert!((est.cycles - 30.0).abs() < 1e-12);
        assert_eq!(est.ci, None);
        assert_eq!(est.rel_half_width(), None);
        assert_eq!(est.lo(), est.cycles);
        assert_eq!(est.hi(), est.cycles);
        assert!(est.cycles.is_finite() && est.lo().is_finite() && est.hi().is_finite());
    }

    #[test]
    fn from_windows_discards_zero_instruction_windows() {
        // A zero-instruction window used to slip through `from_windows`
        // and divide by zero in the CPI vector (NaN variance, NaN CI).
        let e = SampleEstimator::from_windows(&[(0, 123.0), (100, 250.0), (0, 9.0), (100, 200.0)]);
        assert_eq!(e.len(), 2);
        assert!((e.cpi() - 2.25).abs() < 1e-12);
        let est = e.estimate(100);
        assert!(est.cycles.is_finite());
        let rel = est.rel_half_width().expect("two real windows give a CI");
        assert!(rel.is_finite() && !rel.is_nan());
    }

    #[test]
    fn zero_mean_cpi_has_no_relative_ci() {
        // Perfectly cancelling overhead windows: the mean CPI is zero,
        // so a *relative* half-width has no scale. Typed None, not inf.
        let e = SampleEstimator::from_windows(&[(100, -50.0), (100, 50.0)]);
        assert_eq!(e.rel_half_width(), None);
        assert_eq!(e.estimate(1_000).ci, None);
    }

    #[test]
    fn congestion_carry_accumulates_and_caps() {
        let mut c = CongestionCarry::new(4);
        assert_eq!(c.pending(), 0);
        // Four dispatches of 10 estimated cycles each, in a chunk where
        // handler work (40) outpaced the application (25): 15 carried.
        for _ in 0..4 {
            c.on_dispatch(10);
        }
        c.on_stretch(40, 25);
        assert_eq!(c.pending(), 15);
        // An app-bound chunk drains the lag.
        c.on_stretch(0, 10);
        assert_eq!(c.pending(), 5);
        // The lag can never exceed what the queues hold: the recent
        // window is 4 dispatches x 10 cycles = 40, even if the nominal
        // excess is far larger.
        c.on_stretch(1_000, 0);
        assert_eq!(c.pending(), 40);
        // Taking the carry resets everything.
        assert_eq!(c.take(), 40);
        assert_eq!(c.pending(), 0);
        c.on_stretch(1_000, 0);
        assert_eq!(c.pending(), 0, "no recent dispatches, nothing can be queued");
    }

    #[test]
    fn congestion_carry_zero_capacity_is_inert() {
        let mut c = CongestionCarry::new(0);
        c.on_dispatch(10);
        c.on_stretch(100, 0);
        assert_eq!(c.pending(), 0);
        assert_eq!(c.take(), 0);
    }
}
