//! Memory-hierarchy latencies (Table 1 of the paper).

/// Access latencies of the simulated memory hierarchy, in cycles.
///
/// Defaults follow Table 1: 32KB 2-way L1 at 2 cycles, 2MB 16-way shared
/// L2 at 10 cycles, DRAM at 90 cycles. FADE's MD cache (4KB, 2-way,
/// 1-cycle) sits in front of this hierarchy; its misses pay `l2` or
/// `dram` latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemLatency {
    /// L1 data cache hit latency.
    pub l1: u32,
    /// Shared L2 hit latency.
    pub l2: u32,
    /// DRAM access latency.
    pub dram: u32,
}

impl MemLatency {
    /// The Table 1 configuration.
    pub const fn table1() -> Self {
        MemLatency {
            l1: 2,
            l2: 10,
            dram: 90,
        }
    }
}

impl Default for MemLatency {
    fn default() -> Self {
        MemLatency::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let m = MemLatency::default();
        assert_eq!(m.l1, 2);
        assert_eq!(m.l2, 10);
        assert_eq!(m.dram, 90);
    }
}
