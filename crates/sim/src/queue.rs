//! Decoupling queues (Figure 1 of the paper).

use std::collections::VecDeque;

/// Capacity of a decoupling queue.
///
/// The paper studies both practical finite queues (32-entry event queue,
/// 16-entry unfiltered event queue) and an idealized infinite queue for
/// the burstiness analysis of Figure 3(a,b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueDepth {
    /// A finite queue of the given number of entries.
    Bounded(usize),
    /// The idealized infinite queue of Section 3.2.
    Unbounded,
}

impl QueueDepth {
    /// Returns the capacity, or `None` if unbounded.
    pub fn capacity(self) -> Option<usize> {
        match self {
            QueueDepth::Bounded(n) => Some(n),
            QueueDepth::Unbounded => None,
        }
    }
}

/// A FIFO with an optional bound and occupancy accounting.
///
/// # Example
///
/// ```
/// use fade_sim::{BoundedQueue, QueueDepth};
/// let mut q = BoundedQueue::new(QueueDepth::Bounded(2));
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert!(q.push(3).is_err()); // full, value handed back
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    depth: QueueDepth,
    max_occupancy: usize,
    total_pushed: u64,
    rejected: u64,
}

impl<T> BoundedQueue<T> {
    /// Creates an empty queue with the given depth.
    pub fn new(depth: QueueDepth) -> Self {
        BoundedQueue {
            items: VecDeque::new(),
            depth,
            max_occupancy: 0,
            total_pushed: 0,
            rejected: 0,
        }
    }

    /// Attempts to enqueue; on a full queue the value is handed back.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` if the queue is full, modelling backpressure
    /// on the producer.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.is_full() {
            self.rejected += 1;
            return Err(value);
        }
        self.items.push_back(value);
        self.total_pushed += 1;
        self.max_occupancy = self.max_occupancy.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest entry without dequeuing.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` when at capacity (never for unbounded queues).
    #[inline]
    pub fn is_full(&self) -> bool {
        match self.depth {
            QueueDepth::Bounded(n) => self.items.len() >= n,
            QueueDepth::Unbounded => false,
        }
    }

    /// Free slots remaining (`usize::MAX` for unbounded queues).
    pub fn free(&self) -> usize {
        match self.depth {
            QueueDepth::Bounded(n) => n.saturating_sub(self.items.len()),
            QueueDepth::Unbounded => usize::MAX,
        }
    }

    /// Highest occupancy ever observed.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Total successful enqueues.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Total rejected (backpressured) enqueue attempts.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The configured depth.
    pub fn depth(&self) -> QueueDepth {
        self.depth
    }

    /// Iterates over queued items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(QueueDepth::Bounded(4));
        for i in 0..4 {
            q.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn bounded_rejects_when_full() {
        let mut q = BoundedQueue::new(QueueDepth::Bounded(1));
        q.push('a').unwrap();
        assert_eq!(q.push('b'), Err('b'));
        assert_eq!(q.rejected(), 1);
        assert!(q.is_full());
        assert_eq!(q.free(), 0);
    }

    #[test]
    fn unbounded_never_fills() {
        let mut q = BoundedQueue::new(QueueDepth::Unbounded);
        for i in 0..10_000 {
            q.push(i).unwrap();
        }
        assert!(!q.is_full());
        assert_eq!(q.len(), 10_000);
        assert_eq!(q.max_occupancy(), 10_000);
        assert_eq!(q.free(), usize::MAX);
    }

    #[test]
    fn occupancy_tracking() {
        let mut q = BoundedQueue::new(QueueDepth::Bounded(8));
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.pop();
        q.push(3).unwrap();
        assert_eq!(q.max_occupancy(), 2);
        assert_eq!(q.total_pushed(), 3);
        assert_eq!(q.front(), Some(&2));
    }

    #[test]
    fn depth_capacity_accessors() {
        assert_eq!(QueueDepth::Bounded(32).capacity(), Some(32));
        assert_eq!(QueueDepth::Unbounded.capacity(), None);
    }
}
