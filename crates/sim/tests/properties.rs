//! Property tests for the simulation substrate.

use std::collections::VecDeque;

use fade_sim::{BoundedQueue, LogHistogram, QueueDepth, Rng};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum QueueOp {
    Push(u32),
    Pop,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        any::<u32>().prop_map(QueueOp::Push),
        Just(QueueOp::Pop),
    ]
}

proptest! {
    /// BoundedQueue is a FIFO with a hard bound.
    #[test]
    fn bounded_queue_matches_reference(
        cap in 1usize..16,
        ops in prop::collection::vec(queue_op(), 0..200),
    ) {
        let mut q = BoundedQueue::new(QueueDepth::Bounded(cap));
        let mut reference: VecDeque<u32> = VecDeque::new();
        let mut pushed = 0u64;
        let mut rejected = 0u64;
        for op in ops {
            match op {
                QueueOp::Push(v) => {
                    let ok = q.push(v).is_ok();
                    if reference.len() < cap {
                        prop_assert!(ok);
                        reference.push_back(v);
                        pushed += 1;
                    } else {
                        prop_assert!(!ok);
                        rejected += 1;
                    }
                }
                QueueOp::Pop => {
                    prop_assert_eq!(q.pop(), reference.pop_front());
                }
            }
            prop_assert_eq!(q.len(), reference.len());
            prop_assert!(q.len() <= cap);
        }
        prop_assert_eq!(q.total_pushed(), pushed);
        prop_assert_eq!(q.rejected(), rejected);
    }

    /// The CDF is monotone, ends at 100%, and percentile() inverts it.
    #[test]
    fn histogram_cdf_is_monotone(samples in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        let cdf = h.cdf();
        let mut prev = 0.0;
        for &(_, pct) in &cdf.points {
            prop_assert!(pct >= prev - 1e-9);
            prev = pct;
        }
        prop_assert!((cdf.points.last().unwrap().1 - 100.0).abs() < 1e-9);
        // percentile(p) is an upper bound for at least p% of samples.
        for p in [10.0, 50.0, 90.0, 99.0] {
            let bound = h.percentile(p);
            let covered = samples.iter().filter(|&&s| s <= bound).count() as f64;
            prop_assert!(100.0 * covered / samples.len() as f64 >= p - 1e-9);
        }
    }

    /// Histogram mean equals the arithmetic mean.
    #[test]
    fn histogram_mean_is_exact(samples in prop::collection::vec(0u64..100_000, 1..200)) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let expect = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((h.mean() - expect).abs() < 1e-6);
    }

    /// RNG ranges honour their bounds for arbitrary seeds.
    #[test]
    fn rng_bounds(seed: u64, lo in 0u64..1000, span in 1u64..1000) {
        let mut r = Rng::seed_from(seed);
        for _ in 0..100 {
            let v = r.range(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&v));
            let u = r.unit_f64();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    /// Forked streams do not correlate trivially with the parent.
    #[test]
    fn rng_forks_differ(seed: u64) {
        let mut root = Rng::seed_from(seed);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        prop_assert_ne!(va, vb);
    }
}
