//! Statistical-coverage tests for the sampling estimators.
//!
//! A confidence interval's one job is to cover the true parameter at
//! its nominal rate. These tests simulate many independent runs of
//! windows drawn from a *known* residual-per-event model and check that
//! the nominal 95% interval empirically covers the truth in at least
//! 90% of runs — for the pooled ratio estimator ([`SampleEstimator`])
//! and the stratified, control-variate one ([`StratifiedEstimator`]).
//! The tolerance (90% vs the nominal 95%) absorbs Monte-Carlo noise
//! and the Taylor linearization's small-n optimism without letting a
//! broken interval (the old unweighted-CPI z-interval under-covered
//! small runs badly) slip through.
//!
//! A proptest pins the structural invariant the system relies on:
//! stratum labels and covariates may change the *interval*, never the
//! *point estimate*.

use fade_sim::{Rng, SampleEstimator, StratifiedEstimator, WindowSample};
use proptest::prelude::*;

/// Runs per coverage experiment. Enough that a true-95% interval fails
/// the ≥90% bar with probability ~1e-5 (binomial tail), small enough
/// to stay fast in debug builds.
const RUNS: u64 = 400;

/// Windows per simulated run — matches the order of magnitude the
/// batched mode produces at default sampling (about a dozen).
const WINDOWS: usize = 12;

/// Standard normal via Box–Muller over the substrate RNG.
fn gaussian(rng: &mut Rng) -> f64 {
    let u1 = rng.unit_f64().max(1e-12);
    let u2 = rng.unit_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One simulated run: fixed window lengths, per-window cycles
/// `mu_j·e_j + noise`, where `mu_j` depends on the (deterministic)
/// stratum assignment and the noise is optionally correlated with a
/// covariate. The composition is deterministic so the pooled ratio has
/// a well-defined true value across runs.
fn simulate(seed: u64, beta: f64) -> (Vec<WindowSample>, f64) {
    let mut rng = Rng::seed_from(seed);
    let mus = [1.5, 4.0]; // light vs congested regime residual/event
    let sd = 600.0; // cycles of window-level noise
    let mut samples = Vec::with_capacity(WINDOWS);
    let mut true_cycles = 0.0;
    let mut events_total = 0.0;
    for j in 0..WINDOWS {
        let events = 3_000 + 500 * (j as u64 % 3); // 3000/3500/4000
        let stratum = (j % 2) as u8;
        let mu = mus[stratum as usize];
        let z = 2.0 + rng.unit_f64(); // covariate, mean ~2.5
        let noise = beta * (z - 2.5) + sd * gaussian(&mut rng);
        samples.push(WindowSample {
            events,
            cycles: mu * events as f64 + noise,
            stratum,
            covariate: z,
        });
        true_cycles += mu * events as f64;
        events_total += events as f64;
    }
    (samples, true_cycles / events_total)
}

fn covers(lo: f64, hi: f64, truth: f64, events: u64) -> bool {
    let t = truth * events as f64;
    lo <= t && t <= hi
}

#[test]
fn pooled_interval_covers_at_nominal_rate() {
    let mut hits = 0u64;
    for seed in 0..RUNS {
        let (samples, truth) = simulate(seed, 0.0);
        let windows: Vec<(u64, f64)> = samples.iter().map(|s| (s.events, s.cycles)).collect();
        let e = SampleEstimator::from_windows(&windows);
        let est = e.estimate(1_000_000);
        assert!(est.ci.is_some());
        if covers(est.lo(), est.hi(), truth, 1_000_000) {
            hits += 1;
        }
    }
    let rate = hits as f64 / RUNS as f64;
    assert!(rate >= 0.90, "pooled 95% CI covered only {rate:.3}");
}

#[test]
fn stratified_interval_covers_at_nominal_rate() {
    // Noise partially explained by the covariate (β = 800 cycles per
    // unit): the control-variate fit tightens the interval, and the
    // tightened interval must still cover.
    let mut hits = 0u64;
    for seed in 0..RUNS {
        let (samples, truth) = simulate(seed, 800.0);
        let e = StratifiedEstimator::from_samples(&samples);
        let est = e.estimate(1_000_000);
        assert!(est.ci.is_some());
        if covers(est.lo(), est.hi(), truth, 1_000_000) {
            hits += 1;
        }
    }
    let rate = hits as f64 / RUNS as f64;
    assert!(rate >= 0.90, "stratified 95% CI covered only {rate:.3}");
}

#[test]
fn stratified_interval_is_tighter_on_regime_mixtures() {
    // On a stream whose windows alternate between two residual regimes
    // keyed by the stratum, the stratified interval should beat the
    // pooled one in aggregate — that is the whole point of carrying
    // the congestion key.
    let mut tighter = 0u64;
    let mut defined = 0u64;
    for seed in 0..RUNS {
        let (samples, _) = simulate(seed, 0.0);
        let windows: Vec<(u64, f64)> = samples.iter().map(|s| (s.events, s.cycles)).collect();
        let pooled = SampleEstimator::from_windows(&windows).rel_half_width();
        let strat = StratifiedEstimator::from_samples(&samples).rel_half_width();
        if let (Some(p), Some(s)) = (pooled, strat) {
            defined += 1;
            if s < p {
                tighter += 1;
            }
        }
    }
    assert_eq!(defined, RUNS);
    let rate = tighter as f64 / defined as f64;
    assert!(
        rate >= 0.80,
        "stratified beat pooled in only {rate:.3} of regime-mixture runs"
    );
}

proptest! {
    /// Stratum labels and covariates never move the point estimate:
    /// the stratified estimator's CPI (and hence its extrapolated
    /// cycles) equals the pooled ratio of the same windows exactly,
    /// whatever the labels — only the interval may differ.
    #[test]
    fn stratification_only_changes_the_interval(
        windows in prop::collection::vec(
            // (events, milli-cycles, stratum, milli-covariate) — the
            // shim has no f64 range strategy, so integers scale down.
            (1u64..10_000, 0u64..1_000_000_000, 0u8..5, 0u64..100_000),
            2..40,
        ),
        extrapolate in 1u64..10_000_000,
    ) {
        let samples: Vec<WindowSample> = windows
            .iter()
            .map(|&(events, mcycles, stratum, mcov)| WindowSample {
                events,
                cycles: mcycles as f64 / 1e3 - 10_000.0, // residuals can be negative
                stratum,
                covariate: mcov as f64 / 1e3,
            })
            .collect();
        let pooled = SampleEstimator::from_windows(
            &samples.iter().map(|s| (s.events, s.cycles)).collect::<Vec<_>>(),
        );
        let strat = StratifiedEstimator::from_samples(&samples);
        // Also relabel everything to one stratum: same point estimate.
        let flat = StratifiedEstimator::from_samples(
            &samples
                .iter()
                .map(|s| WindowSample { stratum: 0, covariate: 0.0, ..*s })
                .collect::<Vec<_>>(),
        );
        let tol = 1e-9 * (1.0 + pooled.cpi().abs());
        prop_assert!((strat.cpi() - pooled.cpi()).abs() <= tol);
        prop_assert!((flat.cpi() - pooled.cpi()).abs() <= tol);
        let ep = pooled.estimate(extrapolate).cycles;
        let es = strat.estimate(extrapolate).cycles;
        let ctol = 1e-9 * (1.0 + ep.abs());
        prop_assert!((es - ep).abs() <= ctol);
    }
}
