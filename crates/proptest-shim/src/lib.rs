//! Offline stand-in for the `proptest` crate.
//!
//! The container this reproduction builds in has no access to a package
//! registry, so the workspace carries the slice of proptest's API its
//! property tests actually use: [`Strategy`] with `prop_map`, range and
//! tuple strategies, [`any`], [`Just`], `prop::collection::vec`, the
//! [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros,
//! [`ProptestConfig`] and [`TestCaseError`].
//!
//! Generation is plain random testing (no shrinking): each test runs
//! `ProptestConfig::cases` iterations of a deterministic RNG seeded from
//! the test name, so failures reproduce run-to-run and across machines.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator state behind every strategy (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name, so each test draws an
    /// independent but reproducible sequence.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name picks the stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Lemire's multiply-shift reduction; bias is irrelevant here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator: the subset of proptest's `Strategy` the tests use.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the wrapped value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Boxes a strategy for storage in a [`Union`].
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (returned by the `prop_assert*` macros).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the case with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            format!($($fmt)+), l
        );
    }};
}

/// Defines property tests: each `fn` runs `cases` times with fresh
/// random inputs. Parameters are either `name in strategy` or
/// `name: Type` (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_run! { ($cfg) ($name) [] $($params)* ; $body }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    // All parameters parsed: run the cases.
    (($cfg:expr) ($name:ident) [$(($var:ident, $strat:expr))*] ; $body:block) => {{
        let __cfg: $crate::ProptestConfig = $cfg;
        let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
        for __case in 0..__cfg.cases {
            $(let $var = $crate::Strategy::sample(&($strat), &mut __rng);)*
            let __dbg = format!(concat!($("\n  ", stringify!($var), " = {:?}",)* "{}"), $(&$var,)* "");
            let __result: ::core::result::Result<(), $crate::TestCaseError> =
                (move || { $body ::core::result::Result::Ok(()) })();
            if let ::core::result::Result::Err(e) = __result {
                panic!(
                    "proptest {} failed at case {}/{}: {}\ninputs:{}",
                    stringify!($name), __case + 1, __cfg.cases, e, __dbg
                );
            }
        }
    }};
    // `name in strategy, ...`
    (($cfg:expr) ($name:ident) [$($acc:tt)*] $var:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_run! { ($cfg) ($name) [$($acc)* ($var, $strat)] $($rest)* }
    };
    // `name in strategy` (final, no trailing comma)
    (($cfg:expr) ($name:ident) [$($acc:tt)*] $var:ident in $strat:expr ; $body:block) => {
        $crate::__proptest_run! { ($cfg) ($name) [$($acc)* ($var, $strat)] ; $body }
    };
    // `name: Type, ...`
    (($cfg:expr) ($name:ident) [$($acc:tt)*] $var:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_run! { ($cfg) ($name) [$($acc)* ($var, $crate::any::<$ty>())] $($rest)* }
    };
    // `name: Type` (final, no trailing comma)
    (($cfg:expr) ($name:ident) [$($acc:tt)*] $var:ident : $ty:ty ; $body:block) => {
        $crate::__proptest_run! { ($cfg) ($name) [$($acc)* ($var, $crate::any::<$ty>())] ; $body }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Pick {
        A(u8),
        B,
    }

    fn pick() -> impl Strategy<Value = Pick> {
        prop_oneof![(0u8..4).prop_map(Pick::A), Just(Pick::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 1u8..=8, z: u64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=8).contains(&y));
            let _ = z;
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(pick(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn question_mark_works(x in 0u32..5) {
            let r: Result<(), TestCaseError> = Ok(());
            r?;
            prop_assert_ne!(x, 99);
            prop_assert_eq!(x, x, "x {}", x);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn union_draws_every_arm_eventually() {
        let s = pick();
        let mut rng = crate::TestRng::deterministic("union");
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..200 {
            match s.sample(&mut rng) {
                Pick::A(_) => saw_a = true,
                Pick::B => saw_b = true,
            }
        }
        assert!(saw_a && saw_b);
    }
}
