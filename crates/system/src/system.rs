//! The unified cycle-level monitoring-system engine.
//!
//! One engine implements all four evaluated organizations (unaccelerated
//! / FADE-enabled × single-core dual-threaded / two-core): per cycle it
//! advances the application commit process, moves monitored events into
//! the decoupling queue, runs the accelerator (if present), and executes
//! software handlers on the monitor hardware thread — with issue
//! bandwidth shared through [`SmtArbiter`] on the single-core system.

use fade::{BatchStats, Fade, FadeConfig, FadeStats, InvId, UnfilteredEvent};
use fade_isa::{instr_event_for, AppEvent, HighLevelEvent};
use fade_monitors::{monitor_by_name, EventClass, Monitor};
use fade_shadow::MetadataState;
use fade_sim::{
    congestion_stratum, BoundedQueue, CommitModel, CongestionCarry, CoreKind, HandlerExec,
    LogHistogram, Rng, SmtArbiter, StratifiedEstimator, StratumStat, WindowSample,
};
use fade_trace::{BenchProfile, SyntheticProgram, TraceRecord};

use crate::config::{Accel, SystemConfig, Topology};
use crate::run::{ClassInstrs, RunStats, SamplingSummary, UtilBreakdown};

/// Gap (in filterable events) that separates unfiltered bursts
/// (Section 3.4 defines a burst as unfiltered events separated by at
/// most 16 filterable events).
const BURST_GAP: u64 = 16;

/// Trace records pulled from the generator per refill: the commit loop
/// consumes them one at a time, but generating them in slices keeps the
/// generator's dispatch out of the per-cycle path.
const RECORD_BATCH: usize = 64;

/// Default events handed to [`Fade::run_batch_with`] per call in
/// batched mode when no sampling window is configured. With sampling,
/// chunks match the recorded window interior instead, so the exact
/// base term (`max` of app and handler cycles, a concave aggregate) is
/// evaluated at the same granularity the residual was calibrated at.
/// Chunks are also cut at thread switches and sampling boundaries.
const BATCH_CHUNK: u64 = 1024;

/// Minimum events in a sampling window's steady-state tail for the
/// tail (rather than the whole window) to be recorded as the residual
/// sample on monitor-bound windows — below this, per-window boundary
/// effects don't amortize and the tail over-samples peak congestion.
const MIN_TAIL_EVENTS: u64 = 1024;


/// Why a [`TraceSource`] stopped delivering records mid-run.
///
/// Exhaustion is *not* an error — a source signals it by appending
/// fewer records than asked (see [`TraceSource::next_records_into`]).
/// A `SourceError` means the source failed: the bytes behind it went
/// bad in a way even a recovering reader could not resynchronize past.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceError {
    /// A recorded `.fadet` stream failed with a typed decode or I/O
    /// error (see [`fade_trace::TraceFileError`]).
    Trace(fade_trace::TraceFileError),
    /// Any other source-specific failure.
    Other(String),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Trace(e) => write!(f, "trace source failed: {e}"),
            SourceError::Other(msg) => write!(f, "trace source failed: {msg}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<fade_trace::TraceFileError> for SourceError {
    fn from(e: fade_trace::TraceFileError) -> Self {
        SourceError::Trace(e)
    }
}

/// Where a [`MonitoringSystem`] gets its trace records.
///
/// The engine pulls records in batches; a source appends up to `n`
/// records per call. Implementations exist for on-the-fly synthetic
/// generation ([`SyntheticProgram`]), pre-generated buffers
/// ([`ReplayBuffer`]), and recorded `.fadet` trace files
/// ([`fade_trace::TraceReader`]) — so any future real workload is just
/// "a file we replay" through the same engine.
///
/// Sources are `Send` so whole sessions can move to worker threads
/// (the parallel experiment driver shards an experiment matrix across
/// cores; each session owns its source exclusively).
pub trait TraceSource: Send {
    /// Appends up to `n` records to `buf`, returning how many were
    /// appended.
    ///
    /// # Errors
    ///
    /// `Ok(0)` (for `n > 0`) means the source is cleanly exhausted:
    /// the engine stops pulling and the run ends early with whatever
    /// trace existed. `Err` means the source failed mid-stream; the
    /// engine also stops pulling and surfaces the error through
    /// [`MonitoringSystem::source_error`].
    fn next_records_into(
        &mut self,
        buf: &mut Vec<TraceRecord>,
        n: usize,
    ) -> Result<usize, SourceError>;

    /// The degradation accounting of a fault-tolerant source (a
    /// recovering [`fade_trace::TraceReader`]); `None` for sources
    /// that cannot degrade.
    fn degradation(&self) -> Option<&fade_trace::DegradationReport> {
        None
    }
}

impl TraceSource for SyntheticProgram {
    fn next_records_into(
        &mut self,
        buf: &mut Vec<TraceRecord>,
        n: usize,
    ) -> Result<usize, SourceError> {
        SyntheticProgram::next_records_into(self, buf, n);
        Ok(n)
    }
}

/// Replay of a pre-generated in-memory record buffer — deterministic
/// replay with generation cost out of the execution path.
pub struct ReplayBuffer {
    records: Vec<TraceRecord>,
    pos: usize,
}

impl ReplayBuffer {
    /// Wraps a record buffer.
    pub fn new(records: Vec<TraceRecord>) -> Self {
        ReplayBuffer { records, pos: 0 }
    }

    /// Records not yet consumed.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.pos
    }
}

impl TraceSource for ReplayBuffer {
    fn next_records_into(
        &mut self,
        buf: &mut Vec<TraceRecord>,
        n: usize,
    ) -> Result<usize, SourceError> {
        let end = (self.pos + n).min(self.records.len());
        let taken = end - self.pos;
        buf.extend_from_slice(&self.records[self.pos..end]);
        self.pos = end;
        Ok(taken)
    }
}

/// A zero-copy [`TraceSource`] over one span of a shared, immutable
/// record buffer — what every epoch of a parallel replay reads from.
/// The buffer is never copied per epoch; each epoch just walks its
/// `[pos, end)` window of the one `Arc`'d trace.
pub(crate) struct SpanReplay {
    records: std::sync::Arc<Vec<TraceRecord>>,
    pos: usize,
    end: usize,
}

impl SpanReplay {
    pub(crate) fn new(records: std::sync::Arc<Vec<TraceRecord>>, span: (usize, usize)) -> Self {
        let (pos, end) = span;
        debug_assert!(pos <= end && end <= records.len());
        SpanReplay { records, pos, end }
    }
}

impl TraceSource for SpanReplay {
    fn next_records_into(
        &mut self,
        buf: &mut Vec<TraceRecord>,
        n: usize,
    ) -> Result<usize, SourceError> {
        let end = (self.pos + n).min(self.end);
        let taken = end - self.pos;
        buf.extend_from_slice(&self.records[self.pos..end]);
        self.pos = end;
        Ok(taken)
    }
}

impl<R: std::io::Read + Send> TraceSource for fade_trace::TraceReader<R> {
    fn next_records_into(
        &mut self,
        buf: &mut Vec<TraceRecord>,
        n: usize,
    ) -> Result<usize, SourceError> {
        fade_trace::TraceReader::next_records_into(self, buf, n).map_err(SourceError::Trace)
    }

    fn degradation(&self) -> Option<&fade_trace::DegradationReport> {
        fade_trace::TraceReader::degradation(self)
    }
}

/// How the system executes a stretch of the trace.
///
/// `Cycle` is the reference engine: every event walks the full
/// fetch→filter→dispatch machinery one cycle at a time. `Batched`
/// drains most events through [`Fade::run_batch`] and periodically
/// falls back to the cycle engine to sample timing
/// ([`MonitoringSystem::run_batched`]); monitor-visible results are
/// bit-exact with `Cycle`, cycle counts are sampled estimates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Cycle-accurate execution ([`MonitoringSystem::run_instrs`]).
    Cycle,
    /// Batched execution with sampled timing
    /// ([`MonitoringSystem::run_batched`]).
    Batched,
}

/// Lifecycle of the engine's trace source: once a source reports
/// exhaustion or failure the engine never pulls from it again.
enum SourceState {
    /// Still delivering records.
    Live,
    /// Cleanly out of records (a finite replay ran to its end).
    Exhausted,
    /// Failed mid-stream with a typed error.
    Failed(SourceError),
}

/// A complete monitoring system under simulation.
pub struct MonitoringSystem {
    cfg: SystemConfig,
    monitor: Box<dyn Monitor>,
    source: Box<dyn TraceSource>,
    source_state: SourceState,
    commit: CommitModel,
    arbiter: SmtArbiter,
    handler: HandlerExec,
    state: MetadataState,
    fade: Option<Fade>,
    sw_queue: BoundedQueue<AppEvent>,
    pending: Option<TraceRecord>,
    cur_token: Option<u64>,
    /// Batch-refilled trace records (consumed from `record_pos`).
    record_buf: Vec<TraceRecord>,
    record_pos: usize,

    // Batched execution mode (`run_batched`).
    /// Monitored events accepted so far (both engines): the clock the
    /// sampling schedule is phased against.
    events_seen: u64,
    /// `step` skips the application side (drain: the producer is
    /// paused, the monitor side gets the whole core).
    producer_paused: bool,
    /// Hard cap on retired instructions (exact-stop cycle execution).
    instr_cap: Option<u64>,
    /// Sampled monitoring-overhead windows feeding the timing
    /// extrapolation: each entry is `(events, measured cycles −
    /// unimpeded commit cycles)` for one cycle-accurate window.
    /// Overhead scales with monitored events (handler and stall work is
    /// per event), so extrapolation is per event — per-instruction
    /// extrapolation would harmonically under-weight event-sparse
    /// regions. Windows are keyed by their congestion stratum at entry
    /// and carry the adjacent stretch's base cycles per event as a
    /// control covariate, so the interval (never the point estimate)
    /// tightens with both structures.
    estimator: StratifiedEstimator,
    /// Index into `estimator` windows at `start_measure`.
    measure_from: usize,
    /// Base cycles of the batched stretch since the last sampling
    /// window — the control covariate's numerator for the next window.
    stretch_base_cycles: u64,
    /// Events of the batched stretch since the last sampling window.
    stretch_events: u64,
    /// Congestion summary carried from each batched stretch into the
    /// next sampling window: the handler-work backlog the stretch's
    /// dispatch stream would have left in the bounded queues. Seeded
    /// into the monitor thread at window entry so windows measure
    /// queueing under the congestion the batched path built up instead
    /// of restarting from drained queues (which truncates long
    /// congestion episodes and biases monitor-bound estimates low).
    congestion: CongestionCarry,
    /// Estimated handler cycles seeded into sampling windows so far.
    seeded_cycles_total: u64,
    /// Seeded cycles within the measurement window.
    m_seeded_cycles: u64,
    /// Exact base cycles of batched stretches since construction: per
    /// chunk, `max(app cycles, handler cycles)` — the app side
    /// fast-forwarded through the *real* commit process unimpeded (so
    /// the whole run consumes one continuous run/stall realization and
    /// the dominant phase noise stays exact), the handler side charged
    /// at the monitor thread's standalone IPC (handler work is too
    /// bursty to sample). The max models the binding constraint: an
    /// app-bound stretch hides handler work and a monitor-bound
    /// stretch hides the app; the sampled residual captures imperfect
    /// overlap, queueing and stalls.
    batch_base_cycles: u64,
    /// Exact base cycles of batched stretches in the measured window.
    m_batch_base_cycles: u64,
    /// Running total of *estimated* handler cycles (`ceil(cost /
    /// standalone IPC)`) for every event the cycle engine's consumer
    /// starts. Sampled windows subtract the same quantity the batched
    /// base charges, so the residual calibrates out the difference
    /// between estimated and real handler throughput (SMT sharing).
    handler_est_cycles: u64,
    /// Instructions retired on the batched path since construction.
    batch_instrs_total: u64,
    /// Instructions retired on the batched path in the measured window.
    m_batch_instrs: u64,
    /// Monitored events drained on the batched path since construction.
    batch_events_total: u64,
    /// Monitored events drained on the batched path while measuring.
    m_batch_events: u64,
    /// Accumulated fast-path statistics of every `run_batch` call.
    batch_stats: BatchStats,
    /// Staging buffer for batch chunks (reused across segments).
    batch_buf: Vec<AppEvent>,
    /// Deferred invariant-register writes from thread switches handled
    /// inside a batch chunk (applied when the chunk returns).
    inv_buf: Vec<(InvId, u64)>,

    // Measurement window.
    measuring: bool,
    m_app_instrs: u64,
    m_monitored: u64,
    m_stack: u64,
    m_high: u64,
    m_cycles: u64,
    class_instrs: ClassInstrs,
    occupancy: LogHistogram,
    distances: LogHistogram,
    bursts: LogHistogram,
    util: UtilBreakdown,
    fade_snapshot: Option<FadeStats>,

    // Unfiltered distance/burst trackers (run continuously).
    since_uf: u64,
    cur_burst: u64,
    /// The app thread was backpressured last cycle: it occupies no
    /// issue slots this cycle (an SMT thread stalled on a full queue
    /// does not compete for bandwidth).
    last_blocked: bool,

    total_instrs: u64,
    total_cycles: u64,
}

/// Everything monitor-visible at an epoch boundary, plus the bits of
/// execution bookkeeping the engine threads across chunk boundaries
/// (the event clock that phases the sampling schedule, the burst
/// trackers). Speculative epochs start from a replicated checkpoint;
/// the join validates each epoch's entry digest against the committed
/// predecessor's exit digest.
pub(crate) struct SystemCheckpoint {
    pub(crate) state: MetadataState,
    pub(crate) monitor: Box<dyn Monitor>,
    pub(crate) fade: Option<Fade>,
    pub(crate) events_seen: u64,
    pub(crate) since_uf: u64,
    pub(crate) cur_burst: u64,
}

impl SystemCheckpoint {
    /// An independent copy (the monitor forks, shadow pages share
    /// copy-on-write storage) — cheap enough to hand one to every
    /// speculative epoch.
    pub(crate) fn replicate(&self) -> Self {
        SystemCheckpoint {
            state: self.state.clone(),
            monitor: self.monitor.fork().expect("checkpointed monitors can fork"),
            fade: self.fade.clone(),
            events_seen: self.events_seen,
            since_uf: self.since_uf,
            cur_burst: self.cur_burst,
        }
    }

    /// Digest of the monitor-visible state: shadow memory + registers,
    /// accumulated bug reports, the event clock, and the accelerator's
    /// functional counters. Everything folded in is engine-invariant
    /// (bit-exact across cycle/batched/vectorized execution), so a
    /// predictor-produced entry digest comparing equal to the real
    /// predecessor's exit digest proves the speculation sound.
    pub(crate) fn digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = self.state.digest();
        for report in self.monitor.reports() {
            for &b in report.as_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            h = (h ^ 0xff).wrapping_mul(PRIME);
        }
        if let Some(fade) = &self.fade {
            for c in fade.stats().functional_counters() {
                h = (h ^ c).wrapping_mul(PRIME);
            }
        }
        (h ^ self.events_seen).wrapping_mul(PRIME)
    }
}

impl MonitoringSystem {
    /// The one real constructor: every public entry point funnels
    /// through [`crate::SessionBuilder::build`], which lands here, so
    /// session variants cannot drift apart.
    ///
    /// `program` replaces the monitor's own FADE program (ablations);
    /// `source` replaces on-the-fly synthetic generation.
    ///
    /// # Panics
    ///
    /// Panics if a program fails validation, or if `program` is given
    /// for an unaccelerated config (the session builder reports both as
    /// typed [`crate::SessionError`]s before reaching this point).
    pub(crate) fn build(
        bench: &BenchProfile,
        monitor: Box<dyn Monitor>,
        cfg: &SystemConfig,
        program: Option<fade::FadeProgram>,
        source: Option<Box<dyn TraceSource>>,
    ) -> Self {
        let mut state = MetadataState::new(monitor.program().md_map());
        if cfg.shadow_page_budget.is_some() || cfg.shadow_mem_cap_bytes.is_some() {
            state.mem.set_budget(cfg.shadow_page_budget, cfg.shadow_mem_cap_bytes);
        }
        monitor.init_state(&mut state);
        Self::assemble(bench, monitor, cfg, program, source, state, None)
    }

    /// The construction tail shared by [`MonitoringSystem::build`] and
    /// [`MonitoringSystem::from_checkpoint`]: everything except the
    /// metadata state, which the caller provides — freshly initialized
    /// by the monitor, or carried over from a checkpoint (skipping the
    /// monitor's segment-filling `init_state` entirely; on monitors
    /// with large initial fills that cost would otherwise dominate a
    /// per-epoch rebuild). `prebuilt_fade` likewise carries a
    /// checkpointed accelerator across an epoch boundary instead of
    /// constructing one that would be thrown away (an unaccelerated
    /// checkpoint passes `None`, and the config-driven construction
    /// below yields `None` for it too).
    fn assemble(
        bench: &BenchProfile,
        monitor: Box<dyn Monitor>,
        cfg: &SystemConfig,
        program: Option<fade::FadeProgram>,
        source: Option<Box<dyn TraceSource>>,
        state: MetadataState,
        prebuilt_fade: Option<Fade>,
    ) -> Self {
        let mon_program = monitor.program();
        let custom_program = program.is_some();
        if custom_program && cfg.accel == Accel::None {
            panic!("a custom FADE program requires a FADE-enabled configuration");
        }
        let fade = if prebuilt_fade.is_some() {
            prebuilt_fade
        } else {
            match cfg.accel {
                Accel::None => None,
                Accel::Fade(mode) => {
                    let mut fc = FadeConfig::paper(mode);
                    fc.event_queue = cfg.event_queue;
                    fc.unfiltered_queue = cfg.unfiltered_queue;
                    if !custom_program {
                        // Caller-built programs (ablations) run on the
                        // paper's baseline hardware parameters —
                        // ablations compare programs, not hardware
                        // tweaks; everything else gets the config's
                        // full tweak set.
                        if let Some(bytes) = cfg.tweaks.md_cache_bytes {
                            fc.md_cache = fade::TagCacheConfig {
                                size_bytes: bytes,
                                ways: 2,
                                line_bytes: 64,
                            };
                        }
                        if let Some(n) = cfg.tweaks.tlb_entries {
                            fc.tlb_entries = n;
                        }
                        if let Some(n) = cfg.tweaks.fsq_entries {
                            fc.fsq_entries = n;
                        }
                        if cfg.ideal_consumer {
                            // Section 3.2's queueing study: the
                            // accelerator consumes exactly one event per
                            // cycle with no metadata-miss, drain or
                            // backpressure stalls.
                            fc.tlb_miss_penalty = 0;
                            fc.blocking_resume_latency = 0;
                            fc.mem_lat = fade_sim::MemLatency { l1: 0, l2: 0, dram: 0 };
                            fc.unfiltered_queue = fade_sim::QueueDepth::Unbounded;
                        }
                    }
                    Some(Fade::new(fc, program.unwrap_or(mon_program)))
                }
            }
        };
        let mut sys = MonitoringSystem {
            monitor,
            source: Box::new(SyntheticProgram::new(bench, cfg.seed)),
            source_state: SourceState::Live,
            commit: CommitModel::new(cfg.core, bench.commit, Rng::seed_from(cfg.seed ^ 0xbace)),
            arbiter: SmtArbiter::new(),
            handler: HandlerExec::new(cfg.core),
            state,
            fade,
            sw_queue: BoundedQueue::new(cfg.event_queue),
            pending: None,
            cur_token: None,
            record_buf: Vec::with_capacity(RECORD_BATCH),
            record_pos: 0,
            events_seen: 0,
            producer_paused: false,
            instr_cap: None,
            estimator: StratifiedEstimator::new(),
            measure_from: 0,
            stretch_base_cycles: 0,
            stretch_events: 0,
            // The backlog a stretch can hand the next window is bounded
            // by the events the decoupling queues hold: the unfiltered
            // queue, the event queue ahead of it (whose entries may all
            // be future dispatches on monitor-bound workloads), plus
            // the one event in the handler. (Unbounded queues — the
            // idealized-consumer study — get a nominal cap; they never
            // backpressure anyway.)
            congestion: CongestionCarry::new(
                cfg.unfiltered_queue.capacity().unwrap_or(32)
                    + cfg.event_queue.capacity().unwrap_or(32)
                    + 1,
            ),
            seeded_cycles_total: 0,
            m_seeded_cycles: 0,
            batch_base_cycles: 0,
            m_batch_base_cycles: 0,
            handler_est_cycles: 0,
            batch_instrs_total: 0,
            m_batch_instrs: 0,
            batch_events_total: 0,
            m_batch_events: 0,
            batch_stats: BatchStats::default(),
            batch_buf: Vec::with_capacity(BATCH_CHUNK as usize),
            inv_buf: Vec::new(),
            measuring: false,
            m_app_instrs: 0,
            m_monitored: 0,
            m_stack: 0,
            m_high: 0,
            m_cycles: 0,
            class_instrs: ClassInstrs::default(),
            occupancy: LogHistogram::new(),
            distances: LogHistogram::new(),
            bursts: LogHistogram::new(),
            util: UtilBreakdown::default(),
            fade_snapshot: None,
            since_uf: 0,
            cur_burst: 0,
            last_blocked: false,
            total_instrs: 0,
            total_cycles: 0,
            cfg: *cfg,
        };
        if let Some(source) = source {
            sys.source = source;
        }
        sys
    }

    /// [`MonitoringSystem::build`] with the monitor resolved by name —
    /// the shared tail of the name-keyed session paths and the in-crate
    /// harnesses.
    pub(crate) fn build_named(
        bench: &BenchProfile,
        monitor_name: &str,
        cfg: &SystemConfig,
        source: Option<Box<dyn TraceSource>>,
    ) -> Self {
        let monitor = monitor_by_name(monitor_name)
            .unwrap_or_else(|| panic!("unknown monitor {monitor_name}"));
        Self::build(bench, monitor, cfg, None, source)
    }

    /// Snapshots everything monitor-visible plus the execution
    /// bookkeeping the engine threads across chunk boundaries (event
    /// clock, burst trackers) — or `None` when the monitor cannot
    /// [`Monitor::fork`].
    pub(crate) fn checkpoint(&self) -> Option<SystemCheckpoint> {
        Some(SystemCheckpoint {
            state: self.state.clone(),
            monitor: self.monitor.fork()?,
            fade: self.fade.clone(),
            events_seen: self.events_seen,
            since_uf: self.since_uf,
            cur_burst: self.cur_burst,
        })
    }

    /// [`MonitoringSystem::checkpoint`] by consumption: moves the
    /// state and monitor out instead of cloning and forking them. The
    /// epoch executor hands each finished epoch's exit straight to the
    /// merge (and, on the one-worker chain path, straight into the
    /// next epoch), so nothing else will ever observe this system
    /// again.
    pub(crate) fn into_checkpoint(self) -> SystemCheckpoint {
        SystemCheckpoint {
            state: self.state,
            monitor: self.monitor,
            fade: self.fade,
            events_seen: self.events_seen,
            since_uf: self.since_uf,
            cur_burst: self.cur_burst,
        }
    }

    /// [`MonitoringSystem::build`] resuming from a checkpoint: the
    /// epoch executor of parallel replay, running `records` (one
    /// epoch's span) on top of the checkpointed state.
    ///
    /// The commit process is reseeded from the config seed and the
    /// epoch index only, so cycle estimates are a deterministic
    /// function of the trace and the epoch partition — never of which
    /// worker thread happened to run the epoch.
    pub(crate) fn from_checkpoint(
        bench: &BenchProfile,
        cfg: &SystemConfig,
        cp: SystemCheckpoint,
        source: Box<dyn TraceSource>,
        epoch: u64,
    ) -> Self {
        let mut sys = Self::assemble(
            bench,
            cp.monitor,
            cfg,
            None,
            Some(source),
            cp.state,
            cp.fade,
        );
        sys.events_seen = cp.events_seen;
        sys.since_uf = cp.since_uf;
        sys.cur_burst = cp.cur_burst;
        sys.commit = CommitModel::new(
            cfg.core,
            bench.commit,
            Rng::seed_from(cfg.seed ^ epoch.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        sys
    }

    /// Replays `records` through the accelerator's batched fast path
    /// with *functional* semantics only: shadow state, monitor
    /// bookkeeping, invariant registers and the event clock advance
    /// exactly as in a real run (monitor-visible results are
    /// engine-invariant), but no commit process, congestion, timing or
    /// batch statistics are touched. This is the cheap predictor pass
    /// of epoch-parallel replay: it produces the entry checkpoints the
    /// speculative epochs start from.
    pub(crate) fn run_functional_slice(&mut self, records: &[TraceRecord]) {
        let monitors_stack = self.monitor.monitors_stack();
        let mut pos = 0usize;
        let mut chunk = std::mem::take(&mut self.batch_buf);
        while pos < records.len() {
            chunk.clear();
            while pos < records.len() && (chunk.len() as u64) < BATCH_CHUNK {
                match &records[pos] {
                    TraceRecord::Instr(i) => {
                        self.total_instrs += 1;
                        if self.monitor.selects(i) {
                            chunk.push(AppEvent::Instr(instr_event_for(i)));
                            self.events_seen += 1;
                        }
                    }
                    TraceRecord::Stack(s) => {
                        if monitors_stack {
                            chunk.push(AppEvent::StackUpdate(*s));
                            self.events_seen += 1;
                        }
                    }
                    TraceRecord::High(h) => {
                        let switch = matches!(h, HighLevelEvent::ThreadSwitch { .. });
                        chunk.push(AppEvent::HighLevel(*h));
                        self.events_seen += 1;
                        if switch {
                            // Cut the chunk so the monitor's
                            // invariant-register updates land before
                            // the next event is filtered — same order
                            // as both real engines.
                            pos += 1;
                            break;
                        }
                    }
                }
                pos += 1;
            }
            if chunk.is_empty() {
                continue;
            }
            let mut fade = self.fade.take().expect("functional replay requires FADE");
            let monitor = &mut self.monitor;
            let inv_buf = &mut self.inv_buf;
            let _ = fade.run_batch_with(&chunk, &mut self.state, |uf, st| {
                apply_unfiltered(monitor.as_mut(), &uf, st, inv_buf);
            });
            for (id, v) in self.inv_buf.drain(..) {
                fade.write_invariant(id, v);
            }
            self.fade = Some(fade);
        }
        self.batch_buf = chunk;
    }

    /// The monitor driving this system (bug reports, etc.).
    pub fn monitor(&self) -> &dyn Monitor {
        self.monitor.as_ref()
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The current metadata state (read access for examples/tests).
    pub fn state(&self) -> &MetadataState {
        &self.state
    }

    /// Total cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total application instructions retired so far.
    pub fn instrs(&self) -> u64 {
        self.total_instrs
    }

    /// Monitored events accepted so far (instruction, stack and
    /// high-level events, across both execution engines).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// `true` once the trace source reported clean exhaustion: the run
    /// ended early because the recorded trace ran out, not because a
    /// target was reached.
    pub fn source_exhausted(&self) -> bool {
        matches!(self.source_state, SourceState::Exhausted)
    }

    /// The typed error the trace source failed with mid-run, if any.
    /// A failed source stops the engine's run loops the same way
    /// exhaustion does; the caller decides whether that is fatal.
    pub fn source_error(&self) -> Option<&SourceError> {
        match &self.source_state {
            SourceState::Failed(e) => Some(e),
            _ => None,
        }
    }

    /// The degradation accounting of a fault-tolerant source (a
    /// recovering [`fade_trace::TraceReader`] skipping corrupt
    /// chunks); `None` for sources that cannot degrade.
    pub fn degradation(&self) -> Option<&fade_trace::DegradationReport> {
        self.source.degradation()
    }

    /// Ensures the record buffer has an unconsumed record, pulling up
    /// to `n` more from the source if needed. Returns `false` when no
    /// record is available — the source is exhausted or failed (state
    /// is latched; a dead source is never pulled again).
    fn refill_records(&mut self, n: usize) -> bool {
        if self.record_pos < self.record_buf.len() {
            return true;
        }
        if !matches!(self.source_state, SourceState::Live) {
            return false;
        }
        self.record_buf.clear();
        self.record_pos = 0;
        match self.source.next_records_into(&mut self.record_buf, n) {
            Ok(_) if !self.record_buf.is_empty() => true,
            Ok(_) => {
                self.source_state = SourceState::Exhausted;
                false
            }
            Err(e) => {
                self.source_state = SourceState::Failed(e);
                false
            }
        }
    }

    /// `true` when the source can feed the engine no further records:
    /// it is exhausted or failed and every buffered record (including
    /// a backpressured `pending` one) has been consumed. The run loops
    /// stop here instead of spinning on an empty trace.
    fn out_of_records(&self) -> bool {
        !matches!(self.source_state, SourceState::Live)
            && self.pending.is_none()
            && self.record_pos == self.record_buf.len()
    }

    /// Accumulated fast-path statistics of every batched stretch run so
    /// far (all counters zero if only the cycle engine ran).
    pub fn batch_stats(&self) -> BatchStats {
        self.batch_stats
    }

    /// Estimated handler cycles of carried congestion seeded into
    /// sampling windows so far — how much batch-stretch backlog the
    /// windows started under instead of starting from drained queues
    /// (0 if only the cycle engine ran, or nothing ever congested).
    pub fn carried_seed_cycles(&self) -> u64 {
        self.seeded_cycles_total
    }

    /// Relative half-width of the 95% CI on
    /// [`MonitoringSystem::estimated_total_cycles`] — the production
    /// rate's error bound (`None` with fewer than two windows). Only
    /// the sampled residual is uncertain; the simulated cycles and the
    /// deterministic base of batched stretches are exact. The interval
    /// on the residual (stratified, control-variate-adjusted ratio
    /// estimator, Student-t) is therefore an *absolute* cycle band,
    /// and the relative width divides it by the full cycle estimate —
    /// not by the residual alone, whose near-zero point value on
    /// app-bound runs made the old ratio meaningless as a rate bound.
    pub fn rel_half_width(&self) -> Option<f64> {
        let e = self
            .estimator
            .estimate_with_covariate_mean(self.batch_events_total, self.batch_covariate_mean());
        e.ci?;
        let exact = self.batch_base_cycles as f64;
        let total = self.total_cycles as f64 + (exact + e.cycles).max(0.0);
        if total <= 0.0 {
            return None;
        }
        let half = ((exact + e.hi()).max(0.0) - (exact + e.lo()).max(0.0)) / 2.0;
        Some(half / total)
    }

    /// Per-congestion-stratum breakdown of the sampling interval, one
    /// row per merged stratum in ascending key order (empty if only
    /// the cycle engine ran).
    pub fn sampling_strata(&self) -> Vec<StratumStat> {
        self.estimator.strata()
    }

    /// Accelerator statistics (`None` for unaccelerated systems).
    pub fn fade_stats(&self) -> Option<FadeStats> {
        self.fade.as_ref().map(|f| *f.stats())
    }

    /// The residual-overhead windows sampled by batched execution so
    /// far: per window, the measured cycles minus the unimpeded
    /// commit-model cycles for the same instructions and minus the
    /// handler-execution cycles — what is left is queueing, SMT
    /// interference and accelerator stalls (empty if only the cycle
    /// engine ran). Each sample also carries its congestion stratum
    /// and control covariate for the stratified estimator.
    pub fn sampled_windows(&self) -> &[WindowSample] {
        self.estimator.samples()
    }

    /// Total cycles including the extrapolation for batched stretches:
    /// exact simulated cycles, plus the exact base (binding constraint
    /// of replayed app cycles and handler cycles) of batched
    /// stretches, plus the sampled per-event residual overhead. Equals
    /// [`MonitoringSystem::cycles`] when only the cycle engine ran.
    pub fn estimated_total_cycles(&self) -> u64 {
        let residual = self
            .estimator
            .estimate_with_covariate_mean(self.batch_events_total, self.batch_covariate_mean())
            .cycles;
        let exact = self.batch_base_cycles as f64;
        self.total_cycles + (exact + residual).max(0.0).round() as u64
    }

    /// Population mean of the window control covariate over every
    /// batched stretch: total deterministic base cycles per batched
    /// event. Each sampled window records its *preceding* stretch's
    /// base per event; periodic sampling pairs every stretch with a
    /// window, so this mean and the sample's nearly coincide — the
    /// estimator's regression adjustment closes the remaining gap.
    fn batch_covariate_mean(&self) -> f64 {
        if self.batch_events_total == 0 {
            return 0.0;
        }
        self.batch_base_cycles as f64 / self.batch_events_total as f64
    }

    /// `true` when nothing is in flight anywhere: accelerator (or
    /// software queue) empty and the monitor-thread handler idle.
    pub fn quiesced(&self) -> bool {
        !self.handler.busy()
            && match &self.fade {
                Some(f) => f.quiesced(),
                None => self.sw_queue.is_empty(),
            }
    }

    /// Starts the measurement window: counters collected from now on.
    pub fn start_measure(&mut self) {
        self.measuring = true;
        self.m_app_instrs = 0;
        self.m_monitored = 0;
        self.m_stack = 0;
        self.m_high = 0;
        self.m_cycles = 0;
        self.class_instrs = ClassInstrs::default();
        self.occupancy = LogHistogram::new();
        self.distances = LogHistogram::new();
        self.bursts = LogHistogram::new();
        self.util = UtilBreakdown::default();
        self.fade_snapshot = self.fade.as_ref().map(|f| *f.stats());
        self.m_batch_instrs = 0;
        self.m_batch_events = 0;
        self.m_batch_base_cycles = 0;
        self.m_seeded_cycles = 0;
        self.measure_from = self.estimator.len();
        // Drop any congestion carry accrued before the window: its
        // charge lives in the unmeasured base, so seeding it into a
        // measured window would subtract from a measured base that
        // never included it.
        self.congestion.take();
    }

    /// Runs until `n` more application instructions retire, or the
    /// trace source runs out of records ([`MonitoringSystem::
    /// source_exhausted`] / [`MonitoringSystem::source_error`]),
    /// whichever comes first. On early stop the in-flight events are
    /// drained so monitor-visible state is complete for the trace that
    /// did exist.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to make forward progress with
    /// records still available (a deadlock would be a simulator bug).
    pub fn run_instrs(&mut self, n: u64) {
        let target = self.total_instrs + n;
        let cycle_cap = self.total_cycles + 200_000 + n * 400;
        while self.total_instrs < target {
            if self.out_of_records() {
                self.drain();
                return;
            }
            self.step();
            assert!(
                self.total_cycles < cycle_cap,
                "no forward progress: {} instrs after {} cycles",
                self.total_instrs,
                self.total_cycles
            );
        }
    }

    /// Runs until exactly `n` more application instructions retire,
    /// cycle-accurately.
    ///
    /// Unlike [`MonitoringSystem::run_instrs`], which may overshoot by
    /// up to a commit width, this caps the last cycle's retirement so
    /// the trace position lands exactly on the target — the stop
    /// discipline batched mode uses, exposed so cycle-mode runs can be
    /// compared against batched runs over an identical trace prefix.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to make forward progress.
    pub fn run_instrs_exact(&mut self, n: u64) {
        let target = self.total_instrs + n;
        self.run_cycle_exact(target, u64::MAX);
        if self.out_of_records() {
            // The trace ended before the target: complete the in-flight
            // events so the early stop leaves a fully-applied state.
            self.drain();
        }
    }

    /// Batched execution: retires exactly `n` more application
    /// instructions, draining monitored events through
    /// [`Fade::run_batch`] and periodically dropping back to the
    /// cycle-accurate engine to sample timing.
    ///
    /// Each sampling period of `cfg.sample_period` monitored events
    /// runs its first `sample_period - sample_window` events through
    /// the batched fast path and its last `sample_window` events
    /// through [`MonitoringSystem::step`]. Each window enters carrying
    /// the congestion of the preceding batch stretch — the monitor
    /// thread is seeded with the handler backlog the stretch's dispatch
    /// stream implies ([`CongestionCarry`]), and on monitor-bound
    /// windows the residual is recorded over the window's tail only,
    /// with the front half re-establishing steady-state queue pressure
    /// — so long congestion episodes survive sampling instead of being
    /// truncated by a drained-queue restart. The measured window
    /// (including its trailing queue drain) feeds a
    /// [`StratifiedEstimator`] keyed by the window's congestion-seed
    /// stratum, and batched stretches are charged the sampled CPI in
    /// [`MonitoringSystem::estimated_total_cycles`] and
    /// [`MonitoringSystem::finish`].
    ///
    /// Monitor-visible results — final [`MetadataState`], violation
    /// reports, and the accelerator's functional event counters — are
    /// bit-exact with cycle-accurate execution for every sampling
    /// period, because both engines filter, update and dispatch in
    /// program order (the differential test harness enforces this).
    /// Only cycle counts and the occupancy/distance/burst histograms
    /// (recorded in sampled windows only) are approximate.
    ///
    /// `sample_period <= sample_window` (e.g. the K=1 degenerate case)
    /// runs fully cycle-accurately; a period larger than the trace
    /// never reaches a sampling window and runs fully batched.
    /// Unaccelerated systems have no hardware fast path and always run
    /// cycle-accurately.
    ///
    /// Calls compose: `run_batched(a)` then `run_batched(b)` consumes
    /// the same trace prefix, with the same monitor-visible results, as
    /// `run_batched(a + b)` — the sampling schedule is phased against
    /// the global event count, not the call boundary.
    pub fn run_batched(&mut self, n: u64) {
        let target = self.total_instrs + n;
        let period = self.cfg.sample_period.max(1);
        let window = self.cfg.sample_window.min(period);
        if self.fade.is_none() || window >= period {
            // No batched fast path to take: pure cycle-accurate
            // execution with the exact-stop discipline.
            self.run_cycle_exact(target, u64::MAX);
            if self.out_of_records() {
                self.drain();
            }
            return;
        }
        let batch_len = period - window;
        while self.total_instrs < target {
            if self.out_of_records() {
                self.drain();
                return;
            }
            let pos = self.events_seen % period;
            if pos < batch_len {
                if !self.quiesced() {
                    self.drain();
                }
                self.run_batch_segment(target, batch_len - pos);
            } else {
                // Sampled window: cycle-accurate to the period end,
                // then drain so the batched path resumes bit-exactly.
                // The window runs whole — from the carried-congestion
                // seed at entry to the drain's last cycle — a
                // self-contained unit whose every event's work is paid
                // inside it. The recorded quantity is its *residual*
                // overhead: measured cycles minus an unimpeded replay
                // of the commit process (exact application phases) and
                // minus estimated handler-execution cycles (exact
                // bursty work), whichever of the two binds.
                let window_events = period - pos;
                let window_end = self.events_seen + window_events;
                let events0 = self.events_seen;
                let instrs0 = self.total_instrs;
                let cycles0 = self.total_cycles;
                let handler0 = self.handler_est_cycles;
                // Captured before seeding: the seed's estimated cycles
                // join the window's handler term, offsetting the
                // seeded work's simulated cycles in the residual. The
                // returned seed keys the window's congestion stratum,
                // and the preceding stretch's deterministic base
                // cycles per event become its control covariate (the
                // estimator regresses the residual on it and
                // extrapolates at the population covariate mean — see
                // `StratifiedEstimator::estimate_with_covariate_mean`).
                let cov = if self.stretch_events > 0 {
                    self.stretch_base_cycles as f64 / self.stretch_events as f64
                } else {
                    0.0
                };
                self.stretch_base_cycles = 0;
                self.stretch_events = 0;
                let seed = self.seed_congestion(window_events);
                let stratum = congestion_stratum(seed);
                // Congestion warmup: the first half of the window
                // rebuilds the queue state the batched stretch skipped
                // (the carried seed starts it congested; the warmup
                // runs it to steady state under real dynamics). It is
                // simulated — and charged — exactly like the rest of
                // the window; only the *recorded* residual is restricted
                // to the tail, so extrapolating it onto batched
                // stretches no longer mixes in the drained-queue
                // transient that biased monitor-bound estimates low.
                let warm_end = events0 + window_events / 2;
                let mut baseline_commit = self.commit.clone();
                self.run_cycle_exact(target, warm_end);
                if self.events_seen < warm_end {
                    continue; // instruction target hit mid-warmup
                }
                let events1 = self.events_seen;
                let instrs1 = self.total_instrs;
                let cycles1 = self.total_cycles;
                let handler1 = self.handler_est_cycles;
                // Advance the unimpeded replay through the warmup so
                // the tail's application-side term continues the same
                // run/stall realization.
                let ff_warm = unimpeded_commit_cycles(&mut baseline_commit, instrs1 - instrs0);
                self.run_cycle_exact(target, window_end);
                if self.events_seen >= window_end && self.events_seen > events1 {
                    // Steady-state snapshot before the trailing drain:
                    // the drain pays the end-of-window backlog down at
                    // full-core rate, a fixed cost that would swamp a
                    // short tail's per-event residual. Its cycles stay
                    // exact (simulated, in the total) either way.
                    let cycles_pre = self.total_cycles;
                    let handler_pre = self.handler_est_cycles;
                    self.drain();
                    let di = self.total_instrs - instrs1;
                    let dc_tail = (cycles_pre - cycles1) as f64;
                    let dh_tail = (handler_pre - handler1) as f64;
                    let ff_tail = unimpeded_commit_cycles(&mut baseline_commit, di) as f64;
                    let dc_whole = (self.total_cycles - cycles0) as f64;
                    let dh_whole = (self.handler_est_cycles - handler0) as f64;
                    let ff_whole = ff_warm as f64 + ff_tail;
                    // Which side bound the whole window decides what to
                    // record. Monitor-bound (handler work over commit
                    // time): the residual is queueing, and the warmup
                    // half still carries the drained-queue startup
                    // transient — record the steady-state tail only,
                    // pre-drain. App-bound: the transient is negligible
                    // and the whole window (with its cheap drain) keeps
                    // the replay pairing tight — tail-only splits lose
                    // the synced start and turn phase noise into bias.
                    // Short tails also record whole: the fixed
                    // boundary effects (inherited backlog pay-down,
                    // episode edges) don't amortize over a few hundred
                    // events and would over-sample peak congestion.
                    let tail_events = self.events_seen - events1;
                    let (ev_rec, resid) = if dh_whole > ff_whole
                        && Self::congestion_window_ok(window_events)
                    {
                        (tail_events, dc_tail - ff_tail.max(dh_tail))
                    } else {
                        (self.events_seen - events0, dc_whole - ff_whole.max(dh_whole))
                    };
                    self.estimator.record_window(ev_rec, resid, stratum, cov);
                }
            }
        }
    }

    /// Whether a sampling window of `window_events` events engages the
    /// congestion-carrying machinery: its planned steady-state tail
    /// (what remains after the `window_events / 2` warmup) must hold
    /// at least [`MIN_TAIL_EVENTS`]. The seed gate and the
    /// tail-record gate both use this predicate — they only work as a
    /// pair, so they must never disagree on a window.
    fn congestion_window_ok(window_events: u64) -> bool {
        window_events - window_events / 2 >= MIN_TAIL_EVENTS
    }

    /// Seeds the sampling window the engine is about to enter with the
    /// congestion the preceding batch stretch carried: the monitor
    /// thread starts the window busy with the handler backlog the
    /// stretch's dispatch stream would have left in flight, so the
    /// window's own events immediately contend for the queues and the
    /// core — the way they would mid-episode in a cycle-accurate run —
    /// instead of filling drained queues congestion-free.
    ///
    /// Pure timing: the seeded work is handler work of *already
    /// dispatched and applied* events (its functional effects landed at
    /// filter time, like any popped unfiltered event's), so no
    /// monitor-visible result can change. Its cycles were charged to
    /// the stretch's exact base (`max(app, handler)`); the charge moves
    /// with the work, and the seed's estimated cycles join
    /// `handler_est_cycles` so the window residual stays the *excess*
    /// over the base model — now measured under backpressure.
    ///
    /// The seed and the tail-recorded residual work as a pair (the
    /// seed jump-starts congestion, the warmup half carries it to
    /// steady state, the tail samples it); a window too short to
    /// tail-record gets no seed either — repeated seeding into short
    /// whole-recorded windows just piles fixed boundary costs onto too
    /// few events and flips the bias high.
    ///
    /// Returns the backlog cycles actually seeded (0 when nothing was),
    /// which doubles as the window's congestion-stratum key.
    fn seed_congestion(&mut self, window_events: u64) -> u64 {
        if !Self::congestion_window_ok(window_events) {
            // The carry still describes only the stretch that just
            // ended: drop it rather than letting it go stale.
            self.congestion.take();
            return 0;
        }
        if !self.quiesced() {
            // Mid-window resume (composition): the previous entry
            // consumed the carry already.
            return 0;
        }
        let seed = self.congestion.take();
        if seed == 0 {
            return 0;
        }
        let hipc = self.cfg.core.handler_ipc().min(self.cfg.core.width() as f64);
        let cost = ((seed as f64) * hipc).round().max(1.0) as u32;
        self.handler.start(cost);
        let est = self.handler_cycle_est(cost);
        self.handler_est_cycles += est;
        self.batch_base_cycles = self.batch_base_cycles.saturating_sub(seed);
        self.seeded_cycles_total += est;
        if self.measuring {
            self.m_batch_base_cycles = self.m_batch_base_cycles.saturating_sub(seed);
            self.m_seeded_cycles += est;
        }
        seed
    }

    /// Runs the monitoring side with the application paused until
    /// nothing is in flight (queues empty, handlers completed).
    /// Idempotent; a no-op when already quiesced.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to quiesce (a simulator bug).
    pub fn drain(&mut self) {
        self.producer_paused = true;
        let mut guard = 0u64;
        while !self.quiesced() {
            self.step();
            guard += 1;
            assert!(guard < 10_000_000, "drain failed to quiesce");
        }
        self.producer_paused = false;
        // The queues are empty now; any pending record re-enters
        // through the normal paths.
        self.last_blocked = false;
    }

    /// Cycle-accurate execution until `instr_target` instructions have
    /// retired or `event_target` monitored events have been accepted,
    /// whichever comes first, never overshooting `instr_target`.
    fn run_cycle_exact(&mut self, instr_target: u64, event_target: u64) {
        if self.total_instrs >= instr_target {
            return;
        }
        self.instr_cap = Some(instr_target);
        // Saturating: callers may pass "effectively unbounded" targets
        // (run-to-exhaustion), which must not overflow the cap math.
        let cycle_cap = (instr_target - self.total_instrs)
            .saturating_mul(400)
            .saturating_add(self.total_cycles + 200_000);
        while self.total_instrs < instr_target && self.events_seen < event_target {
            if self.out_of_records() {
                break;
            }
            self.step();
            assert!(
                self.total_cycles < cycle_cap,
                "no forward progress: {} instrs after {} cycles",
                self.total_instrs,
                self.total_cycles
            );
        }
        self.instr_cap = None;
    }

    /// One batched stretch: pulls trace records and drains up to
    /// `event_budget` monitored events through the accelerator's
    /// batched fast path, stopping early at `instr_target`. The
    /// accelerator must be quiesced on entry.
    fn run_batch_segment(&mut self, instr_target: u64, event_budget: u64) {
        // Chunk at the granularity the residual estimator samples at
        // (one full window), so the concave base aggregate is
        // consistent between exact and sampled stretches.
        let window = self.cfg.sample_window.min(self.cfg.sample_period.max(1));
        let chunk_cap = if window > 0 { window } else { BATCH_CHUNK };
        let monitors_stack = self.monitor.monitors_stack();
        let mut budget = event_budget;
        while budget > 0 && self.total_instrs < instr_target && !self.out_of_records() {
            // ---- Collect one chunk of monitored events. ----
            let mut chunk = std::mem::take(&mut self.batch_buf);
            chunk.clear();
            let cap = budget.min(chunk_cap);
            let mut chunk_instrs = 0u64;
            // A record the cycle engine popped but could not enqueue
            // re-enters through the chunk (cutting it if it is a
            // thread switch, like the in-place path below).
            let mut cut_early = false;
            if let Some(rec) = self.pending.take() {
                cut_early = self.collect_record(rec, &mut chunk, &mut chunk_instrs);
            }
            'collect: while !cut_early
                && (chunk.len() as u64) < cap
                && self.total_instrs < instr_target
            {
                // Larger refills than the cycle engine's: the batch
                // path consumes records in bulk. A dead source cuts
                // the chunk; the outer loops see `out_of_records`.
                if !self.refill_records(1024) {
                    break 'collect;
                }
                // Records are consumed in place (no per-record copy out
                // of the buffer); `record_pos` only advances past a
                // record once it is accepted, so chunk/target cuts
                // leave the remainder for the next consumer.
                while self.record_pos < self.record_buf.len() {
                    if (chunk.len() as u64) >= cap || self.total_instrs >= instr_target {
                        break 'collect;
                    }
                    match &self.record_buf[self.record_pos] {
                        TraceRecord::Instr(i) => {
                            self.total_instrs += 1;
                            chunk_instrs += 1;
                            if self.measuring {
                                self.m_app_instrs += 1;
                            }
                            if self.monitor.selects(i) {
                                chunk.push(AppEvent::Instr(instr_event_for(i)));
                                self.events_seen += 1;
                                if self.measuring {
                                    self.m_monitored += 1;
                                }
                            }
                        }
                        TraceRecord::Stack(s) => {
                            if monitors_stack {
                                chunk.push(AppEvent::StackUpdate(*s));
                                self.events_seen += 1;
                                if self.measuring {
                                    self.m_stack += 1;
                                }
                            }
                        }
                        TraceRecord::High(h) => {
                            let switch = matches!(h, HighLevelEvent::ThreadSwitch { .. });
                            chunk.push(AppEvent::HighLevel(*h));
                            self.events_seen += 1;
                            if self.measuring {
                                self.m_high += 1;
                            }
                            if switch {
                                // Cut the chunk so the monitor's
                                // invariant-register updates land
                                // before the next event is filtered —
                                // same order as the cycle engine's
                                // dispatch path.
                                self.record_pos += 1;
                                break 'collect;
                            }
                        }
                    }
                    self.record_pos += 1;
                }
            }
            budget -= chunk.len() as u64;
            self.batch_instrs_total += chunk_instrs;
            self.batch_events_total += chunk.len() as u64;
            // Fast-forward the commit process over the stretch so the
            // run consumes one continuous run/stall realization: this
            // is the stretch's exact application-side cycle cost.
            let ff = unimpeded_commit_cycles(&mut self.commit, chunk_instrs);
            if self.measuring {
                self.m_batch_instrs += chunk_instrs;
                self.m_batch_events += chunk.len() as u64;
            }

            // ---- Drain the chunk through the accelerator. ----
            if !chunk.is_empty() {
                let mut fade = self.fade.take().expect("batched segments require FADE");
                let monitor = &mut self.monitor;
                let class_instrs = &mut self.class_instrs;
                let inv_buf = &mut self.inv_buf;
                let congestion = &mut self.congestion;
                let measuring = self.measuring;
                let ideal = self.cfg.ideal_consumer;
                // Monitor-thread execution rate when it has the core
                // (the steady state of a loaded system; deviations are
                // absorbed by the sampled residual).
                let hipc = self.cfg.core.handler_ipc().min(self.cfg.core.width() as f64);
                let mut handler_cycles = 0u64;
                let lanes = self.cfg.batch_lanes.clamp(1, fade_isa::BLOCK_LANES);
                let consumer = |uf: fade::UnfilteredEvent, st: &mut MetadataState| {
                    apply_unfiltered(monitor.as_mut(), &uf, st, inv_buf);
                    // Same handler-cost attribution as the cycle
                    // engine's consumer.
                    let cost = if ideal {
                        1
                    } else {
                        unfiltered_cost(monitor.as_ref(), &uf).max(1)
                    } as u64;
                    let est = (cost as f64 / hipc).ceil() as u64;
                    handler_cycles += est;
                    congestion.on_dispatch(est);
                    if measuring {
                        match uf.event {
                            AppEvent::Instr(_) => {
                                if uf.partial_hit {
                                    class_instrs.partial += cost;
                                } else {
                                    class_instrs.complex += cost;
                                }
                            }
                            AppEvent::HighLevel(_) => class_instrs.high_level += cost,
                            AppEvent::StackUpdate(_) => class_instrs.stack += cost,
                        }
                    }
                };
                // The vectorized kernel is bit-exact with the scalar
                // loop, so the lane width is purely a throughput knob.
                let bs = if lanes > 1 {
                    fade.run_batch_vectorized_with(&chunk, &mut self.state, lanes, consumer)
                } else {
                    fade.run_batch_with(&chunk, &mut self.state, consumer)
                };
                for (id, v) in self.inv_buf.drain(..) {
                    fade.write_invariant(id, v);
                }
                self.fade = Some(fade);
                self.batch_stats.merge(&bs);
                let base = ff.max(handler_cycles);
                self.batch_base_cycles += base;
                self.stretch_base_cycles += base;
                if self.measuring {
                    self.m_batch_base_cycles += base;
                }
                self.congestion.on_stretch(handler_cycles, ff);
            } else {
                self.batch_base_cycles += ff;
                self.stretch_base_cycles += ff;
                if self.measuring {
                    self.m_batch_base_cycles += ff;
                }
                self.congestion.on_stretch(0, ff);
            }
            self.stretch_events += chunk.len() as u64;
            self.batch_buf = chunk;
        }
    }

    /// Folds one out-of-buffer record (the cycle engine's blocked
    /// `pending`) into a batch chunk. Returns `true` when the record
    /// was a thread switch, which must cut the chunk.
    fn collect_record(
        &mut self,
        rec: TraceRecord,
        chunk: &mut Vec<AppEvent>,
        chunk_instrs: &mut u64,
    ) -> bool {
        match rec {
            TraceRecord::Instr(i) => {
                self.total_instrs += 1;
                *chunk_instrs += 1;
                if self.measuring {
                    self.m_app_instrs += 1;
                }
                if self.monitor.selects(&i) {
                    chunk.push(AppEvent::Instr(instr_event_for(&i)));
                    self.events_seen += 1;
                    if self.measuring {
                        self.m_monitored += 1;
                    }
                }
                false
            }
            TraceRecord::Stack(s) => {
                if self.monitor.monitors_stack() {
                    chunk.push(AppEvent::StackUpdate(s));
                    self.events_seen += 1;
                    if self.measuring {
                        self.m_stack += 1;
                    }
                }
                false
            }
            TraceRecord::High(h) => {
                chunk.push(AppEvent::HighLevel(h));
                self.events_seen += 1;
                if self.measuring {
                    self.m_high += 1;
                }
                matches!(h, HighLevelEvent::ThreadSwitch { .. })
            }
        }
    }

    /// Advances the system one cycle.
    pub fn step(&mut self) {
        self.total_cycles += 1;
        let monitor_busy_at_start = self.handler.busy();
        let width = self.cfg.core.width();
        let mut blocked = false;

        // ---- Application thread: commit and enqueue. ----
        let monitor_slots = if self.producer_paused {
            // Draining: the application thread is frozen mid-trace and
            // the monitor side gets the whole core.
            width
        } else {
            self.commit.tick();
            let want = self.commit.retirable();
            let smt_want = if self.last_blocked { 0 } else { want };
            let (mut app_slots, monitor_slots) = match self.cfg.topology {
                Topology::TwoCore => (want, width),
                Topology::SingleCoreDualThread => {
                    self.arbiter
                        .arbitrate(width, smt_want, monitor_busy_at_start)
                }
            };
            if self.last_blocked {
                // Retry the blocked enqueue without consuming issue slots.
                app_slots = app_slots.max(1);
            }
            if let Some(cap) = self.instr_cap {
                // Exact-stop execution: never retire past the cap.
                let left = cap.saturating_sub(self.total_instrs);
                app_slots = app_slots.min(left.min(u32::MAX as u64) as u32);
            }
            let mut retired = 0u32;
            while retired < app_slots {
                let rec = match self.pending.take() {
                    Some(r) => r,
                    None => match self.next_trace_record() {
                        Some(r) => r,
                        // Out of records: the application side idles
                        // from here on; the run loops stop once the
                        // monitoring side quiesces.
                        None => break,
                    },
                };
                match rec {
                    TraceRecord::Instr(i) => {
                        if self.monitor.selects(&i) {
                            let ev = AppEvent::Instr(instr_event_for(&i));
                            if self.try_enqueue(ev).is_err() {
                                self.pending = Some(rec);
                                blocked = true;
                                break;
                            }
                            self.events_seen += 1;
                            if self.measuring {
                                self.m_monitored += 1;
                            }
                        }
                        retired += 1;
                        self.total_instrs += 1;
                        if self.measuring {
                            self.m_app_instrs += 1;
                        }
                    }
                    TraceRecord::Stack(s) => {
                        if self.monitor.monitors_stack() {
                            if self.try_enqueue(AppEvent::StackUpdate(s)).is_err() {
                                self.pending = Some(rec);
                                blocked = true;
                                break;
                            }
                            self.events_seen += 1;
                            if self.measuring {
                                self.m_stack += 1;
                            }
                        }
                    }
                    TraceRecord::High(h) => {
                        if self.try_enqueue(AppEvent::HighLevel(h)).is_err() {
                            self.pending = Some(rec);
                            blocked = true;
                            break;
                        }
                        self.events_seen += 1;
                        if self.measuring {
                            self.m_high += 1;
                        }
                    }
                }
            }
            self.commit.retire(retired);
            self.last_blocked = blocked;
            monitor_slots
        };

        // ---- Monitoring side. ----
        match self.fade.take() {
            Some(mut fade) => {
                let filtered_before = fade.stats().filtered;
                let tick = fade.tick(&mut self.state);
                if fade.stats().filtered > filtered_before {
                    self.since_uf += 1;
                }
                if let Some(uf) = tick.dispatched {
                    self.on_dispatch(&mut fade, uf);
                }
                // Monitor core consumes the unfiltered queue.
                if !self.handler.busy() {
                    if let Some(uf) = fade.pop_unfiltered() {
                        let cost = if self.cfg.ideal_consumer {
                            1
                        } else {
                            self.unfiltered_cost(&uf).max(1)
                        };
                        self.handler_est_cycles += self.handler_cycle_est(cost);
                        self.handler.start(cost);
                        self.cur_token = Some(uf.token);
                        if self.measuring {
                            match uf.event {
                                AppEvent::Instr(_) => {
                                    if uf.partial_hit {
                                        self.class_instrs.partial += cost as u64;
                                    } else {
                                        self.class_instrs.complex += cost as u64;
                                    }
                                }
                                AppEvent::HighLevel(_) => {
                                    self.class_instrs.high_level += cost as u64;
                                }
                                AppEvent::StackUpdate(_) => {
                                    self.class_instrs.stack += cost as u64;
                                }
                            }
                        }
                    }
                }
                if self.handler.busy() && self.handler.tick_slots(monitor_slots) {
                    if let Some(t) = self.cur_token.take() {
                        fade.handler_completed(t);
                    }
                }
                if self.measuring {
                    self.occupancy.record(fade.event_queue_len() as u64);
                }
                self.fade = Some(fade);
            }
            None => {
                // Unaccelerated: the monitor thread handles every event.
                if !self.handler.busy() {
                    if let Some(ev) = self.sw_queue.pop() {
                        let cost = self.software_handle(ev).max(1);
                        self.handler.start(cost);
                    }
                }
                if self.handler.busy() {
                    self.handler.tick_slots(monitor_slots);
                }
                if self.measuring {
                    self.occupancy.record(self.sw_queue.len() as u64);
                }
            }
        }

        // ---- Utilization classification (Figure 11(b)). ----
        if self.measuring {
            self.m_cycles += 1;
            let monitor_busy = self.handler.busy();
            if monitor_busy && blocked {
                self.util.app_idle += 1;
            } else if !monitor_busy {
                self.util.monitor_idle += 1;
            } else {
                self.util.both += 1;
            }
        }
    }

    /// The next trace record, through the batch-refilled buffer (same
    /// sequence as calling the generator directly); `None` once the
    /// source is exhausted or failed.
    fn next_trace_record(&mut self) -> Option<TraceRecord> {
        if !self.refill_records(RECORD_BATCH) {
            return None;
        }
        let r = self.record_buf[self.record_pos];
        self.record_pos += 1;
        Some(r)
    }

    /// Attempts to hand one event to the monitoring side; a full queue
    /// hands the event back (backpressure, like [`BoundedQueue::push`]).
    fn try_enqueue(&mut self, ev: AppEvent) -> Result<(), AppEvent> {
        match &mut self.fade {
            Some(f) => f.enqueue(ev),
            None => self.sw_queue.push(ev),
        }
    }

    /// Handles a dispatch from the accelerator: functional handler
    /// effects apply now (program order); the monitor core pays the
    /// execution time when it pops the queue.
    fn on_dispatch(&mut self, fade: &mut Fade, uf: UnfilteredEvent) {
        match uf.event {
            AppEvent::Instr(ev) => {
                self.monitor.apply_instr(&ev, &mut self.state);
                // Distance/burst statistics track events needing the
                // *complex* handler; partial hits behave like filtered
                // events for the burstiness analysis of Section 3.4.
                if uf.partial_hit {
                    self.since_uf += 1;
                } else {
                    self.note_unfiltered();
                }
            }
            AppEvent::HighLevel(h) => {
                self.monitor.apply_high_level(&h, &mut self.state);
                if let HighLevelEvent::ThreadSwitch { tid } = h {
                    for (id, v) in self.monitor.on_thread_switch(tid) {
                        fade.write_invariant(id, v);
                    }
                }
            }
            AppEvent::StackUpdate(ev) => {
                // Only reachable when the SUU is disabled (ablation).
                self.monitor.apply_stack_update(&ev, &mut self.state);
            }
        }
    }

    /// Distance/burst accounting for one unfiltered instruction event.
    fn note_unfiltered(&mut self) {
        if self.measuring {
            self.distances.record(self.since_uf);
        }
        if self.cur_burst > 0 && self.since_uf <= BURST_GAP {
            self.cur_burst += 1;
        } else {
            if self.cur_burst > 0 && self.measuring {
                self.bursts.record(self.cur_burst);
            }
            self.cur_burst = 1;
        }
        self.since_uf = 0;
    }

    fn unfiltered_cost(&self, uf: &UnfilteredEvent) -> u32 {
        unfiltered_cost(self.monitor.as_ref(), uf)
    }

    /// Estimated handler-execution cycles for a `cost`-instruction
    /// handler at the monitor thread's standalone rate — the unit both
    /// the batched base and the sampled residual are expressed in.
    fn handler_cycle_est(&self, cost: u32) -> u64 {
        let hipc = self.cfg.core.handler_ipc().min(self.cfg.core.width() as f64);
        (cost as f64 / hipc).ceil() as u64
    }

    /// Software (unaccelerated) handling of one event: classification,
    /// functional effect, cost.
    fn software_handle(&mut self, ev: AppEvent) -> u32 {
        match ev {
            AppEvent::Instr(iev) => {
                let class = self.monitor.classify(&iev, &self.state);
                self.monitor.apply_instr(&iev, &mut self.state);
                // In software there is no hardware pre-check: the
                // "partial short" path still executes the check itself
                // (costed like a clean check).
                let cost = match class {
                    EventClass::PartialShort => self.monitor.costs().cc,
                    c => self.monitor.costs().for_class(c),
                };
                if self.measuring {
                    match class {
                        EventClass::CleanCheck => self.class_instrs.cc += cost as u64,
                        EventClass::RedundantUpdate => self.class_instrs.ru += cost as u64,
                        EventClass::PartialShort => self.class_instrs.partial += cost as u64,
                        EventClass::Complex => self.class_instrs.complex += cost as u64,
                    }
                }
                if class == EventClass::Complex {
                    self.note_unfiltered();
                } else {
                    self.since_uf += 1;
                }
                cost
            }
            AppEvent::StackUpdate(s) => {
                self.monitor.apply_stack_update(&s, &mut self.state);
                let cost = self.monitor.stack_cost(&s);
                if self.measuring {
                    self.class_instrs.stack += cost as u64;
                }
                cost
            }
            AppEvent::HighLevel(h) => {
                self.monitor.apply_high_level(&h, &mut self.state);
                let cost = self.monitor.high_level_cost(&h);
                if self.measuring {
                    self.class_instrs.high_level += cost as u64;
                }
                cost
            }
        }
    }

    /// Collects the measured window into a [`RunStats`].
    ///
    /// `baseline_cycles` must come from [`baseline_cycles`] for the same
    /// benchmark, core and seed.
    ///
    /// If part of the window ran batched ([`MonitoringSystem::run_batched`]),
    /// `cycles` is the sampled estimate — exactly simulated cycles plus
    /// the extrapolation for batched instructions — and `sampling`
    /// reports the windows and error bound behind it.
    pub fn finish(mut self, bench_name: &str, baseline: u64) -> RunStats {
        // Close any open burst.
        if self.cur_burst > 0 && self.measuring {
            self.bursts.record(self.cur_burst);
        }
        let fade_delta = match (&self.fade, self.fade_snapshot) {
            (Some(f), Some(snap)) => Some(fade_stats_delta(*f.stats(), snap)),
            (Some(f), None) => Some(*f.stats()),
            _ => None,
        };
        let (cycles, sampling) = if self.m_batch_instrs == 0 && self.m_batch_events == 0 {
            (self.m_cycles, None)
        } else {
            // Prefer windows sampled inside the measured window; fall
            // back to all windows (e.g. warmup-only sampling).
            let measured = &self.estimator.samples()[self.measure_from.min(self.estimator.len())..];
            let est = if measured.is_empty() {
                self.estimator.clone()
            } else {
                StratifiedEstimator::from_samples(measured)
            };
            let pop_mean = if self.m_batch_events > 0 {
                self.m_batch_base_cycles as f64 / self.m_batch_events as f64
            } else {
                0.0
            };
            let e = est.estimate_with_covariate_mean(self.m_batch_events, pop_mean);
            let base = self.m_batch_base_cycles as f64;
            let extra = |residual: f64| (base + residual).max(0.0).round() as u64;
            let total = self.m_cycles + extra(e.cycles);
            let (lo, hi) = (self.m_cycles + extra(e.lo()), self.m_cycles + extra(e.hi()));
            // The production-rate bound: the residual's absolute cycle
            // band relative to the whole cycle estimate (simulated +
            // deterministic base are exact, so the band is theirs too).
            let rel = e
                .ci
                .filter(|_| total > 0)
                .map(|_| (hi - lo) as f64 / 2.0 / total as f64);
            (
                total,
                Some(SamplingSummary {
                    windows: est.len(),
                    sampled_instrs: self.m_app_instrs - self.m_batch_instrs,
                    sampled_cycles: self.m_cycles,
                    extrapolated_instrs: self.m_batch_instrs,
                    extrapolated_events: self.m_batch_events,
                    extrapolated_base_cycles: self.m_batch_base_cycles,
                    carried_seed_cycles: self.m_seeded_cycles,
                    residual_per_event: est.cpi(),
                    rel_half_width: rel,
                    cycles_lo: lo,
                    cycles_hi: hi,
                    strata: est.strata(),
                }),
            )
        };
        RunStats {
            benchmark: bench_name.to_string(),
            monitor: self.monitor.name().to_string(),
            system: self.cfg.label(),
            app_instrs: self.m_app_instrs,
            monitored_events: self.m_monitored,
            stack_events: self.m_stack,
            high_level_events: self.m_high,
            cycles,
            baseline_cycles: baseline,
            sampling,
            fade: fade_delta,
            class_instrs: self.class_instrs,
            occupancy: self.occupancy.clone(),
            unfiltered_distances: self.distances.clone(),
            burst_sizes: self.bursts.clone(),
            util: self.util,
        }
    }
}

/// Advances a commit process by exactly `n` retired instructions with
/// nothing impeding retirement, returning the cycles consumed — the
/// application-only cost of a stretch, on the process's own run/stall
/// realization.
fn unimpeded_commit_cycles(commit: &mut CommitModel, n: u64) -> u64 {
    let mut retired = 0u64;
    let mut cycles = 0u64;
    while retired < n {
        commit.tick();
        let avail = commit.retirable() as u64;
        let take = avail.min(n - retired) as u32;
        commit.retire(take);
        retired += take as u64;
        cycles += 1;
    }
    cycles
}

/// Software-handler cost of one unfiltered event (shared by the cycle
/// engine's consumer and the batched consumer).
fn unfiltered_cost(monitor: &dyn Monitor, uf: &UnfilteredEvent) -> u32 {
    match uf.event {
        AppEvent::Instr(_) => {
            let c = monitor.costs();
            if uf.partial_hit {
                c.partial_short
            } else {
                c.complex
            }
        }
        AppEvent::HighLevel(h) => monitor.high_level_cost(&h),
        AppEvent::StackUpdate(s) => monitor.stack_cost(&s),
    }
}

/// Applies the software handler's functional effect for one dispatched
/// event, deferring invariant-register writes to `inv_writes` (the
/// batched consumer cannot reach the accelerator while it is running
/// the batch; chunks are cut at thread switches so the deferral does
/// not reorder against filtering).
fn apply_unfiltered(
    monitor: &mut dyn Monitor,
    uf: &UnfilteredEvent,
    st: &mut MetadataState,
    inv_writes: &mut Vec<(InvId, u64)>,
) {
    match uf.event {
        AppEvent::Instr(ev) => monitor.apply_instr(&ev, st),
        AppEvent::HighLevel(h) => {
            monitor.apply_high_level(&h, st);
            if let HighLevelEvent::ThreadSwitch { tid } = h {
                inv_writes.extend(monitor.on_thread_switch(tid));
            }
        }
        AppEvent::StackUpdate(ev) => monitor.apply_stack_update(&ev, st),
    }
}

/// Per-field difference of two accelerator statistics snapshots.
fn fade_stats_delta(now: FadeStats, then: FadeStats) -> FadeStats {
    FadeStats {
        instr_events: now.instr_events - then.instr_events,
        filtered: now.filtered - then.filtered,
        partial_hits: now.partial_hits - then.partial_hits,
        unfiltered_instr: now.unfiltered_instr - then.unfiltered_instr,
        stack_updates: now.stack_updates - then.stack_updates,
        high_level: now.high_level - then.high_level,
        shots: now.shots - then.shots,
        busy_cycles: now.busy_cycles - then.busy_cycles,
        idle_cycles: now.idle_cycles - then.idle_cycles,
        blocking_stall_cycles: now.blocking_stall_cycles - then.blocking_stall_cycles,
        ufq_full_stall_cycles: now.ufq_full_stall_cycles - then.ufq_full_stall_cycles,
        fsq_full_stall_cycles: now.fsq_full_stall_cycles - then.fsq_full_stall_cycles,
        drain_stall_cycles: now.drain_stall_cycles - then.drain_stall_cycles,
        suu_busy_cycles: now.suu_busy_cycles - then.suu_busy_cycles,
        md_miss_stall_cycles: now.md_miss_stall_cycles - then.md_miss_stall_cycles,
        tlb_miss_stall_cycles: now.tlb_miss_stall_cycles - then.tlb_miss_stall_cycles,
    }
}

/// Cycles an unmonitored (application-only) system needs to retire
/// `measure` instructions after a `warmup`-instruction warmup, with the
/// same core and commit-process seed as the monitored run.
pub fn baseline_cycles(
    bench: &BenchProfile,
    core: CoreKind,
    seed: u64,
    warmup: u64,
    measure: u64,
) -> u64 {
    let mut commit = CommitModel::new(core, bench.commit, Rng::seed_from(seed ^ 0xbace));
    let mut instrs = 0u64;
    let mut cycles_at_warmup = None;
    let mut cycles = 0u64;
    while instrs < warmup + measure {
        commit.tick();
        let n = commit.retirable();
        commit.retire(n);
        instrs += n as u64;
        cycles += 1;
        if cycles_at_warmup.is_none() && instrs >= warmup {
            cycles_at_warmup = Some(cycles);
        }
    }
    cycles - cycles_at_warmup.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use fade::FilterMode;
    use fade_trace::bench;

    const WARM: u64 = 5_000;
    const MEAS: u64 = 20_000;

    /// Warmup-measure convenience harness: the tests below test engine
    /// behavior, not the entry point, so they all go through one
    /// session-built run.
    fn run_experiment(
        bench: &BenchProfile,
        monitor: &str,
        cfg: &SystemConfig,
        warmup: u64,
        measure: u64,
    ) -> RunStats {
        crate::Session::builder()
            .monitor(monitor)
            .source(bench.clone())
            .config(*cfg)
            .build()
            .expect("paper monitor and profile")
            .run_measured(warmup, measure)
            .expect("clean synthetic run")
            .stats
    }

    #[test]
    fn fade_system_reaches_high_filtering_ratio_for_addrcheck() {
        // hmmer has ~1200-cycle commit phases; a longer window keeps the
        // baseline/monitored pairing statistically tight.
        let b = bench::by_name("hmmer").unwrap();
        let stats = run_experiment(
            &b,
            "AddrCheck",
            &SystemConfig::fade_single_core(),
            WARM,
            8 * MEAS,
        );
        assert!(
            stats.filtering_ratio() > 0.95,
            "AddrCheck should filter nearly everything, got {}",
            stats.filtering_ratio()
        );
        // Short windows pair baseline and monitored runs statistically,
        // not cycle-exactly, so allow a little noise below 1.0.
        assert!(stats.slowdown() >= 0.9, "got {}", stats.slowdown());
        assert!(stats.slowdown() < 2.0, "got {}", stats.slowdown());
    }

    #[test]
    fn unaccelerated_is_slower_than_fade() {
        let b = bench::by_name("gcc").unwrap();
        let fade = run_experiment(&b, "MemLeak", &SystemConfig::fade_single_core(), WARM, MEAS);
        let soft = run_experiment(
            &b,
            "MemLeak",
            &SystemConfig::unaccelerated_single_core(),
            WARM,
            MEAS,
        );
        assert!(
            soft.slowdown() > fade.slowdown() * 1.3,
            "unaccel {} vs fade {}",
            soft.slowdown(),
            fade.slowdown()
        );
    }

    #[test]
    fn non_blocking_beats_blocking_for_low_filter_monitors() {
        let b = bench::by_name("gcc").unwrap();
        let nb = run_experiment(&b, "MemLeak", &SystemConfig::fade_single_core(), WARM, MEAS);
        let blocking = run_experiment(
            &b,
            "MemLeak",
            &SystemConfig::fade_single_core().with_mode(FilterMode::Blocking),
            WARM,
            MEAS,
        );
        assert!(
            blocking.slowdown() > nb.slowdown(),
            "blocking {} vs nb {}",
            blocking.slowdown(),
            nb.slowdown()
        );
    }

    #[test]
    fn two_core_is_at_least_as_fast_as_single_core() {
        let b = bench::by_name("astar").unwrap();
        let one = run_experiment(&b, "MemLeak", &SystemConfig::fade_single_core(), WARM, MEAS);
        let two = run_experiment(&b, "MemLeak", &SystemConfig::fade_two_core(), WARM, MEAS);
        assert!(
            two.slowdown() <= one.slowdown() * 1.05,
            "two-core {} vs single {}",
            two.slowdown(),
            one.slowdown()
        );
        let (a, m, both) = two.util.percentages();
        assert!((a + m + both - 100.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let b = bench::by_name("mcf").unwrap();
        let cfg = SystemConfig::fade_single_core();
        let s1 = run_experiment(&b, "MemCheck", &cfg, WARM, MEAS);
        let s2 = run_experiment(&b, "MemCheck", &cfg, WARM, MEAS);
        assert_eq!(s1.cycles, s2.cycles);
        assert_eq!(s1.monitored_events, s2.monitored_events);
        assert_eq!(
            s1.fade.unwrap().filtered,
            s2.fade.unwrap().filtered
        );
    }

    #[test]
    fn atomcheck_runs_on_parallel_benchmarks() {
        let b = bench::by_name("water").unwrap();
        let stats = run_experiment(&b, "AtomCheck", &SystemConfig::fade_single_core(), WARM, MEAS);
        let f = stats.fade.unwrap();
        assert!(f.partial_hits > 0, "partial filtering must fire");
        assert!(stats.filtering_ratio() > 0.5, "got {}", stats.filtering_ratio());
    }

    #[test]
    fn monitored_ipc_is_below_app_ipc() {
        let b = bench::by_name("bzip").unwrap();
        let stats = run_experiment(&b, "AddrCheck", &SystemConfig::fade_single_core(), WARM, MEAS);
        assert!(stats.monitored_ipc() < stats.app_ipc());
        assert!(stats.monitored_ipc() > 0.0);
    }

    #[test]
    fn baseline_matches_profile_ipc() {
        let b = bench::by_name("hmmer").unwrap();
        let base = baseline_cycles(&b, CoreKind::AggrOoO4, 1, 10_000, 100_000);
        let ipc = 100_000.0 / base as f64;
        assert!(
            (ipc - b.commit.ipc_4way).abs() / b.commit.ipc_4way < 0.15,
            "baseline ipc {ipc} vs profile {}",
            b.commit.ipc_4way
        );
    }
}
