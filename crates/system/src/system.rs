//! The unified cycle-level monitoring-system engine.
//!
//! One engine implements all four evaluated organizations (unaccelerated
//! / FADE-enabled × single-core dual-threaded / two-core): per cycle it
//! advances the application commit process, moves monitored events into
//! the decoupling queue, runs the accelerator (if present), and executes
//! software handlers on the monitor hardware thread — with issue
//! bandwidth shared through [`SmtArbiter`] on the single-core system.

use fade::{Fade, FadeConfig, FadeStats, UnfilteredEvent};
use fade_isa::{instr_event_for, AppEvent, HighLevelEvent};
use fade_monitors::{monitor_by_name, EventClass, Monitor};
use fade_shadow::MetadataState;
use fade_sim::{BoundedQueue, CommitModel, CoreKind, HandlerExec, LogHistogram, Rng, SmtArbiter};
use fade_trace::{BenchProfile, SyntheticProgram, TraceRecord};

use crate::config::{Accel, SystemConfig, Topology};
use crate::run::{ClassInstrs, RunStats, UtilBreakdown};

/// Gap (in filterable events) that separates unfiltered bursts
/// (Section 3.4 defines a burst as unfiltered events separated by at
/// most 16 filterable events).
const BURST_GAP: u64 = 16;

/// Trace records pulled from the generator per refill: the commit loop
/// consumes them one at a time, but generating them in slices keeps the
/// generator's dispatch out of the per-cycle path.
const RECORD_BATCH: usize = 64;

/// A complete monitoring system under simulation.
pub struct MonitoringSystem {
    cfg: SystemConfig,
    monitor: Box<dyn Monitor>,
    gen: SyntheticProgram,
    commit: CommitModel,
    arbiter: SmtArbiter,
    handler: HandlerExec,
    state: MetadataState,
    fade: Option<Fade>,
    sw_queue: BoundedQueue<AppEvent>,
    pending: Option<TraceRecord>,
    cur_token: Option<u64>,
    /// Batch-refilled trace records (consumed from `record_pos`).
    record_buf: Vec<TraceRecord>,
    record_pos: usize,

    // Measurement window.
    measuring: bool,
    m_app_instrs: u64,
    m_monitored: u64,
    m_stack: u64,
    m_high: u64,
    m_cycles: u64,
    class_instrs: ClassInstrs,
    occupancy: LogHistogram,
    distances: LogHistogram,
    bursts: LogHistogram,
    util: UtilBreakdown,
    fade_snapshot: Option<FadeStats>,

    // Unfiltered distance/burst trackers (run continuously).
    since_uf: u64,
    cur_burst: u64,
    /// The app thread was backpressured last cycle: it occupies no
    /// issue slots this cycle (an SMT thread stalled on a full queue
    /// does not compete for bandwidth).
    last_blocked: bool,

    total_instrs: u64,
    total_cycles: u64,
}

impl MonitoringSystem {
    /// Builds a system for a benchmark and monitor.
    ///
    /// # Panics
    ///
    /// Panics if `monitor_name` is unknown or the monitor's FADE
    /// program fails validation.
    pub fn new(bench: &BenchProfile, monitor_name: &str, cfg: &SystemConfig) -> Self {
        let monitor = monitor_by_name(monitor_name)
            .unwrap_or_else(|| panic!("unknown monitor {monitor_name}"));
        Self::with_monitor(bench, monitor, cfg)
    }

    /// Like [`MonitoringSystem::with_monitor`], but with a caller-built
    /// FADE program (ablations: SUU removal, alternative event-table
    /// encodings).
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation or the config is
    /// unaccelerated.
    pub fn with_program(
        bench: &BenchProfile,
        monitor: Box<dyn Monitor>,
        program: fade::FadeProgram,
        cfg: &SystemConfig,
    ) -> Self {
        let mut sys = Self::with_monitor(bench, monitor, cfg);
        let Accel::Fade(mode) = cfg.accel else {
            panic!("with_program requires a FADE-enabled configuration");
        };
        let mut fc = FadeConfig::paper(mode);
        fc.event_queue = cfg.event_queue;
        fc.unfiltered_queue = cfg.unfiltered_queue;
        sys.fade = Some(Fade::new(fc, program));
        sys
    }

    /// Builds a system around a caller-provided monitor — the hook for
    /// user-defined tools (FADE is a *programmable* accelerator; any
    /// [`Monitor`] implementation can be loaded).
    ///
    /// # Panics
    ///
    /// Panics if the monitor's FADE program fails validation.
    pub fn with_monitor(
        bench: &BenchProfile,
        monitor: Box<dyn Monitor>,
        cfg: &SystemConfig,
    ) -> Self {
        let program = monitor.program();
        let mut state = MetadataState::new(program.md_map());
        monitor.init_state(&mut state);
        let fade = match cfg.accel {
            Accel::None => None,
            Accel::Fade(mode) => {
                let mut fc = FadeConfig::paper(mode);
                fc.event_queue = cfg.event_queue;
                fc.unfiltered_queue = cfg.unfiltered_queue;
                if let Some(bytes) = cfg.tweaks.md_cache_bytes {
                    fc.md_cache = fade::TagCacheConfig {
                        size_bytes: bytes,
                        ways: 2,
                        line_bytes: 64,
                    };
                }
                if let Some(n) = cfg.tweaks.tlb_entries {
                    fc.tlb_entries = n;
                }
                if let Some(n) = cfg.tweaks.fsq_entries {
                    fc.fsq_entries = n;
                }
                if cfg.ideal_consumer {
                    // Section 3.2's queueing study: the accelerator
                    // consumes exactly one event per cycle with no
                    // metadata-miss, drain or backpressure stalls.
                    fc.tlb_miss_penalty = 0;
                    fc.blocking_resume_latency = 0;
                    fc.mem_lat = fade_sim::MemLatency { l1: 0, l2: 0, dram: 0 };
                    fc.unfiltered_queue = fade_sim::QueueDepth::Unbounded;
                }
                Some(Fade::new(fc, program))
            }
        };
        MonitoringSystem {
            monitor,
            gen: SyntheticProgram::new(bench, cfg.seed),
            commit: CommitModel::new(cfg.core, bench.commit, Rng::seed_from(cfg.seed ^ 0xbace)),
            arbiter: SmtArbiter::new(),
            handler: HandlerExec::new(cfg.core),
            state,
            fade,
            sw_queue: BoundedQueue::new(cfg.event_queue),
            pending: None,
            cur_token: None,
            record_buf: Vec::with_capacity(RECORD_BATCH),
            record_pos: 0,
            measuring: false,
            m_app_instrs: 0,
            m_monitored: 0,
            m_stack: 0,
            m_high: 0,
            m_cycles: 0,
            class_instrs: ClassInstrs::default(),
            occupancy: LogHistogram::new(),
            distances: LogHistogram::new(),
            bursts: LogHistogram::new(),
            util: UtilBreakdown::default(),
            fade_snapshot: None,
            since_uf: 0,
            cur_burst: 0,
            last_blocked: false,
            total_instrs: 0,
            total_cycles: 0,
            cfg: *cfg,
        }
    }

    /// The monitor driving this system (bug reports, etc.).
    pub fn monitor(&self) -> &dyn Monitor {
        self.monitor.as_ref()
    }

    /// The current metadata state (read access for examples/tests).
    pub fn state(&self) -> &MetadataState {
        &self.state
    }

    /// Total cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total application instructions retired so far.
    pub fn instrs(&self) -> u64 {
        self.total_instrs
    }

    /// Starts the measurement window: counters collected from now on.
    pub fn start_measure(&mut self) {
        self.measuring = true;
        self.m_app_instrs = 0;
        self.m_monitored = 0;
        self.m_stack = 0;
        self.m_high = 0;
        self.m_cycles = 0;
        self.class_instrs = ClassInstrs::default();
        self.occupancy = LogHistogram::new();
        self.distances = LogHistogram::new();
        self.bursts = LogHistogram::new();
        self.util = UtilBreakdown::default();
        self.fade_snapshot = self.fade.as_ref().map(|f| *f.stats());
    }

    /// Runs until `n` more application instructions retire.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to make forward progress (a deadlock
    /// would be a simulator bug).
    pub fn run_instrs(&mut self, n: u64) {
        let target = self.total_instrs + n;
        let cycle_cap = self.total_cycles + 200_000 + n * 400;
        while self.total_instrs < target {
            self.step();
            assert!(
                self.total_cycles < cycle_cap,
                "no forward progress: {} instrs after {} cycles",
                self.total_instrs,
                self.total_cycles
            );
        }
    }

    /// Advances the system one cycle.
    pub fn step(&mut self) {
        self.total_cycles += 1;
        let monitor_busy_at_start = self.handler.busy();

        // ---- Application thread: commit and enqueue. ----
        self.commit.tick();
        let want = self.commit.retirable();
        let smt_want = if self.last_blocked { 0 } else { want };
        let width = self.cfg.core.width();
        let (mut app_slots, monitor_slots) = match self.cfg.topology {
            Topology::TwoCore => (want, width),
            Topology::SingleCoreDualThread => {
                self.arbiter
                    .arbitrate(width, smt_want, monitor_busy_at_start)
            }
        };
        if self.last_blocked {
            // Retry the blocked enqueue without consuming issue slots.
            app_slots = app_slots.max(1);
        }
        let mut retired = 0u32;
        let mut blocked = false;
        while retired < app_slots {
            let rec = match self.pending.take() {
                Some(r) => r,
                None => self.next_trace_record(),
            };
            match rec {
                TraceRecord::Instr(i) => {
                    if self.monitor.selects(&i) {
                        let ev = AppEvent::Instr(instr_event_for(&i));
                        if self.try_enqueue(ev).is_err() {
                            self.pending = Some(rec);
                            blocked = true;
                            break;
                        }
                        if self.measuring {
                            self.m_monitored += 1;
                        }
                    }
                    retired += 1;
                    self.total_instrs += 1;
                    if self.measuring {
                        self.m_app_instrs += 1;
                    }
                }
                TraceRecord::Stack(s) => {
                    if self.monitor.monitors_stack() {
                        if self.try_enqueue(AppEvent::StackUpdate(s)).is_err() {
                            self.pending = Some(rec);
                            blocked = true;
                            break;
                        }
                        if self.measuring {
                            self.m_stack += 1;
                        }
                    }
                }
                TraceRecord::High(h) => {
                    if self.try_enqueue(AppEvent::HighLevel(h)).is_err() {
                        self.pending = Some(rec);
                        blocked = true;
                        break;
                    }
                    if self.measuring {
                        self.m_high += 1;
                    }
                }
            }
        }
        self.commit.retire(retired);
        self.last_blocked = blocked;

        // ---- Monitoring side. ----
        match self.fade.take() {
            Some(mut fade) => {
                let filtered_before = fade.stats().filtered;
                let tick = fade.tick(&mut self.state);
                if fade.stats().filtered > filtered_before {
                    self.since_uf += 1;
                }
                if let Some(uf) = tick.dispatched {
                    self.on_dispatch(&mut fade, uf);
                }
                // Monitor core consumes the unfiltered queue.
                if !self.handler.busy() {
                    if let Some(uf) = fade.pop_unfiltered() {
                        let cost = if self.cfg.ideal_consumer {
                            1
                        } else {
                            self.unfiltered_cost(&uf).max(1)
                        };
                        self.handler.start(cost);
                        self.cur_token = Some(uf.token);
                        if self.measuring {
                            match uf.event {
                                AppEvent::Instr(_) => {
                                    if uf.partial_hit {
                                        self.class_instrs.partial += cost as u64;
                                    } else {
                                        self.class_instrs.complex += cost as u64;
                                    }
                                }
                                AppEvent::HighLevel(_) => {
                                    self.class_instrs.high_level += cost as u64;
                                }
                                AppEvent::StackUpdate(_) => {
                                    self.class_instrs.stack += cost as u64;
                                }
                            }
                        }
                    }
                }
                if self.handler.busy() && self.handler.tick_slots(monitor_slots) {
                    if let Some(t) = self.cur_token.take() {
                        fade.handler_completed(t);
                    }
                }
                if self.measuring {
                    self.occupancy.record(fade.event_queue_len() as u64);
                }
                self.fade = Some(fade);
            }
            None => {
                // Unaccelerated: the monitor thread handles every event.
                if !self.handler.busy() {
                    if let Some(ev) = self.sw_queue.pop() {
                        let cost = self.software_handle(ev).max(1);
                        self.handler.start(cost);
                    }
                }
                if self.handler.busy() {
                    self.handler.tick_slots(monitor_slots);
                }
                if self.measuring {
                    self.occupancy.record(self.sw_queue.len() as u64);
                }
            }
        }

        // ---- Utilization classification (Figure 11(b)). ----
        if self.measuring {
            self.m_cycles += 1;
            let monitor_busy = self.handler.busy();
            if monitor_busy && blocked {
                self.util.app_idle += 1;
            } else if !monitor_busy {
                self.util.monitor_idle += 1;
            } else {
                self.util.both += 1;
            }
        }
    }

    /// The next trace record, through the batch-refilled buffer (same
    /// sequence as calling the generator directly).
    fn next_trace_record(&mut self) -> TraceRecord {
        if self.record_pos == self.record_buf.len() {
            self.record_buf.clear();
            self.gen.next_records_into(&mut self.record_buf, RECORD_BATCH);
            self.record_pos = 0;
        }
        let r = self.record_buf[self.record_pos];
        self.record_pos += 1;
        r
    }

    fn try_enqueue(&mut self, ev: AppEvent) -> Result<(), ()> {
        match &mut self.fade {
            Some(f) => f.enqueue(ev).map_err(|_| ()),
            None => self.sw_queue.push(ev).map_err(|_| ()),
        }
    }

    /// Handles a dispatch from the accelerator: functional handler
    /// effects apply now (program order); the monitor core pays the
    /// execution time when it pops the queue.
    fn on_dispatch(&mut self, fade: &mut Fade, uf: UnfilteredEvent) {
        match uf.event {
            AppEvent::Instr(ev) => {
                self.monitor.apply_instr(&ev, &mut self.state);
                // Distance/burst statistics track events needing the
                // *complex* handler; partial hits behave like filtered
                // events for the burstiness analysis of Section 3.4.
                if uf.partial_hit {
                    self.since_uf += 1;
                } else {
                    self.note_unfiltered();
                }
            }
            AppEvent::HighLevel(h) => {
                self.monitor.apply_high_level(&h, &mut self.state);
                if let HighLevelEvent::ThreadSwitch { tid } = h {
                    for (id, v) in self.monitor.on_thread_switch(tid) {
                        fade.write_invariant(id, v);
                    }
                }
            }
            AppEvent::StackUpdate(ev) => {
                // Only reachable when the SUU is disabled (ablation).
                self.monitor.apply_stack_update(&ev, &mut self.state);
            }
        }
    }

    /// Distance/burst accounting for one unfiltered instruction event.
    fn note_unfiltered(&mut self) {
        if self.measuring {
            self.distances.record(self.since_uf);
        }
        if self.cur_burst > 0 && self.since_uf <= BURST_GAP {
            self.cur_burst += 1;
        } else {
            if self.cur_burst > 0 && self.measuring {
                self.bursts.record(self.cur_burst);
            }
            self.cur_burst = 1;
        }
        self.since_uf = 0;
    }

    fn unfiltered_cost(&self, uf: &UnfilteredEvent) -> u32 {
        match uf.event {
            AppEvent::Instr(_) => {
                let c = self.monitor.costs();
                if uf.partial_hit {
                    c.partial_short
                } else {
                    c.complex
                }
            }
            AppEvent::HighLevel(h) => self.monitor.high_level_cost(&h),
            AppEvent::StackUpdate(s) => self.monitor.stack_cost(&s),
        }
    }

    /// Software (unaccelerated) handling of one event: classification,
    /// functional effect, cost.
    fn software_handle(&mut self, ev: AppEvent) -> u32 {
        match ev {
            AppEvent::Instr(iev) => {
                let class = self.monitor.classify(&iev, &self.state);
                self.monitor.apply_instr(&iev, &mut self.state);
                // In software there is no hardware pre-check: the
                // "partial short" path still executes the check itself
                // (costed like a clean check).
                let cost = match class {
                    EventClass::PartialShort => self.monitor.costs().cc,
                    c => self.monitor.costs().for_class(c),
                };
                if self.measuring {
                    match class {
                        EventClass::CleanCheck => self.class_instrs.cc += cost as u64,
                        EventClass::RedundantUpdate => self.class_instrs.ru += cost as u64,
                        EventClass::PartialShort => self.class_instrs.partial += cost as u64,
                        EventClass::Complex => self.class_instrs.complex += cost as u64,
                    }
                }
                if class == EventClass::Complex {
                    self.note_unfiltered();
                } else {
                    self.since_uf += 1;
                }
                cost
            }
            AppEvent::StackUpdate(s) => {
                self.monitor.apply_stack_update(&s, &mut self.state);
                let cost = self.monitor.stack_cost(&s);
                if self.measuring {
                    self.class_instrs.stack += cost as u64;
                }
                cost
            }
            AppEvent::HighLevel(h) => {
                self.monitor.apply_high_level(&h, &mut self.state);
                let cost = self.monitor.high_level_cost(&h);
                if self.measuring {
                    self.class_instrs.high_level += cost as u64;
                }
                cost
            }
        }
    }

    /// Collects the measured window into a [`RunStats`].
    ///
    /// `baseline_cycles` must come from [`baseline_cycles`] for the same
    /// benchmark, core and seed.
    pub fn finish(mut self, bench_name: &str, baseline: u64) -> RunStats {
        // Close any open burst.
        if self.cur_burst > 0 && self.measuring {
            self.bursts.record(self.cur_burst);
        }
        let fade_delta = match (&self.fade, self.fade_snapshot) {
            (Some(f), Some(snap)) => Some(fade_stats_delta(*f.stats(), snap)),
            (Some(f), None) => Some(*f.stats()),
            _ => None,
        };
        RunStats {
            benchmark: bench_name.to_string(),
            monitor: self.monitor.name().to_string(),
            system: self.cfg.label(),
            app_instrs: self.m_app_instrs,
            monitored_events: self.m_monitored,
            stack_events: self.m_stack,
            high_level_events: self.m_high,
            cycles: self.m_cycles,
            baseline_cycles: baseline,
            fade: fade_delta,
            class_instrs: self.class_instrs,
            occupancy: self.occupancy.clone(),
            unfiltered_distances: self.distances.clone(),
            burst_sizes: self.bursts.clone(),
            util: self.util,
        }
    }
}

/// Per-field difference of two accelerator statistics snapshots.
fn fade_stats_delta(now: FadeStats, then: FadeStats) -> FadeStats {
    FadeStats {
        instr_events: now.instr_events - then.instr_events,
        filtered: now.filtered - then.filtered,
        partial_hits: now.partial_hits - then.partial_hits,
        unfiltered_instr: now.unfiltered_instr - then.unfiltered_instr,
        stack_updates: now.stack_updates - then.stack_updates,
        high_level: now.high_level - then.high_level,
        shots: now.shots - then.shots,
        busy_cycles: now.busy_cycles - then.busy_cycles,
        idle_cycles: now.idle_cycles - then.idle_cycles,
        blocking_stall_cycles: now.blocking_stall_cycles - then.blocking_stall_cycles,
        ufq_full_stall_cycles: now.ufq_full_stall_cycles - then.ufq_full_stall_cycles,
        fsq_full_stall_cycles: now.fsq_full_stall_cycles - then.fsq_full_stall_cycles,
        drain_stall_cycles: now.drain_stall_cycles - then.drain_stall_cycles,
        suu_busy_cycles: now.suu_busy_cycles - then.suu_busy_cycles,
        md_miss_stall_cycles: now.md_miss_stall_cycles - then.md_miss_stall_cycles,
        tlb_miss_stall_cycles: now.tlb_miss_stall_cycles - then.tlb_miss_stall_cycles,
    }
}

/// Cycles an unmonitored (application-only) system needs to retire
/// `measure` instructions after a `warmup`-instruction warmup, with the
/// same core and commit-process seed as the monitored run.
pub fn baseline_cycles(
    bench: &BenchProfile,
    core: CoreKind,
    seed: u64,
    warmup: u64,
    measure: u64,
) -> u64 {
    let mut commit = CommitModel::new(core, bench.commit, Rng::seed_from(seed ^ 0xbace));
    let mut instrs = 0u64;
    let mut cycles_at_warmup = None;
    let mut cycles = 0u64;
    while instrs < warmup + measure {
        commit.tick();
        let n = commit.retirable();
        commit.retire(n);
        instrs += n as u64;
        cycles += 1;
        if cycles_at_warmup.is_none() && instrs >= warmup {
            cycles_at_warmup = Some(cycles);
        }
    }
    cycles - cycles_at_warmup.unwrap_or(0)
}

/// Runs one experiment: warmup, measure, and baseline comparison.
pub fn run_experiment(
    bench: &BenchProfile,
    monitor_name: &str,
    cfg: &SystemConfig,
    warmup: u64,
    measure: u64,
) -> RunStats {
    let mut sys = MonitoringSystem::new(bench, monitor_name, cfg);
    sys.run_instrs(warmup);
    sys.start_measure();
    sys.run_instrs(measure);
    let baseline = baseline_cycles(bench, cfg.core, cfg.seed, warmup, measure);
    sys.finish(bench.name, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use fade::FilterMode;
    use fade_trace::bench;

    const WARM: u64 = 5_000;
    const MEAS: u64 = 20_000;

    #[test]
    fn fade_system_reaches_high_filtering_ratio_for_addrcheck() {
        // hmmer has ~1200-cycle commit phases; a longer window keeps the
        // baseline/monitored pairing statistically tight.
        let b = bench::by_name("hmmer").unwrap();
        let stats = run_experiment(
            &b,
            "AddrCheck",
            &SystemConfig::fade_single_core(),
            WARM,
            8 * MEAS,
        );
        assert!(
            stats.filtering_ratio() > 0.95,
            "AddrCheck should filter nearly everything, got {}",
            stats.filtering_ratio()
        );
        // Short windows pair baseline and monitored runs statistically,
        // not cycle-exactly, so allow a little noise below 1.0.
        assert!(stats.slowdown() >= 0.9, "got {}", stats.slowdown());
        assert!(stats.slowdown() < 2.0, "got {}", stats.slowdown());
    }

    #[test]
    fn unaccelerated_is_slower_than_fade() {
        let b = bench::by_name("gcc").unwrap();
        let fade = run_experiment(&b, "MemLeak", &SystemConfig::fade_single_core(), WARM, MEAS);
        let soft = run_experiment(
            &b,
            "MemLeak",
            &SystemConfig::unaccelerated_single_core(),
            WARM,
            MEAS,
        );
        assert!(
            soft.slowdown() > fade.slowdown() * 1.3,
            "unaccel {} vs fade {}",
            soft.slowdown(),
            fade.slowdown()
        );
    }

    #[test]
    fn non_blocking_beats_blocking_for_low_filter_monitors() {
        let b = bench::by_name("gcc").unwrap();
        let nb = run_experiment(&b, "MemLeak", &SystemConfig::fade_single_core(), WARM, MEAS);
        let blocking = run_experiment(
            &b,
            "MemLeak",
            &SystemConfig::fade_single_core().with_mode(FilterMode::Blocking),
            WARM,
            MEAS,
        );
        assert!(
            blocking.slowdown() > nb.slowdown(),
            "blocking {} vs nb {}",
            blocking.slowdown(),
            nb.slowdown()
        );
    }

    #[test]
    fn two_core_is_at_least_as_fast_as_single_core() {
        let b = bench::by_name("astar").unwrap();
        let one = run_experiment(&b, "MemLeak", &SystemConfig::fade_single_core(), WARM, MEAS);
        let two = run_experiment(&b, "MemLeak", &SystemConfig::fade_two_core(), WARM, MEAS);
        assert!(
            two.slowdown() <= one.slowdown() * 1.05,
            "two-core {} vs single {}",
            two.slowdown(),
            one.slowdown()
        );
        let (a, m, both) = two.util.percentages();
        assert!((a + m + both - 100.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let b = bench::by_name("mcf").unwrap();
        let cfg = SystemConfig::fade_single_core();
        let s1 = run_experiment(&b, "MemCheck", &cfg, WARM, MEAS);
        let s2 = run_experiment(&b, "MemCheck", &cfg, WARM, MEAS);
        assert_eq!(s1.cycles, s2.cycles);
        assert_eq!(s1.monitored_events, s2.monitored_events);
        assert_eq!(
            s1.fade.unwrap().filtered,
            s2.fade.unwrap().filtered
        );
    }

    #[test]
    fn atomcheck_runs_on_parallel_benchmarks() {
        let b = bench::by_name("water").unwrap();
        let stats = run_experiment(&b, "AtomCheck", &SystemConfig::fade_single_core(), WARM, MEAS);
        let f = stats.fade.unwrap();
        assert!(f.partial_hits > 0, "partial filtering must fire");
        assert!(stats.filtering_ratio() > 0.5, "got {}", stats.filtering_ratio());
    }

    #[test]
    fn monitored_ipc_is_below_app_ipc() {
        let b = bench::by_name("bzip").unwrap();
        let stats = run_experiment(&b, "AddrCheck", &SystemConfig::fade_single_core(), WARM, MEAS);
        assert!(stats.monitored_ipc() < stats.app_ipc());
        assert!(stats.monitored_ipc() > 0.0);
    }

    #[test]
    fn baseline_matches_profile_ipc() {
        let b = bench::by_name("hmmer").unwrap();
        let base = baseline_cycles(&b, CoreKind::AggrOoO4, 1, 10_000, 100_000);
        let ipc = 100_000.0 / base as f64;
        assert!(
            (ipc - b.commit.ipc_4way).abs() / b.commit.ipc_4way < 0.15,
            "baseline ipc {ipc} vs profile {}",
            b.commit.ipc_4way
        );
    }
}
