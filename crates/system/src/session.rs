//! One way to run anything: `Session` and its builder.
//!
//! Before this module, running a monitoring experiment meant choosing
//! one of six `MonitoringSystem` constructors, crossing it with one of
//! four run methods, and wiring warmup/measure/baseline glue by hand.
//! A [`Session`] collapses that grid into one composition:
//!
//! * **monitor** — a registered name, a boxed [`Monitor`] trait object,
//!   or anything in a custom [`MonitorRegistry`];
//! * **source** — a synthetic [`BenchProfile`] workload, an in-memory
//!   record buffer, a recorded `.fadet` trace file, or a caller-built
//!   [`TraceSource`];
//! * **engine** — [`Engine::Cycle`] (exact timing),
//!   [`Engine::Batched`] (fast path + sampled timing, bit-exact monitor
//!   results), or [`Engine::Unaccelerated`] (no FADE at all);
//! * **config** — the [`SystemConfig`] hardware description.
//!
//! Every combination is valid, every combination funnels through the
//! one internal constructor (so variants cannot drift apart), and the
//! built session is `Send`, which is what lets the experiment-matrix
//! driver shard whole runs across worker threads. A finite-source
//! session can additionally replay its whole trace as speculative
//! parallel epochs — [`SessionBuilder::parallel_replay`] and
//! [`Session::replay_all`].
//!
//! # Example
//!
//! ```
//! use fade_system::{Engine, Session, SystemConfig};
//! use fade_trace::bench;
//!
//! let report = Session::builder()
//!     .monitor("AddrCheck")
//!     .source(bench::by_name("mcf").unwrap())
//!     .engine(Engine::batched())
//!     .config(SystemConfig::fade_single_core())
//!     .build()
//!     .unwrap()
//!     .run_measured(10_000, 40_000)
//!     .unwrap();
//! assert!(report.stats.slowdown() >= 0.8);
//! assert!(report.stats.sampling.is_some()); // batched timing is sampled
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use fade::{BatchStats, FadeProgram, FadeStats};
use fade_monitors::Monitor;
use fade_sim::{StratumStat, WindowSample};
use fade_shadow::{BudgetExceeded, MetadataState, ShadowCounters};
use fade_trace::{BenchProfile, DegradationReport, TraceRecord};

use crate::config::{Accel, SystemConfig};
use crate::epoch::{self, EpochPlan, EpochStats};
use crate::registry::{MonitorRegistry, UnknownMonitor};
use crate::run::RunStats;
use crate::system::{
    baseline_cycles, ExecMode, MonitoringSystem, SourceError, SpanReplay, TraceSource,
};

/// How a [`Session`] executes its trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The cycle-accurate reference engine: every event walks the full
    /// fetch→filter→dispatch machinery one cycle at a time; cycle
    /// counts are exact.
    #[default]
    Cycle,
    /// The batched engine: most events drain through the accelerator's
    /// fast path, periodic cycle-accurate windows sample timing.
    /// Monitor-visible results are bit-exact with [`Engine::Cycle`];
    /// cycle counts are sampled estimates with confidence intervals
    /// (see [`crate::RunStats::sampling`]).
    ///
    /// `None` knobs inherit the [`SystemConfig`]'s sampling period and
    /// window, so `Engine::batched()` matches the config exactly.
    Batched {
        /// Sampling period override (monitored events per period).
        period: Option<u64>,
        /// Cycle-accurate window override (monitored events sampled
        /// exactly per period).
        window: Option<u64>,
    },
    /// No accelerator: every monitored event runs a software handler on
    /// the monitor thread (forces [`Accel::None`] regardless of the
    /// config), cycle-accurately.
    Unaccelerated,
}

impl Engine {
    /// The batched engine with the config's own sampling knobs.
    pub fn batched() -> Self {
        Engine::Batched { period: None, window: None }
    }

    /// The batched engine with explicit sampling knobs.
    pub fn batched_with(period: u64, window: u64) -> Self {
        Engine::Batched {
            period: Some(period),
            window: Some(window),
        }
    }

    /// The drive mode this engine runs the underlying system in.
    fn exec_mode(self) -> ExecMode {
        match self {
            Engine::Cycle | Engine::Unaccelerated => ExecMode::Cycle,
            Engine::Batched { .. } => ExecMode::Batched,
        }
    }
}

impl From<ExecMode> for Engine {
    fn from(mode: ExecMode) -> Self {
        match mode {
            ExecMode::Cycle => Engine::Cycle,
            ExecMode::Batched => Engine::batched(),
        }
    }
}

/// Monitor selection for a [`SessionBuilder`]: by registered name or by
/// trait object. Usually constructed implicitly through
/// [`SessionBuilder::monitor`]'s `Into` conversions.
pub enum MonitorSel {
    /// Resolve this name in the builder's [`MonitorRegistry`].
    Named(String),
    /// Use this instance directly.
    Instance(Box<dyn Monitor>),
}

impl From<&str> for MonitorSel {
    fn from(name: &str) -> Self {
        MonitorSel::Named(name.to_string())
    }
}

impl From<&String> for MonitorSel {
    fn from(name: &String) -> Self {
        MonitorSel::Named(name.clone())
    }
}

impl From<String> for MonitorSel {
    fn from(name: String) -> Self {
        MonitorSel::Named(name)
    }
}

impl From<Box<dyn Monitor>> for MonitorSel {
    fn from(monitor: Box<dyn Monitor>) -> Self {
        MonitorSel::Instance(monitor)
    }
}

impl std::fmt::Debug for MonitorSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorSel::Named(n) => write!(f, "Named({n:?})"),
            MonitorSel::Instance(m) => write!(f, "Instance({:?})", m.name()),
        }
    }
}

/// Trace selection for a [`SessionBuilder`]: where the session's
/// records come from. Usually constructed implicitly through
/// [`SessionBuilder::source`]'s `Into` conversions.
pub enum SourceSpec {
    /// Generate the workload on the fly from a benchmark profile
    /// (seeded by the config).
    Synthetic(BenchProfile),
    /// Replay an in-memory record buffer captured for this profile.
    Records(BenchProfile, Vec<TraceRecord>),
    /// Stream a recorded `.fadet` trace file; the benchmark profile
    /// comes from the file's own header metadata.
    TraceFile(PathBuf),
    /// A caller-built [`TraceSource`] feeding this profile's workload.
    Custom(BenchProfile, Box<dyn TraceSource>),
}

impl From<BenchProfile> for SourceSpec {
    fn from(bench: BenchProfile) -> Self {
        SourceSpec::Synthetic(bench)
    }
}

impl From<&BenchProfile> for SourceSpec {
    fn from(bench: &BenchProfile) -> Self {
        SourceSpec::Synthetic(bench.clone())
    }
}

impl From<(BenchProfile, Vec<TraceRecord>)> for SourceSpec {
    fn from((bench, records): (BenchProfile, Vec<TraceRecord>)) -> Self {
        SourceSpec::Records(bench, records)
    }
}

impl From<PathBuf> for SourceSpec {
    fn from(path: PathBuf) -> Self {
        SourceSpec::TraceFile(path)
    }
}

impl From<&std::path::Path> for SourceSpec {
    fn from(path: &std::path::Path) -> Self {
        SourceSpec::TraceFile(path.to_path_buf())
    }
}

impl std::fmt::Debug for SourceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceSpec::Synthetic(b) => write!(f, "Synthetic({:?})", b.name),
            SourceSpec::Records(b, r) => write!(f, "Records({:?}, {} records)", b.name, r.len()),
            SourceSpec::TraceFile(p) => write!(f, "TraceFile({p:?})"),
            SourceSpec::Custom(b, _) => write!(f, "Custom({:?})", b.name),
        }
    }
}

/// Why a [`SessionBuilder`] could not produce a [`Session`].
#[derive(Debug)]
pub enum SessionError {
    /// [`SessionBuilder::monitor`] was never called.
    NoMonitor,
    /// [`SessionBuilder::source`] was never called.
    NoSource,
    /// The monitor name is not in the builder's registry.
    UnknownMonitor(UnknownMonitor),
    /// The `.fadet` trace file failed to open or decode.
    Trace(fade_trace::TraceFileError),
    /// The trace file's header names a benchmark profile this build
    /// does not know.
    UnknownBench(String),
    /// The (custom or monitor-provided) FADE program failed structural
    /// validation.
    Program(fade::ProgramError),
    /// A custom FADE program was supplied together with
    /// [`Engine::Unaccelerated`] (or an unaccelerated config): there is
    /// no accelerator to load it into.
    ProgramWithoutAccel,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoMonitor => f.write_str("no monitor selected (call .monitor(...))"),
            SessionError::NoSource => f.write_str("no trace source selected (call .source(...))"),
            SessionError::UnknownMonitor(e) => e.fmt(f),
            SessionError::Trace(e) => write!(f, "trace file: {e}"),
            SessionError::UnknownBench(name) => {
                write!(f, "trace file header names unknown benchmark {name:?}")
            }
            SessionError::Program(e) => write!(f, "FADE program failed validation: {e:?}"),
            SessionError::ProgramWithoutAccel => {
                f.write_str("a custom FADE program needs a FADE-enabled engine/config")
            }
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::UnknownMonitor(e) => Some(e),
            SessionError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnknownMonitor> for SessionError {
    fn from(e: UnknownMonitor) -> Self {
        SessionError::UnknownMonitor(e)
    }
}

impl From<fade_trace::TraceFileError> for SessionError {
    fn from(e: fade_trace::TraceFileError) -> Self {
        SessionError::Trace(e)
    }
}

/// Why a built [`Session`] failed while *running* (as opposed to
/// [`SessionError`], which covers construction).
///
/// A failed run poisons only its own session: the error is sticky —
/// every further run call returns it again — but nothing outside the
/// session (sibling sessions, the experiment matrix, the process) is
/// affected.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionRunError {
    /// The monitor (or the engine running it) panicked mid-run. The
    /// panic was caught at the session boundary; the session is
    /// poisoned, the process lives on.
    MonitorPanicked {
        /// Name of the monitor that was driving the session.
        monitor: String,
        /// The panic payload, stringified (`&str`/`String` payloads
        /// verbatim; anything else a placeholder).
        payload: String,
    },
    /// The trace source failed mid-stream with a typed error (clean
    /// exhaustion is *not* an error — see
    /// [`Session::source_exhausted`]).
    Source(SourceError),
    /// Dirty shadow state exceeded the configured byte cap
    /// ([`SystemConfig::with_shadow_mem_cap`]) even after lossless
    /// eviction compressed everything it could.
    ShadowBudget(BudgetExceeded),
}

impl std::fmt::Display for SessionRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionRunError::MonitorPanicked { monitor, payload } => {
                write!(f, "monitor {monitor:?} panicked: {payload}")
            }
            SessionRunError::Source(e) => e.fmt(f),
            SessionRunError::ShadowBudget(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SessionRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionRunError::Source(e) => Some(e),
            SessionRunError::ShadowBudget(e) => Some(e),
            SessionRunError::MonitorPanicked { .. } => None,
        }
    }
}

/// Best-effort stringification of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Builder for [`Session`]: monitor × source × engine × config.
///
/// Defaults: builtin [`MonitorRegistry`], [`Engine::Cycle`],
/// [`SystemConfig::fade_single_core`]. Monitor and source have no
/// default — [`SessionBuilder::build`] reports a typed error if either
/// is missing.
#[derive(Debug)]
pub struct SessionBuilder {
    monitor: Option<MonitorSel>,
    source: Option<SourceSpec>,
    engine: Engine,
    config: SystemConfig,
    registry: Option<Arc<MonitorRegistry>>,
    program: Option<FadeProgram>,
    recover: bool,
    parallel: Option<usize>,
    stale_epoch: Option<usize>,
}

impl SessionBuilder {
    fn new() -> Self {
        SessionBuilder {
            monitor: None,
            source: None,
            engine: Engine::default(),
            config: SystemConfig::fade_single_core(),
            registry: None,
            program: None,
            recover: false,
            parallel: None,
            stale_epoch: None,
        }
    }

    /// Selects the monitor: a registered name (`&str`/`String`) or a
    /// boxed [`Monitor`] trait object.
    pub fn monitor(mut self, monitor: impl Into<MonitorSel>) -> Self {
        self.monitor = Some(monitor.into());
        self
    }

    /// Selects a concrete monitor instance without boxing ceremony —
    /// `builder.monitor_object(MyCheck::new())`.
    pub fn monitor_object(mut self, monitor: impl Monitor + 'static) -> Self {
        self.monitor = Some(MonitorSel::Instance(Box::new(monitor)));
        self
    }

    /// Selects the trace source: a [`BenchProfile`] (synthetic
    /// generation), a `(BenchProfile, Vec<TraceRecord>)` pair
    /// (in-memory replay), or a `.fadet` path (file replay).
    pub fn source(mut self, source: impl Into<SourceSpec>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Selects a caller-built [`TraceSource`] that feeds `bench`'s
    /// workload (the escape hatch custom capture frontends plug into).
    pub fn trace_source(mut self, bench: BenchProfile, source: Box<dyn TraceSource>) -> Self {
        self.source = Some(SourceSpec::Custom(bench, source));
        self
    }

    /// Selects the execution engine (default: [`Engine::Cycle`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the system configuration (default:
    /// [`SystemConfig::fade_single_core`]).
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Resolves monitor names in this registry instead of the builtin
    /// one — how out-of-tree monitors become nameable (shared via `Arc`
    /// so one registry serves a whole experiment matrix).
    pub fn registry(mut self, registry: Arc<MonitorRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Replaces the monitor's own FADE program with a caller-built one
    /// (ablations: SUU removal, alternative event-table encodings).
    pub fn program(mut self, program: FadeProgram) -> Self {
        self.program = Some(program);
        self
    }

    /// Opens `.fadet` trace-file sources in *recovering* mode: corrupt
    /// or truncated chunks are skipped with the loss accounted in a
    /// [`DegradationReport`] (see [`Session::degradation`]) instead of
    /// failing the whole replay. Bit-exact on fault-free files; no
    /// effect on non-file sources.
    pub fn recover_faults(mut self) -> Self {
        self.recover = true;
        self
    }

    /// Replays the trace as speculative parallel epochs on `workers`
    /// threads when [`Session::replay_all`] is called: the trace is
    /// split at `.fadet` chunk boundaries, a cheap functional pass
    /// predicts each epoch's entry state, the epochs run the real
    /// engine in parallel, and a sequential validate-and-merge join
    /// guarantees the result is bit-identical to a sequential replay
    /// (see [`crate::epoch`]).
    ///
    /// Applies to finite replayable sources (in-memory records, or a
    /// strict-mode `.fadet` file) on FADE-enabled configs with a
    /// forkable monitor; other sessions fall back to sequential replay
    /// with identical results. `workers == 1` runs the full
    /// speculate/validate machinery serially (same answers, useful for
    /// overhead measurement); `workers == 0` means sequential.
    pub fn parallel_replay(mut self, workers: usize) -> Self {
        self.parallel = (workers > 0).then_some(workers);
        self
    }

    /// Test hook: poisons the predicted entry checkpoint of `epoch` so
    /// the validate-and-merge join must detect the stale state and
    /// re-run that epoch. Only meaningful with
    /// [`SessionBuilder::parallel_replay`].
    #[doc(hidden)]
    pub fn inject_stale_epoch(mut self, epoch: usize) -> Self {
        self.stale_epoch = Some(epoch);
        self
    }

    /// Builds the [`Session`].
    ///
    /// # Errors
    ///
    /// Every failure is a typed [`SessionError`]: missing monitor or
    /// source, unknown monitor name, unreadable trace file, unknown
    /// benchmark in a trace header, invalid FADE program, or a custom
    /// program without an accelerator to load it into.
    pub fn build(self) -> Result<Session, SessionError> {
        let mut cfg = self.config;
        match self.engine {
            Engine::Cycle => {}
            Engine::Unaccelerated => cfg.accel = Accel::None,
            Engine::Batched { period, window } => {
                if let Some(p) = period {
                    cfg.sample_period = p;
                }
                if let Some(w) = window {
                    cfg.sample_window = w;
                }
            }
        }

        let monitor = match self.monitor.ok_or(SessionError::NoMonitor)? {
            MonitorSel::Instance(m) => m,
            MonitorSel::Named(name) => match &self.registry {
                Some(r) => r.create(&name)?,
                None => MonitorRegistry::builtin().create(&name)?,
            },
        };

        if let Some(program) = &self.program {
            if cfg.accel == Accel::None {
                return Err(SessionError::ProgramWithoutAccel);
            }
            program.validate().map_err(SessionError::Program)?;
        }
        if cfg.accel != Accel::None {
            // The accelerator will load the monitor's program; surface
            // a broken one as a typed error instead of a late panic.
            monitor.program().validate().map_err(SessionError::Program)?;
        }

        // Parallel replay needs a finite replayable source, the
        // accelerator's batched fast path for the predictor, and a
        // monitor that can fork its state into epoch checkpoints.
        // Anything else silently falls back to sequential replay —
        // same results, no speculation.
        let want_parallel =
            self.parallel.is_some() && cfg.accel != Accel::None && monitor.fork().is_some();
        let workers = self.parallel.unwrap_or(1);
        let stale_epoch = self.stale_epoch;
        let mut plan: Option<EpochPlan> = None;
        let mut finite_source = true;

        let (bench, source): (BenchProfile, Option<Box<dyn TraceSource>>) =
            match self.source.ok_or(SessionError::NoSource)? {
                SourceSpec::Synthetic(bench) => {
                    finite_source = false;
                    (bench, None)
                }
                SourceSpec::Records(bench, records) => {
                    let records = std::sync::Arc::new(records);
                    let len = records.len();
                    if want_parallel {
                        // In-memory buffers have no file chunks: split
                        // at the writer's default chunking granularity.
                        let bounds: Vec<usize> = (1..)
                            .map(|i| i * fade_trace::file::DEFAULT_CHUNK_RECORDS)
                            .take_while(|&b| b < len)
                            .chain(std::iter::once(len))
                            .collect();
                        plan = Some(EpochPlan {
                            workers,
                            records: std::sync::Arc::clone(&records),
                            bounds,
                            stale_epoch,
                        });
                    }
                    (bench, Some(Box::new(SpanReplay::new(records, (0, len)))))
                }
                SourceSpec::TraceFile(path) => {
                    if want_parallel && !self.recover {
                        // Decode eagerly and split exactly at the
                        // file's own chunk boundaries via the trailer
                        // index (O(index) on v2 files).
                        let bytes = std::fs::read(&path)
                            .map_err(|e| fade_trace::TraceFileError::Io(e.to_string()))?;
                        let index = fade_trace::ChunkIndex::from_bytes(&bytes)?;
                        let (meta, records) = fade_trace::decode_trace(&bytes)?;
                        let bench = fade_trace::bench::by_name(&meta.bench)
                            .ok_or(SessionError::UnknownBench(meta.bench))?;
                        let bounds: Vec<usize> = index
                            .entries()
                            .iter()
                            .scan(0usize, |acc, e| {
                                *acc += e.records as usize;
                                Some(*acc)
                            })
                            .collect();
                        let records = std::sync::Arc::new(records);
                        let len = records.len();
                        plan = Some(EpochPlan {
                            workers,
                            records: std::sync::Arc::clone(&records),
                            bounds,
                            stale_epoch,
                        });
                        (bench, Some(Box::new(SpanReplay::new(records, (0, len)))))
                    } else {
                        let mut reader = fade_trace::TraceReader::open(path)?;
                        if self.recover {
                            reader = reader.with_recovery();
                        }
                        let name = reader.meta().bench.clone();
                        let bench = fade_trace::bench::by_name(&name)
                            .ok_or(SessionError::UnknownBench(name))?;
                        (bench, Some(Box::new(reader)))
                    }
                }
                SourceSpec::Custom(bench, source) => (bench, Some(source)),
            };

        let sys = MonitoringSystem::build(&bench, monitor, &cfg, self.program, source);
        Ok(Session {
            sys,
            bench,
            engine: self.engine,
            created: Instant::now(),
            poisoned: None,
            plan,
            finite_source,
        })
    }
}

/// A ready-to-run monitoring session: one monitor, one trace source,
/// one engine, one configuration. Built by [`Session::builder`].
///
/// Sessions are `Send`: a built session can move to a worker thread and
/// run there, which is how the experiment-matrix driver shards runs
/// across cores.
///
/// Two driving styles:
///
/// * [`Session::run_measured`] — the one-shot experiment: warmup,
///   measured window, baseline comparison, returns a [`RunReport`].
/// * [`Session::run`] + accessors — incremental stepping for tools that
///   inspect state mid-run (see `fade-bench`'s `calibrate` binary).
pub struct Session {
    sys: MonitoringSystem,
    bench: BenchProfile,
    engine: Engine,
    /// When the session was built — the wall-clock epoch of
    /// [`Session::finish`] for manually driven runs.
    created: Instant,
    /// Sticky run failure: set by the first caught panic, returned by
    /// every subsequent run call (a panicked engine may hold torn
    /// state; nothing may run on it again).
    poisoned: Option<SessionRunError>,
    /// Epoch-parallel replay plan materialized by
    /// [`SessionBuilder::parallel_replay`] (consumed by
    /// [`Session::replay_all`]).
    plan: Option<EpochPlan>,
    /// Whether the source is known to end ([`Session::replay_all`]
    /// refuses to drive an endless synthetic workload to exhaustion).
    finite_source: bool,
}

impl Session {
    /// Starts a [`SessionBuilder`] with default engine, config and
    /// registry.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The benchmark profile this session runs.
    pub fn bench(&self) -> &BenchProfile {
        &self.bench
    }

    /// The configuration the session's system was built with (with the
    /// engine's overrides applied).
    pub fn config(&self) -> &SystemConfig {
        self.sys.config()
    }

    /// The engine this session drives its trace with.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Runs the given closure on the engine behind the session's panic
    /// guard: a panic anywhere inside (monitor callbacks included) is
    /// caught at this boundary, converted to a sticky
    /// [`SessionRunError::MonitorPanicked`], and never unwinds past the
    /// session. After a clean return, source failures and shadow-budget
    /// violations surface as their typed errors.
    fn guard(&mut self, f: impl FnOnce(&mut MonitoringSystem)) -> Result<(), SessionRunError> {
        if let Some(p) = &self.poisoned {
            return Err(p.clone());
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut self.sys))) {
            let err = SessionRunError::MonitorPanicked {
                monitor: self.sys.monitor().name().to_string(),
                payload: panic_message(payload.as_ref()),
            };
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        if let Some(e) = self.sys.source_error() {
            return Err(SessionRunError::Source(e.clone()));
        }
        if let Some(b) = self.sys.state().mem.budget_exceeded() {
            return Err(SessionRunError::ShadowBudget(*b));
        }
        Ok(())
    }

    /// Runs until `n` more application instructions retire, through
    /// this session's engine. Stops early — `Ok`, with
    /// [`Session::source_exhausted`] set — when a finite trace source
    /// runs out of records.
    ///
    /// # Errors
    ///
    /// [`SessionRunError::MonitorPanicked`] if the monitor panicked
    /// (the session is poisoned from then on),
    /// [`SessionRunError::Source`] if the trace source failed
    /// mid-stream, [`SessionRunError::ShadowBudget`] if dirty shadow
    /// state exceeded the configured byte cap.
    pub fn run(&mut self, n: u64) -> Result<(), SessionRunError> {
        let mode = self.engine.exec_mode();
        self.guard(|sys| match mode {
            ExecMode::Cycle => sys.run_instrs(n),
            ExecMode::Batched => sys.run_batched(n),
        })
    }

    /// Runs until *exactly* `n` more application instructions retire
    /// (never overshooting), through this session's engine — the stop
    /// discipline that lets two sessions be compared over an identical
    /// trace prefix.
    ///
    /// # Errors
    ///
    /// As for [`Session::run`].
    pub fn run_exact(&mut self, n: u64) -> Result<(), SessionRunError> {
        let mode = self.engine.exec_mode();
        self.guard(|sys| match mode {
            ExecMode::Cycle => sys.run_instrs_exact(n),
            ExecMode::Batched => sys.run_batched(n),
        })
    }

    /// Runs the monitoring side with the application paused until
    /// nothing is in flight (queues empty, handlers completed).
    ///
    /// # Errors
    ///
    /// As for [`Session::run`].
    pub fn drain(&mut self) -> Result<(), SessionRunError> {
        self.guard(|sys| sys.drain())
    }

    /// Replays the *entire* trace to exhaustion and reports the final
    /// monitor-visible result — sequentially, or as speculative
    /// parallel epochs when the builder asked for
    /// [`SessionBuilder::parallel_replay`] and the session qualifies
    /// (finite replayable source, FADE-enabled config, forkable
    /// monitor). Both paths produce bit-identical monitor-visible
    /// results (violations, final metadata state, functional counters,
    /// event counts): the parallel join validates every epoch's entry
    /// state against its committed predecessor before merging, so the
    /// sequential-equivalence guarantee holds by construction, not by
    /// trust in the predictor.
    ///
    /// # Errors
    ///
    /// As for [`Session::run`].
    ///
    /// # Panics
    ///
    /// Panics on a synthetic (endless) source: a whole-trace replay
    /// needs a trace with an end. Record buffers, trace files and
    /// custom finite sources are fine.
    pub fn replay_all(mut self) -> Result<ReplayReport, SessionRunError> {
        assert!(
            self.finite_source,
            "replay_all needs a finite source (records, trace file, or custom); \
             synthetic workloads never end"
        );
        let start = Instant::now();
        if let Some(p) = self.poisoned {
            return Err(p);
        }
        if let Some(plan) = self.plan.take() {
            let bench = self.bench.clone();
            let cfg = *self.sys.config();
            let mode = self.engine.exec_mode();
            let monitor_name = self.sys.monitor().name().to_string();
            let sys = &mut self.sys;
            match catch_unwind(AssertUnwindSafe(|| {
                epoch::replay_parallel(sys, &bench, &cfg, mode, &plan)
            })) {
                Ok(merged) => Ok(ReplayReport {
                    instrs: merged.instrs,
                    events_seen: merged.exit.events_seen,
                    estimated_cycles: merged.cycles_est,
                    violations: merged.exit.monitor.reports(),
                    functional_counters: merged
                        .exit
                        .fade
                        .as_ref()
                        .map(|f| f.stats().functional_counters()),
                    final_state: merged.exit.state,
                    batch: merged.batch,
                    epochs: merged.stats,
                    wall_s: start.elapsed().as_secs_f64(),
                }),
                Err(payload) => Err(SessionRunError::MonitorPanicked {
                    monitor: monitor_name,
                    payload: panic_message(payload.as_ref()),
                }),
            }
        } else {
            while !self.sys.source_exhausted() {
                self.run(epoch::DRIVE_CHUNK)?;
            }
            self.drain()?;
            Ok(ReplayReport {
                instrs: self.sys.instrs(),
                events_seen: self.sys.events_seen(),
                estimated_cycles: self.sys.estimated_total_cycles(),
                violations: self.sys.monitor().reports(),
                functional_counters: self.sys.fade_stats().map(|f| f.functional_counters()),
                final_state: self.sys.state().clone(),
                batch: self.sys.batch_stats(),
                epochs: EpochStats::default(),
                wall_s: start.elapsed().as_secs_f64(),
            })
        }
    }

    /// The full experiment protocol: warmup, measured window (drained
    /// when batched, so the estimate covers in-flight work), baseline
    /// comparison — everything the paper's figures are made of, plus
    /// the wall-clock cost of producing it.
    ///
    /// # Errors
    ///
    /// As for [`Session::run`].
    pub fn run_measured(mut self, warmup: u64, measure: u64) -> Result<RunReport, SessionRunError> {
        let start = Instant::now();
        self.run(warmup)?;
        self.sys.start_measure();
        self.run(measure)?;
        if self.engine.exec_mode() == ExecMode::Batched {
            self.drain()?;
        }
        let cfg = *self.sys.config();
        let baseline = baseline_cycles(&self.bench, cfg.core, cfg.seed, warmup, measure);
        self.finish_report(baseline, start)
    }

    /// Collects a [`RunReport`] from a session driven manually with
    /// [`Session::run`]/[`Session::drain`] after a
    /// [`Session::start_measure`] call — the incremental counterpart of
    /// [`Session::run_measured`]. `baseline` must come from
    /// [`baseline_cycles`] for the same benchmark, core and seed; the
    /// report's wall clock covers the session's whole lifetime.
    ///
    /// # Errors
    ///
    /// The sticky poison of an earlier failed run, or
    /// [`SessionRunError::MonitorPanicked`] if the monitor's report
    /// collection itself panics.
    pub fn finish(self, baseline: u64) -> Result<RunReport, SessionRunError> {
        let start = self.created;
        self.finish_report(baseline, start)
    }

    fn finish_report(self, baseline: u64, start: Instant) -> Result<RunReport, SessionRunError> {
        if let Some(p) = self.poisoned {
            return Err(p);
        }
        let monitor_name = self.sys.monitor().name().to_string();
        let degradation = self.sys.degradation().cloned();
        let sys = self.sys;
        let bench_name = self.bench.name;
        match catch_unwind(AssertUnwindSafe(move || {
            let violations = sys.monitor().reports();
            let batch = sys.batch_stats();
            let stats = sys.finish(bench_name, baseline);
            (stats, violations, batch)
        })) {
            Ok((stats, violations, batch)) => Ok(RunReport {
                stats,
                violations,
                batch,
                degradation,
                wall_s: start.elapsed().as_secs_f64(),
            }),
            Err(payload) => Err(SessionRunError::MonitorPanicked {
                monitor: monitor_name,
                payload: panic_message(payload.as_ref()),
            }),
        }
    }

    /// Starts the measurement window (counters collected from now on).
    pub fn start_measure(&mut self) {
        self.sys.start_measure();
    }

    /// The monitor driving this session (bug reports, etc.).
    pub fn monitor(&self) -> &dyn Monitor {
        self.sys.monitor()
    }

    /// The current metadata state.
    pub fn state(&self) -> &MetadataState {
        self.sys.state()
    }

    /// Total cycles simulated so far (exact cycles only; see
    /// [`Session::estimated_total_cycles`] for the batched engine).
    pub fn cycles(&self) -> u64 {
        self.sys.cycles()
    }

    /// Total cycles including the sampled extrapolation for batched
    /// stretches.
    pub fn estimated_total_cycles(&self) -> u64 {
        self.sys.estimated_total_cycles()
    }

    /// Relative half-width of the 95% CI on
    /// [`Session::estimated_total_cycles`] — the production rate's
    /// error bound (see [`MonitoringSystem::rel_half_width`]; `None`
    /// with fewer than two sampled windows).
    pub fn rel_half_width(&self) -> Option<f64> {
        self.sys.rel_half_width()
    }

    /// Total application instructions retired so far.
    pub fn instrs(&self) -> u64 {
        self.sys.instrs()
    }

    /// Monitored events accepted so far.
    pub fn events_seen(&self) -> u64 {
        self.sys.events_seen()
    }

    /// Accumulated fast-path statistics of batched stretches.
    pub fn batch_stats(&self) -> BatchStats {
        self.sys.batch_stats()
    }

    /// Accelerator statistics (`None` for unaccelerated sessions).
    pub fn fade_stats(&self) -> Option<FadeStats> {
        self.sys.fade_stats()
    }

    /// The residual-overhead windows batched execution sampled so far,
    /// each with its congestion stratum and control covariate (empty
    /// for cycle-accurate sessions).
    pub fn sampled_windows(&self) -> &[WindowSample] {
        self.sys.sampled_windows()
    }

    /// Per-congestion-stratum breakdown of the sampling interval (see
    /// [`MonitoringSystem::sampling_strata`]; empty for cycle-accurate
    /// sessions).
    pub fn sampling_strata(&self) -> Vec<StratumStat> {
        self.sys.sampling_strata()
    }

    /// Carried-congestion handler cycles seeded into sampling windows
    /// so far (see [`MonitoringSystem::carried_seed_cycles`]).
    pub fn carried_seed_cycles(&self) -> u64 {
        self.sys.carried_seed_cycles()
    }

    /// `true` once the trace source ran out of records: the last run
    /// call stopped early with the trace fully consumed (an `Ok`
    /// outcome — replaying a shorter-than-requested trace is not an
    /// error).
    pub fn source_exhausted(&self) -> bool {
        self.sys.source_exhausted()
    }

    /// The degradation accounting of a recovering trace-file source
    /// ([`SessionBuilder::recover_faults`]): chunks skipped, records
    /// lost, byte offsets. `None` for non-recovering sources; a clean
    /// report ([`DegradationReport::is_clean`]) on fault-free files.
    pub fn degradation(&self) -> Option<&DegradationReport> {
        self.sys.degradation()
    }

    /// Eviction/compaction statistics of the session's shadow memory
    /// (all zero without a configured budget — see
    /// [`SystemConfig::with_shadow_page_budget`]).
    pub fn shadow_counters(&self) -> ShadowCounters {
        self.sys.state().mem.counters()
    }

    /// The session's *live* shadow-memory footprint, delegating to
    /// [`fade_shadow::ShadowMemory`]: total resident bytes (full page
    /// frames plus compressed demoted pages) and the number of resident
    /// full pages. This is the instantaneous quantity a multi-tenant
    /// server admits/meters tenants on, as opposed to the historical
    /// high-water mark in [`ShadowCounters::peak_full_pages`]: at any
    /// instant `full_pages <= peak_full_pages`, and under a configured
    /// page budget both stay at or below it.
    pub fn shadow_bytes_in_use(&self) -> ShadowUsage {
        let mem = &self.sys.state().mem;
        ShadowUsage {
            bytes: mem.shadow_bytes(),
            full_pages: mem.resident_full_pages(),
        }
    }
}

/// A snapshot of a session's live shadow-memory footprint
/// (see [`Session::shadow_bytes_in_use`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShadowUsage {
    /// Resident shadow bytes: full page frames plus the compressed
    /// representation of demoted pages.
    pub bytes: usize,
    /// Pages currently resident as full (uncompressed) frames.
    pub full_pages: usize,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("bench", &self.bench.name)
            .field("monitor", &self.sys.monitor().name())
            .field("engine", &self.engine)
            .field("instrs", &self.sys.instrs())
            .finish()
    }
}

/// What one measured session run produced.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Everything the paper plots: slowdown, filtering ratio, handler
    /// breakdowns, queue occupancy, sampling confidence intervals
    /// ([`RunStats::sampling`]) for batched runs.
    pub stats: RunStats,
    /// The monitor's violation reports (leaks, races, taint alarms, …)
    /// accumulated over the whole run.
    pub violations: Vec<String>,
    /// Fast-path statistics of batched stretches (all zero for the
    /// cycle and unaccelerated engines).
    pub batch: BatchStats,
    /// Degradation accounting of a recovering trace-file source
    /// (`None` for non-recovering sources; clean on fault-free files).
    pub degradation: Option<DegradationReport>,
    /// Wall-clock seconds this run took — what the experiment matrix
    /// aggregates into its sharding speedup.
    pub wall_s: f64,
}

/// What a whole-trace replay ([`Session::replay_all`]) produced —
/// identical fields whether the replay ran sequentially or as parallel
/// epochs (that equivalence is the point; `tests/parallel_replay.rs`
/// pins it bit-exactly).
pub struct ReplayReport {
    /// Application instructions retired over the whole trace.
    pub instrs: u64,
    /// Monitored events accepted over the whole trace.
    pub events_seen: u64,
    /// Estimated total cycles (summed per-epoch estimates on the
    /// parallel path — deterministic for a given trace and config, but
    /// epoch-boundary-sensitive, unlike the monitor-visible fields).
    pub estimated_cycles: u64,
    /// The monitor's violation reports accumulated over the whole
    /// trace, in trace order.
    pub violations: Vec<String>,
    /// Final metadata state (shadow memory + registers) after the last
    /// record.
    pub final_state: MetadataState,
    /// Accumulated fast-path statistics (summed across epochs).
    pub batch: BatchStats,
    /// The accelerator's engine-invariant functional counters at the
    /// end of the trace (`None` for unaccelerated sessions).
    pub functional_counters: Option<[u64; 7]>,
    /// What the epoch scheduler did (all zero on the sequential path).
    pub epochs: EpochStats,
    /// Wall-clock seconds the replay took.
    pub wall_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fade_trace::bench;

    fn mcf() -> BenchProfile {
        bench::by_name("mcf").unwrap()
    }

    #[test]
    fn sessions_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
        assert_send::<MonitoringSystem>();
        assert_send::<RunReport>();
    }

    #[test]
    fn missing_pieces_are_typed_errors() {
        let e = Session::builder().source(mcf()).build().unwrap_err();
        assert!(matches!(e, SessionError::NoMonitor));
        let e = Session::builder().monitor("AddrCheck").build().unwrap_err();
        assert!(matches!(e, SessionError::NoSource));
        let e = Session::builder()
            .monitor("NoSuchCheck")
            .source(mcf())
            .build()
            .unwrap_err();
        match e {
            SessionError::UnknownMonitor(u) => assert_eq!(u.name, "NoSuchCheck"),
            other => panic!("expected UnknownMonitor, got {other:?}"),
        }
        let e = Session::builder()
            .monitor("AddrCheck")
            .source(std::path::Path::new("/nonexistent/trace.fadet"))
            .build()
            .unwrap_err();
        assert!(matches!(e, SessionError::Trace(_)));
    }

    #[test]
    fn program_without_accel_is_rejected() {
        let program = fade_monitors::AddrCheck::new().program();
        let e = Session::builder()
            .monitor("AddrCheck")
            .source(mcf())
            .program(program.clone())
            .engine(Engine::Unaccelerated)
            .build()
            .unwrap_err();
        assert!(matches!(e, SessionError::ProgramWithoutAccel));
        let e = Session::builder()
            .monitor("AddrCheck")
            .source(mcf())
            .program(program)
            .config(SystemConfig::unaccelerated_single_core())
            .build()
            .unwrap_err();
        assert!(matches!(e, SessionError::ProgramWithoutAccel));
    }

    #[test]
    fn unaccelerated_engine_overrides_config() {
        let mut s = Session::builder()
            .monitor("MemLeak")
            .source(bench::by_name("gcc").unwrap())
            .engine(Engine::Unaccelerated)
            .config(SystemConfig::fade_single_core())
            .build()
            .unwrap();
        s.run(2_000).unwrap();
        assert!(s.fade_stats().is_none(), "engine must strip the accelerator");
    }

    #[test]
    fn batched_knob_overrides_reach_the_config() {
        let mut s = Session::builder()
            .monitor("AddrCheck")
            .source(bench::by_name("hmmer").unwrap())
            .engine(Engine::batched_with(1 << 40, 0))
            .build()
            .unwrap();
        // A period longer than any trace with a zero window: everything
        // runs batched, nothing is sampled cycle-accurately.
        s.run(5_000).unwrap();
        assert_eq!(s.cycles(), 0, "no cycle-accurate stretch may run");
        assert!(s.batch_stats().events > 0);
    }

    #[test]
    fn run_measured_matches_engine_defaults() {
        let r = Session::builder()
            .monitor("AddrCheck")
            .source(mcf())
            .build()
            .unwrap()
            .run_measured(2_000, 8_000)
            .unwrap();
        // (the cycle engine may overshoot by up to a commit width)
        assert!(r.stats.app_instrs >= 8_000);
        assert!(r.stats.sampling.is_none(), "cycle engine is exact");
        assert!(r.wall_s > 0.0);
    }

    /// `shadow_bytes_in_use` is the *instantaneous* footprint;
    /// `ShadowCounters::peak_full_pages` is its post-enforcement
    /// high-water mark. Stepping a budgeted session and polling both
    /// pins the relationship: every observed instantaneous full-page
    /// count stays at or below the budget and at or below the final
    /// peak, and the peak is reached by some observed instant's
    /// history (it never undershoots the running maximum we saw).
    #[test]
    fn shadow_usage_tracks_memory_and_respects_peak_semantics() {
        const BUDGET: usize = 8;
        let mut s = Session::builder()
            .monitor("MemCheck")
            .source(bench::by_name("gcc").unwrap())
            .config(SystemConfig::fade_single_core().with_shadow_page_budget(BUDGET))
            .build()
            .unwrap();
        let mut max_seen = 0usize;
        for _ in 0..40 {
            s.run(1_000).unwrap();
            let usage = s.shadow_bytes_in_use();
            assert!(
                usage.full_pages <= BUDGET,
                "budget enforcement: {} full pages > budget {BUDGET}",
                usage.full_pages
            );
            assert_eq!(
                usage.bytes,
                s.state().mem.shadow_bytes(),
                "accessor must delegate to ShadowMemory"
            );
            assert!(
                usage.bytes >= usage.full_pages * fade_shadow::memory::SHADOW_PAGE_SIZE,
                "resident bytes must cover the full-page frames"
            );
            max_seen = max_seen.max(usage.full_pages);
        }
        let peak = s.shadow_counters().peak_full_pages;
        let now = s.shadow_bytes_in_use().full_pages;
        assert!(max_seen > 0, "the workload must actually touch shadow pages");
        assert!(
            max_seen <= peak,
            "peak is a high-water mark over every instant: saw {max_seen}, peak {peak}"
        );
        assert!(now <= peak, "the current instant can never exceed the peak");
        assert!(peak <= BUDGET, "the peak is post-enforcement: {peak} > {BUDGET}");
    }

    #[test]
    fn registry_monitors_run_through_sessions() {
        let mut registry = MonitorRegistry::builtin();
        registry.register(|| Box::new(fade_monitors::AddrCheck::new()));
        let mut s = Session::builder()
            .registry(Arc::new(registry))
            .monitor("addrcheck")
            .source(bench::by_name("hmmer").unwrap())
            .build()
            .unwrap();
        s.run(2_000).unwrap();
        assert_eq!(s.monitor().name(), "AddrCheck");
    }
}
