//! # fade-system
//!
//! Composed monitoring systems and the experiment harness — the crate
//! that produces every number in the paper's evaluation (Section 7).
//!
//! A [`MonitoringSystem`] wires together:
//!
//! * an application hardware thread (a [`fade_trace::SyntheticProgram`]
//!   retiring through a [`fade_sim::CommitModel`]),
//! * optionally the FADE accelerator ([`fade::Fade`]),
//! * a monitor hardware thread executing software handlers
//!   ([`fade_sim::HandlerExec`]),
//! * the decoupling queue(s) of Figure 1,
//!
//! in one of the evaluated configurations (Figure 8): single-core
//! dual-threaded or two-core, unaccelerated or FADE-enabled, on any of
//! the three core microarchitectures of Table 1.
//!
//! The crate's one entry point is the [`Session`] builder: pick a
//! monitor (by name, trait object, or via a pluggable
//! [`MonitorRegistry`]), a trace source (synthetic workload, in-memory
//! records, or a recorded `.fadet` file), an execution [`Engine`], and
//! a [`SystemConfig`]; then [`Session::run_measured`] performs a
//! warmup-and-measure run (SMARTS-flavoured sampling) and returns a
//! [`RunReport`] whose [`RunStats`] hold everything the paper plots:
//! slowdown, filtering ratio, queue-occupancy CDFs, unfiltered
//! distances and burst sizes, handler-class time breakdowns, and
//! two-core utilization.
//!
//! # Example
//!
//! ```
//! use fade_system::{Session, SystemConfig};
//! use fade_trace::bench;
//!
//! let report = Session::builder()
//!     .monitor("AddrCheck")
//!     .source(bench::by_name("mcf").unwrap())
//!     .config(SystemConfig::fade_single_core())
//!     .build()
//!     .unwrap()
//!     .run_measured(20_000, 50_000)
//!     .unwrap();
//! assert!(report.stats.slowdown() >= 1.0);
//! ```

pub mod config;
pub mod epoch;
pub mod pool;
pub mod registry;
pub mod run;
pub mod session;
pub mod system;
pub mod throughput;

pub use config::{Accel, FadeTweaks, SystemConfig, Topology};
pub use pool::{run_indexed, WorkerPool};
pub use registry::{MonitorFactory, MonitorRegistry, UnknownMonitor};
pub use run::{ClassInstrs, RunStats, SamplingSummary, UtilBreakdown};
pub use epoch::EpochStats;
pub use session::{
    Engine, MonitorSel, ReplayReport, RunReport, Session, SessionBuilder, SessionError,
    SessionRunError, ShadowUsage, SourceSpec,
};
pub use system::{
    baseline_cycles, ExecMode, MonitoringSystem, ReplayBuffer, SourceError, TraceSource,
};
pub use throughput::{
    measure_parallel_replay, measure_synthetic_filterable, measure_system_throughput,
    measure_system_throughput_records, measure_throughput, measure_throughput_matrix,
    measure_trace_codec, measure_trace_codec_records, record_trace_prefix,
    synthetic_filterable_events, ParallelReplayReport, SystemThroughputReport, ThroughputReport,
    TraceCodecReport, VECTOR_LANES,
};
