//! Functional filtering throughput: monitored events per second of
//! wall-clock time through the accelerator model.
//!
//! The cycle-accurate [`MonitoringSystem`](crate::MonitoringSystem)
//! measures *simulated* cycles; this harness measures how fast the
//! simulation itself filters, comparing the per-event `enqueue`+`tick`
//! driver against the batched fast path ([`fade::Fade::run_batch`]) on
//! the same pre-generated event stream — the number every scaling PR
//! (sharding, async, multi-core) moves.
//!
//! Both paths apply the monitors' software-handler functional effects
//! in program order and must finish with identical accelerator
//! statistics; the harness asserts it, so every throughput measurement
//! doubles as an equivalence check.

use std::time::Instant;

use fade::{BatchStats, Fade, FadeConfig, FadeStats, FilterMode, InvId, UnfilteredEvent};
use fade_isa::{instr_event_for, AppEvent, HighLevelEvent};
use fade_monitors::{monitor_by_name, Monitor};
use fade_shadow::MetadataState;
use fade_trace::{BenchProfile, SyntheticProgram, TraceRecord};

use crate::config::SystemConfig;
use crate::system::MonitoringSystem;

/// Measured throughput of one (benchmark, monitor, batch size) point.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Monitor name.
    pub monitor: String,
    /// Events per `run_batch` call.
    pub batch_size: usize,
    /// Monitored events driven through each path.
    pub events: u64,
    /// Wall-clock seconds of the per-event path.
    pub per_event_s: f64,
    /// Wall-clock seconds of the batched path.
    pub batched_s: f64,
    /// Batch path breakdown (fast path vs. fallback, dispatches).
    pub batch: BatchStats,
    /// Accelerator statistics (identical for both paths).
    pub fade: FadeStats,
}

impl ThroughputReport {
    /// Events per second through the per-event path.
    pub fn per_event_rate(&self) -> f64 {
        self.events as f64 / self.per_event_s.max(1e-12)
    }

    /// Events per second through the batched path.
    pub fn batched_rate(&self) -> f64 {
        self.events as f64 / self.batched_s.max(1e-12)
    }

    /// Batched-over-per-event speedup.
    pub fn speedup(&self) -> f64 {
        self.per_event_s / self.batched_s.max(1e-12)
    }

    /// Fraction of events that took the short-circuit fast path.
    pub fn fast_path_fraction(&self) -> f64 {
        self.batch.fast_path_fraction()
    }
}

/// Pre-generates `n_events` monitored events for the benchmark, exactly
/// the events the monitor would select from the trace.
pub fn monitored_events(bench: &BenchProfile, monitor: &dyn Monitor, n_events: u64) -> Vec<AppEvent> {
    let mut gen = SyntheticProgram::new(bench, 42);
    let mut events = Vec::with_capacity(n_events as usize);
    let mut records = Vec::new();
    while (events.len() as u64) < n_events {
        records.clear();
        gen.next_records_into(&mut records, 4096);
        for r in &records {
            match *r {
                TraceRecord::Instr(i) => {
                    if monitor.selects(&i) {
                        events.push(AppEvent::Instr(instr_event_for(&i)));
                    }
                }
                TraceRecord::Stack(s) => {
                    if monitor.monitors_stack() {
                        events.push(AppEvent::StackUpdate(s));
                    }
                }
                TraceRecord::High(h) => events.push(AppEvent::HighLevel(h)),
            }
            if events.len() as u64 == n_events {
                break;
            }
        }
    }
    events
}

fn fresh(monitor_name: &str) -> (Fade, MetadataState, Box<dyn Monitor>) {
    let mon = monitor_by_name(monitor_name)
        .unwrap_or_else(|| panic!("unknown monitor {monitor_name}"));
    let program = mon.program();
    let mut st = MetadataState::new(program.md_map());
    mon.init_state(&mut st);
    let fade = Fade::new(FadeConfig::paper(FilterMode::NonBlocking), program);
    (fade, st, mon)
}

/// Applies the software handler's functional effect for one dispatched
/// event, returning invariant writes the monitor wants performed.
fn apply_dispatch(
    mon: &mut dyn Monitor,
    uf: &UnfilteredEvent,
    st: &mut MetadataState,
    inv_writes: &mut Vec<(InvId, u64)>,
) {
    match uf.event {
        AppEvent::Instr(ev) => mon.apply_instr(&ev, st),
        AppEvent::HighLevel(h) => {
            mon.apply_high_level(&h, st);
            if let HighLevelEvent::ThreadSwitch { tid } = h {
                inv_writes.extend(mon.on_thread_switch(tid));
            }
        }
        AppEvent::StackUpdate(ev) => mon.apply_stack_update(&ev, st),
    }
}

fn drive_batched(
    monitor_name: &str,
    events: &[AppEvent],
    batch_size: usize,
) -> (f64, BatchStats, FadeStats) {
    let (mut fade, mut st, mut mon) = fresh(monitor_name);
    let mut total = BatchStats::default();
    let mut inv_writes: Vec<(InvId, u64)> = Vec::new();
    let start = Instant::now();
    let mut i = 0;
    while i < events.len() {
        let mut end = (i + batch_size).min(events.len());
        // Cut the chunk right after a thread switch so the monitor's
        // invariant-register updates land before the next event is
        // filtered — same order as the per-event driver.
        if let Some(p) = events[i..end]
            .iter()
            .position(|e| matches!(e, AppEvent::HighLevel(HighLevelEvent::ThreadSwitch { .. })))
        {
            end = i + p + 1;
        }
        let bs = fade.run_batch_with(&events[i..end], &mut st, |uf, st| {
            apply_dispatch(mon.as_mut(), &uf, st, &mut inv_writes);
        });
        for (id, v) in inv_writes.drain(..) {
            fade.write_invariant(id, v);
        }
        total.merge(&bs);
        i = end;
    }
    let secs = start.elapsed().as_secs_f64();
    (secs, total, *fade.stats())
}

fn drive_per_event(monitor_name: &str, events: &[AppEvent]) -> (f64, FadeStats) {
    let (mut fade, mut st, mut mon) = fresh(monitor_name);
    let mut inv_writes: Vec<(InvId, u64)> = Vec::new();
    let start = Instant::now();
    for &ev in events {
        fade.enqueue(ev).expect("queue drained between events");
        loop {
            let tick = fade.tick(&mut st);
            if let Some(uf) = tick.dispatched {
                apply_dispatch(mon.as_mut(), &uf, &mut st, &mut inv_writes);
            }
            while let Some(uf) = fade.pop_unfiltered() {
                fade.handler_completed(uf.token);
            }
            for (id, v) in inv_writes.drain(..) {
                fade.write_invariant(id, v);
            }
            if fade.is_idle() {
                break;
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (secs, *fade.stats())
}

/// Measures filtering throughput for one (benchmark, monitor) point
/// across several batch sizes: the event stream is generated once and
/// the per-event baseline measured once, then reused for every batch
/// size (neither depends on it), so the published speedups share one
/// consistent denominator.
///
/// # Panics
///
/// Panics if the monitor is unknown, or if the two paths diverge in
/// accelerator statistics (which would be a fast-path equivalence bug).
pub fn measure_throughput_matrix(
    bench: &BenchProfile,
    monitor_name: &str,
    batch_sizes: &[usize],
    n_events: u64,
) -> Vec<ThroughputReport> {
    let probe = monitor_by_name(monitor_name)
        .unwrap_or_else(|| panic!("unknown monitor {monitor_name}"));
    let events = monitored_events(bench, probe.as_ref(), n_events);
    let (per_event_s, fade_p) = drive_per_event(monitor_name, &events);

    batch_sizes
        .iter()
        .map(|&batch_size| {
            let (batched_s, batch, fade_b) = drive_batched(monitor_name, &events, batch_size);
            assert_eq!(
                fade_b, fade_p,
                "batched and per-event execution diverged for {monitor_name} on {}",
                bench.name
            );
            ThroughputReport {
                benchmark: bench.name.to_string(),
                monitor: monitor_name.to_string(),
                batch_size,
                events: events.len() as u64,
                per_event_s,
                batched_s,
                batch,
                fade: fade_b,
            }
        })
        .collect()
}

/// Measured throughput of the *full system* (commit process, queues,
/// monitor thread) in cycle-accurate vs batched execution mode — the
/// number the batched system mode exists to move, where
/// [`ThroughputReport`] covers the bare filter pipeline.
#[derive(Clone, Debug)]
pub struct SystemThroughputReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Monitor name.
    pub monitor: String,
    /// Monitored events processed by each mode (identical streams).
    pub events: u64,
    /// Application instructions retired by each mode.
    pub instrs: u64,
    /// Wall-clock seconds of the cycle-accurate run.
    pub cycle_s: f64,
    /// Wall-clock seconds of the batched run.
    pub batched_s: f64,
    /// Batched-run fast-path breakdown.
    pub batch: BatchStats,
    /// Simulated cycles of the cycle-accurate run (exact).
    pub exact_cycles: u64,
    /// Simulated cycles the batched run estimated from its samples.
    pub estimated_cycles: u64,
    /// Sampling period the batched run used (monitored events).
    pub sample_period: u64,
    /// Cycle-accurate window length the batched run used.
    pub sample_window: u64,
}

impl SystemThroughputReport {
    /// Monitored events per second, cycle-accurate mode.
    pub fn cycle_rate(&self) -> f64 {
        self.events as f64 / self.cycle_s.max(1e-12)
    }

    /// Monitored events per second, batched mode.
    pub fn batched_rate(&self) -> f64 {
        self.events as f64 / self.batched_s.max(1e-12)
    }

    /// Batched-over-cycle wall-clock speedup.
    pub fn speedup(&self) -> f64 {
        self.cycle_s / self.batched_s.max(1e-12)
    }

    /// Fraction of batched-run events on the short-circuit fast path.
    pub fn fast_path_fraction(&self) -> f64 {
        self.batch.fast_path_fraction()
    }

    /// Relative error of the sampled cycle estimate vs the exact count.
    pub fn cycle_error(&self) -> f64 {
        let exact = self.exact_cycles.max(1) as f64;
        (self.estimated_cycles as f64 - exact).abs() / exact
    }
}

/// The trace prefix holding the first `n_events` monitored events for
/// this monitor and seed: the records themselves plus the instruction
/// count (the generator is deterministic, so both execution modes can
/// be driven over exactly this prefix).
fn record_prefix(
    bench: &BenchProfile,
    monitor: &dyn Monitor,
    seed: u64,
    n_events: u64,
) -> (Vec<TraceRecord>, u64) {
    let mut gen = SyntheticProgram::new(bench, seed);
    let mut events = 0u64;
    let mut instrs = 0u64;
    let mut records = Vec::new();
    let mut batch = Vec::new();
    while events < n_events {
        batch.clear();
        gen.next_records_into(&mut batch, 4096);
        for r in &batch {
            records.push(*r);
            match *r {
                TraceRecord::Instr(i) => {
                    instrs += 1;
                    if monitor.selects(&i) {
                        events += 1;
                    }
                }
                TraceRecord::Stack(_) => {
                    if monitor.monitors_stack() {
                        events += 1;
                    }
                }
                TraceRecord::High(_) => events += 1,
            }
            if events == n_events {
                break;
            }
        }
    }
    (records, instrs)
}

/// Measures full-system throughput for one (benchmark, monitor) point:
/// the same `n_events`-event trace prefix is generated once (outside
/// the timed region, like the filter-pipeline harness) and then
/// replayed once cycle-accurately and once batched (with `cfg`'s
/// sampling period), both to the exact same instruction, and the
/// wall-clock times of the execution engines compared.
///
/// Every measurement doubles as a differential check: the two runs must
/// finish with identical metadata state, violation reports and
/// functional accelerator counters.
///
/// # Panics
///
/// Panics if the monitor is unknown, or if the two modes diverge in any
/// monitor-visible result (which the differential harness would flag as
/// a batched-mode bug).
pub fn measure_system_throughput(
    bench: &BenchProfile,
    monitor_name: &str,
    cfg: &SystemConfig,
    n_events: u64,
) -> SystemThroughputReport {
    let probe = monitor_by_name(monitor_name)
        .unwrap_or_else(|| panic!("unknown monitor {monitor_name}"));
    let (records, instrs) = record_prefix(bench, probe.as_ref(), cfg.seed, n_events);

    let mut cycle_sys = MonitoringSystem::from_records(bench, monitor_name, cfg, records.clone());
    let start = Instant::now();
    cycle_sys.run_instrs_exact(instrs);
    cycle_sys.drain();
    let cycle_s = start.elapsed().as_secs_f64();

    let mut batched_sys = MonitoringSystem::from_records(bench, monitor_name, cfg, records);
    let start = Instant::now();
    batched_sys.run_batched(instrs);
    batched_sys.drain();
    let batched_s = start.elapsed().as_secs_f64();

    assert_eq!(
        cycle_sys.events_seen(),
        batched_sys.events_seen(),
        "modes consumed different event streams for {monitor_name} on {}",
        bench.name
    );
    assert!(
        cycle_sys.state() == batched_sys.state(),
        "batched metadata state diverged for {monitor_name} on {}",
        bench.name
    );
    assert_eq!(
        cycle_sys.monitor().reports(),
        batched_sys.monitor().reports(),
        "batched violation reports diverged for {monitor_name} on {}",
        bench.name
    );
    let (cf, bf) = (
        cycle_sys.fade_stats().map(|f| f.functional_counters()),
        batched_sys.fade_stats().map(|f| f.functional_counters()),
    );
    assert_eq!(
        cf, bf,
        "batched functional counters diverged for {monitor_name} on {}",
        bench.name
    );

    SystemThroughputReport {
        benchmark: bench.name.to_string(),
        monitor: monitor_name.to_string(),
        events: cycle_sys.events_seen(),
        instrs,
        cycle_s,
        batched_s,
        batch: batched_sys.batch_stats(),
        exact_cycles: cycle_sys.cycles(),
        estimated_cycles: batched_sys.estimated_total_cycles(),
        sample_period: cfg.sample_period,
        sample_window: cfg.sample_window,
    }
}

/// [`measure_throughput_matrix`] for a single batch size.
pub fn measure_throughput(
    bench: &BenchProfile,
    monitor_name: &str,
    batch_size: usize,
    n_events: u64,
) -> ThroughputReport {
    measure_throughput_matrix(bench, monitor_name, &[batch_size], n_events)
        .pop()
        .expect("one batch size in, one report out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fade_trace::bench;

    #[test]
    fn paths_agree_and_fast_path_dominates_for_high_filter_monitors() {
        let b = bench::by_name("hmmer").unwrap();
        let r = measure_throughput(&b, "AddrCheck", 32, 20_000);
        assert_eq!(r.events, 20_000);
        // Real traces hop between pages/lines, so not every filterable
        // event is MRU-warm; locality still keeps a solid majority on
        // the short-circuit path.
        assert!(r.fast_path_fraction() > 0.5, "got {}", r.fast_path_fraction());
        assert!(r.batched_rate() > 0.0 && r.per_event_rate() > 0.0);
    }

    #[test]
    fn low_filter_monitors_still_agree() {
        let b = bench::by_name("gcc").unwrap();
        let r = measure_throughput(&b, "MemLeak", 32, 20_000);
        // measure_throughput asserts stats equality internally.
        assert_eq!(r.batch.events, 20_000);
        assert!(r.batch.dispatched > 0, "MemLeak dispatches complex events");
    }

    #[test]
    fn system_throughput_modes_agree_and_estimate_cycles() {
        let b = bench::by_name("hmmer").unwrap();
        let cfg = SystemConfig::fade_single_core()
            .with_sample_period(2048)
            .with_sample_window(512);
        // measure_system_throughput asserts the differential invariants
        // (state, reports, functional counters) internally.
        let r = measure_system_throughput(&b, "AddrCheck", &cfg, 20_000);
        assert_eq!(r.events, 20_000);
        assert!(r.batch.events > 0, "some events must run batched");
        assert!(r.exact_cycles > 0 && r.estimated_cycles > 0);
        // Coarse sanity here; the differential harness pins the ±5%
        // tolerance on full-size traces.
        assert!(r.cycle_error() < 0.25, "cycle error {}", r.cycle_error());
    }

    #[test]
    fn parallel_benchmark_with_invariant_writes_agrees() {
        // AtomCheck rewrites invariant registers on thread switches —
        // the batched driver must apply them at the same points.
        let b = bench::by_name("water").unwrap();
        let r = measure_throughput(&b, "AtomCheck", 64, 20_000);
        assert_eq!(r.events, 20_000);
        assert!(r.fade.partial_hits > 0);
    }
}
