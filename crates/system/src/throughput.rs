//! Functional filtering throughput: monitored events per second of
//! wall-clock time through the accelerator model.
//!
//! The cycle-accurate [`MonitoringSystem`]
//! measures *simulated* cycles; this harness measures how fast the
//! simulation itself filters, comparing the per-event `enqueue`+`tick`
//! driver against the batched fast path ([`fade::Fade::run_batch`]) on
//! the same pre-generated event stream — the number every scaling PR
//! (sharding, async, multi-core) moves.
//!
//! Both paths apply the monitors' software-handler functional effects
//! in program order and must finish with identical accelerator
//! statistics; the harness asserts it, so every throughput measurement
//! doubles as an equivalence check.

use std::time::Instant;

use fade::{BatchStats, Fade, FadeConfig, FadeStats, FilterMode, InvId, UnfilteredEvent};
use fade_isa::{
    instr_event_for, layout, AppEvent, AppInstr, HighLevelEvent, InstrClass, MemRef, Reg, VirtAddr,
};
use fade_monitors::{monitor_by_name, Monitor};
use fade_shadow::MetadataState;
use fade_trace::{BenchProfile, SyntheticProgram, TraceRecord};

use crate::config::SystemConfig;
use crate::system::MonitoringSystem;

/// Measured throughput of one (benchmark, monitor, batch size) point.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Monitor name.
    pub monitor: String,
    /// Events per `run_batch` call.
    pub batch_size: usize,
    /// Monitored events driven through each path.
    pub events: u64,
    /// Wall-clock seconds of the per-event path.
    pub per_event_s: f64,
    /// Wall-clock seconds of the batched (scalar tier-A) path.
    pub batched_s: f64,
    /// Wall-clock seconds of the vectorized SoA path
    /// ([`fade::Fade::run_batch_vectorized`] at [`VECTOR_LANES`]
    /// lanes), over the identical stream.
    pub vectorized_s: f64,
    /// Batch path breakdown (fast path vs. fallback, dispatches);
    /// asserted identical between the scalar and vectorized paths.
    pub batch: BatchStats,
    /// Accelerator statistics (identical for all three paths).
    pub fade: FadeStats,
}

/// Lane width the throughput harness measures the vectorized path at.
pub const VECTOR_LANES: usize = 16;

impl ThroughputReport {
    /// Events per second through the per-event path.
    pub fn per_event_rate(&self) -> f64 {
        self.events as f64 / self.per_event_s.max(1e-12)
    }

    /// Events per second through the batched path.
    pub fn batched_rate(&self) -> f64 {
        self.events as f64 / self.batched_s.max(1e-12)
    }

    /// Events per second through the vectorized SoA path.
    pub fn vectorized_rate(&self) -> f64 {
        self.events as f64 / self.vectorized_s.max(1e-12)
    }

    /// Batched-over-per-event speedup.
    pub fn speedup(&self) -> f64 {
        self.per_event_s / self.batched_s.max(1e-12)
    }

    /// Vectorized-over-scalar-batched speedup.
    pub fn vector_speedup(&self) -> f64 {
        self.batched_s / self.vectorized_s.max(1e-12)
    }

    /// Fraction of events that took the short-circuit fast path.
    pub fn fast_path_fraction(&self) -> f64 {
        self.batch.fast_path_fraction()
    }
}

/// Pre-generates `n_events` monitored events for the benchmark, exactly
/// the events the monitor would select from the trace.
pub fn monitored_events(bench: &BenchProfile, monitor: &dyn Monitor, n_events: u64) -> Vec<AppEvent> {
    let mut gen = SyntheticProgram::new(bench, 42);
    let mut events = Vec::with_capacity(n_events as usize);
    let mut records = Vec::new();
    while (events.len() as u64) < n_events {
        records.clear();
        gen.next_records_into(&mut records, 4096);
        for r in &records {
            match *r {
                TraceRecord::Instr(i) => {
                    if monitor.selects(&i) {
                        events.push(AppEvent::Instr(instr_event_for(&i)));
                    }
                }
                TraceRecord::Stack(s) => {
                    if monitor.monitors_stack() {
                        events.push(AppEvent::StackUpdate(s));
                    }
                }
                TraceRecord::High(h) => events.push(AppEvent::HighLevel(h)),
            }
            if events.len() as u64 == n_events {
                break;
            }
        }
    }
    events
}

fn fresh(monitor_name: &str) -> (Fade, MetadataState, Box<dyn Monitor>) {
    let mon = monitor_by_name(monitor_name)
        .unwrap_or_else(|| panic!("unknown monitor {monitor_name}"));
    let program = mon.program();
    let mut st = MetadataState::new(program.md_map());
    mon.init_state(&mut st);
    let fade = Fade::new(FadeConfig::paper(FilterMode::NonBlocking), program);
    (fade, st, mon)
}

/// Applies the software handler's functional effect for one dispatched
/// event, returning invariant writes the monitor wants performed.
fn apply_dispatch(
    mon: &mut dyn Monitor,
    uf: &UnfilteredEvent,
    st: &mut MetadataState,
    inv_writes: &mut Vec<(InvId, u64)>,
) {
    match uf.event {
        AppEvent::Instr(ev) => mon.apply_instr(&ev, st),
        AppEvent::HighLevel(h) => {
            mon.apply_high_level(&h, st);
            if let HighLevelEvent::ThreadSwitch { tid } = h {
                inv_writes.extend(mon.on_thread_switch(tid));
            }
        }
        AppEvent::StackUpdate(ev) => mon.apply_stack_update(&ev, st),
    }
}

/// Drives the batched engine over the stream in `batch_size` chunks;
/// `lanes == 1` uses the scalar tier-A loop, wider the vectorized SoA
/// kernel.
fn drive_batched(
    monitor_name: &str,
    events: &[AppEvent],
    batch_size: usize,
    lanes: usize,
) -> (f64, BatchStats, FadeStats) {
    let (mut fade, mut st, mut mon) = fresh(monitor_name);
    let mut total = BatchStats::default();
    let mut inv_writes: Vec<(InvId, u64)> = Vec::new();
    let start = Instant::now();
    let mut i = 0;
    while i < events.len() {
        let mut end = (i + batch_size).min(events.len());
        // Cut the chunk right after a thread switch so the monitor's
        // invariant-register updates land before the next event is
        // filtered — same order as the per-event driver.
        if let Some(p) = events[i..end]
            .iter()
            .position(|e| matches!(e, AppEvent::HighLevel(HighLevelEvent::ThreadSwitch { .. })))
        {
            end = i + p + 1;
        }
        let consumer = |uf: UnfilteredEvent, st: &mut MetadataState| {
            apply_dispatch(mon.as_mut(), &uf, st, &mut inv_writes);
        };
        let bs = if lanes > 1 {
            fade.run_batch_vectorized_with(&events[i..end], &mut st, lanes, consumer)
        } else {
            fade.run_batch_with(&events[i..end], &mut st, consumer)
        };
        for (id, v) in inv_writes.drain(..) {
            fade.write_invariant(id, v);
        }
        total.merge(&bs);
        i = end;
    }
    let secs = start.elapsed().as_secs_f64();
    (secs, total, *fade.stats())
}

fn drive_per_event(monitor_name: &str, events: &[AppEvent]) -> (f64, FadeStats) {
    let (mut fade, mut st, mut mon) = fresh(monitor_name);
    let mut inv_writes: Vec<(InvId, u64)> = Vec::new();
    let start = Instant::now();
    for &ev in events {
        fade.enqueue(ev).expect("queue drained between events");
        loop {
            let tick = fade.tick(&mut st);
            if let Some(uf) = tick.dispatched {
                apply_dispatch(mon.as_mut(), &uf, &mut st, &mut inv_writes);
            }
            while let Some(uf) = fade.pop_unfiltered() {
                fade.handler_completed(uf.token);
            }
            for (id, v) in inv_writes.drain(..) {
                fade.write_invariant(id, v);
            }
            if fade.is_idle() {
                break;
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (secs, *fade.stats())
}

/// Measures filtering throughput for one (benchmark, monitor) point
/// across several batch sizes: the event stream is generated once and
/// the per-event baseline measured once, then reused for every batch
/// size (neither depends on it), so the published speedups share one
/// consistent denominator.
///
/// # Panics
///
/// Panics if the monitor is unknown, or if the two paths diverge in
/// accelerator statistics (which would be a fast-path equivalence bug).
pub fn measure_throughput_matrix(
    bench: &BenchProfile,
    monitor_name: &str,
    batch_sizes: &[usize],
    n_events: u64,
) -> Vec<ThroughputReport> {
    let probe = monitor_by_name(monitor_name)
        .unwrap_or_else(|| panic!("unknown monitor {monitor_name}"));
    let events = monitored_events(bench, probe.as_ref(), n_events);
    let (per_event_s, fade_p) = drive_per_event(monitor_name, &events);

    batch_sizes
        .iter()
        .map(|&batch_size| {
            let (batched_s, batch, fade_b) = drive_batched(monitor_name, &events, batch_size, 1);
            let (vectorized_s, batch_v, fade_v) =
                drive_batched(monitor_name, &events, batch_size, VECTOR_LANES);
            assert_eq!(
                fade_b, fade_p,
                "batched and per-event execution diverged for {monitor_name} on {}",
                bench.name
            );
            assert_eq!(
                fade_v, fade_b,
                "vectorized and scalar batched execution diverged for {monitor_name} on {}",
                bench.name
            );
            assert_eq!(
                batch_v, batch,
                "vectorized BatchStats diverged for {monitor_name} on {}",
                bench.name
            );
            ThroughputReport {
                benchmark: bench.name.to_string(),
                monitor: monitor_name.to_string(),
                batch_size,
                events: events.len() as u64,
                per_event_s,
                batched_s,
                vectorized_s,
                batch,
                fade: fade_b,
            }
        })
        .collect()
}

/// Synthetic all-filterable event stream for the vectorized kernel's
/// headline number: one `Malloc` registers a heap object, then every
/// load hits inside the same metadata line of that object — for
/// `AddrCheck` each one is a clean single-shot check, so after the
/// first (cold) access the whole stream retires on the MRU fast path
/// and the SoA kernel can bulk-retire full blocks.
pub fn synthetic_filterable_events(n_events: u64) -> Vec<AppEvent> {
    let base = layout::HEAP_BASE + 0x400;
    let mut events = Vec::with_capacity(n_events as usize);
    events.push(AppEvent::HighLevel(HighLevelEvent::Malloc {
        base: VirtAddr::new(base),
        len: 256,
        ctx: 1,
    }));
    let mut i = 0u32;
    while (events.len() as u64) < n_events {
        // Word loads inside one 32-byte metadata line: every access
        // after the first stays MRU-warm in both the M-TLB and the MD
        // cache.
        let addr = base + (i % 8) * 4;
        let instr = AppInstr::new(VirtAddr::new(0x1000 + (i % 64) * 4), InstrClass::Load)
            .with_dest(Reg::new(2 + (i % 8) as u8))
            .with_mem(MemRef::word(VirtAddr::new(addr)));
        events.push(AppEvent::Instr(instr_event_for(&instr)));
        i += 1;
    }
    events
}

/// Measures the synthetic all-filterable profile (the vectorized
/// kernel's best case: every block is warm, uniform and clean, so the
/// SoA path bulk-retires whole blocks) at one batch size, under
/// `AddrCheck`. The per-event baseline and scalar/vectorized batched
/// paths all run the identical stream and are asserted bit-identical
/// in accelerator statistics, exactly like
/// [`measure_throughput_matrix`].
///
/// # Panics
///
/// Panics if the scalar and vectorized paths diverge in accelerator or
/// batch statistics.
pub fn measure_synthetic_filterable(batch_size: usize, n_events: u64) -> ThroughputReport {
    let events = synthetic_filterable_events(n_events);
    let (per_event_s, fade_p) = drive_per_event("AddrCheck", &events);
    let (batched_s, batch, fade_b) = drive_batched("AddrCheck", &events, batch_size, 1);
    let (vectorized_s, batch_v, fade_v) =
        drive_batched("AddrCheck", &events, batch_size, VECTOR_LANES);
    assert_eq!(fade_b, fade_p, "synthetic: batched vs per-event diverged");
    assert_eq!(fade_v, fade_b, "synthetic: vectorized vs scalar diverged");
    assert_eq!(batch_v, batch, "synthetic: vectorized BatchStats diverged");
    ThroughputReport {
        benchmark: "synthetic-filterable".to_string(),
        monitor: "AddrCheck".to_string(),
        batch_size,
        events: events.len() as u64,
        per_event_s,
        batched_s,
        vectorized_s,
        batch,
        fade: fade_b,
    }
}

/// Measured throughput of the *full system* (commit process, queues,
/// monitor thread) in cycle-accurate vs batched execution mode — the
/// number the batched system mode exists to move, where
/// [`ThroughputReport`] covers the bare filter pipeline.
#[derive(Clone, Debug)]
pub struct SystemThroughputReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Monitor name.
    pub monitor: String,
    /// Monitored events processed by each mode (identical streams).
    pub events: u64,
    /// Application instructions retired by each mode.
    pub instrs: u64,
    /// Wall-clock seconds of the cycle-accurate run.
    pub cycle_s: f64,
    /// Wall-clock seconds of the batched run.
    pub batched_s: f64,
    /// Batched-run fast-path breakdown.
    pub batch: BatchStats,
    /// Simulated cycles of the cycle-accurate run (exact).
    pub exact_cycles: u64,
    /// Simulated cycles the batched run estimated from its samples.
    pub estimated_cycles: u64,
    /// Sampling period the batched run used (monitored events).
    pub sample_period: u64,
    /// Cycle-accurate window length the batched run used.
    pub sample_window: u64,
    /// Relative half-width of the 95% CI on the batched run's total
    /// cycle estimate — the production rate's error bound (`None` with
    /// fewer than two sampled windows).
    pub rel_half_width: Option<f64>,
    /// Carried-congestion handler cycles seeded into sampling windows.
    pub carried_seed_cycles: u64,
    /// Per-congestion-stratum interval breakdown of the batched run's
    /// sampling estimator (empty when nothing was sampled).
    pub strata: Vec<fade_sim::StratumStat>,
}

impl SystemThroughputReport {
    /// Monitored events per second, cycle-accurate mode.
    pub fn cycle_rate(&self) -> f64 {
        self.events as f64 / self.cycle_s.max(1e-12)
    }

    /// Monitored events per second, batched mode.
    pub fn batched_rate(&self) -> f64 {
        self.events as f64 / self.batched_s.max(1e-12)
    }

    /// Batched-over-cycle wall-clock speedup.
    pub fn speedup(&self) -> f64 {
        self.cycle_s / self.batched_s.max(1e-12)
    }

    /// Fraction of batched-run events on the short-circuit fast path.
    pub fn fast_path_fraction(&self) -> f64 {
        self.batch.fast_path_fraction()
    }

    /// Relative error of the sampled cycle estimate vs the exact count.
    pub fn cycle_error(&self) -> f64 {
        let exact = self.exact_cycles.max(1) as f64;
        (self.estimated_cycles as f64 - exact).abs() / exact
    }
}

/// The trace prefix holding the first `n_events` monitored events for
/// this monitor and seed: the records themselves plus the instruction
/// count (the generator is deterministic, so both execution modes can
/// be driven over exactly this prefix). This is the capture half of
/// record/replay: write the records to a `.fadet` file with
/// [`fade_trace::write_trace_file`] and any later run can replay them
/// through [`measure_system_throughput_records`] or a
/// record-buffer [`crate::Session`] without a generator.
///
/// # Panics
///
/// Panics if the monitor is unknown.
pub fn record_trace_prefix(
    bench: &BenchProfile,
    monitor_name: &str,
    seed: u64,
    n_events: u64,
) -> (Vec<TraceRecord>, u64) {
    let probe = monitor_by_name(monitor_name)
        .unwrap_or_else(|| panic!("unknown monitor {monitor_name}"));
    record_prefix(bench, probe.as_ref(), seed, n_events)
}

fn record_prefix(
    bench: &BenchProfile,
    monitor: &dyn Monitor,
    seed: u64,
    n_events: u64,
) -> (Vec<TraceRecord>, u64) {
    let mut gen = SyntheticProgram::new(bench, seed);
    let mut events = 0u64;
    let mut instrs = 0u64;
    let mut records = Vec::new();
    let mut batch = Vec::new();
    while events < n_events {
        batch.clear();
        gen.next_records_into(&mut batch, 4096);
        for r in &batch {
            records.push(*r);
            match *r {
                TraceRecord::Instr(i) => {
                    instrs += 1;
                    if monitor.selects(&i) {
                        events += 1;
                    }
                }
                TraceRecord::Stack(_) => {
                    if monitor.monitors_stack() {
                        events += 1;
                    }
                }
                TraceRecord::High(_) => events += 1,
            }
            if events == n_events {
                break;
            }
        }
    }
    (records, instrs)
}

/// Measures full-system throughput for one (benchmark, monitor) point:
/// the same `n_events`-event trace prefix is generated once (outside
/// the timed region, like the filter-pipeline harness) and then
/// replayed once cycle-accurately and once batched (with `cfg`'s
/// sampling period), both to the exact same instruction, and the
/// wall-clock times of the execution engines compared.
///
/// Every measurement doubles as a differential check: the two runs must
/// finish with identical metadata state, violation reports and
/// functional accelerator counters.
///
/// # Panics
///
/// Panics if the monitor is unknown, or if the two modes diverge in any
/// monitor-visible result (which the differential harness would flag as
/// a batched-mode bug).
pub fn measure_system_throughput(
    bench: &BenchProfile,
    monitor_name: &str,
    cfg: &SystemConfig,
    n_events: u64,
) -> SystemThroughputReport {
    let probe = monitor_by_name(monitor_name)
        .unwrap_or_else(|| panic!("unknown monitor {monitor_name}"));
    let (records, instrs) = record_prefix(bench, probe.as_ref(), cfg.seed, n_events);
    measure_system_throughput_records(bench, monitor_name, cfg, records, instrs)
}

/// [`measure_system_throughput`] over a caller-provided record buffer —
/// the replay half of record/replay: feed it the records of a recorded
/// `.fadet` trace (`fade_trace::read_trace_file`) and `instrs` retired
/// instructions to consume (at most the buffer's instruction count),
/// and both engines run the identical frozen workload.
///
/// # Panics
///
/// Panics if the monitor is unknown, the buffer holds fewer than
/// `instrs` instruction records, or the two modes diverge in any
/// monitor-visible result.
pub fn measure_system_throughput_records(
    bench: &BenchProfile,
    monitor_name: &str,
    cfg: &SystemConfig,
    records: Vec<TraceRecord>,
    instrs: u64,
) -> SystemThroughputReport {
    let replay = |records: Vec<TraceRecord>| -> MonitoringSystem {
        MonitoringSystem::build_named(
            bench,
            monitor_name,
            cfg,
            Some(Box::new(crate::system::ReplayBuffer::new(records))),
        )
    };
    let mut cycle_sys = replay(records.clone());
    let start = Instant::now();
    cycle_sys.run_instrs_exact(instrs);
    cycle_sys.drain();
    let cycle_s = start.elapsed().as_secs_f64();

    let mut batched_sys = replay(records);
    let start = Instant::now();
    batched_sys.run_batched(instrs);
    batched_sys.drain();
    let batched_s = start.elapsed().as_secs_f64();

    assert_eq!(
        cycle_sys.events_seen(),
        batched_sys.events_seen(),
        "modes consumed different event streams for {monitor_name} on {}",
        bench.name
    );
    assert!(
        cycle_sys.state() == batched_sys.state(),
        "batched metadata state diverged for {monitor_name} on {}",
        bench.name
    );
    assert_eq!(
        cycle_sys.monitor().reports(),
        batched_sys.monitor().reports(),
        "batched violation reports diverged for {monitor_name} on {}",
        bench.name
    );
    let (cf, bf) = (
        cycle_sys.fade_stats().map(|f| f.functional_counters()),
        batched_sys.fade_stats().map(|f| f.functional_counters()),
    );
    assert_eq!(
        cf, bf,
        "batched functional counters diverged for {monitor_name} on {}",
        bench.name
    );

    SystemThroughputReport {
        benchmark: bench.name.to_string(),
        monitor: monitor_name.to_string(),
        events: cycle_sys.events_seen(),
        instrs,
        cycle_s,
        batched_s,
        batch: batched_sys.batch_stats(),
        exact_cycles: cycle_sys.cycles(),
        estimated_cycles: batched_sys.estimated_total_cycles(),
        sample_period: cfg.sample_period,
        sample_window: cfg.sample_window,
        rel_half_width: batched_sys.rel_half_width(),
        carried_seed_cycles: batched_sys.carried_seed_cycles(),
        strata: batched_sys.sampling_strata(),
    }
}

/// Measured serial-vs-parallel whole-trace replay of one (benchmark,
/// monitor) point ([`measure_parallel_replay`]).
#[derive(Clone, Debug)]
pub struct ParallelReplayReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Monitor name.
    pub monitor: String,
    /// Worker threads of the parallel replay.
    pub workers: usize,
    /// Monitored events in the replayed trace.
    pub events: u64,
    /// Application instructions in the replayed trace.
    pub instrs: u64,
    /// Wall-clock seconds of the sequential replay.
    pub serial_s: f64,
    /// Wall-clock seconds of the epoch-parallel replay.
    pub parallel_s: f64,
    /// What the epoch scheduler did during the parallel replay.
    pub epochs: crate::epoch::EpochStats,
}

impl ParallelReplayReport {
    /// Serial-over-parallel wall-clock speedup (>1 is a win).
    pub fn speedup(&self) -> f64 {
        self.serial_s / self.parallel_s.max(1e-12)
    }
}

/// Replays the same `n_events`-event trace prefix twice through the
/// batched engine — once sequentially, once as speculative parallel
/// epochs on `workers` threads ([`crate::SessionBuilder::parallel_replay`])
/// — and compares wall-clock time. Every measurement doubles as a
/// differential check: both replays must finish with identical
/// monitor-visible results.
///
/// # Panics
///
/// Panics if the monitor is unknown or the two replays diverge in any
/// monitor-visible result (which would be an epoch-join bug).
pub fn measure_parallel_replay(
    bench: &BenchProfile,
    monitor_name: &str,
    cfg: &SystemConfig,
    n_events: u64,
    workers: usize,
) -> ParallelReplayReport {
    let probe = monitor_by_name(monitor_name)
        .unwrap_or_else(|| panic!("unknown monitor {monitor_name}"));
    let (records, _instrs) = record_prefix(bench, probe.as_ref(), cfg.seed, n_events);
    let session = |parallel: usize| {
        let mut b = crate::Session::builder()
            .monitor(monitor_name)
            .source((bench.clone(), records.clone()))
            .engine(crate::Engine::batched())
            .config(*cfg);
        if parallel > 0 {
            b = b.parallel_replay(parallel);
        }
        b.build()
            .unwrap_or_else(|e| panic!("replay session for {monitor_name} on {}: {e}", bench.name))
    };
    let serial = session(0).replay_all().expect("sequential replay");
    let parallel = session(workers).replay_all().expect("parallel replay");
    assert_eq!(
        serial.instrs, parallel.instrs,
        "parallel replay retired different instructions for {monitor_name} on {}",
        bench.name
    );
    assert_eq!(
        serial.events_seen, parallel.events_seen,
        "parallel replay consumed a different event stream for {monitor_name} on {}",
        bench.name
    );
    assert!(
        serial.final_state == parallel.final_state,
        "parallel replay metadata state diverged for {monitor_name} on {}",
        bench.name
    );
    assert_eq!(
        serial.violations, parallel.violations,
        "parallel replay violation reports diverged for {monitor_name} on {}",
        bench.name
    );
    assert_eq!(
        serial.functional_counters, parallel.functional_counters,
        "parallel replay functional counters diverged for {monitor_name} on {}",
        bench.name
    );
    ParallelReplayReport {
        benchmark: bench.name.to_string(),
        monitor: monitor_name.to_string(),
        workers,
        events: serial.events_seen,
        instrs: serial.instrs,
        serial_s: serial.wall_s,
        parallel_s: parallel.wall_s,
        epochs: parallel.epochs,
    }
}

/// Measured performance of the `.fadet` trace codec on one
/// (benchmark, monitor) point: how fast a trace prefix can be
/// generated live, encoded to the on-disk format, and decoded back —
/// plus the encoded-vs-in-memory size. Replay beats live generation
/// exactly when `replay_rate > gen_rate`.
#[derive(Clone, Debug)]
pub struct TraceCodecReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Monitor name (selects the event prefix length).
    pub monitor: String,
    /// Monitored events in the prefix.
    pub events: u64,
    /// Trace records in the prefix (instructions + stack + high-level).
    pub records: u64,
    /// Application instructions in the prefix.
    pub instrs: u64,
    /// In-memory footprint of the record buffer.
    pub raw_bytes: u64,
    /// Encoded `.fadet` size (header + chunks + trailer).
    pub encoded_bytes: u64,
    /// Wall-clock seconds to generate the records live.
    pub gen_s: f64,
    /// Wall-clock seconds to encode them.
    pub encode_s: f64,
    /// Wall-clock seconds to decode (replay) them.
    pub decode_s: f64,
}

impl TraceCodecReport {
    /// Raw-over-encoded size ratio (bigger is better; ≥3 is the bar).
    pub fn compression_ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.encoded_bytes.max(1) as f64
    }

    /// Monitored events per second of live generation.
    pub fn gen_rate(&self) -> f64 {
        self.events as f64 / self.gen_s.max(1e-12)
    }

    /// Monitored events per second of encoding.
    pub fn encode_rate(&self) -> f64 {
        self.events as f64 / self.encode_s.max(1e-12)
    }

    /// Monitored events per second of decoding — the rate a replayed
    /// trace feeds the engine at, to compare against [`Self::gen_rate`].
    pub fn replay_rate(&self) -> f64 {
        self.events as f64 / self.decode_s.max(1e-12)
    }
}

/// Measures trace-codec throughput for one (benchmark, monitor) point:
/// the prefix holding the first `n_events` monitored events is
/// generated once untimed, then (a) re-generated live, (b) encoded to
/// `.fadet` bytes, and (c) decoded back — each stage run twice with the
/// faster pass reported, so first-touch allocation and cold caches
/// don't masquerade as codec cost. The decode is asserted
/// bit-identical to the original records, so every measurement doubles
/// as a round-trip check.
///
/// # Panics
///
/// Panics if the monitor is unknown or the codec round-trip is not the
/// identity (which would be a codec bug).
pub fn measure_trace_codec(
    bench: &BenchProfile,
    monitor_name: &str,
    seed: u64,
    n_events: u64,
) -> TraceCodecReport {
    let (records, instrs) = record_trace_prefix(bench, monitor_name, seed, n_events);
    measure_trace_codec_records(bench, monitor_name, seed, &records, instrs, n_events)
}

/// [`measure_trace_codec`] over an already-captured prefix (the
/// records [`record_trace_prefix`] returned for this seed), so callers
/// measuring several things about one point don't regenerate it.
///
/// # Panics
///
/// See [`measure_trace_codec`]; additionally panics if `records` is
/// not this seed's generator output (the timed regeneration is
/// compared against it).
pub fn measure_trace_codec_records(
    bench: &BenchProfile,
    monitor_name: &str,
    seed: u64,
    records: &[TraceRecord],
    instrs: u64,
    n_events: u64,
) -> TraceCodecReport {
    fn best_of_two<T>(mut f: impl FnMut() -> T) -> (f64, T) {
        let start = Instant::now();
        let first = f();
        let t1 = start.elapsed().as_secs_f64();
        // Free the first pass's output before the second runs, so the
        // allocator hands the second pass warm pages: otherwise every
        // pass pays tens of ms of first-touch page faults on the
        // multi-MB output buffers and neither measures the codec.
        drop(first);
        let start = Instant::now();
        let second = f();
        let t2 = start.elapsed().as_secs_f64();
        (t1.min(t2), second)
    }

    let (gen_s, regenerated) = best_of_two(|| {
        let mut gen = fade_trace::SyntheticProgram::new(bench, seed);
        let mut out = Vec::with_capacity(records.len());
        gen.next_records_into(&mut out, records.len());
        out
    });
    assert_eq!(regenerated.as_slice(), records, "generator must be deterministic");
    drop(regenerated);

    let meta = fade_trace::TraceMeta::new(bench.name, seed);
    let (encode_s, bytes) = best_of_two(|| fade_trace::encode_trace(&meta, records));

    let (decode_s, decoded) = best_of_two(|| {
        fade_trace::decode_trace(&bytes)
            .unwrap_or_else(|e| panic!("fresh encoding failed to decode: {e}"))
    });
    let (meta2, decoded) = decoded;
    assert_eq!(meta2, meta, "trace metadata round-trip");
    assert_eq!(decoded.as_slice(), records, "trace record round-trip");

    TraceCodecReport {
        benchmark: bench.name.to_string(),
        monitor: monitor_name.to_string(),
        events: n_events,
        records: records.len() as u64,
        instrs,
        raw_bytes: std::mem::size_of_val(records) as u64,
        encoded_bytes: bytes.len() as u64,
        gen_s,
        encode_s,
        decode_s,
    }
}

/// [`measure_throughput_matrix`] for a single batch size.
pub fn measure_throughput(
    bench: &BenchProfile,
    monitor_name: &str,
    batch_size: usize,
    n_events: u64,
) -> ThroughputReport {
    measure_throughput_matrix(bench, monitor_name, &[batch_size], n_events)
        .pop()
        .expect("one batch size in, one report out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fade_trace::bench;

    #[test]
    fn paths_agree_and_fast_path_dominates_for_high_filter_monitors() {
        let b = bench::by_name("hmmer").unwrap();
        let r = measure_throughput(&b, "AddrCheck", 32, 20_000);
        assert_eq!(r.events, 20_000);
        // Real traces hop between pages/lines, so not every filterable
        // event is MRU-warm; locality still keeps a solid majority on
        // the short-circuit path.
        assert!(r.fast_path_fraction() > 0.5, "got {}", r.fast_path_fraction());
        assert!(r.batched_rate() > 0.0 && r.per_event_rate() > 0.0);
    }

    #[test]
    fn low_filter_monitors_still_agree() {
        let b = bench::by_name("gcc").unwrap();
        let r = measure_throughput(&b, "MemLeak", 32, 20_000);
        // measure_throughput asserts stats equality internally.
        assert_eq!(r.batch.events, 20_000);
        assert!(r.batch.dispatched > 0, "MemLeak dispatches complex events");
    }

    #[test]
    fn system_throughput_modes_agree_and_estimate_cycles() {
        let b = bench::by_name("hmmer").unwrap();
        let cfg = SystemConfig::fade_single_core()
            .with_sample_period(2048)
            .with_sample_window(512);
        // measure_system_throughput asserts the differential invariants
        // (state, reports, functional counters) internally.
        let r = measure_system_throughput(&b, "AddrCheck", &cfg, 20_000);
        assert_eq!(r.events, 20_000);
        assert!(r.batch.events > 0, "some events must run batched");
        assert!(r.exact_cycles > 0 && r.estimated_cycles > 0);
        // Coarse sanity here; the differential harness pins the ±5%
        // tolerance on full-size traces.
        assert!(r.cycle_error() < 0.25, "cycle error {}", r.cycle_error());
    }

    #[test]
    fn trace_codec_compresses_3x_and_round_trips() {
        let b = bench::by_name("gcc").unwrap();
        // measure_trace_codec asserts the decode==records identity
        // internally; here we pin the size bar.
        let r = measure_trace_codec(&b, "MemLeak", 0x5eed, 20_000);
        assert_eq!(r.events, 20_000);
        assert!(r.records > 0 && r.instrs > 0);
        assert!(
            r.compression_ratio() >= 3.0,
            "encoded size must be >=3x smaller than raw records, got {:.2}x",
            r.compression_ratio()
        );
        assert!(r.gen_rate() > 0.0 && r.replay_rate() > 0.0);
    }

    #[test]
    fn replay_from_recorded_buffer_matches_generated_prefix() {
        let b = bench::by_name("hmmer").unwrap();
        let cfg = SystemConfig::fade_single_core()
            .with_sample_period(2048)
            .with_sample_window(512);
        let (records, instrs) = record_trace_prefix(&b, "AddrCheck", cfg.seed, 20_000);
        // Driving the replayed buffer differentially checks both
        // engines against each other over the frozen trace.
        let r = measure_system_throughput_records(&b, "AddrCheck", &cfg, records, instrs);
        assert_eq!(r.events, 20_000);
        assert_eq!(r.instrs, instrs);
    }

    #[test]
    fn degenerate_reports_stay_finite() {
        // A zero-event report (e.g. a run whose window held no batched
        // stretch) must serialize finite numbers: the fast-path
        // fraction is defined as 0.0, every rate is guarded, and the
        // cycle error never divides by zero. These land unguarded in
        // BENCH_pipeline.json.
        let r = SystemThroughputReport {
            benchmark: "none".into(),
            monitor: "none".into(),
            events: 0,
            instrs: 0,
            cycle_s: 0.0,
            batched_s: 0.0,
            batch: BatchStats::default(),
            exact_cycles: 0,
            estimated_cycles: 0,
            sample_period: 0,
            sample_window: 0,
            rel_half_width: None,
            carried_seed_cycles: 0,
            strata: Vec::new(),
        };
        for v in [
            r.fast_path_fraction(),
            r.cycle_rate(),
            r.batched_rate(),
            r.speedup(),
            r.cycle_error(),
        ] {
            assert!(v.is_finite(), "degenerate report leaked {v}");
        }
        assert_eq!(r.fast_path_fraction(), 0.0);

        let p = ThroughputReport {
            benchmark: "none".into(),
            monitor: "none".into(),
            batch_size: 0,
            events: 0,
            per_event_s: 0.0,
            batched_s: 0.0,
            vectorized_s: 0.0,
            batch: BatchStats::default(),
            fade: FadeStats::default(),
        };
        for v in [
            p.fast_path_fraction(),
            p.per_event_rate(),
            p.batched_rate(),
            p.vectorized_rate(),
            p.speedup(),
            p.vector_speedup(),
        ] {
            assert!(v.is_finite(), "degenerate report leaked {v}");
        }
    }

    #[test]
    fn synthetic_filterable_profile_is_all_fast_path() {
        // One cold Malloc + first touch, then everything retires warm:
        // the fraction must be essentially 1 and the vectorized path
        // must agree bit-for-bit (asserted inside the measure fn).
        let r = measure_synthetic_filterable(32, 20_000);
        assert_eq!(r.events, 20_000);
        assert!(
            r.fast_path_fraction() > 0.99,
            "synthetic profile must saturate the fast path, got {}",
            r.fast_path_fraction()
        );
        assert!(r.vectorized_rate() > 0.0);
    }

    /// Bench smoke (run with `--ignored` in release CI): the vectorized
    /// SoA kernel must beat the scalar tier-A loop on the all-filterable
    /// profile and clear an absolute throughput floor. Wall-clock
    /// thresholds are deliberately loose (shared CI runners); the
    /// relative check retries best-of-3 like the differential bench
    /// harness.
    #[test]
    #[ignore = "bench smoke: wall-clock sensitive, run explicitly in release CI"]
    fn bench_smoke_vectorized_beats_scalar_on_synthetic_profile() {
        let mut best: Option<ThroughputReport> = None;
        for _ in 0..3 {
            let r = measure_synthetic_filterable(32, 400_000);
            assert!(r.fast_path_fraction() > 0.99, "got {}", r.fast_path_fraction());
            let better = best
                .as_ref()
                .map(|b| r.vector_speedup() > b.vector_speedup())
                .unwrap_or(true);
            if better {
                best = Some(r);
            }
        }
        let r = best.unwrap();
        // Measured ~2.2x / ~130 Mev/s on the dev container; floors sit
        // well under that so shared CI runners don't flake.
        assert!(
            r.vector_speedup() > 1.5,
            "vectorized path must beat scalar: speedup {:.2} ({:.1} vs {:.1} Mev/s)",
            r.vector_speedup(),
            r.vectorized_rate() / 1e6,
            r.batched_rate() / 1e6
        );
        assert!(
            r.vectorized_rate() > 60e6,
            "vectorized throughput floor: {:.1} Mev/s",
            r.vectorized_rate() / 1e6
        );
    }

    #[test]
    #[ignore = "wall-clock benchmark; run explicitly"]
    fn bench_smoke_narrow_batches_do_not_regress_vectorized() {
        // Batch size 1 feeds the vectorized entry point one event per
        // call: the SoA kernel can never pay off there, so the
        // narrow-run width gate must route those calls through the
        // scalar loop. The floor sits just under parity — the bypass
        // leaves only per-call overhead shared with the scalar driver,
        // so anything below ~1.0 is the gate failing, not noise.
        for (bench_name, monitor) in [("hmmer", "AddrCheck"), ("gcc", "MemLeak")] {
            let b = bench::by_name(bench_name).unwrap();
            // Each single pass is only a few milliseconds, so paired
            // per-run ratios are noise-dominated; ratio the best rate
            // each path reaches across the repeats, and retry the whole
            // measurement a few times — a transiently loaded runner can
            // still depress one path by several percent across a whole
            // repeat set, while a real bypass regression fails every
            // attempt.
            let mut speedup = 0.0f64;
            let (mut best_batched, mut best_vectorized) = (0.0f64, 0.0f64);
            for _ in 0..3 {
                best_batched = 0.0;
                best_vectorized = 0.0;
                for _ in 0..5 {
                    let r = measure_throughput(&b, monitor, 1, 200_000);
                    best_batched = best_batched.max(r.batched_rate());
                    best_vectorized = best_vectorized.max(r.vectorized_rate());
                }
                speedup = speedup.max(best_vectorized / best_batched);
                if speedup >= 0.98 {
                    break;
                }
            }
            assert!(
                speedup >= 0.98,
                "{bench_name}/{monitor} batch 1: vectorized entry must not trail scalar: \
                 speedup {:.3} ({:.1} vs {:.1} Mev/s)",
                speedup,
                best_vectorized / 1e6,
                best_batched / 1e6
            );
        }
    }

    #[test]
    fn parallel_benchmark_with_invariant_writes_agrees() {
        // AtomCheck rewrites invariant registers on thread switches —
        // the batched driver must apply them at the same points.
        let b = bench::by_name("water").unwrap();
        let r = measure_throughput(&b, "AtomCheck", 64, 20_000);
        assert_eq!(r.events, 20_000);
        assert!(r.fade.partial_hits > 0);
    }
}
