//! The pluggable monitor registry: name → monitor factory.
//!
//! FADE is a *programmable* accelerator — the hardware is fixed, the
//! monitors are software. The registry is where that programmability
//! meets the harness: every place a monitor is named (session builders,
//! experiment matrices, CLI flags, trace-replay drivers) resolves the
//! name here, so an out-of-tree tool registers itself once and is then
//! usable everywhere a paper monitor is.
//!
//! # Example
//!
//! ```
//! use fade_system::{MonitorRegistry, Session};
//! use fade_trace::bench;
//!
//! // The five paper monitors are pre-registered…
//! let mut registry = MonitorRegistry::builtin();
//! assert!(registry.contains("MemLeak"));
//!
//! // …and a custom tool joins them with one call (here: a fresh
//! // AddrCheck standing in for an out-of-tree monitor type).
//! registry.register(|| Box::new(fade_monitors::AddrCheck::new()));
//! let monitor = registry.create("AddrCheck").unwrap();
//! assert_eq!(monitor.name(), "AddrCheck");
//!
//! // Unknown names fail with a typed error that lists what exists.
//! let err = registry.create("NoSuchCheck").err().unwrap();
//! assert!(err.known.iter().any(|n| n == "TaintCheck"));
//! ```

use fade_monitors::Monitor;

/// A monitor constructor: each call returns a fresh, independent
/// instance (sessions own their monitor exclusively, so a shared
/// instance would alias state across runs).
pub type MonitorFactory = Box<dyn Fn() -> Box<dyn Monitor> + Send + Sync>;

/// A name was not found in a [`MonitorRegistry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownMonitor {
    /// The name that failed to resolve.
    pub name: String,
    /// Every name the registry does know, in registration order.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown monitor {:?} (registered: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownMonitor {}

/// An extensible, thread-shareable table of monitor factories.
///
/// Lookup is case-insensitive (matching the historical
/// `monitor_by_name` behavior); registration keeps the monitor's own
/// spelling for display. Registering a name that already exists
/// replaces the old factory, so downstream code can override a builtin.
pub struct MonitorRegistry {
    factories: Vec<(String, MonitorFactory)>,
}

impl MonitorRegistry {
    /// An empty registry (no monitors at all).
    pub fn empty() -> Self {
        MonitorRegistry { factories: Vec::new() }
    }

    /// The registry of the five paper monitors (Section 6).
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register(|| Box::new(fade_monitors::AddrCheck::new()));
        r.register(|| Box::new(fade_monitors::AtomCheck::new()));
        r.register(|| Box::new(fade_monitors::MemCheck::new()));
        r.register(|| Box::new(fade_monitors::MemLeak::new()));
        r.register(|| Box::new(fade_monitors::TaintCheck::new()));
        r
    }

    /// Registers a factory under the name its monitors report
    /// ([`Monitor::name`] of a probe instance — the name cannot drift
    /// from the monitor it constructs). Replaces any previous factory
    /// with the same (case-insensitive) name.
    pub fn register(
        &mut self,
        factory: impl Fn() -> Box<dyn Monitor> + Send + Sync + 'static,
    ) -> &mut Self {
        let name = factory().name().to_string();
        self.factories
            .retain(|(n, _)| !n.eq_ignore_ascii_case(&name));
        self.factories.push((name, Box::new(factory)));
        self
    }

    /// Constructs a fresh monitor by (case-insensitive) name.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownMonitor`] — including every registered name —
    /// when nothing matches.
    pub fn create(&self, name: &str) -> Result<Box<dyn Monitor>, UnknownMonitor> {
        self.factories
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, f)| f())
            .ok_or_else(|| UnknownMonitor {
                name: name.to_string(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            })
    }

    /// `true` if `name` resolves (case-insensitively).
    pub fn contains(&self, name: &str) -> bool {
        self.factories
            .iter()
            .any(|(n, _)| n.eq_ignore_ascii_case(name))
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.factories.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of registered monitors.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

impl Default for MonitorRegistry {
    /// The builtin (paper-monitor) registry.
    fn default() -> Self {
        Self::builtin()
    }
}

impl std::fmt::Debug for MonitorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_matches_paper_set() {
        let r = MonitorRegistry::builtin();
        assert_eq!(
            r.names(),
            vec!["AddrCheck", "AtomCheck", "MemCheck", "MemLeak", "TaintCheck"]
        );
        for name in r.names() {
            assert_eq!(r.create(name).unwrap().name(), name);
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let r = MonitorRegistry::builtin();
        assert_eq!(r.create("memleak").unwrap().name(), "MemLeak");
        assert!(r.contains("ADDRCHECK"));
    }

    #[test]
    fn unknown_name_reports_known_set() {
        let r = MonitorRegistry::builtin();
        let err = match r.create("nope") {
            Ok(m) => panic!("'nope' resolved to {}", m.name()),
            Err(e) => e,
        };
        assert_eq!(err.name, "nope");
        assert_eq!(err.known.len(), 5);
        assert!(err.to_string().contains("MemCheck"));
    }

    #[test]
    fn register_replaces_same_name() {
        let mut r = MonitorRegistry::builtin();
        let before = r.len();
        r.register(|| Box::new(fade_monitors::MemLeak::new()));
        assert_eq!(r.len(), before);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MonitorRegistry>();
    }
}
